// Package mhafs is a Go reproduction of "A Migratory Heterogeneity-Aware
// Data Layout Scheme for Parallel File Systems" (He, Sun, Wang, Xu): the
// MHA layout optimizer together with the complete substrate it needs — a
// deterministic discrete-event simulation of a hybrid parallel file system
// with HDD-backed HServers and SSD-backed SServers.
//
// The System type is the high-level entry point. It wires the pieces the
// way the paper deploys them:
//
//  1. Run the application once with tracing on (Open/ReadAt/WriteAt —
//     the miniature MPI-IO middleware records every request).
//  2. Call Optimize with a scheme (DEF, AAL, HARL, or the paper's MHA):
//     the trace is analyzed, requests are clustered by (size,
//     concurrency), data migrates into per-group regions, and each region
//     receives a cost-model-optimized <h, s> stripe pair.
//  3. Run the application again; requests are transparently redirected to
//     the reordered regions.
//
// Lower-level building blocks (the cost model, the k-means request
// grouping, the RSSD stripe search, the trace codec, the workload
// generators for IOR/HPIO/BTIO/LANL/LU/Cholesky, and the per-figure
// experiment harness) are exposed as type aliases so downstream code can
// compose them directly.
package mhafs

import (
	"fmt"
	"sort"

	"mhafs/internal/bench"
	"mhafs/internal/dynamic"
	"mhafs/internal/iopath"
	"mhafs/internal/iosig"
	"mhafs/internal/layout"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/plancache"
	"mhafs/internal/region"
	"mhafs/internal/reorder"
	"mhafs/internal/replay"
	"mhafs/internal/server"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/workload"
)

// Re-exported core types. Each alias names the canonical implementation in
// the corresponding internal package.
type (
	// Trace is an ordered list of I/O records.
	Trace = trace.Trace
	// Record is one traced file operation.
	Record = trace.Record
	// Op is a request type (OpRead / OpWrite).
	Op = trace.Op

	// Scheme selects a layout planner (DEF, AAL, HARL, MHA).
	Scheme = layout.Scheme
	// PlanEnv is the planning environment (cluster shape, cost model,
	// search parameters).
	PlanEnv = layout.Env
	// Plan is a planner's output: regions plus reordering mappings.
	Plan = layout.Plan

	// ClusterConfig describes the simulated hybrid PFS.
	ClusterConfig = pfs.Config
	// Cluster is the simulated file system.
	Cluster = pfs.Cluster
	// FileHandle is one rank's open file.
	FileHandle = mpiio.FileHandle

	// ReplayResult summarizes a trace replay.
	ReplayResult = replay.Result

	// BenchConfig parameterizes the per-figure experiment harness.
	BenchConfig = bench.Config
)

// Request types.
const (
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Layout schemes, in the paper's comparison order.
const (
	DEF  = layout.DEF
	AAL  = layout.AAL
	HARL = layout.HARL
	MHA  = layout.MHA
)

// Config assembles a System.
type Config struct {
	// Cluster is the simulated hybrid PFS; zero value selects the paper's
	// testbed (6 HServers, 2 SServers, GbE, 64 KB default stripes).
	Cluster ClusterConfig

	// Plan is the planning environment; zero value selects the paper's
	// parameters (4 KB search step, at most 16 regions). Server counts
	// follow Cluster.
	Plan PlanEnv

	// RedirectLookup is the client-side DRT lookup latency charged per
	// redirected request (seconds).
	RedirectLookup float64

	// DRTPath / RSTPath persist the reordering tables; empty keeps them
	// in memory.
	DRTPath string
	RSTPath string

	// PlanCache, when non-nil, memoizes planner output by content address
	// so repeated Optimize calls over unchanged traces — including the
	// dynamic monitor's periodic re-planning — skip the stripe search and
	// reuse the earlier plan byte for byte. Re-optimization generations
	// carry distinct Env tags and therefore distinct keys.
	PlanCache *plancache.Cache
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Cluster:        pfs.DefaultConfig(),
		Plan:           layout.DefaultEnv(),
		RedirectLookup: 1e-6,
	}
}

// System is a hybrid PFS with the MHA middleware attached.
type System struct {
	cfg        Config
	cluster    *pfs.Cluster
	mw         *mpiio.Middleware
	collector  *iosig.Collector
	recorder   *iopath.Recorder
	placement  *reorder.Placement
	generation int

	// retired accumulates region files created by plan generations that
	// have since been replaced; GarbageCollect consults it instead of
	// guessing from file names.
	retired map[string]bool
}

// NewSystem builds a fresh simulated cluster with tracing enabled.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cluster.HServers == 0 && cfg.Cluster.SServers == 0 {
		cfg.Cluster = pfs.DefaultConfig()
	}
	if cfg.Plan.M == 0 && cfg.Plan.N == 0 {
		cfg.Plan = layout.DefaultEnv()
	}
	cfg.Plan.M = cfg.Cluster.HServers
	cfg.Plan.N = cfg.Cluster.SServers
	cluster, err := pfs.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	mw := mpiio.New(cluster)
	col := iosig.NewCollector(cluster.Eng.Now)
	mw.SetCollector(col)
	rec := iopath.NewRecorder()
	if err := mw.Intercept("observe", rec); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, cluster: cluster, mw: mw, collector: col, recorder: rec,
		retired: make(map[string]bool)}, nil
}

// Cluster exposes the underlying simulated file system (for server stats,
// direct file creation, and driving the virtual clock).
func (s *System) Cluster() *Cluster { return s.cluster }

// Now returns the current virtual time in seconds.
func (s *System) Now() float64 { return s.cluster.Eng.Now() }

// Open opens (creating on demand) a file for the given MPI rank.
func (s *System) Open(name string, rank int) (*FileHandle, error) {
	return s.mw.Open(name, rank)
}

// SetTracing toggles the I/O collector (on by default).
func (s *System) SetTracing(on bool) {
	if on {
		s.collector.Enable()
	} else {
		s.collector.Disable()
	}
}

// Trace returns the collected trace sorted by offset (the layout phases'
// input order); RawTrace preserves issue order.
func (s *System) Trace() Trace { return s.collector.Trace() }

// RawTrace returns the collected trace in issue order.
func (s *System) RawTrace() Trace { return s.collector.RawTrace() }

// ResetTrace discards collected records.
func (s *System) ResetTrace() { s.collector.Reset() }

// Optimize runs the offline phases of the chosen scheme on the given
// trace (pass nil to use the collected trace): grouping, reordering,
// stripe-size determination, placement and data migration. Subsequent
// requests are redirected to the optimized regions.
//
// Calling Optimize on an already-optimized system re-optimizes: a new
// generation of regions is planned from the trace, populated from
// wherever the previous generation placed the bytes, and atomically
// switched in — the dynamic mode the paper lists as future work. The
// trace passed to a re-optimization must cover every extent whose data
// should remain reachable (the cumulative collected trace does).
func (s *System) Optimize(scheme Scheme, tr Trace) error {
	if tr == nil {
		tr = s.Trace()
	}
	if len(tr) == 0 {
		return fmt.Errorf("mhafs: empty trace; run the application with tracing first")
	}
	planner, err := layout.NewPlanner(scheme)
	if err != nil {
		return err
	}
	planner = plancache.Wrap(planner, s.cfg.PlanCache)
	env := s.cfg.Plan
	opts := reorder.Options{
		DRTPath: s.cfg.DRTPath,
		RSTPath: s.cfg.RSTPath,
		Migrate: true,
	}
	if s.placement != nil {
		// Re-optimization: tag the new generation and migrate from the
		// previous placement's locations.
		s.generation++
		env.Tag = fmt.Sprintf("g%d", s.generation)
		opts.Via = s.placement.DRT
		// Generation tables are volatile; persisting several generations
		// to one path would interleave them.
		opts.DRTPath, opts.RSTPath = "", ""
	}
	plan, err := planner.Plan(tr, env)
	if err != nil {
		return err
	}
	placement, err := reorder.Apply(s.cluster, plan, opts)
	if err != nil {
		return err
	}
	if s.placement != nil {
		// The previous generation's region files are now garbage unless the
		// new plan reuses them (GarbageCollect re-checks liveness anyway).
		for _, name := range s.placement.RegionFiles() {
			s.retired[name] = true
		}
		s.placement.Close()
	}
	s.placement = placement
	lookup := s.cfg.RedirectLookup
	if scheme != MHA {
		lookup = 0 // AAL/HARL restripe in place in the paper
	}
	if scheme != DEF {
		s.mw.SetRedirector(reorder.NewRedirector(placement.DRT, lookup))
	} else {
		s.mw.SetRedirector(nil)
	}
	return nil
}

// Generation returns how many re-optimizations have occurred (0 after the
// first Optimize).
func (s *System) Generation() int { return s.generation }

// Plan returns the applied plan (zero Plan before Optimize).
func (s *System) Plan() Plan {
	if s.placement == nil {
		return Plan{}
	}
	return s.placement.Plan
}

// Replay re-issues a trace against the system and reports aggregate
// bandwidth and per-server loads.
func (s *System) Replay(tr Trace) (ReplayResult, error) {
	return replay.Run(s.mw, tr)
}

// GarbageCollect removes region files left behind by retired plan
// generations, reclaiming their server-side storage. Retired regions are
// tracked explicitly — each Optimize records the region files of the
// placement it replaces — so collection never has to guess from file
// names; region.HasSchemeMarker additionally shields original files that
// served as identity regions (DEF/AAL map a file onto itself). A retired
// file is kept if the current plan or DRT still references it. Returns
// the names removed, sorted. Safe to call any time after a
// re-optimization.
func (s *System) GarbageCollect() []string {
	if s.placement == nil || len(s.retired) == 0 {
		return nil
	}
	live := make(map[string]bool)
	for _, r := range s.placement.Plan.Regions {
		live[r.File] = true
	}
	for _, f := range s.placement.DRT.Files() {
		live[f] = true // original files stay
	}
	var removed []string
	for name := range s.retired {
		if live[name] || !region.HasSchemeMarker(name) {
			continue
		}
		if _, ok := s.cluster.Lookup(name); !ok {
			delete(s.retired, name)
			continue
		}
		s.cluster.Remove(name)
		delete(s.retired, name)
		removed = append(removed, name)
	}
	sort.Strings(removed)
	return removed
}

// Staged I/O pipeline types, re-exported so callers can observe or
// reshape the request path without importing internal packages.
type (
	// PipelineRequest is the descriptor that flows client→server through
	// the stage chain for every independent I/O operation.
	PipelineRequest = iopath.Request
	// Stage is one link of the chain; it may observe or rewrite the
	// request and decides whether to forward via next.
	Stage = iopath.Stage
	// StageFunc adapts a function to the Stage interface.
	StageFunc = iopath.StageFunc
	// Handler forwards a request to the rest of the chain.
	Handler = iopath.Handler
	// PipelineRecord is one completed request as seen by the built-in
	// recorder (submit/complete virtual times).
	PipelineRecord = iopath.Record
)

// Intercept registers an interceptor stage on the system's request path:
// after trace capture, before redirection and striping. Every independent
// request (and each collective operation's file-domain requests)
// traverses it.
func (s *System) Intercept(name string, st Stage) error {
	return s.mw.Intercept(name, st)
}

// Uninstall removes a named interceptor, reporting whether it was
// present.
func (s *System) Uninstall(name string) bool { return s.mw.Uninstall(name) }

// Completions returns the per-request completion records captured by the
// system's built-in pipeline recorder, in completion order.
func (s *System) Completions() []PipelineRecord { return s.recorder.Records() }

// CompletionTrace converts the completion records to a Trace (skipping
// untraced internal requests), usable as Optimize input.
func (s *System) CompletionTrace() Trace { return s.recorder.CompletionTrace() }

// ResetCompletions discards captured completion records.
func (s *System) ResetCompletions() { s.recorder.Reset() }

// Close releases the reordering tables, if any.
func (s *System) Close() error {
	if s.placement == nil {
		return nil
	}
	err := s.placement.Close()
	s.placement = nil
	return err
}

// Workload generator configurations, re-exported for example and
// benchmark use.
type (
	IORConfig      = workload.IORConfig
	HPIOConfig     = workload.HPIOConfig
	BTIOConfig     = workload.BTIOConfig
	LANLConfig     = workload.LANLConfig
	LUConfig       = workload.LUConfig
	CholeskyConfig = workload.CholeskyConfig
)

// Workload generators.
var (
	IOR      = workload.IOR
	HPIO     = workload.HPIO
	BTIO     = workload.BTIO
	LANL     = workload.LANL
	LU       = workload.LU
	Cholesky = workload.Cholesky
)

// DefaultBenchConfig returns the experiment harness configured like the
// paper's testbed.
func DefaultBenchConfig() BenchConfig { return bench.Default() }

// Collective (two-phase) I/O, as MPI-IO performs for interleaved shared-
// file access. Collective operations flow through the same tracing and
// redirection hooks as independent ones.
type (
	// Piece is one rank's contribution to a collective operation.
	Piece = mpiio.Piece
	// CollectiveOptions tunes the two-phase exchange (aggregator count).
	CollectiveOptions = mpiio.CollectiveOptions
)

// CollectiveWrite performs a two-phase collective write and runs the
// engine to completion, returning the virtual finish time.
func (s *System) CollectiveWrite(name string, pieces []Piece, opts CollectiveOptions) (float64, error) {
	var end float64
	if err := s.mw.CollectiveWrite(name, pieces, opts, func(e float64) { end = e }); err != nil {
		return 0, err
	}
	s.cluster.Eng.Run()
	return end, nil
}

// CollectiveRead performs a two-phase collective read into the pieces'
// buffers and runs the engine to completion.
func (s *System) CollectiveRead(name string, pieces []Piece, opts CollectiveOptions) (float64, error) {
	var end float64
	if err := s.mw.CollectiveRead(name, pieces, opts, func(e float64) { end = e }); err != nil {
		return 0, err
	}
	s.cluster.Eng.Run()
	return end, nil
}

// Dynamic re-optimization (the paper's future work): a DynamicManager
// watches the live trace and re-plans when the access pattern drifts.
type (
	// DynamicPolicy tunes drift detection and re-plan throttling.
	DynamicPolicy = dynamic.Policy
	// DynamicManager drives divergence-triggered re-optimization.
	DynamicManager = dynamic.Manager
)

// DefaultDynamicPolicy compares the last 256 requests against the plan's
// baseline and re-optimizes at 30% divergence.
func DefaultDynamicPolicy() DynamicPolicy { return dynamic.DefaultPolicy() }

// NewDynamicManager attaches divergence-triggered re-optimization to a
// system. Call Check after each I/O phase (or on a timer); the manager
// plans initially once a full window of requests has been observed and
// re-plans (a new region generation, migrated in place) when the pattern
// drifts.
func NewDynamicManager(sys *System, scheme Scheme, policy DynamicPolicy) (*DynamicManager, error) {
	return dynamic.NewManager(sys, scheme, policy)
}

// ResumeSystem rebuilds a system from persisted reordering tables — the
// recovery path the paper's synchronous write-through exists for
// ("changes ... are synchronously written to the storage in order to
// survive power failures"). The configuration must carry the DRTPath and
// RSTPath of the previous instance. Region files are re-created with the
// layouts the RST recorded and the redirector is re-attached, so the
// application's next run places data exactly as the optimized plan
// prescribed. (Simulated server contents are volatile; what survives a
// restart is the placement metadata, as on a real deployment where the
// PFS holds the data.)
func ResumeSystem(cfg Config) (*System, error) {
	if cfg.DRTPath == "" || cfg.RSTPath == "" {
		return nil, fmt.Errorf("mhafs: resume requires DRTPath and RSTPath")
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	drt, err := region.OpenDRT(cfg.DRTPath)
	if err != nil {
		sys.Close()
		return nil, err
	}
	rst, err := region.OpenRST(cfg.RSTPath)
	if err != nil {
		drt.Close()
		sys.Close()
		return nil, err
	}
	if rst.Len() == 0 {
		drt.Close()
		rst.Close()
		sys.Close()
		return nil, fmt.Errorf("mhafs: no persisted plan at %s", cfg.RSTPath)
	}
	var createErr error
	rst.ForEach(func(name string, l stripe.Layout) bool {
		if _, ok := sys.cluster.Lookup(name); ok {
			return true
		}
		if _, err := sys.cluster.Create(name, l); err != nil {
			createErr = err
			return false
		}
		return true
	})
	if createErr != nil {
		drt.Close()
		rst.Close()
		sys.Close()
		return nil, createErr
	}
	sys.placement = reorder.Resume(sys.cluster, drt, rst)
	sys.mw.SetRedirector(reorder.NewRedirector(drt, cfg.RedirectLookup))
	return sys, nil
}

// ServerStats returns per-server activity (reads/writes/bytes/busy time)
// in flat order (HServers first) — the data behind the paper's Fig. 8.
func (s *System) ServerStats() []ServerStats {
	return s.cluster.ServerStats()
}

// ServerStats summarizes one server's activity.
type ServerStats = server.Stats
