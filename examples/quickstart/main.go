// Quickstart: the full MHA workflow on a simulated hybrid parallel file
// system in ~60 lines.
//
//	go run ./examples/quickstart
//
// An application writes a heterogeneous pattern (small header records
// interleaved with large data blocks), the middleware traces the run, MHA
// clusters the requests and migrates each group into its own
// stripe-optimized region, and the re-run shows the speedup.
package main

import (
	"fmt"
	"log"

	"mhafs"
	"mhafs/internal/units"
)

func main() {
	sys, err := mhafs.NewSystem(mhafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// --- First run: the application writes with tracing on. ---
	h, err := sys.Open("checkpoint.dat", 0)
	if err != nil {
		log.Fatal(err)
	}
	run := func() float64 {
		start := sys.Now()
		off := int64(0)
		for step := 0; step < 16; step++ {
			header := make([]byte, 4*units.KB) // 4 KB metadata record
			if _, err := h.WriteAtSync(header, off); err != nil {
				log.Fatal(err)
			}
			off += int64(len(header))
			block := make([]byte, 512*units.KB) // 512 KB data block
			if _, err := h.WriteAtSync(block, off); err != nil {
				log.Fatal(err)
			}
			off += int64(len(block))
		}
		return sys.Now() - start
	}
	first := run()
	fmt.Printf("first run (default 64KB fixed stripes): %.2f ms of simulated I/O\n", first*1e3)
	fmt.Printf("traced %d requests\n", len(sys.Trace()))

	// --- Offline: group, reorder, optimize stripe pairs. ---
	if err := sys.Optimize(mhafs.MHA, nil); err != nil {
		log.Fatal(err)
	}
	for _, r := range sys.Plan().Regions {
		fmt.Printf("region %-28s layout %-22s (%d bytes)\n", r.File, r.Layout, r.Size)
	}

	// --- Second run: transparently redirected to the optimized regions. ---
	sys.SetTracing(false)
	second := run()
	fmt.Printf("second run (MHA layout): %.2f ms of simulated I/O\n", second*1e3)
	fmt.Printf("speedup: %.2fx\n", first/second)
}
