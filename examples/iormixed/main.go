// IOR with mixed request sizes — the Fig. 7 scenario of the MHA paper —
// compared across all four layout schemes.
//
//	go run ./examples/iormixed [-sizes 128KB,256KB] [-procs 32] [-filesize 64MB]
//
// The same workload is replayed on a fresh simulated cluster per scheme;
// the table reports aggregate read and write bandwidths.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mhafs"

	"mhafs/internal/metrics"
	"mhafs/internal/units"
)

func main() {
	var (
		sizesStr = flag.String("sizes", "128KB,256KB", "comma-separated request sizes")
		procs    = flag.Int("procs", 32, "process count")
		fileSize = flag.String("filesize", "64MB", "total bytes accessed")
	)
	flag.Parse()

	var sizes []int64
	for _, p := range strings.Split(*sizesStr, ",") {
		b, err := units.ParseBytes(strings.TrimSpace(p))
		if err != nil {
			log.Fatal(err)
		}
		sizes = append(sizes, int64(b))
	}
	fs, err := units.ParseBytes(*fileSize)
	if err != nil {
		log.Fatal(err)
	}

	tb := metrics.NewTable(
		fmt.Sprintf("IOR mixed sizes %s, %d procs, %s file", *sizesStr, *procs, *fileSize),
		"scheme", "read MB/s", "write MB/s", "regions")
	for _, scheme := range []mhafs.Scheme{mhafs.DEF, mhafs.AAL, mhafs.HARL, mhafs.MHA} {
		var bw [2]float64
		var regions int
		for i, op := range []mhafs.Op{mhafs.OpRead, mhafs.OpWrite} {
			tr, err := mhafs.IOR(mhafs.IORConfig{
				File: "ior.dat", Op: op, Sizes: sizes, Procs: []int{*procs},
				FileSize: int64(fs), Shuffle: true, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			sys, err := mhafs.NewSystem(mhafs.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			// Plan from the workload trace, then replay it as the
			// optimized run.
			if err := sys.Optimize(scheme, tr); err != nil {
				log.Fatal(err)
			}
			sys.SetTracing(false)
			res, err := sys.Replay(tr)
			if err != nil {
				log.Fatal(err)
			}
			bw[i] = res.Bandwidth()
			regions = len(sys.Plan().Regions)
			sys.Close()
		}
		tb.AddRow(scheme.String(), bw[0], bw[1], regions)
	}
	if err := tb.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
