// Replay of the LANL App2 trace (Fig. 3 / Fig. 12b of the MHA paper):
// every loop issues a 16-byte record followed by 128K−16 and 128K-byte
// records, from 8 processes against a shared file.
//
//	go run ./examples/lanlreplay [-loops 32] [-procs 8]
//
// The example prints the Fig. 3 request-size sequence, the Algorithm 1
// grouping MHA discovers, and the per-scheme replay bandwidths.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mhafs"

	"mhafs/internal/cluster"
	"mhafs/internal/metrics"
	"mhafs/internal/pattern"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

func main() {
	var (
		loops = flag.Int("loops", 32, "application loops")
		procs = flag.Int("procs", 8, "process count")
	)
	flag.Parse()

	// Fig. 3: the access sequence of one loop.
	fmt.Print("Fig. 3 request sizes (one loop): ")
	for i, s := range workload.LANLSequence(1) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(units.Bytes(s))
	}
	fmt.Println()

	tr, err := mhafs.LANL(mhafs.LANLConfig{
		File: "lanl.dat", Op: mhafs.OpWrite, Procs: *procs, Loops: *loops,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Show the grouping MHA's reordering phase discovers.
	ann := pattern.Annotate(tr, pattern.DefaultEpochWindow)
	pts := pattern.Points(ann)
	res, err := cluster.Group(pts, cluster.BoundK(pts, 16), cluster.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1 found %d groups:\n", res.K())
	for g, members := range res.Groups {
		fmt.Printf("  group %d: %4d requests, center ≈ %s at concurrency %.0f\n",
			g, len(members), units.Bytes(int64(res.Centers[g].X)), res.Centers[g].Y)
	}

	tb := metrics.NewTable("LANL App2 replay", "scheme", "MB/s", "improvement over DEF")
	var defBW float64
	for _, scheme := range []mhafs.Scheme{mhafs.DEF, mhafs.AAL, mhafs.HARL, mhafs.MHA} {
		sys, err := mhafs.NewSystem(mhafs.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Optimize(scheme, tr); err != nil {
			log.Fatal(err)
		}
		sys.SetTracing(false)
		r, err := sys.Replay(tr)
		if err != nil {
			log.Fatal(err)
		}
		bw := r.Bandwidth()
		if scheme == mhafs.DEF {
			defBW = bw
		}
		tb.AddRow(scheme.String(), bw, fmt.Sprintf("%+.1f%%", (bw/defBW-1)*100))
		sys.Close()
	}
	if err := tb.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
