// Dynamic re-optimization — the MHA paper's stated future work: "develop
// dynamic approaches to further improve the performance of those
// applications with unpredictable patterns".
//
//	go run ./examples/dynamicpattern
//
// An application changes its access pattern mid-run (checkpoint-style
// small records, then analysis-style large reads). The dynamic manager
// watches the live trace, detects the drift, and re-optimizes: a new
// generation of regions is planned from the cumulative trace, populated
// from the previous generation's locations, and switched in transparently.
package main

import (
	"fmt"
	"log"

	"mhafs"
	"mhafs/internal/units"
)

func main() {
	sys, err := mhafs.NewSystem(mhafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	mgr, err := mhafs.NewDynamicManager(sys, mhafs.MHA, mhafs.DynamicPolicy{
		Window: 32, Threshold: 0.3, MinNewRecords: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	h, err := sys.Open("data.bin", 0)
	if err != nil {
		log.Fatal(err)
	}

	check := func(phase string) {
		did, div, err := mgr.Check()
		if err != nil {
			log.Fatal(err)
		}
		state := "stable"
		if did {
			state = fmt.Sprintf("re-optimized (generation %d)", sys.Generation())
		}
		fmt.Printf("after %-22s divergence %.2f → %s\n", phase+":", div, state)
	}

	// Phase 1: many small appends (checkpoint metadata).
	off := int64(0)
	for i := 0; i < 40; i++ {
		if _, err := h.WriteAtSync(make([]byte, 8*units.KB), off); err != nil {
			log.Fatal(err)
		}
		off += 8 * units.KB
	}
	check("small writes")
	for _, r := range sys.Plan().Regions {
		fmt.Printf("   region %-26s %v\n", r.File, r.Layout)
	}

	// Phase 2: the same pattern continues — no re-plan.
	for i := 0; i < 40; i++ {
		if _, err := h.WriteAtSync(make([]byte, 8*units.KB), off); err != nil {
			log.Fatal(err)
		}
		off += 8 * units.KB
	}
	check("more small writes")

	// Phase 3: the application switches to large sequential writes.
	for i := 0; i < 40; i++ {
		if _, err := h.WriteAtSync(make([]byte, units.MB), off); err != nil {
			log.Fatal(err)
		}
		off += units.MB
	}
	check("large writes")
	for _, r := range sys.Plan().Regions {
		fmt.Printf("   region %-26s %v\n", r.File, r.Layout)
	}
}
