// Server-ratio sweep — the Fig. 10 scenario of the MHA paper: how each
// layout scheme's bandwidth moves as HServers are traded for SServers in
// an 8-server cluster, plus the per-server load balance of Fig. 8.
//
//	go run ./examples/serverratio [-procs 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mhafs"

	"mhafs/internal/metrics"
	"mhafs/internal/units"
)

func main() {
	procs := flag.Int("procs", 32, "process count")
	flag.Parse()

	ratios := []struct{ h, s int }{{7, 1}, {6, 2}, {5, 3}, {4, 4}}
	schemes := []mhafs.Scheme{mhafs.DEF, mhafs.AAL, mhafs.HARL, mhafs.MHA}

	tb := metrics.NewTable("IOR 128+256KB writes vs server ratio",
		"ratio", "DEF", "AAL", "HARL", "MHA")
	for _, ratio := range ratios {
		row := []interface{}{fmt.Sprintf("%dh:%ds", ratio.h, ratio.s)}
		for _, scheme := range schemes {
			res, _ := runOnce(scheme, ratio.h, ratio.s, *procs)
			row = append(row, res.Bandwidth())
		}
		tb.AddRow(row...)
	}
	if err := tb.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Fig. 8 flavor: per-server busy time under the paper's 6h:2s split,
	// normalized to the least-loaded server of the MHA run.
	fmt.Println()
	perServer := map[mhafs.Scheme][]float64{}
	for _, scheme := range schemes {
		res, _ := runOnce(scheme, 6, 2, *procs)
		perServer[scheme] = metrics.BusyTimes(res.PerServer)
	}
	base := 0.0
	for _, v := range perServer[mhafs.MHA] {
		if v > 0 && (base == 0 || v < base) {
			base = v
		}
	}
	tb2 := metrics.NewTable("per-server I/O time (normalized), 6h:2s",
		"server", "DEF", "AAL", "HARL", "MHA")
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("S%d(h)", i)
		if i >= 6 {
			name = fmt.Sprintf("S%d(s)", i)
		}
		tb2.AddRow(name,
			perServer[mhafs.DEF][i]/base, perServer[mhafs.AAL][i]/base,
			perServer[mhafs.HARL][i]/base, perServer[mhafs.MHA][i]/base)
	}
	if err := tb2.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runOnce(scheme mhafs.Scheme, h, s, procs int) (mhafs.ReplayResult, int) {
	tr, err := mhafs.IOR(mhafs.IORConfig{
		File: "ior.dat", Op: mhafs.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{procs},
		FileSize: 64 * units.MB, Shuffle: true, Seed: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := mhafs.DefaultConfig()
	cfg.Cluster.HServers, cfg.Cluster.SServers = h, s
	sys, err := mhafs.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Optimize(scheme, tr); err != nil {
		log.Fatal(err)
	}
	sys.SetTracing(false)
	res, err := sys.Replay(tr)
	if err != nil {
		log.Fatal(err)
	}
	return res, len(sys.Plan().Regions)
}
