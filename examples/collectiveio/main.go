// Collective (two-phase) I/O: the MPI-IO optimization for interleaved
// shared-file access, layered on the same middleware MHA hooks into.
//
//	go run ./examples/collectiveio
//
// 16 ranks each own alternating 8 KB chunks of a shared file. Written
// independently, every rank issues many small striped requests; written
// collectively, a few aggregator ranks exchange the pieces and issue
// large contiguous requests. The example times both, then shows that MHA
// still optimizes the traced (logical) requests.
package main

import (
	"fmt"
	"log"

	"mhafs"
	"mhafs/internal/units"
)

const (
	ranks  = 16
	rounds = 32
	chunk  = 8 * units.KB
)

func pieces() []mhafs.Piece {
	var ps []mhafs.Piece
	for round := 0; round < rounds; round++ {
		for r := 0; r < ranks; r++ {
			off := int64(round*ranks+r) * chunk
			ps = append(ps, mhafs.Piece{Rank: r, Offset: off, Data: make([]byte, chunk)})
		}
	}
	return ps
}

func main() {
	// Independent writes: every rank issues its own chunks sequentially.
	sysInd, err := mhafs.NewSystem(mhafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sysInd.Close()
	handles := map[int]*mhafs.FileHandle{}
	for r := 0; r < ranks; r++ {
		h, err := sysInd.Open("shared.dat", r)
		if err != nil {
			log.Fatal(err)
		}
		handles[r] = h
	}
	start := sysInd.Now()
	for _, p := range pieces() {
		if _, err := handles[p.Rank].WriteAtSync(p.Data, p.Offset); err != nil {
			log.Fatal(err)
		}
	}
	independent := sysInd.Now() - start

	// Collective writes: the same pieces through the two-phase path.
	sysCol, err := mhafs.NewSystem(mhafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sysCol.Close()
	start = sysCol.Now()
	if _, err := sysCol.CollectiveWrite("shared.dat", pieces(), mhafs.CollectiveOptions{Aggregators: 4}); err != nil {
		log.Fatal(err)
	}
	collective := sysCol.Now() - start

	fmt.Printf("independent interleaved writes: %7.2f ms\n", independent*1e3)
	fmt.Printf("collective two-phase writes:    %7.2f ms  (%.1fx faster)\n",
		collective*1e3, independent/collective)

	// The collector saw the logical per-rank pieces, so MHA can still
	// optimize the layout for them.
	if err := sysCol.Optimize(mhafs.MHA, nil); err != nil {
		log.Fatal(err)
	}
	for _, r := range sysCol.Plan().Regions {
		fmt.Printf("MHA region %-24s %v\n", r.File, r.Layout)
	}
}
