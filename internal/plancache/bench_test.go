package plancache

import (
	"testing"

	"mhafs/internal/layout"
)

// BenchmarkCacheHit measures the warm in-memory path: one mutex
// round-trip and a map probe. CI gates this benchmark at 0 allocs/op.
func BenchmarkCacheHit(b *testing.B) {
	c, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)
	if _, _, err := c.GetOrPlan(key, func() (layout.Plan, error) {
		return planner.Plan(tr, env)
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, _ := c.GetOrPlan(key, nil); out != Hit {
			b.Fatal("warm call missed")
		}
	}
}

// BenchmarkKeyFor measures the keying cost itself — the price a cache
// lookup adds to a planner call (dominated by hashing the trace).
func BenchmarkKeyFor(b *testing.B) {
	tr := testTrace(1000)
	env := layout.DefaultEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KeyFor(tr, layout.MHA, env)
	}
}
