package plancache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhafs/internal/layout"
)

// TestPruneMemory: ready entries failing keep are dropped and recompute
// on next request; kept entries still hit.
func TestPruneMemory(t *testing.T) {
	c := mustCache(t, Options{})
	env := layout.DefaultEnv()
	planner, _ := layout.NewPlanner(layout.MHA)
	keyA := KeyFor(testTrace(10), layout.MHA, env)
	keyB := KeyFor(testTrace(20), layout.MHA, env)
	computeA := func() (layout.Plan, error) { return planner.Plan(testTrace(10), env) }
	computeB := func() (layout.Plan, error) { return planner.Plan(testTrace(20), env) }
	c.GetOrPlan(keyA, computeA)
	c.GetOrPlan(keyB, computeB)

	st, err := c.Prune(func(k Key) bool { return k == keyA })
	if err != nil {
		t.Fatal(err)
	}
	if st.MemRemoved != 1 {
		t.Fatalf("prune stats %+v, want 1 mem removal", st)
	}
	if _, out, _ := c.GetOrPlan(keyA, computeA); out != Hit {
		t.Fatalf("kept key outcome %v, want hit", out)
	}
	if _, out, _ := c.GetOrPlan(keyB, computeB); out != Computed {
		t.Fatalf("pruned key outcome %v, want recompute", out)
	}
}

// TestPruneDisk sweeps the on-disk layer: pruned entries delete, kept
// ones survive, and files that are not cache entries — including corrupt
// bodies under valid names, which prune by name like healthy entries —
// are classified correctly.
func TestPruneDisk(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, Options{Dir: dir})
	env := layout.DefaultEnv()
	planner, _ := layout.NewPlanner(layout.MHA)
	keyA := KeyFor(testTrace(10), layout.MHA, env)
	keyB := KeyFor(testTrace(20), layout.MHA, env)
	c.GetOrPlan(keyA, func() (layout.Plan, error) { return planner.Plan(testTrace(10), env) })
	c.GetOrPlan(keyB, func() (layout.Plan, error) { return planner.Plan(testTrace(20), env) })

	// A corrupt body under a valid entry name: prunable by name alone.
	corruptKey := KeyFor(testTrace(30), layout.MHA, env)
	corruptPath := filepath.Join(dir, corruptKey.String()+".plan.json")
	if err := os.WriteFile(corruptPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt body under a KEPT name must survive untouched (prune
	// reclaims space, it does not repair).
	keptCorrupt := filepath.Join(dir, keyB.String()+".plan.json")
	if err := os.WriteFile(keptCorrupt, []byte("{also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign names and temp files are not entries: skipped, not deleted.
	foreign := filepath.Join(dir, "not-a-key.plan.json")
	if err := os.WriteFile(foreign, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	shortHex := filepath.Join(dir, strings.Repeat("ab", 4)+".plan.json")
	if err := os.WriteFile(shortHex, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := c.Prune(func(k Key) bool { return k == keyB })
	if err != nil {
		t.Fatal(err)
	}
	if st.DiskRemoved != 2 || st.DiskKept != 1 || st.DiskSkipped != 2 || st.MemRemoved != 1 {
		t.Fatalf("prune stats %+v, want 2 removed / 1 kept / 2 skipped / 1 mem", st)
	}
	for _, gone := range []string{
		filepath.Join(dir, keyA.String()+".plan.json"),
		corruptPath,
	} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("%s survived the prune", filepath.Base(gone))
		}
	}
	for _, alive := range []string{keptCorrupt, foreign, shortHex} {
		if _, err := os.Stat(alive); err != nil {
			t.Errorf("%s was wrongly deleted: %v", filepath.Base(alive), err)
		}
	}
}

// TestPruneInFlight: an entry mid-computation is never pruned — its
// waiters hold it — but becomes prunable once ready.
func TestPruneInFlight(t *testing.T) {
	c := mustCache(t, Options{})
	env := layout.DefaultEnv()
	key := KeyFor(testTrace(10), layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrPlan(key, func() (layout.Plan, error) {
			close(started)
			<-release
			return planner.Plan(testTrace(10), env)
		})
	}()
	<-started
	st, err := c.Prune(func(Key) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if st.MemRemoved != 0 {
		t.Fatalf("pruned an in-flight entry: %+v", st)
	}
	close(release)
	<-done

	st, err = c.Prune(func(Key) bool { return false })
	if err != nil || st.MemRemoved != 1 {
		t.Fatalf("ready entry not pruned: %+v %v", st, err)
	}
}

// TestParseKey round-trips and rejects malformed input.
func TestParseKey(t *testing.T) {
	key := KeyFor(testTrace(3), layout.MHA, layout.DefaultEnv())
	back, err := ParseKey(key.String())
	if err != nil || back != key {
		t.Fatalf("round trip: %v %v", back, err)
	}
	for _, bad := range []string{"", "zz", key.String()[:8], key.String() + "00"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed input", bad)
		}
	}
}
