//go:build !race

package plancache

import (
	"testing"

	"mhafs/internal/layout"
)

// TestHitPathZeroAllocs pins the acceptance bar for the in-memory hit
// fast path: no allocations per served call. Guarded out under -race
// because the race runtime instruments map reads with allocations that
// are not the code's own.
func TestHitPathZeroAllocs(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)
	if _, _, err := c.GetOrPlan(key, func() (layout.Plan, error) {
		return planner.Plan(tr, env)
	}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, out, _ := c.GetOrPlan(key, nil); out != Hit {
			t.Fatal("warm call missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v times per call, want 0", allocs)
	}
}
