package plancache

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// PruneStats reports what one Prune pass did.
type PruneStats struct {
	MemRemoved  int // ready in-memory entries dropped
	DiskRemoved int // entry files deleted
	DiskKept    int // entry files retained by keep
	DiskSkipped int // non-entry files left untouched (bad names, temp files)
}

// ParseKey parses the lowercase-hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("plancache: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// Prune drops every entry whose key fails keep, sweeping both the
// in-memory map and (when dir-backed) the on-disk layer. It is the
// retention hook for long-lived daemons: pass the set of keys still
// referenced by live jobs and everything else is reclaimed.
//
// In-flight computations are never pruned — their waiters hold the entry
// — and the sweep decides from file names alone (a key is its content
// address), so corrupt or stale entry bodies prune exactly like healthy
// ones. Files whose names are not entry keys are counted in DiskSkipped
// and left in place (storeDisk's temp files never match the entry glob).
func (c *Cache) Prune(keep func(Key) bool) (PruneStats, error) {
	var st PruneStats
	c.mu.Lock()
	for k, e := range c.entries {
		if e.ready && !keep(k) {
			delete(c.entries, k)
			st.MemRemoved++
		}
	}
	c.mu.Unlock()
	if c.dir == "" {
		return st, nil
	}
	names, err := filepath.Glob(filepath.Join(c.dir, "*.plan.json"))
	if err != nil {
		return st, fmt.Errorf("plancache: %w", err)
	}
	for _, name := range names {
		stem := strings.TrimSuffix(filepath.Base(name), ".plan.json")
		key, err := ParseKey(stem)
		if err != nil {
			st.DiskSkipped++
			continue
		}
		if keep(key) {
			st.DiskKept++
			continue
		}
		if err := os.Remove(name); err != nil {
			return st, fmt.Errorf("plancache: %w", err)
		}
		st.DiskRemoved++
	}
	return st, nil
}
