package plancache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testTrace(n int) trace.Trace {
	var tr trace.Trace
	off := int64(0)
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Record{
			Rank: i % 8, File: "f", Op: trace.OpRead,
			Offset: off, Size: 16 * units.KB, Time: float64(i),
		})
		off += 16 * units.KB
	}
	return tr
}

func mustCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestKeySensitivity: the key must move with every planner input and stay
// put for everything else — most importantly Env.Workers, whose exclusion
// is what lets one cached plan serve every worker count.
func TestKeySensitivity(t *testing.T) {
	tr := testTrace(10)
	env := layout.DefaultEnv()
	base := KeyFor(tr, layout.MHA, env)

	if KeyFor(tr, layout.MHA, env) != base {
		t.Fatal("key not deterministic")
	}
	wEnv := env
	wEnv.Workers = 8
	if KeyFor(tr, layout.MHA, wEnv) != base {
		t.Error("Workers changed the key; plans are worker-independent and must share entries")
	}

	perturb := map[string]func(*layout.Env){
		"M":             func(e *layout.Env) { e.M++ },
		"N":             func(e *layout.Env) { e.N++ },
		"Params.AlphaH": func(e *layout.Env) { e.Params.AlphaH *= 2 },
		"Params.BetaSR": func(e *layout.Env) { e.Params.BetaSR *= 2 },
		"Params.T":      func(e *layout.Env) { e.Params.T *= 2 },
		"DefaultStripe": func(e *layout.Env) { e.DefaultStripe *= 2 },
		"Step":          func(e *layout.Env) { e.Step *= 2 },
		"MaxRegions":    func(e *layout.Env) { e.MaxRegions++ },
		"EpochWindow":   func(e *layout.Env) { e.EpochWindow *= 2 },
		"Seed":          func(e *layout.Env) { e.Seed++ },
		"Tag":           func(e *layout.Env) { e.Tag = "g2" },
	}
	for name, mutate := range perturb {
		e := env
		mutate(&e)
		if KeyFor(tr, layout.MHA, e) == base {
			t.Errorf("perturbing %s did not change the key", name)
		}
	}

	if KeyFor(tr, layout.HARL, env) == base {
		t.Error("scheme did not change the key")
	}
	tr2 := testTrace(10)
	tr2[3].Size += 4
	if KeyFor(tr2, layout.MHA, env) == base {
		t.Error("trace did not change the key")
	}
}

// TestKeyPinsStructShapes fails when layout.Env or costmodel.Params grow
// a field, forcing whoever adds one to decide whether KeyFor must hash
// it. Workers and the 10 hashed Params fields are accounted for below.
func TestKeyPinsStructShapes(t *testing.T) {
	if n := reflect.TypeOf(layout.Env{}).NumField(); n != 10 {
		t.Errorf("layout.Env has %d fields, KeyFor encodes 8 of 10 (Params expanded, Workers excluded) — update KeyFor and this pin", n)
	}
	if n := reflect.TypeOf(layout.DefaultEnv().Params).NumField(); n != 10 {
		t.Errorf("costmodel.Params has %d fields, KeyFor encodes 10 — update KeyFor and this pin", n)
	}
}

// TestGetOrPlanMemory covers the serial life of a key: computed once,
// then hit, with an independent key computed separately.
func TestGetOrPlanMemory(t *testing.T) {
	c := mustCache(t, Options{})
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)

	calls := 0
	compute := func() (layout.Plan, error) {
		calls++
		return planner.Plan(tr, env)
	}

	p1, out, err := c.GetOrPlan(key, compute)
	if err != nil || out != Computed {
		t.Fatalf("first call: outcome %v err %v", out, err)
	}
	p2, out, err := c.GetOrPlan(key, compute)
	if err != nil || out != Hit {
		t.Fatalf("second call: outcome %v err %v", out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("hit returned a different plan")
	}

	env2 := env
	env2.Tag = "gen2"
	if _, out, _ := c.GetOrPlan(KeyFor(tr, layout.MHA, env2), compute); out != Computed {
		t.Fatalf("distinct key served from cache: outcome %v", out)
	}

	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 || s.Coalesced != 0 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit / 0 coalesced", s)
	}
}

// TestSingleFlight releases eight goroutines at the same key
// simultaneously and holds the leader's computation open until the cache
// has registered the other seven as coalesced waiters: exactly one may
// compute, the rest must block on it, and all eight must receive the
// same plan value.
func TestSingleFlight(t *testing.T) {
	c := mustCache(t, Options{})
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)

	const callers = 8
	release := make(chan struct{})
	var computes int // written only by the single-flight leader
	compute := func() (layout.Plan, error) {
		<-release
		computes++
		return planner.Plan(tr, env)
	}

	plans := make([]layout.Plan, callers)
	outcomes := make([]Outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, out, err := c.GetOrPlan(key, compute)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			plans[i], outcomes[i] = p, out
		}(i)
	}
	// The leader is parked on release inside compute; wait until the
	// cache has counted every other caller as a waiter, then let it run.
	for c.Stats().Coalesced != callers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != callers-1 || s.Hits != 0 {
		t.Fatalf("stats %+v, want 1 miss / %d coalesced / 0 hits", s, callers-1)
	}
	nComputed := 0
	for i := range outcomes {
		switch outcomes[i] {
		case Computed:
			nComputed++
		case Coalesced:
		default:
			t.Fatalf("caller %d: unexpected outcome %v", i, outcomes[i])
		}
		if !reflect.DeepEqual(plans[i], plans[0]) {
			t.Fatalf("caller %d received a different plan", i)
		}
	}
	if nComputed != 1 {
		t.Fatalf("%d callers computed, want 1", nComputed)
	}
}

// TestErrorCaching: planner errors memoize like plans — deterministic
// inputs fail deterministically, so retrying is pure waste.
func TestErrorCaching(t *testing.T) {
	c := mustCache(t, Options{})
	key := KeyFor(testTrace(1), layout.MHA, layout.DefaultEnv())
	boom := errors.New("boom")
	calls := 0
	compute := func() (layout.Plan, error) {
		calls++
		return layout.Plan{}, boom
	}
	if _, out, err := c.GetOrPlan(key, compute); out != Computed || !errors.Is(err, boom) {
		t.Fatalf("first call: outcome %v err %v", out, err)
	}
	if _, out, err := c.GetOrPlan(key, compute); out != Hit || !errors.Is(err, boom) {
		t.Fatalf("second call: outcome %v err %v", out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestDiskRoundTrip: a second cache over the same directory serves the
// first cache's plan without computing, byte-identically.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)
	compute := func() (layout.Plan, error) { return planner.Plan(tr, env) }

	c1 := mustCache(t, Options{Dir: dir})
	p1, out, err := c1.GetOrPlan(key, compute)
	if err != nil || out != Computed {
		t.Fatalf("cold: outcome %v err %v", out, err)
	}

	c2 := mustCache(t, Options{Dir: dir})
	p2, out, err := c2.GetOrPlan(key, func() (layout.Plan, error) {
		t.Fatal("warm cache computed despite a valid disk entry")
		return layout.Plan{}, nil
	})
	if err != nil || out != DiskHit {
		t.Fatalf("warm: outcome %v err %v", out, err)
	}
	j1, _ := json.Marshal(p1)
	j2, _ := json.Marshal(p2)
	if string(j1) != string(j2) {
		t.Fatal("disk round trip changed the plan")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("warm stats %+v, want 1 disk hit / 0 misses", s)
	}

	// Errors never reach disk: a failing key on a disk-backed cache
	// leaves no file behind.
	boomKey := KeyFor(testTrace(2), layout.MHA, env)
	c1.GetOrPlan(boomKey, func() (layout.Plan, error) {
		return layout.Plan{}, errors.New("boom")
	})
	if _, err := os.Stat(filepath.Join(dir, boomKey.String()+".plan.json")); !os.IsNotExist(err) {
		t.Fatal("error result was written to disk")
	}
}

// corruptionCase tampers with a stored entry and states how the loader
// must classify the damage.
type corruptionCase struct {
	name       string
	tamper     func(t *testing.T, path string)
	wantStale  uint64
	wantRotten uint64
}

// TestDiskCorruptAndStale: damaged or outdated entries are recomputed,
// never trusted, with the rejection classified correctly; the recompute
// rewrites the entry so a third cache loads it cleanly again.
func TestDiskCorruptAndStale(t *testing.T) {
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)
	compute := func() (layout.Plan, error) { return planner.Plan(tr, env) }

	rewriteEnvelope := func(t *testing.T, path string, mutate func(*envelope)) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var e envelope
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		mutate(&e)
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []corruptionCase{
		{name: "truncated", wantRotten: 1, tamper: func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		}},
		{name: "plan-bytes-flipped", wantRotten: 1, tamper: func(t *testing.T, path string) {
			rewriteEnvelope(t, path, func(e *envelope) {
				e.Plan = json.RawMessage(strings.Replace(string(e.Plan), `"M":`, `"Z":`, 1))
			})
		}},
		{name: "sha-mismatch", wantRotten: 1, tamper: func(t *testing.T, path string) {
			rewriteEnvelope(t, path, func(e *envelope) {
				e.PlanSHA256 = strings.Repeat("0", 64)
			})
		}},
		{name: "wrong-key-field", wantRotten: 1, tamper: func(t *testing.T, path string) {
			rewriteEnvelope(t, path, func(e *envelope) {
				e.Key = strings.Repeat("a", 64)
			})
		}},
		{name: "old-format", wantStale: 1, tamper: func(t *testing.T, path string) {
			rewriteEnvelope(t, path, func(e *envelope) { e.Format = envelopeFormat + 1 })
		}},
		{name: "old-planner-version", wantStale: 1, tamper: func(t *testing.T, path string) {
			rewriteEnvelope(t, path, func(e *envelope) { e.PlannerVersion = -1 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed := mustCache(t, Options{Dir: dir})
			want, _, err := seed.GetOrPlan(key, compute)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key.String()+".plan.json")
			tc.tamper(t, path)

			c := mustCache(t, Options{Dir: dir})
			got, out, err := c.GetOrPlan(key, compute)
			if err != nil || out != Computed {
				t.Fatalf("tampered entry: outcome %v err %v, want recompute", out, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("recomputed plan differs from the original")
			}
			s := c.Stats()
			if s.DiskCorrupt != tc.wantRotten || s.DiskStale != tc.wantStale {
				t.Fatalf("stats %+v, want corrupt=%d stale=%d", s, tc.wantRotten, tc.wantStale)
			}

			// The recompute rewrote the entry: a fresh cache must load it.
			c3 := mustCache(t, Options{Dir: dir})
			if _, out, err := c3.GetOrPlan(key, compute); err != nil || out != DiskHit {
				t.Fatalf("after recompute: outcome %v err %v, want disk hit", out, err)
			}
		})
	}
}

// TestWrap: a wrapped planner is transparent (same scheme, same plan)
// and a nil cache is the identity.
func TestWrap(t *testing.T) {
	planner, _ := layout.NewPlanner(layout.MHA)
	if Wrap(planner, nil) != planner {
		t.Fatal("nil cache must return the planner unchanged")
	}
	c := mustCache(t, Options{})
	w := Wrap(planner, c)
	if w.Scheme() != layout.MHA {
		t.Fatalf("wrapped scheme %v", w.Scheme())
	}
	tr := testTrace(10)
	env := layout.DefaultEnv()
	direct, err := planner.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := w.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := w.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, direct) || !reflect.DeepEqual(got2, direct) {
		t.Fatal("wrapped planner diverged from the direct plan")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss / 1 hit", s)
	}
}

// TestFromMode maps the CLI flag values onto cache configurations.
func TestFromMode(t *testing.T) {
	if c, err := FromMode("off", ""); err != nil || c != nil {
		t.Fatalf("off: %v %v", c, err)
	}
	if c, err := FromMode("mem", ""); err != nil || c == nil || c.dir != "" {
		t.Fatalf("mem: %+v %v", c, err)
	}
	dir := filepath.Join(t.TempDir(), "pc")
	c, err := FromMode("dir", dir)
	if err != nil || c == nil || c.dir != dir {
		t.Fatalf("dir: %+v %v", c, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("dir mode did not create %s: %v", dir, err)
	}
	if _, err := FromMode("dir", ""); err == nil {
		t.Fatal("dir mode without a directory must fail")
	}
	if _, err := FromMode("bogus", ""); err == nil {
		t.Fatal("unknown mode must fail")
	}
}

// TestEmitTelemetry checks the exported aggregates: computed = misses,
// served = hits + coalesced + disk hits, and the full series set present
// even at zero.
func TestEmitTelemetry(t *testing.T) {
	c := mustCache(t, Options{})
	tr := testTrace(10)
	env := layout.DefaultEnv()
	key := KeyFor(tr, layout.MHA, env)
	planner, _ := layout.NewPlanner(layout.MHA)
	compute := func() (layout.Plan, error) { return planner.Plan(tr, env) }
	c.GetOrPlan(key, compute)
	c.GetOrPlan(key, compute)
	c.GetOrPlan(key, compute)

	reg := telemetry.NewRegistry()
	c.EmitTelemetry(reg)
	get := func(result string, name string) float64 {
		t.Helper()
		return reg.Counter(name, telemetry.L("result", result)).Value()
	}
	if v := get("computed", "plan_cache_requests_total"); v != 1 {
		t.Errorf("computed = %v, want 1", v)
	}
	if v := get("served", "plan_cache_requests_total"); v != 2 {
		t.Errorf("served = %v, want 2", v)
	}
	for _, result := range []string{"hit", "corrupt", "stale"} {
		if v := get(result, "plan_cache_disk_total"); v != 0 {
			t.Errorf("disk %s = %v, want 0", result, v)
		}
	}
	// Nil registry is a documented no-op.
	c.EmitTelemetry(nil)
}

// TestOutcomeString pins the flag-facing names.
func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		Computed: "computed", Hit: "hit", Coalesced: "coalesced",
		DiskHit: "disk-hit", Outcome(99): "outcome(99)",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}
