package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mhafs/internal/layout"
)

// envelopeFormat versions the on-disk file layout; entries written under
// a different format are stale, not corrupt.
const envelopeFormat = 1

// envelope is the on-disk representation of one cached plan. Every field
// outside Plan exists to let the loader refuse an entry without trusting
// it: the key must match the file we asked for, the planner version must
// match the code that would otherwise recompute, and the plan bytes must
// hash to PlanSHA256 before they are parsed into a layout.Plan.
type envelope struct {
	Format         int             `json:"format"`
	Key            string          `json:"key"`
	Scheme         string          `json:"scheme"`
	PlannerVersion int             `json:"planner_version"`
	PlanSHA256     string          `json:"plan_sha256"`
	Plan           json.RawMessage `json:"plan"`
}

// path returns the entry file for a key: <dir>/<keyhex>.plan.json.
func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".plan.json")
}

// loadDisk tries the on-disk layer for key. It returns the plan and
// loaded=true only when every integrity check passes; otherwise the
// caller recomputes. corrupt/stale report (as 0/1 deltas for the stats
// fields) why an existing entry was rejected: stale means the entry was
// written by another envelope format or planner version — expected after
// an upgrade — while corrupt means the bytes themselves fail their
// self-description (truncation, tampering, torn write). Both are
// recoverable by recomputation; neither is ever trusted.
func (c *Cache) loadDisk(key Key) (plan layout.Plan, loaded bool, corrupt, stale uint64) {
	if c.dir == "" {
		return layout.Plan{}, false, 0, 0
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		// Absent (or unreadable) is a plain miss, not an error class.
		return layout.Plan{}, false, 0, 0
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return layout.Plan{}, false, 1, 0
	}
	if env.Format != envelopeFormat {
		return layout.Plan{}, false, 0, 1
	}
	if env.Key != key.String() {
		return layout.Plan{}, false, 1, 0
	}
	sum := sha256.Sum256(env.Plan)
	if hex.EncodeToString(sum[:]) != env.PlanSHA256 {
		return layout.Plan{}, false, 1, 0
	}
	if err := json.Unmarshal(env.Plan, &plan); err != nil {
		return layout.Plan{}, false, 1, 0
	}
	if env.Scheme != plan.Scheme.String() ||
		env.PlannerVersion != layout.PlannerVersion(plan.Scheme) {
		// A version mismatch usually means the planner changed since the
		// entry was written (KeyFor would produce a different key now, but
		// a hand-copied or downgraded cache directory can still collide).
		return layout.Plan{}, false, 0, 1
	}
	if err := plan.Validate(); err != nil {
		return layout.Plan{}, false, 1, 0
	}
	return plan, true, 0, 0
}

// storeDisk writes the entry atomically: marshal to a temp file in the
// cache directory, then rename over the final name so readers never see
// a torn entry. Canonical encoding is encoding/json's deterministic
// struct-field order, so identical plans produce identical files.
func (c *Cache) storeDisk(key Key, plan layout.Plan) error {
	planBytes, err := json.Marshal(plan)
	if err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	sum := sha256.Sum256(planBytes)
	env := envelope{
		Format:         envelopeFormat,
		Key:            key.String(),
		Scheme:         plan.Scheme.String(),
		PlannerVersion: layout.PlannerVersion(plan.Scheme),
		PlanSHA256:     hex.EncodeToString(sum[:]),
		Plan:           planBytes,
	}
	// Compact on purpose: indentation would rewrite the embedded Plan
	// bytes and break the PlanSHA256 self-check.
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(c.dir, ".plan-*.tmp")
	if err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	return nil
}
