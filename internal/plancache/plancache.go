// Package plancache is a deterministic, content-addressed cache for
// layout plans.
//
// Every planner in this repository is a pure function of its inputs: the
// same trace, scheme and environment produce byte-identical plans
// (DESIGN.md §12). That purity makes memoization provably safe — a plan
// may be reused anywhere its inputs recur, across bench cells, fault
// scenarios, re-planning generations and (with the on-disk layer) whole
// processes. The key is a sha256 over a canonical binary encoding of
// everything a planner reads: the trace digest (iosig.TraceDigest), the
// scheme, every Env knob that can steer the plan, and a per-scheme
// version constant (layout.PlannerVersion) so a planner change
// invalidates its entries.
//
// Env.Workers is deliberately excluded from the key: plans are
// bit-identical at every worker count (the Env contract), so a plan
// computed at workers=8 serves a workers=1 caller byte for byte.
//
// Concurrent callers of the same key are single-flighted: the first
// caller computes, the rest block on its completion channel and receive
// the same Plan value. The returned Plan is therefore shared — callers
// must treat it (slices included) as immutable, which everything
// downstream of the planners already does.
//
// The package sits in mhavet's DeterministicPackages (a cached plan must
// be a pure function of its key — no wall-clock freshness) and
// ConcurrencyAllowedPackages (the single-flight map's locking is
// sanctioned).
package plancache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"mhafs/internal/iosig"
	"mhafs/internal/layout"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// Key is the content address of a plan: sha256 over the canonical
// encoding of every planner input.
type Key [sha256.Size]byte

// String returns the lowercase hex form (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyFormat versions the key encoding itself; bumping it orphans every
// existing key (memory and disk) at once.
const keyFormat = 1

// KeyFor computes the cache key of planning tr with scheme under env.
// The encoding is fixed-width little-endian with length-prefixed strings,
// so it is injective; field order is frozen by the tests. Env.Workers is
// excluded — see the package comment.
func KeyFor(tr trace.Trace, scheme layout.Scheme, env layout.Env) Key {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		io.WriteString(h, s)
	}

	str("mhafs-plan-cache")
	u64(keyFormat)
	u64(uint64(scheme))
	i64(int64(layout.PlannerVersion(scheme)))

	i64(int64(env.M))
	i64(int64(env.N))
	p := env.Params
	f64(float64(p.T))
	f64(p.PerMessage)
	f64(p.AlphaH)
	f64(float64(p.BetaH))
	f64(p.AlphaSR)
	f64(float64(p.BetaSR))
	f64(p.AlphaSW)
	f64(float64(p.BetaSW))
	f64(p.SeekInterference)
	f64(p.SeekInterferenceCap)
	i64(env.DefaultStripe)
	i64(env.Step)
	i64(int64(env.MaxRegions))
	f64(env.EpochWindow)
	i64(env.Seed)
	str(env.Tag)

	d := iosig.TraceDigest(tr)
	h.Write(d[:])

	var k Key
	h.Sum(k[:0])
	return k
}

// Outcome reports how GetOrPlan satisfied a call.
type Outcome uint8

// Outcomes.
const (
	// Computed: this call ran the planner (a miss everywhere).
	Computed Outcome = iota
	// Hit: served from a completed in-memory entry.
	Hit
	// Coalesced: blocked on another caller's in-flight computation and
	// received its result.
	Coalesced
	// DiskHit: loaded from the on-disk layer (and now in memory).
	DiskHit
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	case DiskHit:
		return "disk-hit"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Stats is a snapshot of the cache counters. Misses, DiskHits and the
// disk error counters are scheduling-independent (single-flight runs
// exactly one computation per distinct key); the Hits/Coalesced split
// depends on which caller got there first and is exported for tests,
// not for telemetry — EmitTelemetry publishes only the deterministic
// aggregates.
type Stats struct {
	Hits      uint64 // served from a completed in-memory entry
	Misses    uint64 // planner executions (one per distinct key)
	Coalesced uint64 // callers that waited on an in-flight computation

	DiskHits      uint64 // entries loaded from the on-disk layer
	DiskCorrupt   uint64 // on-disk entries rejected by integrity checks
	DiskStale     uint64 // on-disk entries from another format/planner version
	DiskWriteErrs uint64 // failed best-effort writes (entry recomputed next process)
}

// entry is one key's slot: the single-flight rendezvous plus, once ready,
// the shared result.
type entry struct {
	done  chan struct{} // closed when plan/err are final
	ready bool          // set under Cache.mu when plan/err are final
	plan  layout.Plan
	err   error
}

// Cache memoizes plans by content address. The zero value is not usable;
// construct with New. A Cache is safe for concurrent use.
type Cache struct {
	dir string // on-disk layer root; empty = memory-only

	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
}

// Options configure a cache.
type Options struct {
	// Dir enables the on-disk layer: canonical-JSON plan files named
	// <key>.plan.json under this directory, fingerprint-checked on load
	// (disk.go). Empty keeps the cache memory-only.
	Dir string
}

// New builds a cache, creating the on-disk directory when configured.
func New(opts Options) (*Cache, error) {
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("plancache: %w", err)
		}
	}
	return &Cache{dir: opts.Dir, entries: make(map[Key]*entry)}, nil
}

// FromMode builds a cache from the CLIs' -plan-cache flag: "mem" shares
// plans within the process, "dir" additionally persists them under dir,
// "off" returns nil (callers treat a nil cache as caching disabled).
func FromMode(mode, dir string) (*Cache, error) {
	switch mode {
	case "off":
		return nil, nil
	case "mem":
		return New(Options{})
	case "dir":
		if dir == "" {
			return nil, fmt.Errorf("plancache: mode dir needs a directory")
		}
		return New(Options{Dir: dir})
	default:
		return nil, fmt.Errorf("plancache: unknown mode %q (want mem, dir or off)", mode)
	}
}

// GetOrPlan returns the plan for key, running compute at most once per
// key per process: the first caller computes (after consulting the
// on-disk layer), concurrent callers block until it finishes, later
// callers hit the completed entry. Errors are cached like plans — the
// planners are deterministic, so a failing key fails every time and
// re-running it would only repeat the work.
//
// The returned Plan is shared across every caller of the key and must be
// treated as immutable. The in-memory hit path performs no allocations.
func (c *Cache) GetOrPlan(key Key, compute func() (layout.Plan, error)) (layout.Plan, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.ready {
			c.stats.Hits++
			plan, err := e.plan, e.err
			c.mu.Unlock()
			return plan, Hit, err
		}
		c.stats.Coalesced++
		c.mu.Unlock()
		<-e.done
		// done closes after plan/err are written: the channel receive
		// orders this read after those writes.
		return e.plan, Coalesced, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	outcome := Computed
	plan, loaded, corrupt, stale := c.loadDisk(key)
	var err error
	var writeErr bool
	if loaded {
		outcome = DiskHit
	} else {
		plan, err = compute()
		if err == nil && c.dir != "" {
			// Best-effort: a failed write costs a recompute in a future
			// process, never the current result.
			writeErr = c.storeDisk(key, plan) != nil
		}
	}

	c.mu.Lock()
	e.plan, e.err, e.ready = plan, err, true
	if outcome == DiskHit {
		c.stats.DiskHits++
	} else {
		c.stats.Misses++
	}
	c.stats.DiskCorrupt += corrupt
	c.stats.DiskStale += stale
	if writeErr {
		c.stats.DiskWriteErrs++
	}
	c.mu.Unlock()
	close(e.done)
	return plan, outcome, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// EmitTelemetry publishes the scheduling-independent aggregates into reg:
//
//	plan_cache_requests_total{result="computed"|"served"}
//	plan_cache_disk_total{result="hit"|"corrupt"|"stale"}
//
// "computed" counts planner executions (exactly one per distinct key,
// by single-flight) and "served" counts every call answered without
// planning (memory hits, coalesced waiters, disk hits). Both are
// functions of the workload alone. The finer hit-vs-coalesced split
// depends on goroutine scheduling and stays out of telemetry — snapshots
// must be byte-identical at every worker count; Stats exposes the split
// for tests. Counters are registered eagerly (even at zero) so the
// snapshot's series set does not depend on what the run happened to do.
func (c *Cache) EmitTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s := c.Stats()
	reg.Counter("plan_cache_requests_total", telemetry.L("result", "computed")).Add(float64(s.Misses))
	reg.Counter("plan_cache_requests_total", telemetry.L("result", "served")).Add(float64(s.Hits + s.Coalesced + s.DiskHits))
	reg.Counter("plan_cache_disk_total", telemetry.L("result", "hit")).Add(float64(s.DiskHits))
	reg.Counter("plan_cache_disk_total", telemetry.L("result", "corrupt")).Add(float64(s.DiskCorrupt))
	reg.Counter("plan_cache_disk_total", telemetry.L("result", "stale")).Add(float64(s.DiskStale))
}

// cachedPlanner routes a Planner's Plan calls through a cache.
type cachedPlanner struct {
	p layout.Planner
	c *Cache
}

// Wrap returns p with every Plan call memoized through c; a nil cache
// returns p unchanged. Use Wrap where the caller does not need the
// Outcome (e.g. mhafs.System re-planning); harnesses that attribute
// telemetry to the computing call use GetOrPlan directly.
func Wrap(p layout.Planner, c *Cache) layout.Planner {
	if c == nil {
		return p
	}
	return cachedPlanner{p: p, c: c}
}

func (w cachedPlanner) Scheme() layout.Scheme { return w.p.Scheme() }

func (w cachedPlanner) Plan(tr trace.Trace, env layout.Env) (layout.Plan, error) {
	plan, _, err := w.c.GetOrPlan(KeyFor(tr, w.p.Scheme(), env), func() (layout.Plan, error) {
		return w.p.Plan(tr, env)
	})
	return plan, err
}
