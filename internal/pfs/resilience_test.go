package pfs

import (
	"strings"
	"testing"

	"mhafs/internal/device"
	"mhafs/internal/fault"
	"mhafs/internal/stripe"
)

func TestCreateWithRotation(t *testing.T) {
	c := newCluster(t, smallConfig())
	l := stripe.Uniform(2, 2, 4096)
	f, err := c.CreateWithRotation("fb", l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rotation != 1 {
		t.Fatalf("rotation = %d, want the explicit 1", f.Rotation)
	}
	if got, _ := c.Lookup("fb"); got != f {
		t.Error("created file not registered")
	}
	if _, err := c.CreateWithRotation("neg", l, -1); err == nil {
		t.Error("negative rotation accepted")
	}
	if _, err := c.CreateWithRotation("fb", l, 0); err == nil {
		t.Error("duplicate name accepted")
	}
}

// TestPhysicalIndex pins the rotation arithmetic: the physical index is
// exactly where ServerForFile lands, for both classes.
func TestPhysicalIndex(t *testing.T) {
	cfg := DefaultConfig() // 6 HServers, 2 SServers
	c := newCluster(t, cfg)
	f, err := c.CreateWithRotation("f", c.DefaultLayout(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range f.Layout.Servers() {
		idx := c.PhysicalIndex(f, ref)
		srv := c.ServerForFile(f, ref)
		want := c.ServerFor(stripe.ServerRef{Class: ref.Class, Index: idx})
		if srv != want {
			t.Errorf("%v: PhysicalIndex %d names %s, ServerForFile gives %s",
				ref, idx, want.Name, srv.Name)
		}
	}
	// Spot-check the modulus: H index 3 with rotation 5 over 6 HServers.
	if got := c.PhysicalIndex(f, stripe.ServerRef{Class: stripe.ClassH, Index: 3}); got != 2 {
		t.Errorf("H3+5 mod 6 = %d, want 2", got)
	}
}

// TestOverrideValidationDeterministic: with several out-of-range override
// indices, Validate reports the lowest one — map iteration order must not
// leak into the error.
func TestOverrideValidationDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		cfg := smallConfig()
		cfg.HDDOverrides = map[int]device.Model{
			7: cfg.HDD, 3: cfg.HDD, 9: cfg.HDD, -1: cfg.HDD,
		}
		err := cfg.Validate()
		if err == nil {
			t.Fatal("out-of-range override indices accepted")
		}
		if !strings.Contains(err.Error(), "index -1") {
			t.Fatalf("run %d: error %q does not name the lowest bad index -1", i, err)
		}
		if !strings.Contains(err.Error(), "[0,2)") {
			t.Fatalf("error %q does not state the valid range", err)
		}
	}
	cfg := smallConfig()
	cfg.SSDOverrides = map[int]device.Model{2: cfg.SSD}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "SSD override index 2") {
		t.Errorf("SSD override out of range: err = %v", err)
	}
	cfg = smallConfig()
	cfg.HDDOverrides = map[int]device.Model{0: cfg.HDD, 1: cfg.SSD}
	if err := cfg.Validate(); err != nil {
		t.Errorf("in-range overrides rejected: %v", err)
	}
}

func TestClusterSetFaults(t *testing.T) {
	c := newCluster(t, smallConfig())
	in, err := fault.NewInjector(c.Eng, fault.Schedule{Windows: []fault.Window{
		{Server: "s0", Kind: fault.Outage, Start: 0, End: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaults(in)
	if c.Faults() != in {
		t.Error("injector not stored on the cluster")
	}
	for _, s := range c.Servers() {
		if s.Faults() != in {
			t.Errorf("server %s missing the injector", s.Name)
		}
	}
	c.SetFaults(nil)
	if c.Faults() != nil {
		t.Error("detach left the cluster injector set")
	}
	for _, s := range c.Servers() {
		if s.Faults() != nil {
			t.Errorf("server %s still has the injector after detach", s.Name)
		}
	}
}
