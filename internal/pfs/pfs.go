// Package pfs implements the simulated hybrid parallel file system: a
// metadata server (MDS) plus M HServers and N SServers, with files striped
// over the servers by per-file varied-size layouts.
//
// This is the repository's stand-in for OrangeFS in the paper's testbed.
// Clients contact the MDS for a file's metadata (layout, size) and then
// exchange data with the servers directly; a striped request completes
// when its slowest sub-request completes, which is the property every
// result in the paper rests on.
package pfs

import (
	"fmt"
	"sort"

	"mhafs/internal/device"
	"mhafs/internal/fault"
	"mhafs/internal/netmodel"
	"mhafs/internal/server"
	"mhafs/internal/sim"
	"mhafs/internal/stripe"
	"mhafs/internal/telemetry"
	"mhafs/internal/units"
)

// Config describes a cluster.
type Config struct {
	HServers int // number of HDD-backed servers (M)
	SServers int // number of SSD-backed servers (N)

	HDD device.Model
	SSD device.Model
	Net netmodel.Model

	// MDSLookup is the metadata-server time per lookup (file open /
	// layout fetch), seconds.
	MDSLookup float64

	// DefaultStripe is the stripe size files get when created without an
	// explicit layout — the paper's DEF scheme uses 64 KB.
	DefaultStripe int64

	// HDDOverrides / SSDOverrides replace the device model of individual
	// servers (by index within their class) — e.g. to model a degraded
	// "straggler" disk. The layout planners' cost model is class-level and
	// cannot see per-server differences; the overrides exist to study
	// exactly that blind spot.
	HDDOverrides map[int]device.Model
	SSDOverrides map[int]device.Model

	// Dataless drops payload materialization across the cluster: servers
	// charge full virtual-time costs but store no bytes, and the striping
	// planners reuse scratch buffers instead of gathering payloads. The XL
	// simulation tier runs dataless — it measures timing and layout
	// behaviour, never the bytes — while paper-scale clusters keep this
	// off and stay byte-accurate.
	Dataless bool
}

// DefaultConfig mirrors the paper's testbed: six HServers, two SServers,
// GbE, 64 KB default stripes.
func DefaultConfig() Config {
	return Config{
		HServers:      6,
		SServers:      2,
		HDD:           device.DefaultHDD(),
		SSD:           device.DefaultSSD(),
		Net:           netmodel.DefaultGigE(),
		MDSLookup:     200e-6,
		DefaultStripe: 64 * units.KB,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HServers < 0 || c.SServers < 0 || c.HServers+c.SServers == 0 {
		return fmt.Errorf("pfs: need at least one server (H=%d S=%d)", c.HServers, c.SServers)
	}
	if c.MDSLookup < 0 {
		return fmt.Errorf("pfs: negative MDS lookup time")
	}
	if c.DefaultStripe <= 0 {
		return fmt.Errorf("pfs: default stripe must be positive")
	}
	if err := c.HDD.Validate(); err != nil {
		return err
	}
	if err := c.SSD.Validate(); err != nil {
		return err
	}
	// Override maps are walked in sorted index order: with several invalid
	// entries the reported error must not depend on map iteration order.
	for _, i := range sortedOverrideKeys(c.HDDOverrides) {
		if i < 0 || i >= c.HServers {
			return fmt.Errorf("pfs: HDD override index %d out of range [0,%d)", i, c.HServers)
		}
		if err := c.HDDOverrides[i].Validate(); err != nil {
			return err
		}
	}
	for _, i := range sortedOverrideKeys(c.SSDOverrides) {
		if i < 0 || i >= c.SServers {
			return fmt.Errorf("pfs: SSD override index %d out of range [0,%d)", i, c.SServers)
		}
		if err := c.SSDOverrides[i].Validate(); err != nil {
			return err
		}
	}
	return c.Net.Validate()
}

// sortedOverrideKeys returns the override indices in increasing order.
func sortedOverrideKeys(m map[int]device.Model) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// File is the MDS's record of one file.
type File struct {
	Name   string
	Layout stripe.Layout
	Size   int64 // logical size: one past the highest byte written

	// Rotation spreads files across servers: file f's i-th HServer is the
	// physical HServer (i + Rotation) mod M, and likewise for SServers.
	// Real PFSs rotate each file's starting server so that many files with
	// identical layouts do not all hammer the same first server. Derived
	// deterministically from the name at Create.
	Rotation int
}

// Cluster is the simulated file system.
type Cluster struct {
	Eng *sim.Engine
	cfg Config

	hservers []*server.Server
	sservers []*server.Server
	mds      *sim.Resource

	files map[string]*File

	stripeMeter *stripe.Meter
	faults      *fault.Injector

	// Dataless-mode planning scratch: the split and sub-request slices
	// are reused across Plan calls (consumers use the plan synchronously
	// within the stripe stage), and zeros is the shared stand-in payload
	// every sub-request slices — only its length is ever consumed.
	splitScratch []stripe.SubRequest
	planScratch  []SubRequest
	zeros        []byte
}

// New builds a cluster on a fresh simulation engine.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Eng:   &sim.Engine{},
		cfg:   cfg,
		files: make(map[string]*File),
	}
	c.mds = sim.NewResource(c.Eng, "mds")
	for i := 0; i < cfg.HServers; i++ {
		dev := cfg.HDD
		if o, ok := cfg.HDDOverrides[i]; ok {
			dev = o
		}
		s, err := server.New(c.Eng, fmt.Sprintf("h%d", i), dev, cfg.Net)
		if err != nil {
			return nil, err
		}
		s.SetDataless(cfg.Dataless)
		c.hservers = append(c.hservers, s)
	}
	for j := 0; j < cfg.SServers; j++ {
		dev := cfg.SSD
		if o, ok := cfg.SSDOverrides[j]; ok {
			dev = o
		}
		s, err := server.New(c.Eng, fmt.Sprintf("s%d", j), dev, cfg.Net)
		if err != nil {
			return nil, err
		}
		s.SetDataless(cfg.Dataless)
		c.sservers = append(c.sservers, s)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetTelemetry installs (or, with nil, removes) a telemetry registry
// across the storage layer: every server emits its per-request series and
// the striping path records per-region hits and fan-out. All observations
// are in virtual time, so enabling telemetry never perturbs results.
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	for _, s := range c.Servers() {
		s.SetTelemetry(reg)
	}
	if reg == nil {
		c.stripeMeter = nil
		return
	}
	c.stripeMeter = stripe.NewMeter(reg)
}

// DefaultLayout returns the cluster-wide DEF layout: every server, fixed
// stripe size.
func (c *Cluster) DefaultLayout() stripe.Layout {
	return stripe.Uniform(c.cfg.HServers, c.cfg.SServers, c.cfg.DefaultStripe)
}

// ServerFor resolves a layout server reference to the physical server,
// without any per-file rotation.
func (c *Cluster) ServerFor(ref stripe.ServerRef) *server.Server {
	if ref.Class == stripe.ClassH {
		return c.hservers[ref.Index]
	}
	return c.sservers[ref.Index]
}

// ServerForFile resolves a layout server reference for a specific file,
// applying the file's rotation within each server class.
func (c *Cluster) ServerForFile(f *File, ref stripe.ServerRef) *server.Server {
	if ref.Class == stripe.ClassH {
		return c.hservers[(ref.Index+f.Rotation)%len(c.hservers)]
	}
	return c.sservers[(ref.Index+f.Rotation)%len(c.sservers)]
}

// PhysicalIndex returns the physical within-class index the reference
// resolves to for this file — the rotation arithmetic ServerForFile
// applies, exposed for layers that reason about individual servers (the
// failover path excluding a down server).
func (c *Cluster) PhysicalIndex(f *File, ref stripe.ServerRef) int {
	if ref.Class == stripe.ClassH {
		return (ref.Index + f.Rotation) % len(c.hservers)
	}
	return (ref.Index + f.Rotation) % len(c.sservers)
}

// SetFaults attaches (or, with nil, detaches) a fault injector to every
// server of the cluster. The raw Cluster Write/Read path stays
// fault-unaware (it panics on injected errors); resilient runs route
// through the I/O pipeline's retry and failover stages.
func (c *Cluster) SetFaults(in *fault.Injector) {
	c.faults = in
	for _, s := range c.Servers() {
		s.SetFaults(in)
	}
}

// Faults returns the attached injector (nil for a healthy cluster).
func (c *Cluster) Faults() *fault.Injector { return c.faults }

// nameHash derives a small deterministic rotation from a file name (FNV-1a).
func nameHash(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % 1024)
}

// Servers returns all servers in flat order (HServers then SServers).
func (c *Cluster) Servers() []*server.Server {
	out := make([]*server.Server, 0, len(c.hservers)+len(c.sservers))
	out = append(out, c.hservers...)
	out = append(out, c.sservers...)
	return out
}

// validateLayout checks that a layout fits this cluster.
func (c *Cluster) validateLayout(l stripe.Layout) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if l.M > c.cfg.HServers || l.N > c.cfg.SServers {
		return fmt.Errorf("pfs: layout %v exceeds cluster (%dH, %dS)", l, c.cfg.HServers, c.cfg.SServers)
	}
	return nil
}

// Create registers a new file with the given layout. Creating an existing
// name is an error.
//
//mhavet:coldpath per-file metadata creation, not per-request
func (c *Cluster) Create(name string, l stripe.Layout) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("pfs: empty file name")
	}
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("pfs: file %q exists", name)
	}
	if err := c.validateLayout(l); err != nil {
		return nil, err
	}
	f := &File{Name: name, Layout: l, Rotation: nameHash(name)}
	c.files[name] = f
	return f, nil
}

// CreateWithRotation registers a new file with an explicit rotation
// instead of the name-derived one. Degraded-mode failover uses it: with a
// layout one server short of its class, rotation (down+1) mod class-size
// covers every physical server except the unavailable one.
func (c *Cluster) CreateWithRotation(name string, l stripe.Layout, rotation int) (*File, error) {
	if rotation < 0 {
		return nil, fmt.Errorf("pfs: negative rotation %d", rotation)
	}
	f, err := c.Create(name, l)
	if err != nil {
		return nil, err
	}
	f.Rotation = rotation
	return f, nil
}

// CreateDefault creates a file with the DEF layout.
func (c *Cluster) CreateDefault(name string) (*File, error) {
	return c.Create(name, c.DefaultLayout())
}

// Lookup returns the file record for name.
func (c *Cluster) Lookup(name string) (*File, bool) {
	f, ok := c.files[name]
	return f, ok
}

// Remove deletes a file: its metadata and every server-side object
// holding its bytes.
func (c *Cluster) Remove(name string) {
	delete(c.files, name)
	for _, s := range c.Servers() {
		s.DeleteObject(name)
	}
}

// Files lists the registered file names (unordered).
func (c *Cluster) Files() []string {
	out := make([]string, 0, len(c.files))
	for n := range c.files {
		out = append(out, n)
	}
	return out
}

// OpenHandle models a client opening a file: one MDS lookup, after which
// the layout is cached client-side. done receives the virtual completion
// time.
func (c *Cluster) OpenHandle(name string, done func(f *File, end float64)) error {
	f, ok := c.files[name]
	if !ok {
		return fmt.Errorf("pfs: open %q: no such file", name)
	}
	c.mds.Acquire(c.cfg.MDSLookup, func(_, end float64) {
		if done != nil {
			done(f, end)
		}
	})
	return nil
}

// SubRequest is one server-bound piece of a striped request: the physical
// server, the server-side object, the contiguous local range, and the
// bytes moving. The I/O pipeline's stripe stage and the Cluster's own
// Write/Read share this plan, so both paths issue identical sub-requests.
type SubRequest struct {
	Server *server.Server
	Object string
	Local  int64
	// Data is the gathered write payload, or the landing buffer a read's
	// server bytes arrive in before scattering.
	Data []byte
	// Scatter, set on read plans, copies the server's contiguous local
	// bytes back into the round-interleaved positions of the caller's
	// buffer. It must run when the sub-request's data is available,
	// before completion is reported.
	Scatter func()
}

// PlanWrite computes the striped sub-requests of a write and extends the
// file size, without submitting anything. One coalesced sub-request per
// server, as a real PFS client issues: the per-server local range of a
// contiguous file extent is itself contiguous, so the server performs a
// single local access. The round-interleaved payload pieces are gathered
// into that local order.
func (c *Cluster) PlanWrite(f *File, off int64, data []byte) []SubRequest {
	n := int64(len(data))
	if end := off + n; end > f.Size {
		f.Size = end
	}
	if c.cfg.Dataless {
		return c.planDataless(f, off, n)
	}
	return c.planWriteBytes(f, off, data)
}

// planWriteBytes is the byte-accurate write plan: payload pieces are
// gathered into per-server buffers. It allocates per request by design —
// the 0-alloc contract covers the dataless plan (planDataless), which is
// what the XL tier runs.
//
//mhavet:coldpath byte-accurate planning; the XL tier plans dataless
func (c *Cluster) planWriteBytes(f *File, off int64, data []byte) []SubRequest {
	n := int64(len(data))
	subs := f.Layout.Split(off, n)
	if c.stripeMeter != nil {
		c.stripeMeter.ObserveSplit(f.Name, subs)
	}
	gathered := make(map[stripe.ServerRef][]byte, len(subs))
	for _, sub := range subs {
		gathered[sub.Server] = make([]byte, 0, sub.Size)
	}
	for _, seg := range f.Layout.Segments(off, n) {
		gathered[seg.Server] = append(gathered[seg.Server], data[seg.Global-off:seg.Global-off+seg.Size]...)
	}
	out := make([]SubRequest, 0, len(subs))
	for _, sub := range subs {
		out = append(out, SubRequest{
			Server: c.ServerForFile(f, sub.Server),
			Object: f.Name,
			Local:  sub.Local,
			Data:   gathered[sub.Server],
		})
	}
	return out
}

// PlanRead computes the striped sub-requests of a read, mirroring
// PlanWrite: one coalesced sub-request per server, each carrying a
// Scatter that lands its bytes in the right interleaved positions of buf.
func (c *Cluster) PlanRead(f *File, off int64, buf []byte) []SubRequest {
	if c.cfg.Dataless {
		return c.planDataless(f, off, int64(len(buf)))
	}
	return c.planReadBytes(f, off, buf)
}

// planReadBytes is the byte-accurate read plan, with per-sub-request
// scatter closures. Like planWriteBytes it allocates per request by
// design and sits outside the 0-alloc contract.
//
//mhavet:coldpath byte-accurate planning; the XL tier plans dataless
func (c *Cluster) planReadBytes(f *File, off int64, buf []byte) []SubRequest {
	n := int64(len(buf))
	subs := f.Layout.Split(off, n)
	if c.stripeMeter != nil {
		c.stripeMeter.ObserveSplit(f.Name, subs)
	}
	segs := f.Layout.Segments(off, n)
	out := make([]SubRequest, 0, len(subs))
	for _, sub := range subs {
		sub := sub
		tmp := make([]byte, sub.Size)
		out = append(out, SubRequest{
			Server: c.ServerForFile(f, sub.Server),
			Object: f.Name,
			Local:  sub.Local,
			Data:   tmp,
			Scatter: func() {
				var consumed int64
				for _, seg := range segs {
					if seg.Server != sub.Server {
						continue
					}
					copy(buf[seg.Global-off:seg.Global-off+seg.Size], tmp[consumed:consumed+seg.Size])
					consumed += seg.Size
				}
			},
		})
	}
	return out
}

// planDataless is the shared dataless plan: one sub-request per server
// with the cluster's zero buffer standing in for the payload (only its
// length is consumed — it sizes the service time) and no scatter. The
// returned slice is planning scratch reused by the next Plan call;
// consumers use it synchronously, as the stripe stage does.
func (c *Cluster) planDataless(f *File, off, n int64) []SubRequest {
	subs := f.Layout.AppendSplit(c.splitScratch[:0], off, n)
	c.splitScratch = subs
	if c.stripeMeter != nil {
		c.stripeMeter.ObserveSplit(f.Name, subs)
	}
	out := c.planScratch[:0]
	for _, sub := range subs {
		if sub.Size > int64(len(c.zeros)) {
			// Doubling scratch growth amortizes to zero per op.
			c.zeros = make([]byte, sub.Size*2) //mhavet:allow literal
		}
		out = append(out, SubRequest{
			Server: c.ServerForFile(f, sub.Server),
			Object: f.Name,
			Local:  sub.Local,
			Data:   c.zeros[:sub.Size],
		})
	}
	c.planScratch = out
	return out
}

// Write issues a striped write of data at offset off. done (optional)
// receives the virtual time the slowest sub-request completed. The call
// only schedules work; the caller drives the engine.
func (c *Cluster) Write(f *File, off int64, data []byte, done func(end float64)) error {
	if f == nil {
		return fmt.Errorf("pfs: write to nil file")
	}
	if off < 0 {
		return fmt.Errorf("pfs: negative offset %d", off)
	}
	if len(data) == 0 {
		if done != nil {
			c.Eng.Schedule(0, func() { done(c.Eng.Now()) })
		}
		return nil
	}
	subs := c.PlanWrite(f, off, data)
	latest := new(float64)
	barrier := sim.NewBarrier(len(subs), func() {
		if done != nil {
			done(*latest)
		}
	})
	for _, sub := range subs {
		sub.Server.SubmitWrite(sub.Object, sub.Local, sub.Data, func(end float64) {
			if end > *latest {
				*latest = end
			}
			barrier.Arrive()
		})
	}
	return nil
}

// Read issues a striped read into buf from offset off; buf is fully
// populated when done runs. Reads past the current size return zeros, like
// a sparse file.
func (c *Cluster) Read(f *File, off int64, buf []byte, done func(end float64)) error {
	if f == nil {
		return fmt.Errorf("pfs: read from nil file")
	}
	if off < 0 {
		return fmt.Errorf("pfs: negative offset %d", off)
	}
	if len(buf) == 0 {
		if done != nil {
			c.Eng.Schedule(0, func() { done(c.Eng.Now()) })
		}
		return nil
	}
	subs := c.PlanRead(f, off, buf)
	latest := new(float64)
	barrier := sim.NewBarrier(len(subs), func() {
		if done != nil {
			done(*latest)
		}
	})
	for _, sub := range subs {
		sub := sub
		sub.Server.SubmitRead(sub.Object, sub.Local, sub.Data, func(end float64) {
			sub.Scatter()
			if end > *latest {
				*latest = end
			}
			barrier.Arrive()
		})
	}
	return nil
}

// WriteSync writes and runs the engine until the write completes,
// returning the completion time. Only for single-threaded convenience use
// (examples, tests); concurrent workloads schedule explicitly.
func (c *Cluster) WriteSync(f *File, off int64, data []byte) (float64, error) {
	var end float64
	if err := c.Write(f, off, data, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	c.Eng.Run()
	return end, nil
}

// ReadSync reads and runs the engine until the read completes.
func (c *Cluster) ReadSync(f *File, off int64, buf []byte) (float64, error) {
	var end float64
	if err := c.Read(f, off, buf, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	c.Eng.Run()
	return end, nil
}

// ServerStats returns per-server statistics in flat order — the data
// behind Fig. 8's per-server I/O times.
func (c *Cluster) ServerStats() []server.Stats {
	srvs := c.Servers()
	out := make([]server.Stats, len(srvs))
	for i, s := range srvs {
		out[i] = s.Stats()
	}
	return out
}
