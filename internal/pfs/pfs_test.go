package pfs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mhafs/internal/device"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.HServers, cfg.SServers = 2, 2
	return cfg
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.HServers, c.SServers = 0, 0 },
		func(c *Config) { c.HServers = -1 },
		func(c *Config) { c.MDSLookup = -1 },
		func(c *Config) { c.DefaultStripe = 0 },
		func(c *Config) { c.HDD.ReadPerByte = 0 },
		func(c *Config) { c.SSD.ReadPerByte = 0 },
		func(c *Config) { c.Net.PerByte = 0 },
	}
	for i, m := range muts {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestClusterTopology(t *testing.T) {
	c := newCluster(t, DefaultConfig())
	if len(c.Servers()) != 8 {
		t.Fatalf("servers = %d", len(c.Servers()))
	}
	if got := c.DefaultLayout(); got != stripe.Uniform(6, 2, 64*units.KB) {
		t.Errorf("DefaultLayout = %v", got)
	}
	h0 := c.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	s1 := c.ServerFor(stripe.ServerRef{Class: stripe.ClassS, Index: 1})
	if h0.Name != "h0" || s1.Name != "s1" {
		t.Errorf("ServerFor wrong: %s, %s", h0.Name, s1.Name)
	}
}

func TestCreateLookupRemove(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, err := c.CreateDefault("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "data.bin" || f.Size != 0 {
		t.Errorf("file = %+v", f)
	}
	if _, err := c.CreateDefault("data.bin"); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := c.Create("", c.DefaultLayout()); err == nil {
		t.Error("empty name accepted")
	}
	got, ok := c.Lookup("data.bin")
	if !ok || got != f {
		t.Error("Lookup failed")
	}
	if len(c.Files()) != 1 {
		t.Errorf("Files = %v", c.Files())
	}
	c.Remove("data.bin")
	if _, ok := c.Lookup("data.bin"); ok {
		t.Error("Remove did not delete")
	}
}

func TestCreateRejectsOversizedLayout(t *testing.T) {
	c := newCluster(t, smallConfig()) // 2H + 2S
	bad := stripe.Uniform(3, 2, 64*units.KB)
	if _, err := c.Create("f", bad); err == nil {
		t.Error("layout exceeding cluster accepted")
	}
	if _, err := c.Create("f", stripe.Layout{}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	data := make([]byte, 300*units.KB) // spans >1 round of 256KB
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	if _, err := c.WriteSync(f, 0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := c.ReadSync(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip corrupted data")
	}
	if f.Size != int64(len(data)) {
		t.Errorf("Size = %d", f.Size)
	}
}

func TestWriteReadAtOffset(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	data := []byte("offset payload")
	off := int64(200*units.KB + 17)
	if _, err := c.WriteSync(f, off, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := c.ReadSync(f, off, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("got %q", buf)
	}
	// Sparse hole reads as zeros.
	hole := make([]byte, 10)
	c.ReadSync(f, 0, hole)
	for _, b := range hole {
		if b != 0 {
			t.Error("hole not zero")
		}
	}
}

func TestVariedLayoutRoundTrip(t *testing.T) {
	c := newCluster(t, smallConfig())
	l := stripe.Layout{M: 2, N: 2, H: 32 * units.KB, S: 96 * units.KB}
	f, err := c.Create("v", l)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 600*units.KB)
	rand.New(rand.NewSource(9)).Read(data)
	c.WriteSync(f, 0, data)
	buf := make([]byte, len(data))
	c.ReadSync(f, 0, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("varied-layout round trip corrupted data")
	}
}

func TestSSDOnlyLayoutRoundTrip(t *testing.T) {
	c := newCluster(t, smallConfig())
	l := stripe.Layout{M: 2, N: 2, H: 0, S: 64 * units.KB}
	f, err := c.Create("s", l)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200*units.KB)
	rand.New(rand.NewSource(3)).Read(data)
	c.WriteSync(f, 0, data)
	buf := make([]byte, len(data))
	c.ReadSync(f, 0, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("SSD-only round trip corrupted data")
	}
	// HServers must have stored nothing.
	for _, st := range c.ServerStats()[:2] {
		if st.WriteBytes != 0 {
			t.Errorf("HServer %s stored %d bytes under h=0 layout", st.Name, st.WriteBytes)
		}
	}
}

func TestZeroLengthOps(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	var wrote, read bool
	c.Write(f, 0, nil, func(float64) { wrote = true })
	c.Read(f, 0, nil, func(float64) { read = true })
	c.Eng.Run()
	if !wrote || !read {
		t.Error("zero-length ops should still complete")
	}
}

func TestOpErrors(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	if err := c.Write(nil, 0, []byte{1}, nil); err == nil {
		t.Error("nil file write accepted")
	}
	if err := c.Read(nil, 0, make([]byte, 1), nil); err == nil {
		t.Error("nil file read accepted")
	}
	if err := c.Write(f, -1, []byte{1}, nil); err == nil {
		t.Error("negative offset write accepted")
	}
	if err := c.Read(f, -1, make([]byte, 1), nil); err == nil {
		t.Error("negative offset read accepted")
	}
}

func TestOpenHandle(t *testing.T) {
	c := newCluster(t, smallConfig())
	c.CreateDefault("f")
	var end float64
	if err := c.OpenHandle("f", func(_ *File, e float64) { end = e }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if math.Abs(end-c.Config().MDSLookup) > 1e-12 {
		t.Errorf("open completed at %v, want %v", end, c.Config().MDSLookup)
	}
	if err := c.OpenHandle("missing", nil); err == nil {
		t.Error("open of missing file accepted")
	}
}

// The paper's Fig. 1 argument: under DEF a 256KB request is bounded by the
// HServers; the SServers finish early and contribute nothing.
func TestRequestTimeBoundedByHServers(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	data := make([]byte, 256*units.KB)
	end, err := c.WriteSync(f, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	h := c.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	want := h.ServiceTime(trace.OpWrite, 64*units.KB)
	if math.Abs(end-want) > 1e-12 {
		t.Errorf("write completed at %v, want HServer-bound %v", end, want)
	}
}

// Writes from concurrent clients to the same server must serialize: the
// makespan of two whole-round writes is twice one write.
func TestServerContentionSerializes(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("f")
	round := f.Layout.RoundLength()
	data := make([]byte, round)
	var ends []float64
	c.Write(f, 0, data, func(e float64) { ends = append(ends, e) })
	c.Write(f, round, data, func(e float64) { ends = append(ends, e) })
	c.Eng.Run()
	h := c.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	one := h.ServiceTime(trace.OpWrite, 64*units.KB)
	if len(ends) != 2 {
		t.Fatal("both writes must complete")
	}
	// The second round's sub-request queues behind the first and pays one
	// step of HDD seek interference.
	want := 2*one + h.Dev.SeekInterference
	if math.Abs(ends[1]-want) > 1e-9 {
		t.Errorf("second write ended at %v, want %v", ends[1], want)
	}
}

func TestServerStatsOrder(t *testing.T) {
	c := newCluster(t, DefaultConfig())
	stats := c.ServerStats()
	if len(stats) != 8 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].Name != "h0" || stats[5].Name != "h5" || stats[6].Name != "s0" || stats[7].Name != "s1" {
		t.Errorf("flat order wrong: %v...", stats[0].Name)
	}
}

// Property: arbitrary write/read sequences round-trip under arbitrary
// layouts.
func TestReadYourWritesQuick(t *testing.T) {
	cfg := smallConfig()
	f := func(seed int64, h8, s8 uint8, nOps uint8) bool {
		h := (int64(h8%8) + 1) * 4096
		s := (int64(s8%8) + 2) * 4096
		c, err := New(cfg)
		if err != nil {
			return false
		}
		file, err := c.Create("f", stripe.Layout{M: 2, N: 2, H: h, S: s})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, 512*1024)
		for i := 0; i < int(nOps%12)+1; i++ {
			off := rng.Int63n(int64(len(shadow)) - 1)
			n := rng.Int63n(int64(len(shadow))-off-1) + 1
			data := make([]byte, n)
			rng.Read(data)
			copy(shadow[off:], data)
			if _, err := c.WriteSync(file, off, data); err != nil {
				return false
			}
		}
		buf := make([]byte, len(shadow))
		if _, err := c.ReadSync(file, 0, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestServerForFileRotation(t *testing.T) {
	c := newCluster(t, DefaultConfig()) // 6H + 2S
	fa, _ := c.CreateDefault("alpha")
	fb, _ := c.CreateDefault("beta")
	ref := stripe.ServerRef{Class: stripe.ClassH, Index: 0}
	// Rotation must be deterministic per name.
	if c.ServerForFile(fa, ref) != c.ServerForFile(fa, ref) {
		t.Error("rotation not deterministic")
	}
	// Rotation stays within the class.
	for i := 0; i < 6; i++ {
		srv := c.ServerForFile(fa, stripe.ServerRef{Class: stripe.ClassH, Index: i})
		if srv.Name[0] != 'h' {
			t.Errorf("HServer ref resolved to %s", srv.Name)
		}
	}
	for j := 0; j < 2; j++ {
		srv := c.ServerForFile(fb, stripe.ServerRef{Class: stripe.ClassS, Index: j})
		if srv.Name[0] != 's' {
			t.Errorf("SServer ref resolved to %s", srv.Name)
		}
	}
	// Distinct refs of one file stay distinct servers (bijective within
	// the class).
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		name := c.ServerForFile(fa, stripe.ServerRef{Class: stripe.ClassH, Index: i}).Name
		if seen[name] {
			t.Fatalf("rotation collides at %s", name)
		}
		seen[name] = true
	}
}

// Rotation must not break data integrity: two files with identical
// layouts and overlapping local offsets stay isolated.
func TestRotationIsolation(t *testing.T) {
	c := newCluster(t, DefaultConfig())
	fa, _ := c.CreateDefault("alpha")
	fb, _ := c.CreateDefault("beta")
	da := bytes.Repeat([]byte{0xAA}, 256*1024)
	db := bytes.Repeat([]byte{0xBB}, 256*1024)
	c.WriteSync(fa, 0, da)
	c.WriteSync(fb, 0, db)
	ga, gb := make([]byte, len(da)), make([]byte, len(db))
	c.ReadSync(fa, 0, ga)
	c.ReadSync(fb, 0, gb)
	if !bytes.Equal(ga, da) || !bytes.Equal(gb, db) {
		t.Fatal("rotated files interfered")
	}
}

func TestRemoveReclaimsObjects(t *testing.T) {
	c := newCluster(t, smallConfig())
	f, _ := c.CreateDefault("victim")
	c.WriteSync(f, 0, make([]byte, 256*1024))
	var stored int64
	for _, s := range c.Servers() {
		stored += s.Object("victim").StoredBytes()
	}
	if stored == 0 {
		t.Fatal("nothing stored before Remove")
	}
	c.Remove("victim")
	for _, s := range c.Servers() {
		for _, obj := range s.Objects() {
			if obj == "victim" {
				t.Fatalf("server %s still holds the removed object", s.Name)
			}
		}
	}
}

func TestDeviceOverrides(t *testing.T) {
	cfg := smallConfig()
	slow := cfg.HDD
	slow.ReadStartup *= 10
	cfg.HDDOverrides = map[int]device.Model{1: slow}
	c := newCluster(t, cfg)
	h0 := c.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	h1 := c.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 1})
	if !(h1.ServiceTime(trace.OpRead, 4096) > h0.ServiceTime(trace.OpRead, 4096)) {
		t.Error("override not applied")
	}

	bad := smallConfig()
	bad.HDDOverrides = map[int]device.Model{9: slow}
	if _, err := New(bad); err == nil {
		t.Error("out-of-range override accepted")
	}
	bad = smallConfig()
	bad.SSDOverrides = map[int]device.Model{0: {}}
	if _, err := New(bad); err == nil {
		t.Error("invalid override model accepted")
	}
}
