// Package service is the multi-tenant layout-plan control plane: a
// long-running planner front-end that accepts plan jobs from many
// applications, deduplicates them idempotently, queues them fairly, and
// delivers plans through the content-addressed plan cache.
//
// The service is deterministic by construction. It runs on a virtual
// clock: submissions, completions and retries are events on a single
// (time, seq)-ordered queue processed by one goroutine, so two runs of
// the same submission script produce byte-identical state dumps and
// telemetry. Real parallelism exists only where the repository's
// determinism argument already covers it — the planner executions of
// jobs dispatched at the same virtual instant fan out on a parfan pool
// (results committed in dispatch order), and each planner's internal
// stripe searches fan out under Env.Workers. Neither changes a byte of
// output (DESIGN.md §12, §18).
//
// Identity model, outermost to innermost:
//
//   - JobID = hash(tenant, plan key): the unit of idempotency. The same
//     descriptor submitted twice is the same job — the second submission
//     is recorded in the ledger (duplicates are allowed but detectable)
//     and answered with the original job, never re-planned.
//   - plancache.Key = hash(trace, scheme, env): the unit of computation.
//     Distinct tenants planning identical workloads hold distinct jobs
//     but coalesce single-flight onto one RSSD search in the cache.
//
// Fairness: one round-robin ring over tenants with pending work, FIFO
// within each tenant, so a tenant flooding the queue delays its own jobs,
// not its neighbors' — tenant B's first job starts after at most
// Slots + (tenants ahead in the ring) dispatches regardless of how deep
// tenant A's backlog is.
package service

import (
	"fmt"
	"math"

	"mhafs/internal/layout"
	"mhafs/internal/parfan"
	"mhafs/internal/plancache"
	"mhafs/internal/telemetry"
)

// State is a job's lifecycle position.
type State uint8

// Job states. Orphaned is the restart limbo: the ledger proves the job
// was submitted but never finished, and the descriptor (the trace) was
// not persisted — a resubmission carrying the descriptor re-activates
// the job under its original ID.
const (
	StatePending State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
	StateOrphaned
)

// String names the state.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	case StateOrphaned:
		return "orphaned"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes a Service.
type Config struct {
	// Slots bounds how many jobs plan concurrently in virtual time — the
	// service's admission of "planner machines". Part of the virtual
	// schedule, so it must match across runs being compared. Default 2.
	Slots int

	// Workers bounds the real parfan fan-out used to execute the planner
	// calls of one dispatch batch (and seeds Env.Workers is NOT implied —
	// descriptors carry their own Env). 0 selects GOMAXPROCS, 1 is
	// serial. Output is byte-identical at every setting.
	Workers int

	// PlanBase and PlanPerRecord define a job's virtual planning
	// duration: PlanBase + PlanPerRecord × len(trace) seconds. The
	// duration is a pure function of the descriptor — never of cache
	// hits, worker counts or wall time — which is what keeps the virtual
	// schedule identical across cache modes. Defaults 0.05 and 1e-5.
	PlanBase      float64
	PlanPerRecord float64

	// RetryMax is how many times a job whose planner errored is retried
	// before failing terminally (default 2). RetryBackoff is the first
	// retry delay in virtual seconds, doubling per attempt (default 0.5).
	RetryMax     int
	RetryBackoff float64

	// Cache, when non-nil, memoizes planner executions by content
	// address; identical workloads across tenants (and re-activations
	// across restarts, with a dir-backed cache) coalesce onto one
	// computation. Nil plans every job from scratch.
	Cache *plancache.Cache

	// LedgerDir persists the dedupe ledger under this directory (and
	// replays it on New, restoring job identities and terminal states).
	// Empty keeps the ledger in memory.
	LedgerDir string

	// Telemetry, when non-nil, receives the service's counters, the
	// queue-depth gauges and the per-scheme planning-latency histograms.
	// All series are driven by the virtual clock, so snapshots are
	// byte-identical across runs and worker counts.
	Telemetry *telemetry.Registry
}

// withDefaults normalizes zero values.
func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 2
	}
	// The duration pair defaults together: setting PlanBase alone is a
	// deliberate flat (trace-size-independent) duration, not half a default.
	if c.PlanBase == 0 && c.PlanPerRecord == 0 {
		c.PlanBase = 0.05
		c.PlanPerRecord = 1e-5
	}
	if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 0.5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Slots < 0 {
		return fmt.Errorf("service: negative slots")
	}
	if c.PlanBase < 0 || c.PlanPerRecord < 0 {
		return fmt.Errorf("service: negative plan duration")
	}
	if c.RetryMax < 0 {
		return fmt.Errorf("service: negative retry max")
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("service: negative retry backoff")
	}
	return nil
}

// job is one unit of idempotent work.
type job struct {
	id       JobID
	tenant   string
	scheme   layout.Scheme
	desc     Descriptor
	hasDesc  bool // false for restart-recovered jobs (descriptor not persisted)
	state    State
	attempts int

	submittedAt float64
	startedAt   float64
	finishedAt  float64

	plan    layout.Plan
	planErr error

	recovered bool // restored from the ledger by New
}

// eventKind discriminates queue events.
type eventKind uint8

const (
	evArrive eventKind = iota
	evFinish
	evRetry
	evCancel
)

// event is one scheduled occurrence; (time, seq) totally orders the
// queue, so execution order is bit-for-bit reproducible.
type event struct {
	time float64
	seq  uint64
	kind eventKind

	job *job // finish/retry

	// arrival payload
	desc      Descriptor
	submitter string

	// cancel payload
	target JobID
}

// eventHeap is a binary min-heap ordered by (time, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(q) {
			break
		}
		child := left
		if right := left + 1; right < len(q) && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*h = q
	return top
}

// tenantQueue is one tenant's FIFO of pending jobs.
type tenantQueue struct {
	name string
	jobs []*job
}

// Stats counts the service's lifecycle transitions; every field is a
// pure function of the submission history.
type Stats struct {
	Submitted uint64 `json:"submitted"` // every submission, duplicates included
	Deduped   uint64 `json:"deduped"`   // submissions answered by an existing job
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Retried   uint64 `json:"retried"`
	Cancelled uint64 `json:"cancelled"`
}

// Service is the multi-tenant plan service. It is single-threaded: all
// methods must be called from one goroutine (the parallelism lives
// inside dispatch batches and the planners, behind parfan).
type Service struct {
	cfg    Config
	ledger *Ledger

	now    float64
	evSeq  uint64
	events eventHeap

	jobs   map[JobID]*job
	order  []JobID // jobs in first-submission order, for deterministic dumps
	queues map[string]*tenantQueue
	ring   []*tenantQueue // tenants with pending work, round-robin order
	ringAt int

	busy   int // occupied virtual slots
	depth  int // pending (queued) jobs
	ledSeq uint64

	stats Stats

	// telemetry handles, nil when no registry is configured
	ctrSubmitted *telemetry.Counter
	ctrDeduped   *telemetry.Counter
	ctrCompleted *telemetry.Counter
	ctrFailed    *telemetry.Counter
	ctrRetried   *telemetry.Counter
	ctrCancelled *telemetry.Counter
	gaugeDepth   *telemetry.Gauge
	gaugePeak    *telemetry.Gauge

	// planFn overrides the planner execution in tests; nil uses the
	// cache-wrapped real planners.
	planFn func(Descriptor) (layout.Plan, error)
}

// New builds a service, replaying the dir-backed ledger (when configured)
// so previously submitted jobs keep their identities: terminal jobs stay
// queryable and deduplicate resubmissions; unfinished jobs become
// Orphaned until a resubmission carries their descriptor back.
func New(cfg Config) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	led, err := OpenLedger(cfg.LedgerDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:    cfg,
		ledger: led,
		jobs:   make(map[JobID]*job),
		queues: make(map[string]*tenantQueue),
	}
	if reg := cfg.Telemetry; reg != nil {
		// Eager-zero registration: the snapshot's series set depends on
		// the configuration, never on what the run happened to do.
		s.ctrSubmitted = reg.Counter("service_jobs_submitted_total")
		s.ctrDeduped = reg.Counter("service_jobs_deduped_total")
		s.ctrCompleted = reg.Counter("service_jobs_completed_total")
		s.ctrFailed = reg.Counter("service_jobs_failed_total")
		s.ctrRetried = reg.Counter("service_jobs_retried_total")
		s.ctrCancelled = reg.Counter("service_jobs_cancelled_total")
		s.gaugeDepth = reg.Gauge("service_queue_depth")
		s.gaugePeak = reg.Gauge("service_queue_depth_peak")
	}
	for _, e := range led.Entries() {
		if e.Seq > s.ledSeq {
			s.ledSeq = e.Seq
		}
		id, err := ParseJobID(e.Job)
		if err != nil {
			return nil, fmt.Errorf("service: ledger: %w", err)
		}
		j := s.jobs[id]
		if j == nil {
			if e.Kind != KindSubmit {
				return nil, fmt.Errorf("service: ledger: %s entry %d for unsubmitted job %s", e.Kind, e.Seq, e.Job)
			}
			scheme, err := layout.ParseScheme(e.Scheme)
			if err != nil {
				return nil, fmt.Errorf("service: ledger: entry %d: %w", e.Seq, err)
			}
			j = &job{id: id, tenant: e.Tenant, scheme: scheme, state: StateOrphaned, recovered: true}
			s.jobs[id] = j
			s.order = append(s.order, id)
		}
		switch e.Kind {
		case KindComplete:
			j.state = StateDone
		case KindFail:
			j.state = StateFailed
			j.planErr = fmt.Errorf("%s", e.Error)
		case KindCancel:
			j.state = StateCancelled
		}
	}
	return s, nil
}

// Close releases the ledger.
func (s *Service) Close() error { return s.ledger.Close() }

// Now returns the current virtual time in seconds (the service is a
// telemetry.Clock).
func (s *Service) Now() float64 { return s.now }

// Ledger exposes the dedupe ledger for queries.
func (s *Service) Ledger() *Ledger { return s.ledger }

// Stats returns the lifecycle counters.
func (s *Service) Stats() Stats { return s.stats }

// Receipt answers a submission: the job's identity and whether an
// earlier submission already covered it.
type Receipt struct {
	ID        JobID
	Duplicate bool
	State     State
}

// SubmitAt schedules a submission at virtual time t (≥ now); the
// returned ID is the descriptor's content hash, known before the arrival
// is processed. Dedupe, ledger recording and enqueueing happen when the
// arrival fires inside Run.
func (s *Service) SubmitAt(t float64, d Descriptor, submitter string) (JobID, error) {
	if err := d.Validate(); err != nil {
		return JobID{}, err
	}
	if t < s.now || math.IsNaN(t) {
		return JobID{}, fmt.Errorf("service: submission at %v is before now (%v)", t, s.now)
	}
	s.schedule(event{time: t, kind: evArrive, desc: d, submitter: submitter})
	return d.JobID(), nil
}

// Submit processes a submission at the current virtual time and returns
// its receipt. Dispatching still happens inside Run.
func (s *Service) Submit(d Descriptor, submitter string) (Receipt, error) {
	if err := d.Validate(); err != nil {
		return Receipt{}, err
	}
	id, dup := s.arrive(d, submitter)
	return Receipt{ID: id, Duplicate: dup, State: s.jobs[id].state}, nil
}

// CancelAt schedules a cancellation at virtual time t. The target may be
// pending (dequeued), running (result discarded at its completion
// instant) or waiting on a retry; terminal jobs are untouched.
func (s *Service) CancelAt(t float64, id JobID) error {
	if t < s.now || math.IsNaN(t) {
		return fmt.Errorf("service: cancellation at %v is before now (%v)", t, s.now)
	}
	s.schedule(event{time: t, kind: evCancel, target: id})
	return nil
}

// Cancel cancels at the current virtual time. It reports whether the job
// was actually moved to Cancelled (false: unknown or already terminal).
func (s *Service) Cancel(id JobID) bool { return s.cancel(id) }

// schedule enqueues an event, stamping its sequence number.
func (s *Service) schedule(e event) {
	s.evSeq++
	e.seq = s.evSeq
	s.events.push(e)
}

// Run drains the event queue: the clock jumps from instant to instant,
// all events of an instant fire in schedule order, and then freed slots
// are refilled in one dispatch batch whose planner calls fan out on the
// parfan pool. Run returns when no events remain — every submitted job
// is then terminal or awaiting slots that no longer exist (impossible:
// dispatch always drains the queue into free slots).
func (s *Service) Run() error {
	s.dispatch()
	for len(s.events) > 0 {
		t := s.events[0].time
		s.now = t
		for len(s.events) > 0 && s.events[0].time == t {
			e := s.events.pop()
			if err := s.handle(e); err != nil {
				return err
			}
		}
		s.dispatch()
	}
	return nil
}

// handle applies one event.
func (s *Service) handle(e event) error {
	switch e.kind {
	case evArrive:
		s.arrive(e.desc, e.submitter)
	case evFinish:
		s.finish(e.job)
	case evRetry:
		j := e.job
		if j.state != StatePending { // cancelled while waiting for retry
			return nil
		}
		s.enqueue(j)
	case evCancel:
		s.cancel(e.target)
	}
	return nil
}

// arrive is the trigger API's core: record the submission, dedupe, and
// enqueue new (or re-activate orphaned) work.
func (s *Service) arrive(d Descriptor, submitter string) (JobID, bool) {
	id := d.JobID()
	existing, dup := s.jobs[id]
	s.stats.Submitted++
	inc(s.ctrSubmitted)
	s.appendLedger(Entry{
		Time: s.now, Kind: KindSubmit, Job: id.String(), Tenant: d.Tenant,
		Scheme: d.Scheme.String(), Submitter: submitter, Duplicate: dup,
	})
	if !dup {
		j := &job{
			id: id, tenant: d.Tenant, scheme: d.Scheme, desc: d, hasDesc: true,
			state: StatePending, submittedAt: s.now,
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.enqueue(j)
		return id, false
	}
	s.stats.Deduped++
	inc(s.ctrDeduped)
	if existing.state == StateOrphaned {
		// A recovered job whose work was lost with the previous process:
		// the resubmission carries the descriptor back, so the job
		// resumes under its original identity. The submission above is
		// still a duplicate — the ledger shows both the original trigger
		// and this re-activation.
		existing.desc, existing.hasDesc = d, true
		existing.state = StatePending
		existing.submittedAt = s.now
		s.enqueue(existing)
	}
	return id, true
}

// cancel moves a live job to Cancelled.
func (s *Service) cancel(id JobID) bool {
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StatePending:
		// Queued or waiting for a retry; the queue skips cancelled
		// entries lazily and the retry event checks the state.
		s.setDepth(s.depth - s.queuedCount(j))
	case StateRunning:
		// The slot is freed (and the result discarded) at the job's
		// completion instant.
	default:
		return false
	}
	j.state = StateCancelled
	j.finishedAt = s.now
	s.stats.Cancelled++
	inc(s.ctrCancelled)
	s.appendLedger(Entry{Time: s.now, Kind: KindCancel, Job: id.String(), Tenant: j.tenant})
	return true
}

// queuedCount reports whether j currently occupies a queue slot (a
// pending job waiting on a retry timer does not).
func (s *Service) queuedCount(j *job) int {
	tq := s.queues[j.tenant]
	if tq == nil {
		return 0
	}
	for _, q := range tq.jobs {
		if q == j {
			return 1
		}
	}
	return 0
}

// enqueue appends j to its tenant's FIFO, adding the tenant to the
// round-robin ring on its first pending job.
func (s *Service) enqueue(j *job) {
	tq := s.queues[j.tenant]
	if tq == nil {
		tq = &tenantQueue{name: j.tenant}
		s.queues[j.tenant] = tq
	}
	if len(tq.jobs) == 0 {
		s.ring = append(s.ring, tq)
	}
	tq.jobs = append(tq.jobs, j)
	s.setDepth(s.depth + 1)
}

// nextJob pops the next pending job under round-robin fairness: the ring
// advances one tenant per dispatch, each tenant serves FIFO, and tenants
// whose queues empty leave the ring.
func (s *Service) nextJob() *job {
	for len(s.ring) > 0 {
		if s.ringAt >= len(s.ring) {
			s.ringAt = 0
		}
		tq := s.ring[s.ringAt]
		// Shed cancelled heads lazily.
		for len(tq.jobs) > 0 && tq.jobs[0].state != StatePending {
			tq.jobs = tq.jobs[1:]
		}
		if len(tq.jobs) == 0 {
			s.ring = append(s.ring[:s.ringAt], s.ring[s.ringAt+1:]...)
			continue
		}
		j := tq.jobs[0]
		tq.jobs = tq.jobs[1:]
		if len(tq.jobs) == 0 {
			s.ring = append(s.ring[:s.ringAt], s.ring[s.ringAt+1:]...)
		} else {
			s.ringAt++
		}
		s.setDepth(s.depth - 1)
		return j
	}
	return nil
}

// dispatch fills free slots from the queue and executes the batch's
// planner calls on the parfan pool. Results are committed in dispatch
// order and completions scheduled at descriptor-determined virtual
// durations, so the batch's outcome is independent of worker count.
func (s *Service) dispatch() {
	var batch []*job
	for s.busy < s.cfg.Slots {
		j := s.nextJob()
		if j == nil {
			break
		}
		s.busy++
		j.state = StateRunning
		j.startedAt = s.now
		j.attempts++
		batch = append(batch, j)
	}
	if len(batch) == 0 {
		return
	}
	type result struct {
		plan layout.Plan
		err  error
	}
	results := parfan.Map(len(batch), s.cfg.Workers, func(i int) result {
		p, err := s.plan(batch[i].desc)
		return result{p, err}
	})
	for i, j := range batch {
		j.plan, j.planErr = results[i].plan, results[i].err
		s.schedule(event{time: s.now + s.planDuration(j.desc), kind: evFinish, job: j})
	}
}

// plan executes one planner call, through the cache when configured.
func (s *Service) plan(d Descriptor) (layout.Plan, error) {
	if s.planFn != nil {
		return s.planFn(d)
	}
	planner, err := layout.NewPlanner(d.Scheme)
	if err != nil {
		return layout.Plan{}, err
	}
	if s.cfg.Cache == nil {
		return planner.Plan(d.Trace, d.Env)
	}
	plan, _, err := s.cfg.Cache.GetOrPlan(d.PlanKey(), func() (layout.Plan, error) {
		return planner.Plan(d.Trace, d.Env)
	})
	return plan, err
}

// planDuration is the job's virtual service time — a pure function of
// the descriptor (see Config.PlanBase).
func (s *Service) planDuration(d Descriptor) float64 {
	return s.cfg.PlanBase + s.cfg.PlanPerRecord*float64(len(d.Trace))
}

// finish applies a completed planner call: success, retry, terminal
// failure — or nothing but the freed slot when the job was cancelled
// mid-flight.
func (s *Service) finish(j *job) {
	s.busy--
	if j.state != StateRunning { // cancelled while running
		return
	}
	if j.planErr != nil {
		if j.attempts <= s.cfg.RetryMax {
			s.stats.Retried++
			inc(s.ctrRetried)
			j.state = StatePending
			backoff := s.cfg.RetryBackoff
			for i := 1; i < j.attempts; i++ {
				backoff *= 2
			}
			s.schedule(event{time: s.now + backoff, kind: evRetry, job: j})
			return
		}
		j.state = StateFailed
		j.finishedAt = s.now
		s.stats.Failed++
		inc(s.ctrFailed)
		s.appendLedger(Entry{
			Time: s.now, Kind: KindFail, Job: j.id.String(), Tenant: j.tenant,
			Error: j.planErr.Error(),
		})
		return
	}
	j.state = StateDone
	j.finishedAt = s.now
	s.stats.Completed++
	inc(s.ctrCompleted)
	s.appendLedger(Entry{Time: s.now, Kind: KindComplete, Job: j.id.String(), Tenant: j.tenant})
	if reg := s.cfg.Telemetry; reg != nil {
		reg.Histogram("service_plan_latency_seconds", telemetry.LatencyBuckets(),
			telemetry.L("scheme", j.scheme.String())).Observe(s.now - j.submittedAt)
	}
}

// appendLedger stamps and records one entry; ledger write failures are
// fatal to the run (a dedupe ledger that silently loses rows cannot
// detect anything).
func (s *Service) appendLedger(e Entry) {
	s.ledSeq++
	e.Seq = s.ledSeq
	if err := s.ledger.Append(e); err != nil {
		panic(err)
	}
}

// setDepth moves the queue-depth gauge.
func (s *Service) setDepth(d int) {
	s.depth = d
	if s.gaugeDepth != nil {
		s.gaugeDepth.Set(float64(d))
		s.gaugePeak.SetMax(float64(d))
	}
}

// inc bumps a counter handle when telemetry is configured.
func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Plan returns a completed job's plan. Only jobs completed by this
// process hold their plan in memory; restart-recovered Done jobs answer
// through the (dir-backed) plan cache on resubmission instead.
func (s *Service) Plan(id JobID) (layout.Plan, error) {
	j, ok := s.jobs[id]
	if !ok {
		return layout.Plan{}, fmt.Errorf("service: unknown job %s", id)
	}
	if j.state != StateDone || !j.hasDesc {
		return layout.Plan{}, fmt.Errorf("service: job %s is %s", id, j.state)
	}
	return j.plan, nil
}

// Status is one job's externally visible state.
type Status struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	Scheme      string  `json:"scheme"`
	State       string  `json:"state"`
	Attempts    int     `json:"attempts"`
	SubmittedAt float64 `json:"submitted_at"`
	StartedAt   float64 `json:"started_at"`
	FinishedAt  float64 `json:"finished_at"`
	TraceDigest string  `json:"trace_digest,omitempty"` // empty while orphaned
	PlanKey     string  `json:"plan_key,omitempty"`
	Regions     int     `json:"regions"`
	Mappings    int     `json:"mappings"`
	Error       string  `json:"error,omitempty"`
	Recovered   bool    `json:"recovered,omitempty"`
}

// Status reports one job.
func (s *Service) Status(id JobID) (Status, bool) {
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return s.status(j), true
}

func (s *Service) status(j *job) Status {
	st := Status{
		ID: j.id.String(), Tenant: j.tenant, Scheme: j.scheme.String(),
		State: j.state.String(), Attempts: j.attempts,
		SubmittedAt: j.submittedAt, StartedAt: j.startedAt, FinishedAt: j.finishedAt,
		Recovered: j.recovered,
	}
	if j.hasDesc {
		d := j.desc.TraceDigest()
		st.TraceDigest = fmt.Sprintf("%x", d[:])
		st.PlanKey = j.desc.PlanKey().String()
	}
	if j.state == StateDone {
		st.Regions = len(j.plan.Regions)
		st.Mappings = len(j.plan.Mappings)
	}
	if j.planErr != nil && j.state == StateFailed {
		st.Error = j.planErr.Error()
	}
	return st
}
