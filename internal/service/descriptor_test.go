package service

import (
	"reflect"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testTrace(n int) trace.Trace {
	var tr trace.Trace
	off := int64(0)
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Record{
			Rank: i % 8, File: "f", Op: trace.OpRead,
			Offset: off, Size: 16 * units.KB, Time: float64(i),
		})
		off += 16 * units.KB
	}
	return tr
}

func testDescriptor(tenant string, n int) Descriptor {
	return Descriptor{
		Tenant: tenant,
		Scheme: layout.MHA,
		Env:    layout.DefaultEnv(),
		Trace:  testTrace(n),
	}
}

// TestJobIDSensitivity: the job ID must move with the tenant and every
// planner input, and stay put for Env.Workers — the same
// worker-count-blindness the plan-cache key guarantees, inherited here
// because the ID hashes that key.
func TestJobIDSensitivity(t *testing.T) {
	base := testDescriptor("acme", 10)
	id := base.JobID()
	if base.JobID() != id {
		t.Fatal("job ID not deterministic")
	}

	d := base
	d.Tenant = "umbrella"
	if d.JobID() == id {
		t.Error("tenant did not change the job ID")
	}
	d = base
	d.Scheme = layout.HARL
	if d.JobID() == id {
		t.Error("scheme did not change the job ID")
	}
	d = base
	d.Env.M++
	if d.JobID() == id {
		t.Error("env did not change the job ID")
	}
	d = base
	d.Trace = testTrace(11)
	if d.JobID() == id {
		t.Error("trace did not change the job ID")
	}
	d = base
	d.Env.Workers = 8
	if d.JobID() != id {
		t.Error("Workers changed the job ID; jobs are worker-independent")
	}
}

// TestJobIDStability freezes the ID for one fully pinned descriptor.
// This failing means every persisted ledger silently re-addresses its
// jobs — bump jobIDFormat deliberately, never by accident.
func TestJobIDStability(t *testing.T) {
	id := testDescriptor("acme", 10).JobID()
	const want = "2366b2e84a97dc6d67a6f9ae375a21e54c644a8aed0edb8a6996368191503432"
	if got := id.String(); got != want {
		t.Errorf("job ID for the pinned descriptor changed:\n got %s\nwant %s", got, want)
	}
}

// TestDescriptorPinsShape fails when Descriptor grows a field, forcing
// whoever adds one to decide whether JobID must hash it.
func TestDescriptorPinsShape(t *testing.T) {
	if n := reflect.TypeOf(Descriptor{}).NumField(); n != 4 {
		t.Errorf("Descriptor has %d fields, JobID encodes 4 (Tenant + the plan key's Scheme/Env/Trace) — update JobID and this pin", n)
	}
}

// TestParseJobID round-trips and rejects malformed input.
func TestParseJobID(t *testing.T) {
	id := testDescriptor("acme", 3).JobID()
	back, err := ParseJobID(id.String())
	if err != nil || back != id {
		t.Fatalf("round trip: %v %v", back, err)
	}
	for _, bad := range []string{"", "zz", id.String()[:10], id.String() + "ab"} {
		if _, err := ParseJobID(bad); err == nil {
			t.Errorf("ParseJobID(%q) accepted malformed input", bad)
		}
	}
}

// TestDescriptorValidate covers the rejection paths.
func TestDescriptorValidate(t *testing.T) {
	if err := testDescriptor("acme", 3).Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	d := testDescriptor("", 3)
	if d.Validate() == nil {
		t.Error("empty tenant accepted")
	}
	d = testDescriptor("acme", 3)
	d.Scheme = layout.Scheme(99)
	if d.Validate() == nil {
		t.Error("unknown scheme accepted")
	}
	d = testDescriptor("acme", 3)
	d.Env.M, d.Env.N = 0, 0
	if d.Validate() == nil {
		t.Error("empty cluster accepted")
	}
}
