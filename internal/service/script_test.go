package service

import (
	"bytes"
	"fmt"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/plancache"
	"mhafs/internal/telemetry"
)

// ciScript exercises every service path: multi-tenant fan-in, an exact
// duplicate, cross-tenant workload sharing, and a cancellation.
const ciScript = `
# tenants acme and umbrella share one workload; zed cancels its job
at 0   submit acme     ana mha  gen:/data/a:w:64KB:40    as a1
at 0   submit umbrella eve mha  gen:/data/a:w:64KB:40
at 0.1 submit acme     bob mha  gen:/data/a:w:64KB:40        # duplicate of a1
at 0.2 submit acme     ana harl gen:/data/b:r:128KB:30
at 0.3 submit zed      zoe def  gen:/data/c:w:32KB:50:8  as z1
at 0.4 cancel z1
`

// runScripted executes ciScript on a fresh service and returns the state
// dump and telemetry snapshot bytes.
func runScripted(t *testing.T, workers int, cache *plancache.Cache) (state, telem []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := mustService(t, Config{
		Slots: 2, Workers: workers,
		PlanBase: 0.25, PlanPerRecord: 0.0009765625, // 2^-10: exact float schedule
		Cache: cache, Telemetry: reg,
	})
	ops, err := ParseScript(ciScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScript(s, layout.DefaultEnv(), ops); err != nil {
		t.Fatal(err)
	}
	var sb, tb bytes.Buffer
	if err := s.WriteState(&sb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), tb.Bytes()
}

// TestScriptedDeterminism is the tentpole acceptance check: the same
// submission script must produce byte-identical state dumps and
// telemetry at every worker count, with and without the plan cache.
func TestScriptedDeterminism(t *testing.T) {
	for _, mode := range []string{"off", "mem"} {
		t.Run("cache="+mode, func(t *testing.T) {
			newCache := func() *plancache.Cache {
				if mode == "off" {
					return nil
				}
				c, err := plancache.New(plancache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			refState, refTelem := runScripted(t, 1, newCache())
			for _, workers := range []int{2, 4, 8} {
				state, telem := runScripted(t, workers, newCache())
				if !bytes.Equal(state, refState) {
					t.Errorf("state dump at workers=%d differs from workers=1:\n%s\nvs\n%s",
						workers, state, refState)
				}
				if !bytes.Equal(telem, refTelem) {
					t.Errorf("telemetry at workers=%d differs from workers=1:\n%s\nvs\n%s",
						workers, telem, refTelem)
				}
			}
		})
	}
}

// TestScriptOutcomes spot-checks the scripted run's semantics rather
// than just its stability.
func TestScriptOutcomes(t *testing.T) {
	cache, _ := plancache.New(plancache.Options{})
	reg := telemetry.NewRegistry()
	s := mustService(t, Config{Slots: 2, Workers: 4, PlanBase: 0.25, Cache: cache, Telemetry: reg})
	ops, err := ParseScript(ciScript)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := RunScript(s, layout.DefaultEnv(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("script produced %d submissions, want 5", len(ids))
	}
	if ids[0] == ids[1] {
		t.Error("cross-tenant submissions share a job ID")
	}
	if ids[0] != ids[2] {
		t.Error("duplicate submission got a fresh job ID")
	}
	stats := s.Stats()
	if stats.Submitted != 5 || stats.Deduped != 1 || stats.Completed != 3 || stats.Cancelled != 1 {
		t.Fatalf("stats %+v, want 5 submitted / 1 deduped / 3 completed / 1 cancelled", stats)
	}
	// acme and umbrella planned the same workload: the cache coalesced
	// them onto one mha execution; harl planned separately; the def job
	// was cancelled before finishing but its planner call had already
	// been issued at dispatch.
	cs := cache.Stats()
	planned := cs.Misses
	if planned != 3 {
		t.Fatalf("planner executions %d, want 3 (shared mha + harl + dispatched def)", planned)
	}
	dump := s.Snapshot()
	if dump.Cache == nil || dump.Cache.Planned != 3 || dump.Cache.Requests != 4 {
		t.Fatalf("dump cache counts %+v", dump.Cache)
	}
}

// TestParseScriptErrors rejects malformed driver input with the line
// number attached.
func TestParseScriptErrors(t *testing.T) {
	cases := []string{
		"bogus line",
		"at x submit a b mha gen:/f:w:4KB:2",
		"at 1 frobnicate a",
		"at 1 submit a b mha",
		"at 1 submit a b bogus gen:/f:w:4KB:2",
		"at 1 submit a b mha gen:/f:w:4KB:2 oops label",
		"at 1 submit a b mha nongen",
		"at 1 submit a b mha gen:/f:x:4KB:2",
		"at 1 submit a b mha gen:/f:w:nope:2",
		"at 1 submit a b mha gen:/f:w:4KB:0",
		"at 1 submit a b mha gen:/f:w:4KB:2:0",
		"at 1 submit a b mha gen::w:4KB:2",
		"at 1 cancel nosuch",
		"at 1 cancel",
		"at 1 submit a b mha gen:/f:w:4KB:2 as x\nat 2 submit a b mha gen:/f:w:4KB:3 as x",
	}
	for _, src := range cases {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) accepted malformed input", src)
		}
	}
	ops, err := ParseScript("# only comments\n\n")
	if err != nil || len(ops) != 0 {
		t.Errorf("empty script: %v %v", ops, err)
	}
}

// TestGenTrace pins the synthetic workload shape: equal specs must yield
// equal traces (they are the job identity), and the fields follow the
// spec.
func TestGenTrace(t *testing.T) {
	tr, err := GenTrace("gen:/data/x:w:64KB:8:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 8 {
		t.Fatalf("generated %d records, want 8", len(tr))
	}
	for i, r := range tr {
		if r.File != "/data/x" || r.Size != 64*1024 || r.Rank != i%2 ||
			r.Offset != int64(i)*64*1024 {
			t.Fatalf("record %d unexpected: %+v", i, r)
		}
	}
	tr2, _ := GenTrace("gen:/data/x:w:64KB:8:2")
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("equal specs generated different traces")
		}
	}
	// Default procs is 4.
	tr3, err := GenTrace("gen:/f:r:4KB:6")
	if err != nil {
		t.Fatal(err)
	}
	if tr3[5].Rank != 1 {
		t.Fatalf("default procs: record 5 rank %d, want 1", tr3[5].Rank)
	}
	if _, err := GenTrace(fmt.Sprintf("gen:/f:r:4KB:%d:nope", 2)); err == nil {
		t.Fatal("bad procs accepted")
	}
}
