package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"mhafs/internal/iosig"
	"mhafs/internal/layout"
	"mhafs/internal/plancache"
	"mhafs/internal/trace"
)

// Descriptor is one tenant's planning request: everything the planner
// reads plus the identity of who is asking. The descriptor is the unit of
// idempotency — its content hash is the job ID, so submitting the same
// descriptor twice addresses the same job.
//
// The submitter is deliberately not part of the descriptor: two users of
// one tenant asking the same question ask about the same job, and the
// ledger records who asked when.
type Descriptor struct {
	// Tenant is the owning application. Distinct tenants planning the
	// same trace get distinct jobs (isolation, fairness, per-tenant
	// queries) but still share one planner execution through the plan
	// cache, whose key excludes the tenant.
	Tenant string

	// Scheme selects the planner.
	Scheme layout.Scheme

	// Env is the planning environment: cluster shape, cost-model
	// calibration, search knobs. Env.Workers is excluded from the job
	// identity (plans are bit-identical at every worker count), exactly
	// as the plan-cache key excludes it.
	Env layout.Env

	// Trace is the profiled workload to plan. Identity-wise only its
	// digest matters (iosig.TraceDigest); the records themselves are
	// carried so the service can run the planner.
	Trace trace.Trace
}

// Validate checks the descriptor.
func (d Descriptor) Validate() error {
	if d.Tenant == "" {
		return fmt.Errorf("service: descriptor needs a tenant")
	}
	if _, err := layout.NewPlanner(d.Scheme); err != nil {
		return err
	}
	return d.Env.Validate()
}

// PlanKey is the descriptor's plan-cache address: tenant-blind, so
// identical planning problems across tenants coalesce onto one
// computation.
func (d Descriptor) PlanKey() plancache.Key {
	return plancache.KeyFor(d.Trace, d.Scheme, d.Env)
}

// TraceDigest is the content address of the descriptor's workload.
func (d Descriptor) TraceDigest() [sha256.Size]byte {
	return iosig.TraceDigest(d.Trace)
}

// JobID is the content address of a job: sha256 over the canonical
// encoding of the tenant and the descriptor's plan-cache key. Everything
// that steers the plan is already injectively encoded inside the plan
// key, so the job ID inherits the cache key's sensitivity (and its
// deliberate Workers-blindness) for free.
type JobID [sha256.Size]byte

// String returns the lowercase hex form, the ID's wire and display shape.
func (id JobID) String() string { return hex.EncodeToString(id[:]) }

// ParseJobID parses the hex form.
func ParseJobID(s string) (JobID, error) {
	var id JobID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return JobID{}, fmt.Errorf("service: bad job ID %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// jobIDFormat versions the job-ID encoding; bumping it re-addresses every
// job at once.
const jobIDFormat = 1

// JobID computes the descriptor's content hash.
func (d Descriptor) JobID() JobID {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(len("mhafs-service-job")))
	io.WriteString(h, "mhafs-service-job")
	u64(jobIDFormat)
	u64(uint64(len(d.Tenant)))
	io.WriteString(h, d.Tenant)
	key := d.PlanKey()
	h.Write(key[:])
	var id JobID
	h.Sum(id[:0])
	return id
}
