package service

import (
	"errors"
	"strings"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/plancache"
	"mhafs/internal/telemetry"
)

func mustService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustSubmitAt(t *testing.T, s *Service, at float64, d Descriptor, who string) JobID {
	t.Helper()
	id, err := s.SubmitAt(at, d, who)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestIdempotentTrigger is the service's core contract: resubmitting an
// identical descriptor returns the original job ID, is recorded as a
// duplicate with its submitter, and causes zero additional planner
// executions.
func TestIdempotentTrigger(t *testing.T) {
	cache, _ := plancache.New(plancache.Options{})
	reg := telemetry.NewRegistry()
	s := mustService(t, Config{Workers: 1, Cache: cache, Telemetry: reg})

	d := testDescriptor("acme", 10)
	r1, err := s.Submit(d, "ana")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Duplicate {
		t.Fatal("first submission reported duplicate")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(r1.ID); st.State != "done" {
		t.Fatalf("job state %s, want done", st.State)
	}
	if got := cache.Stats().Misses; got != 1 {
		t.Fatalf("planner ran %d times, want 1", got)
	}

	r2, err := s.Submit(d, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Duplicate || r2.ID != r1.ID {
		t.Fatalf("resubmission receipt %+v, want duplicate of %s", r2, r1.ID)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 1 {
		t.Fatalf("resubmission re-planned: %d planner runs, want 1", got)
	}
	if v := reg.Counter("service_jobs_deduped_total").Value(); v != 1 {
		t.Fatalf("service_jobs_deduped_total = %v, want 1", v)
	}
	if v := reg.Counter("service_jobs_submitted_total").Value(); v != 2 {
		t.Fatalf("service_jobs_submitted_total = %v, want 2", v)
	}

	dups := s.Ledger().Duplicates("acme")
	if len(dups) != 1 || dups[0].Submitter != "bob" {
		t.Fatalf("ledger duplicates %+v, want bob's resubmission", dups)
	}

	// A different tenant with the identical workload is a NEW job (its
	// own ledger history) but shares the planner execution via the cache.
	d2 := d
	d2.Tenant = "umbrella"
	r3, err := s.Submit(d2, "eve")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Duplicate || r3.ID == r1.ID {
		t.Fatalf("cross-tenant submission receipt %+v, want a distinct fresh job", r3)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 1 {
		t.Fatalf("identical cross-tenant workload re-planned: %d planner runs, want 1", got)
	}
	if st, _ := s.Status(r3.ID); st.State != "done" || st.Regions == 0 {
		t.Fatalf("cross-tenant job %+v, want done with a plan", st)
	}
}

// TestRetryBackoff drives the retry path on exact virtual timestamps:
// power-of-two config values make every float comparison exact.
func TestRetryBackoff(t *testing.T) {
	s := mustService(t, Config{
		Slots: 1, Workers: 1,
		PlanBase: 0.25, PlanPerRecord: 0, // exact float durations
		RetryMax: 2, RetryBackoff: 0.5,
	})
	calls := 0
	s.planFn = func(Descriptor) (layout.Plan, error) {
		calls++
		if calls < 3 {
			return layout.Plan{}, errors.New("transient")
		}
		return layout.Plan{Scheme: layout.MHA}, nil
	}

	id := mustSubmitAt(t, s, 0, testDescriptor("acme", 10), "ana")
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// attempt 1: [0, 0.25), fails; retry at 0.25+0.5 = 0.75
	// attempt 2: [0.75, 1.0), fails; retry at 1.0+1.0 = 2.0
	// attempt 3: [2.0, 2.25), succeeds
	st, ok := s.Status(id)
	if !ok || st.State != "done" || st.Attempts != 3 {
		t.Fatalf("status %+v, want done after 3 attempts", st)
	}
	if st.FinishedAt != 2.25 {
		t.Fatalf("finished at %v, want exactly 2.25", st.FinishedAt)
	}
	if got := s.Stats(); got.Retried != 2 || got.Completed != 1 || got.Failed != 0 {
		t.Fatalf("stats %+v, want 2 retries and 1 completion", got)
	}
}

// TestRetryExhaustion: a persistently failing planner fails the job
// terminally after RetryMax retries, recording the error in the ledger.
func TestRetryExhaustion(t *testing.T) {
	s := mustService(t, Config{
		Slots: 1, Workers: 1,
		PlanBase: 0.25, PlanPerRecord: 0,
		RetryMax: 2, RetryBackoff: 0.5,
	})
	calls := 0
	s.planFn = func(Descriptor) (layout.Plan, error) {
		calls++
		return layout.Plan{}, errors.New("permanent")
	}
	id := mustSubmitAt(t, s, 0, testDescriptor("acme", 10), "ana")
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(id)
	if st.State != "failed" || st.Attempts != 3 || st.Error != "permanent" {
		t.Fatalf("status %+v, want failed after 3 attempts with the planner error", st)
	}
	if calls != 3 {
		t.Fatalf("planner ran %d times, want 3 (1 + RetryMax)", calls)
	}
	var failRows int
	for _, e := range s.Ledger().Entries() {
		if e.Kind == KindFail && e.Job == id.String() && e.Error == "permanent" {
			failRows++
		}
	}
	if failRows != 1 {
		t.Fatalf("ledger fail rows = %d, want 1", failRows)
	}
}

// TestCancellation covers both cancel shapes: a queued job is dequeued,
// a running job's result is discarded when its slot frees.
func TestCancellation(t *testing.T) {
	s := mustService(t, Config{Slots: 1, Workers: 1, PlanBase: 0.25, PlanPerRecord: 0})
	s.planFn = func(Descriptor) (layout.Plan, error) { return layout.Plan{Scheme: layout.MHA}, nil }

	running := mustSubmitAt(t, s, 0, testDescriptor("acme", 10), "ana")
	queued := mustSubmitAt(t, s, 0, testDescriptor("acme", 20), "ana")
	if err := s.CancelAt(0.125, running); err != nil { // mid-flight
		t.Fatal(err)
	}
	if err := s.CancelAt(0.125, queued); err != nil { // still pending
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []JobID{running, queued} {
		st, _ := s.Status(id)
		if st.State != "cancelled" || st.FinishedAt != 0.125 {
			t.Fatalf("job %s status %+v, want cancelled at 0.125", id, st)
		}
	}
	if got := s.Stats(); got.Cancelled != 2 || got.Completed != 0 {
		t.Fatalf("stats %+v, want 2 cancellations and 0 completions", got)
	}
	// Cancelling a terminal job is a no-op.
	if s.Cancel(running) {
		t.Fatal("cancel of a cancelled job reported success")
	}
}

// TestTenantFairness: tenant A floods the queue; tenant B's single job
// must start after at most one of A's jobs, not after the whole backlog.
func TestTenantFairness(t *testing.T) {
	s := mustService(t, Config{Slots: 1, Workers: 1, PlanBase: 0.25, PlanPerRecord: 0})
	s.planFn = func(Descriptor) (layout.Plan, error) { return layout.Plan{Scheme: layout.MHA}, nil }

	var flood []JobID
	for i := 0; i < 5; i++ {
		flood = append(flood, mustSubmitAt(t, s, 0, testDescriptor("flooder", 10+i), "ana"))
	}
	single := mustSubmitAt(t, s, 0, testDescriptor("quiet", 100), "bob")
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(single)
	// Slot order: flood[0] at 0, then round-robin gives quiet the next
	// slot at 0.25 — ahead of flood[1..4].
	if st.StartedAt != 0.25 {
		t.Fatalf("quiet tenant started at %v, want 0.25 (second slot)", st.StartedAt)
	}
	for i, id := range flood[1:] {
		fst, _ := s.Status(id)
		if fst.StartedAt <= st.StartedAt {
			t.Fatalf("flooder job %d started at %v, before the quiet tenant's %v", i+1, fst.StartedAt, st.StartedAt)
		}
	}
}

// TestRestartRecovery: a dir-backed service replays its ledger — terminal
// jobs dedupe resubmissions without re-planning, and unfinished jobs come
// back Orphaned until a resubmission re-attaches the descriptor.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	d := testDescriptor("acme", 10)

	// Life 1: complete one job, leave a second one submitted but never run.
	s1 := mustService(t, Config{Workers: 1, LedgerDir: dir})
	r1, err := s1.Submit(d, "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	orphanDesc := testDescriptor("acme", 20)
	// Submitted (so the ledger records it) but the event loop never runs
	// again: the process dies with the job pending.
	if _, err := s1.Submit(orphanDesc, "ana"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: replay.
	s2 := mustService(t, Config{Workers: 1, LedgerDir: dir})
	if st, ok := s2.Status(r1.ID); !ok || st.State != "done" || !st.Recovered {
		t.Fatalf("completed job after restart: %+v, want recovered done", st)
	}
	if st, ok := s2.Status(orphanDesc.JobID()); !ok || st.State != "orphaned" {
		t.Fatalf("unfinished job after restart: %+v, want orphaned", st)
	}

	// Resubmitting the completed job dedupes with zero planner calls.
	calls := 0
	s2.planFn = func(Descriptor) (layout.Plan, error) {
		calls++
		return layout.Plan{Scheme: layout.MHA}, nil
	}
	r2, err := s2.Submit(d, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Duplicate || r2.ID != r1.ID {
		t.Fatalf("post-restart resubmission %+v, want duplicate of %s", r2, r1.ID)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("terminal job re-planned %d times after restart", calls)
	}

	// Resubmitting the orphan is ALSO a duplicate (the ledger shows both
	// triggers) but re-activates the job under its original ID.
	r3, err := s2.Submit(orphanDesc, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Duplicate || r3.ID != orphanDesc.JobID() {
		t.Fatalf("orphan resubmission %+v", r3)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if st, _ := s2.Status(r3.ID); st.State != "done" {
		t.Fatalf("re-activated orphan state %s, want done", st.State)
	}
	if calls != 1 {
		t.Fatalf("orphan re-activation ran the planner %d times, want 1", calls)
	}

	// The full history is queryable: the orphan job shows the original
	// trigger plus the re-activation, the latter flagged as a duplicate.
	sums := SummarizeLedger(s2.Ledger().Entries())
	var orphanSum *JobSummary
	for i := range sums {
		if sums[i].Job == orphanDesc.JobID().String() {
			orphanSum = &sums[i]
		}
	}
	if orphanSum == nil || orphanSum.Submissions != 2 || orphanSum.Duplicates != 1 || orphanSum.State != "done" {
		t.Fatalf("orphan ledger summary %+v, want 2 submissions / 1 duplicate / done", orphanSum)
	}
}

// TestQueueDepthGauges: the live depth returns to zero and the peak
// records the high-water mark, both in virtual time.
func TestQueueDepthGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := mustService(t, Config{Slots: 1, Workers: 1, PlanBase: 0.25, PlanPerRecord: 0, Telemetry: reg})
	s.planFn = func(Descriptor) (layout.Plan, error) { return layout.Plan{Scheme: layout.MHA}, nil }
	for i := 0; i < 4; i++ {
		mustSubmitAt(t, s, 0, testDescriptor("acme", 10+i), "ana")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("service_queue_depth").Value(); v != 0 {
		t.Errorf("final queue depth %v, want 0", v)
	}
	// All 4 arrive at t=0 before the first dispatch: depth peaks at 4.
	if v := reg.Gauge("service_queue_depth_peak").Value(); v != 4 {
		t.Errorf("peak queue depth %v, want 4", v)
	}
}

// TestSubmitValidation: bad descriptors and time travel are rejected.
func TestSubmitValidation(t *testing.T) {
	s := mustService(t, Config{Workers: 1})
	if _, err := s.Submit(testDescriptor("", 3), "ana"); err == nil {
		t.Error("tenantless descriptor accepted")
	}
	if _, err := s.SubmitAt(-1, testDescriptor("acme", 3), "ana"); err == nil ||
		!strings.Contains(err.Error(), "before now") {
		t.Errorf("past submission accepted: %v", err)
	}
	if err := s.CancelAt(-1, JobID{}); err == nil {
		t.Error("past cancellation accepted")
	}
	if s.Cancel(JobID{}) {
		t.Error("cancel of unknown job reported success")
	}
}

// TestStateString pins the state names the dumps and the CLI print.
func TestStateString(t *testing.T) {
	want := map[State]string{
		StatePending: "pending", StateRunning: "running", StateDone: "done",
		StateFailed: "failed", StateCancelled: "cancelled", StateOrphaned: "orphaned",
		State(99): "state(99)",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), name)
		}
	}
}
