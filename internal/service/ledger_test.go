package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLedgerRoundTrip: entries appended by one ledger are replayed by the
// next open of the same directory, in order.
func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l1, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := []Entry{
		{Seq: 1, Time: 0, Kind: KindSubmit, Job: "aa", Tenant: "acme", Scheme: "mha", Submitter: "ana"},
		{Seq: 2, Time: 0.5, Kind: KindSubmit, Job: "aa", Tenant: "acme", Scheme: "mha", Submitter: "bob", Duplicate: true},
		{Seq: 3, Time: 1, Kind: KindComplete, Job: "aa", Tenant: "acme"},
	}
	for _, e := range in {
		if err := l1.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Entries()
	if len(got) != len(in) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("entry %d: %+v, want %+v", i, got[i], in[i])
		}
	}
	if dups := l2.Duplicates("acme"); len(dups) != 1 || dups[0].Submitter != "bob" {
		t.Errorf("Duplicates(acme) = %+v, want bob's resubmission", dups)
	}
	if dups := l2.Duplicates("umbrella"); len(dups) != 0 {
		t.Errorf("Duplicates(umbrella) = %+v, want none", dups)
	}
	if te := l2.TenantEntries("acme"); len(te) != 3 {
		t.Errorf("TenantEntries(acme) = %d rows, want 3", len(te))
	}
}

// TestLedgerMemoryOnly: an empty dir keeps everything in memory and
// leaves no files behind.
func TestLedgerMemoryOnly(t *testing.T) {
	l, err := OpenLedger("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 1, Kind: KindSubmit, Job: "aa", Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	if len(l.Entries()) != 1 {
		t.Fatal("memory ledger lost the entry")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerTornTail: an unparsable final line — a crash mid-append — is
// dropped; everything before it survives.
func TestLedgerTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Entry{Seq: 1, Kind: KindSubmit, Job: "aa", Tenant: "t"})
	l.Append(Entry{Seq: 2, Kind: KindComplete, Job: "aa", Tenant: "t"})
	l.Close()

	path := filepath.Join(dir, ledgerFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"kind":"sub`) // torn mid-write, no newline
	f.Close()

	entries, err := ReadLedger(dir)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(entries) != 2 || entries[1].Seq != 2 {
		t.Fatalf("replayed %+v, want the 2 intact entries", entries)
	}
}

// TestLedgerInteriorCorruption: a malformed line with valid entries after
// it is not a torn append — it is corruption, and silently skipping it
// would un-detect duplicates, so the open must fail.
func TestLedgerInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Entry{Seq: 1, Kind: KindSubmit, Job: "aa", Tenant: "t"})
	l.Close()

	path := filepath.Join(dir, ledgerFile)
	data, _ := os.ReadFile(path)
	mangled := "{broken\n" + string(data)
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadLedger(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption must fail the open, got %v", err)
	}
	if _, err := OpenLedger(dir); err == nil {
		t.Fatal("OpenLedger accepted a corrupt ledger")
	}
}

// TestSummarizeLedger folds a multi-job history into per-job rows in
// first-appearance order.
func TestSummarizeLedger(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Time: 0, Kind: KindSubmit, Job: "aa", Tenant: "acme", Scheme: "mha", Submitter: "ana"},
		{Seq: 2, Time: 0, Kind: KindSubmit, Job: "bb", Tenant: "umbrella", Scheme: "harl", Submitter: "eve"},
		{Seq: 3, Time: 1, Kind: KindSubmit, Job: "aa", Tenant: "acme", Scheme: "mha", Submitter: "bob", Duplicate: true},
		{Seq: 4, Time: 2, Kind: KindComplete, Job: "aa", Tenant: "acme"},
		{Seq: 5, Time: 3, Kind: KindFail, Job: "bb", Tenant: "umbrella", Error: "boom"},
	}
	got := SummarizeLedger(entries)
	if len(got) != 2 {
		t.Fatalf("summarized %d jobs, want 2", len(got))
	}
	a, b := got[0], got[1]
	if a.Job != "aa" || a.State != "done" || a.Submissions != 2 || a.Duplicates != 1 ||
		a.FirstSubmit != 0 || a.LastEntry != 2 || a.Scheme != "mha" {
		t.Errorf("job aa summary %+v", a)
	}
	if b.Job != "bb" || b.State != "failed" || b.Error != "boom" || b.Submissions != 1 {
		t.Errorf("job bb summary %+v", b)
	}
}
