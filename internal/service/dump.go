package service

import (
	"encoding/json"
	"io"
	"sort"
)

// StateDump is the service's full externally visible state in canonical
// form: jobs sorted by ID, ledger entries in seq order, lifecycle
// counters. Marshaling a dump is byte-stable, which is what the CI
// determinism gate diffs across worker counts.
type StateDump struct {
	Time   float64      `json:"time"` // virtual clock at dump
	Jobs   []Status     `json:"jobs"`
	Ledger []Entry      `json:"ledger"`
	Stats  Stats        `json:"stats"`
	Queued int          `json:"queued"` // jobs still pending in tenant queues
	Cache  *CacheCounts `json:"cache,omitempty"`
}

// CacheCounts mirrors the plan cache's scheduling-independent aggregates
// (DESIGN.md §17): planner executions (exactly one per distinct key) and
// calls served without planning. Both are functions of the workload
// alone; the finer hit-vs-coalesced split is deliberately not dumped.
type CacheCounts struct {
	Requests uint64 `json:"requests"`
	Planned  uint64 `json:"planned"`
	Served   uint64 `json:"served"`
}

// Snapshot captures the dump.
func (s *Service) Snapshot() StateDump {
	dump := StateDump{
		Time:   s.now,
		Stats:  s.stats,
		Queued: s.depth,
		Ledger: append([]Entry(nil), s.ledger.Entries()...),
	}
	for _, id := range s.order {
		dump.Jobs = append(dump.Jobs, s.status(s.jobs[id]))
	}
	sort.Slice(dump.Jobs, func(i, j int) bool { return dump.Jobs[i].ID < dump.Jobs[j].ID })
	if c := s.cfg.Cache; c != nil {
		st := c.Stats()
		served := st.Hits + st.Coalesced + st.DiskHits
		dump.Cache = &CacheCounts{
			Requests: st.Misses + served,
			Planned:  st.Misses,
			Served:   served,
		}
	}
	return dump
}

// WriteState writes the dump as indented canonical JSON plus a newline.
func (s *Service) WriteState(w io.Writer) error {
	b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
