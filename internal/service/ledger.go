package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Entry kinds. A submission is recorded whether or not it was a
// duplicate — the ledger's contract is "duplicates allowed but
// detectable": resubmitting never fails and never re-plans, but every
// submission leaves a row with the submitter and the virtual time, so an
// operator can ask "who keeps re-triggering this job?" per tenant.
const (
	KindSubmit   = "submit"
	KindComplete = "complete"
	KindFail     = "fail"
	KindCancel   = "cancel"
)

// Entry is one ledger row. Seq totally orders entries across process
// restarts (the on-disk ledger is replayed on open and the counter
// resumes); Time is the virtual clock of the recording process.
type Entry struct {
	Seq       uint64  `json:"seq"`
	Time      float64 `json:"time"`
	Kind      string  `json:"kind"`
	Job       string  `json:"job"` // JobID hex
	Tenant    string  `json:"tenant"`
	Scheme    string  `json:"scheme,omitempty"`    // submit entries
	Submitter string  `json:"submitter,omitempty"` // submit entries
	Duplicate bool    `json:"duplicate,omitempty"` // submit entries: an earlier submission of this job exists
	Error     string  `json:"error,omitempty"`     // fail entries: the planner's error
}

// ledgerFile is the on-disk ledger name under the service directory.
const ledgerFile = "ledger.jsonl"

// Ledger is the service's append-only submission record. With a
// directory it persists as one JSON line per entry, replayed on open so
// duplicate detection and job states survive restarts; without one it is
// memory-only. A Ledger is not safe for concurrent use — the service's
// single-threaded event loop is its only writer.
type Ledger struct {
	entries []Entry
	f       *os.File // nil when memory-only or read-only
}

// OpenLedger opens (creating if needed) the ledger under dir, replaying
// any existing entries; an empty dir yields a memory-only ledger.
func OpenLedger(dir string) (*Ledger, error) {
	l := &Ledger{}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	path := filepath.Join(dir, ledgerFile)
	entries, err := readLedgerFile(path)
	if err != nil {
		return nil, err
	}
	l.entries = entries
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	l.f = f
	return l, nil
}

// ReadLedger loads the ledger under dir without opening it for appends —
// the status-query path, safe to run beside nothing at all.
func ReadLedger(dir string) ([]Entry, error) {
	return readLedgerFile(filepath.Join(dir, ledgerFile))
}

// readLedgerFile parses a JSONL ledger. A missing file is an empty
// ledger. A torn final line — the signature of a crash mid-append — is
// dropped; a malformed line anywhere else is corruption and errors out,
// because silently skipping interior rows would un-detect duplicates.
func readLedgerFile(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	last := len(lines) - 1
	for last >= 0 && len(bytes.TrimSpace(lines[last])) == 0 {
		last--
	}
	var entries []Entry
	for i := 0; i <= last; i++ {
		text := bytes.TrimSpace(lines[i])
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(text, &e); err != nil {
			if i == last {
				// Final line and unparsable: a torn append. Everything
				// before it is intact; the lost entry is re-recorded by
				// whoever retries the operation.
				return entries, nil
			}
			return nil, fmt.Errorf("service: %s:%d: corrupt ledger entry: %w", path, i+1, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Append records one entry, persisting it when dir-backed. The write is
// best-effort durable (no fsync): losing the OS buffer loses at most the
// tail entries, which readLedgerFile already tolerates.
func (l *Ledger) Append(e Entry) error {
	l.entries = append(l.entries, e)
	if l.f == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

// Entries returns every entry in seq order. The slice is shared; callers
// must not mutate it.
func (l *Ledger) Entries() []Entry { return l.entries }

// TenantEntries returns the tenant's entries in seq order.
func (l *Ledger) TenantEntries(tenant string) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if e.Tenant == tenant {
			out = append(out, e)
		}
	}
	return out
}

// Duplicates returns the tenant's duplicate submissions in seq order —
// the "who keeps re-triggering this?" query.
func (l *Ledger) Duplicates(tenant string) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if e.Tenant == tenant && e.Kind == KindSubmit && e.Duplicate {
			out = append(out, e)
		}
	}
	return out
}

// Close releases the append handle (memory-only ledgers are a no-op).
func (l *Ledger) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

// JobSummary condenses one job's ledger history — the plan-status view,
// derivable from the ledger alone with no live service.
type JobSummary struct {
	Job         string  `json:"job"`
	Tenant      string  `json:"tenant"`
	Scheme      string  `json:"scheme"`
	State       string  `json:"state"` // submitted|done|failed|cancelled
	Submissions int     `json:"submissions"`
	Duplicates  int     `json:"duplicates"`
	FirstSubmit float64 `json:"first_submit"`
	LastEntry   float64 `json:"last_entry"`
	Error       string  `json:"error,omitempty"`
}

// SummarizeLedger folds entries into per-job summaries, ordered by each
// job's first appearance (seq order), so the output is deterministic and
// map-iteration never reaches a sink.
func SummarizeLedger(entries []Entry) []JobSummary {
	index := make(map[string]int)
	var out []JobSummary
	for _, e := range entries {
		i, ok := index[e.Job]
		if !ok {
			i = len(out)
			index[e.Job] = i
			out = append(out, JobSummary{
				Job: e.Job, Tenant: e.Tenant, State: "submitted", FirstSubmit: e.Time,
			})
		}
		s := &out[i]
		s.LastEntry = e.Time
		switch e.Kind {
		case KindSubmit:
			s.Submissions++
			if e.Duplicate {
				s.Duplicates++
			}
			if e.Scheme != "" {
				s.Scheme = e.Scheme
			}
		case KindComplete:
			s.State = "done"
		case KindFail:
			s.State = "failed"
			s.Error = e.Error
		case KindCancel:
			s.State = "cancelled"
		}
	}
	return out
}
