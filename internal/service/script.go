package service

import (
	"fmt"
	"strconv"
	"strings"

	"mhafs/internal/layout"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Script support: a tiny line language that drives the service from a
// file, so the determinism gate can replay the same submission history
// at different worker counts and diff the dumps byte-for-byte.
//
// Grammar (one op per line, '#' comments, blank lines ignored):
//
//	at <t> submit <tenant> <submitter> <scheme> <workload> [as <label>]
//	at <t> cancel <label>
//
// <workload> is gen:<file>:<r|w>:<size>:<count>[:procs] — a synthetic
// trace of <count> sequential requests of <size> bytes (units.ParseBytes
// forms) against <file>, round-robined over <procs> ranks (default 4).
// Labels name submissions so later cancel ops can reference them.

// ScriptOp is one parsed script line.
type ScriptOp struct {
	Time      float64
	Cancel    bool   // false: submit
	Tenant    string // submit
	Submitter string // submit
	Scheme    layout.Scheme
	Workload  string // submit: the gen: spec
	Label     string // submit: optional "as" name; cancel: the target
}

// ParseScript parses the driver language.
func ParseScript(text string) ([]ScriptOp, error) {
	var ops []ScriptOp
	labels := make(map[string]bool)
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) ([]ScriptOp, error) {
			return nil, fmt.Errorf("script:%d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if len(fields) < 3 || fields[0] != "at" {
			return fail("want 'at <t> submit ...' or 'at <t> cancel ...', got %q", strings.TrimSpace(line))
		}
		t, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || t < 0 {
			return fail("bad time %q", fields[1])
		}
		switch fields[2] {
		case "submit":
			rest := fields[3:]
			op := ScriptOp{Time: t}
			switch len(rest) {
			case 4:
				op.Tenant, op.Submitter, op.Workload = rest[0], rest[1], rest[3]
			case 6:
				if rest[4] != "as" {
					return fail("want 'as <label>', got %q", rest[4])
				}
				op.Tenant, op.Submitter, op.Workload, op.Label = rest[0], rest[1], rest[3], rest[5]
				if labels[op.Label] {
					return fail("duplicate label %q", op.Label)
				}
				labels[op.Label] = true
			default:
				return fail("submit wants <tenant> <submitter> <scheme> <workload> [as <label>]")
			}
			scheme, err := layout.ParseScheme(rest[2])
			if err != nil {
				return fail("%v", err)
			}
			op.Scheme = scheme
			if _, err := GenTrace(op.Workload); err != nil {
				return fail("%v", err)
			}
			ops = append(ops, op)
		case "cancel":
			if len(fields) != 4 {
				return fail("cancel wants one label")
			}
			if !labels[fields[3]] {
				return fail("cancel of unknown label %q", fields[3])
			}
			ops = append(ops, ScriptOp{Time: t, Cancel: true, Label: fields[3]})
		default:
			return fail("unknown op %q", fields[2])
		}
	}
	return ops, nil
}

// GenTrace materializes a gen:<file>:<r|w>:<size>:<count>[:procs] spec
// into a synthetic sequential trace. The spec is the workload's entire
// identity, so equal specs yield equal traces (and so equal job IDs).
func GenTrace(spec string) (trace.Trace, error) {
	parts := strings.Split(spec, ":")
	if parts[0] != "gen" || (len(parts) != 5 && len(parts) != 6) {
		return nil, fmt.Errorf("service: workload %q: want gen:<file>:<r|w>:<size>:<count>[:procs]", spec)
	}
	file := parts[1]
	if file == "" {
		return nil, fmt.Errorf("service: workload %q: empty file", spec)
	}
	op, err := trace.ParseOp(parts[2])
	if err != nil {
		return nil, fmt.Errorf("service: workload %q: %v", spec, err)
	}
	size, err := units.ParseBytes(parts[3])
	if err != nil || size <= 0 {
		return nil, fmt.Errorf("service: workload %q: bad size %q", spec, parts[3])
	}
	count, err := strconv.Atoi(parts[4])
	if err != nil || count <= 0 {
		return nil, fmt.Errorf("service: workload %q: bad count %q", spec, parts[4])
	}
	procs := 4
	if len(parts) == 6 {
		procs, err = strconv.Atoi(parts[5])
		if err != nil || procs <= 0 {
			return nil, fmt.Errorf("service: workload %q: bad procs %q", spec, parts[5])
		}
	}
	t := make(trace.Trace, count)
	for i := 0; i < count; i++ {
		rank := i % procs
		t[i] = trace.Record{
			PID:    1000 + rank,
			Rank:   rank,
			FD:     3,
			File:   file,
			Op:     op,
			Offset: int64(i) * int64(size),
			Size:   int64(size),
			Time:   float64(i) * 1e-4,
		}
	}
	return t, nil
}

// RunScript schedules every op against svc (descriptors built from env,
// with each op's scheme) and runs the event loop to completion. It
// returns the job ID of each submit op in script order.
func RunScript(svc *Service, env layout.Env, ops []ScriptOp) ([]JobID, error) {
	byLabel := make(map[string]JobID)
	var ids []JobID
	for _, op := range ops {
		if op.Cancel {
			id, ok := byLabel[op.Label]
			if !ok {
				return nil, fmt.Errorf("service: cancel of unknown label %q", op.Label)
			}
			if err := svc.CancelAt(op.Time, id); err != nil {
				return nil, err
			}
			continue
		}
		tr, err := GenTrace(op.Workload)
		if err != nil {
			return nil, err
		}
		d := Descriptor{Tenant: op.Tenant, Scheme: op.Scheme, Env: env, Trace: tr}
		id, err := svc.SubmitAt(op.Time, d, op.Submitter)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		if op.Label != "" {
			byLabel[op.Label] = id
		}
	}
	if err := svc.Run(); err != nil {
		return nil, err
	}
	return ids, nil
}
