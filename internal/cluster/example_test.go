package cluster_test

import (
	"fmt"

	"mhafs/internal/cluster"
	"mhafs/internal/pattern"
)

// Algorithm 1 separates two access patterns: small requests at high
// concurrency and large requests at low concurrency.
func ExampleGroup() {
	var points []pattern.Point
	for i := 0; i < 6; i++ {
		points = append(points, pattern.Point{X: 16384, Y: 32}) // 16KB × 32 procs
	}
	for i := 0; i < 6; i++ {
		points = append(points, pattern.Point{X: 262144, Y: 8}) // 256KB × 8 procs
	}
	res, _ := cluster.Group(points, 2, cluster.DefaultOptions())
	fmt.Printf("groups: %d\n", res.K())
	for g, members := range res.Groups {
		fmt.Printf("group %d: %d requests around %.0fB\n", g, len(members), res.Centers[g].X)
	}
	// Output:
	// groups: 2
	// group 0: 6 requests around 16384B
	// group 1: 6 requests around 262144B
}
