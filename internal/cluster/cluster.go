// Package cluster implements Algorithm 1 of the MHA paper: iterative
// request grouping.
//
// Requests are points in a two-dimensional Euclidean space (request size,
// request concurrency). Distances are normalized per dimension by the
// spread max{x_k} − min{x_k} (Eq. 1) so size (bytes) and concurrency
// (process counts) compare on equal footing. The grouping is a bounded
// k-means refinement: pick k initial centers, assign every point to its
// nearest center, recompute centers as group means, and repeat until the
// centers stop moving or the iteration limit (3 in the paper) is reached.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"mhafs/internal/parfan"
	"mhafs/internal/pattern"
)

// Options configures the grouping.
type Options struct {
	// MaxIters bounds the refinement loop; the paper uses 3.
	MaxIters int
	// Seed drives the deterministic pseudo-random choice of initial
	// centers ("randomly selected R[t]" in Algorithm 1).
	Seed int64
	// Workers bounds the fan-out of the assignment step (0 or negative
	// selects runtime.GOMAXPROCS(0), 1 is serial). The result is
	// bit-identical at every setting: each point's nearest center depends
	// only on that point and the (read-only) centers, and the
	// center-recompute step stays serial so its float summation order
	// never changes.
	Workers int
}

// DefaultOptions mirrors the paper: at most 3 refinement iterations.
func DefaultOptions() Options { return Options{MaxIters: 3, Seed: 1} }

// Result is the outcome of grouping.
type Result struct {
	// Centers are the final group centers in normalized feature space
	// scaled back to raw units.
	Centers []pattern.Point
	// Assign[i] is the group index of input point i.
	Assign []int
	// Groups[g] lists the input indices assigned to group g. Groups are
	// never empty: empty groups are dropped and indices compacted.
	Groups [][]int
	// Iters is the number of refinement iterations performed.
	Iters int
}

// K returns the number of (non-empty) groups.
func (r Result) K() int { return len(r.Groups) }

// normalizer rescales each dimension by its spread, per Eq. 1.
type normalizer struct {
	minX, spanX float64
	minY, spanY float64
}

func newNormalizer(points []pattern.Point) normalizer {
	n := normalizer{minX: math.Inf(1), minY: math.Inf(1)}
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range points {
		n.minX = math.Min(n.minX, p.X)
		n.minY = math.Min(n.minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	n.spanX = maxX - n.minX
	n.spanY = maxY - n.minY
	// Degenerate dimensions (all points equal) contribute zero distance;
	// a span of 1 avoids division by zero without changing the result.
	if n.spanX == 0 {
		n.spanX = 1
	}
	if n.spanY == 0 {
		n.spanY = 1
	}
	return n
}

func (n normalizer) apply(p pattern.Point) pattern.Point {
	return pattern.Point{X: (p.X - n.minX) / n.spanX, Y: (p.Y - n.minY) / n.spanY}
}

// dist2 is the squared normalized Euclidean distance of Eq. 1 (on already
// normalized points).
func dist2(a, b pattern.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Group clusters the points into at most k groups. It returns an error for
// invalid k. If len(points) ≤ k, each point forms its own group, as in
// Algorithm 1's base case.
func Group(points []pattern.Point, k int, opts Options) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = DefaultOptions().MaxIters
	}
	if len(points) == 0 {
		return Result{}, nil
	}
	if len(points) <= k {
		return singletonGroups(points), nil
	}

	norm := newNormalizer(points)
	np := make([]pattern.Point, len(points))
	for i, p := range points {
		np[i] = norm.apply(p)
	}

	centers := initialCenters(np, k, opts.Seed)
	assign := make([]int, len(np))
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		changed := assignAll(np, centers, assign, opts.Workers)
		moved := recompute(np, assign, centers)
		if !changed && !moved {
			iters++
			break
		}
	}

	return compact(points, norm, centers, assign, iters), nil
}

// singletonGroups implements the i ≤ k base case: every request is its own
// group center.
func singletonGroups(points []pattern.Point) Result {
	res := Result{
		Centers: make([]pattern.Point, len(points)),
		Assign:  make([]int, len(points)),
		Groups:  make([][]int, len(points)),
	}
	for i, p := range points {
		res.Centers[i] = p
		res.Assign[i] = i
		res.Groups[i] = []int{i}
	}
	return res
}

// initialCenters picks k distinct points pseudo-randomly (deterministic
// under a fixed seed), preferring points with distinct coordinates so the
// refinement starts from spread-out centers.
func initialCenters(np []pattern.Point, k int, seed int64) []pattern.Point {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(np))
	centers := make([]pattern.Point, 0, k)
	seen := make(map[pattern.Point]bool, k)
	for _, idx := range perm {
		if !seen[np[idx]] {
			seen[np[idx]] = true
			centers = append(centers, np[idx])
			if len(centers) == k {
				return centers
			}
		}
	}
	// Fewer distinct points than k: pad with duplicates (their groups will
	// end empty and be compacted away).
	for _, idx := range perm {
		centers = append(centers, np[idx])
		if len(centers) == k {
			break
		}
	}
	return centers
}

// assignAll assigns each point to its nearest center; reports whether any
// assignment changed. The points are split into contiguous chunks that fan
// out over the worker pool: chunks write disjoint slices of assign, and a
// point's nearest center is a pure function of the point and the read-only
// centers, so the assignment is identical at every worker count.
func assignAll(np []pattern.Point, centers []pattern.Point, assign []int, workers int) bool {
	w := parfan.Workers(workers, len(np))
	chunk := (len(np) + w - 1) / w
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (len(np) + chunk - 1) / chunk
	changedBy := parfan.Map(nChunks, workers, func(c int) bool {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(np) {
			hi = len(np)
		}
		changed := false
		for i := lo; i < hi; i++ {
			p := np[i]
			best, bestD := 0, math.Inf(1)
			for g, c := range centers {
				if d := dist2(p, c); d < bestD {
					best, bestD = g, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		return changed
	})
	for _, c := range changedBy {
		if c {
			return true
		}
	}
	return false
}

// recompute moves each center to the mean of its group; reports whether
// any center moved. Empty groups keep their previous center.
func recompute(np []pattern.Point, assign []int, centers []pattern.Point) bool {
	sums := make([]pattern.Point, len(centers))
	counts := make([]int, len(centers))
	for i, g := range assign {
		sums[g].X += np[i].X
		sums[g].Y += np[i].Y
		counts[g]++
	}
	moved := false
	for g := range centers {
		if counts[g] == 0 {
			continue
		}
		mean := pattern.Point{X: sums[g].X / float64(counts[g]), Y: sums[g].Y / float64(counts[g])}
		if dist2(mean, centers[g]) > 1e-18 {
			moved = true
		}
		centers[g] = mean
	}
	return moved
}

// compact drops empty groups, renumbers assignments, and denormalizes the
// centers back to raw feature units.
func compact(points []pattern.Point, norm normalizer, centers []pattern.Point, assign []int, iters int) Result {
	remap := make([]int, len(centers))
	for i := range remap {
		remap[i] = -1
	}
	var res Result
	res.Iters = iters
	res.Assign = make([]int, len(assign))
	for i, g := range assign {
		if remap[g] == -1 {
			remap[g] = len(res.Groups)
			res.Groups = append(res.Groups, nil)
			res.Centers = append(res.Centers, pattern.Point{
				X: centers[g].X*norm.spanX + norm.minX,
				Y: centers[g].Y*norm.spanY + norm.minY,
			})
		}
		ng := remap[g]
		res.Assign[i] = ng
		res.Groups[ng] = append(res.Groups[ng], i)
	}
	_ = points
	return res
}

// BoundK returns the group count to request: the number of distinct
// feature points, capped at maxK. The paper bounds k by the region count
// of the fixed-size region division method to limit metadata overhead.
func BoundK(points []pattern.Point, maxK int) int {
	if maxK <= 0 {
		maxK = 1
	}
	seen := make(map[pattern.Point]bool)
	for _, p := range points {
		seen[p] = true
	}
	k := len(seen)
	if k > maxK {
		k = maxK
	}
	if k == 0 {
		k = 1
	}
	return k
}
