package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"mhafs/internal/pattern"
)

// TestGroupSerialParallelIdentical pins the assignment fan-out's
// determinism: the full grouping result — centers, assignments, group
// membership, iteration count — is deeply identical at every worker
// count.
func TestGroupSerialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]pattern.Point, 500)
	for i := range pts {
		pts[i] = pattern.Point{
			X: float64(rng.Intn(4)) * 65536,
			Y: float64(1 + rng.Intn(32)),
		}
	}
	opts := DefaultOptions()
	opts.Workers = 1
	serial, err := Group(pts, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		parallel, err := Group(pts, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d: grouping differs from serial result", workers)
		}
	}
}
