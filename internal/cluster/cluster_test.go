package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"mhafs/internal/pattern"
)

// twoBlobs returns points forming two well-separated clusters in feature
// space: small requests at high concurrency, large requests at low
// concurrency.
func twoBlobs() []pattern.Point {
	var pts []pattern.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, pattern.Point{X: 16384 + float64(i), Y: 32})
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, pattern.Point{X: 262144 + float64(i), Y: 8})
	}
	return pts
}

func TestGroupSeparatesBlobs(t *testing.T) {
	res, err := Group(twoBlobs(), 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("K = %d, want 2", res.K())
	}
	// All of the first 10 points must share a group, all of the last 10
	// the other.
	g0 := res.Assign[0]
	for i := 1; i < 10; i++ {
		if res.Assign[i] != g0 {
			t.Fatalf("small-request point %d in group %d, want %d", i, res.Assign[i], g0)
		}
	}
	g1 := res.Assign[10]
	if g1 == g0 {
		t.Fatal("blobs merged into one group")
	}
	for i := 11; i < 20; i++ {
		if res.Assign[i] != g1 {
			t.Fatalf("large-request point %d in group %d, want %d", i, res.Assign[i], g1)
		}
	}
}

func TestGroupInvalidK(t *testing.T) {
	if _, err := Group(twoBlobs(), 0, DefaultOptions()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Group(twoBlobs(), -2, DefaultOptions()); err == nil {
		t.Error("negative k accepted")
	}
}

func TestGroupEmpty(t *testing.T) {
	res, err := Group(nil, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 0 || len(res.Assign) != 0 {
		t.Errorf("empty input should produce empty result: %+v", res)
	}
}

func TestGroupSingletonBaseCase(t *testing.T) {
	// Algorithm 1: if i ≤ k each request point becomes a group center.
	pts := []pattern.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	res, err := Group(pts, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("K = %d, want 2", res.K())
	}
	if !reflect.DeepEqual(res.Centers, pts) {
		t.Errorf("centers = %v, want the points themselves", res.Centers)
	}
	for i := range pts {
		if res.Assign[i] != i {
			t.Errorf("Assign[%d] = %d", i, res.Assign[i])
		}
	}
}

func TestGroupIdenticalPoints(t *testing.T) {
	pts := make([]pattern.Point, 8)
	for i := range pts {
		pts[i] = pattern.Point{X: 64, Y: 4}
	}
	res, err := Group(pts, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 {
		t.Fatalf("identical points should collapse to 1 group, got %d", res.K())
	}
	if len(res.Groups[0]) != 8 {
		t.Errorf("group size = %d, want 8", len(res.Groups[0]))
	}
}

func TestGroupDeterministic(t *testing.T) {
	a, _ := Group(twoBlobs(), 2, Options{MaxIters: 3, Seed: 42})
	b, _ := Group(twoBlobs(), 2, Options{MaxIters: 3, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give identical grouping")
	}
}

func TestGroupIterationBound(t *testing.T) {
	res, err := Group(twoBlobs(), 2, Options{MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 3 {
		t.Errorf("Iters = %d, exceeds the paper's bound of 3", res.Iters)
	}
}

func TestGroupDefaultsAppliedForZeroMaxIters(t *testing.T) {
	if _, err := Group(twoBlobs(), 2, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// Properties that must hold for any input: every point assigned to exactly
// one non-empty group; groups partition the index set; K ≤ k.
func TestGroupPartitionQuick(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw%8) + 1
		pts := make([]pattern.Point, len(raw))
		for i, v := range raw {
			pts[i] = pattern.Point{X: float64(v%1024) * 1024, Y: float64(v % 64)}
		}
		res, err := Group(pts, k, DefaultOptions())
		if err != nil {
			return false
		}
		if res.K() > max(k, 1) && len(pts) > k {
			return false
		}
		seen := make(map[int]int)
		for g, members := range res.Groups {
			if len(members) == 0 {
				return false // empty groups must be compacted away
			}
			for _, i := range members {
				seen[i]++
				if res.Assign[i] != g {
					return false
				}
			}
		}
		if len(seen) != len(pts) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBoundK(t *testing.T) {
	pts := twoBlobs() // 20 distinct points
	if got := BoundK(pts, 8); got != 8 {
		t.Errorf("BoundK cap = %d, want 8", got)
	}
	if got := BoundK(pts[:3], 8); got != 3 {
		t.Errorf("BoundK distinct = %d, want 3", got)
	}
	if got := BoundK(nil, 8); got != 1 {
		t.Errorf("BoundK(nil) = %d, want 1", got)
	}
	if got := BoundK(pts, 0); got != 1 {
		t.Errorf("BoundK with maxK=0 = %d, want 1", got)
	}
	same := []pattern.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if got := BoundK(same, 8); got != 1 {
		t.Errorf("BoundK identical = %d, want 1", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
