package iosig

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mhafs/internal/trace"
)

func TestRecordAndTrace(t *testing.T) {
	now := 0.0
	c := NewCollector(func() float64 { return now })
	c.Record(100, 0, 3, "f", trace.OpWrite, 4096, 64)
	now = 1.0
	c.Record(101, 1, 3, "f", trace.OpRead, 0, 16)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	raw := c.RawTrace()
	if raw[0].Offset != 4096 || raw[1].Offset != 0 {
		t.Error("RawTrace must preserve issue order")
	}
	if raw[0].Time != 0.0 || raw[1].Time != 1.0 {
		t.Error("clock not consulted per record")
	}
	sorted := c.Trace()
	if sorted[0].Offset != 0 || sorted[1].Offset != 4096 {
		t.Error("Trace must sort by offset")
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil clock")
		}
	}()
	NewCollector(nil)
}

func TestEnableDisable(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	if !c.Enabled() {
		t.Error("collector should start enabled")
	}
	c.Disable()
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	if c.Len() != 0 {
		t.Error("disabled collector recorded")
	}
	c.Enable()
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	if c.Len() != 1 {
		t.Error("re-enabled collector did not record")
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestRawTraceIsCopy(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	raw := c.RawTrace()
	raw[0].Offset = 999
	if c.RawTrace()[0].Offset == 999 {
		t.Error("RawTrace must return a copy")
	}
}

func TestDump(t *testing.T) {
	c := NewCollector(func() float64 { return 0.25 })
	c.Record(7, 3, 5, "data.bin", trace.OpWrite, 128, 64)
	var buf bytes.Buffer
	if err := c.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "data.bin") || !strings.Contains(out, "write") {
		t.Errorf("dump missing fields:\n%s", out)
	}
	back, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Rank != 3 || back[0].Size != 64 {
		t.Errorf("round trip wrong: %+v", back)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(rank, rank, 3, "f", trace.OpRead, int64(i), 1)
			}
		}(r)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("Len = %d, want 800", c.Len())
	}
}

func TestDumpPerRankAndReadDir(t *testing.T) {
	c := NewCollector(func() float64 { return 0.5 })
	for i := 0; i < 12; i++ {
		c.Record(1000+i%3, i%3, 3, "f", trace.OpWrite, int64(i)*4096, 4096)
	}
	dir := t.TempDir()
	if err := c.DumpPerRank(dir); err != nil {
		t.Fatal(err)
	}
	// One file per rank.
	for rank := 0; rank < 3; rank++ {
		if _, err := os.Stat(filepath.Join(dir, "iosig.rank."+strconv.Itoa(rank)+".txt")); err != nil {
			t.Errorf("rank %d file missing: %v", rank, err)
		}
	}
	merged, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 12 {
		t.Fatalf("merged %d records", len(merged))
	}
	// Merged trace is offset-sorted (the reordering phase's input order).
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Offset > merged[i].Offset {
			t.Fatal("merged trace not offset-sorted")
		}
	}
}

func TestReadDirEmpty(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestTraceDigest(t *testing.T) {
	base := trace.Trace{
		{PID: 1, Rank: 0, FD: 3, File: "a", Op: trace.OpWrite, Offset: 0, Size: 16, Time: 0.5},
		{PID: 1, Rank: 1, FD: 3, File: "a", Op: trace.OpRead, Offset: 16, Size: 32, Time: 1.5},
	}
	d := TraceDigest(base)
	if d != TraceDigest(base.Clone()) {
		t.Error("identical traces digest differently")
	}
	// Order matters: the digest addresses the trace, not a multiset.
	swapped := trace.Trace{base[1], base[0]}
	if TraceDigest(swapped) == d {
		t.Error("record order not reflected in the digest")
	}
	// Every field perturbs the digest.
	perturb := []func(r *trace.Record){
		func(r *trace.Record) { r.PID++ },
		func(r *trace.Record) { r.Rank++ },
		func(r *trace.Record) { r.FD++ },
		func(r *trace.Record) { r.File = "b" },
		func(r *trace.Record) { r.Op = trace.OpRead },
		func(r *trace.Record) { r.Offset++ },
		func(r *trace.Record) { r.Size++ },
		func(r *trace.Record) { r.Time += 1e-9 },
	}
	for i, f := range perturb {
		tr := base.Clone()
		f(&tr[0])
		if TraceDigest(tr) == d {
			t.Errorf("perturbation %d not reflected in the digest", i)
		}
	}
	// Length-prefixed names keep the encoding injective: the boundary
	// between name and fields cannot shift.
	ab := trace.Trace{{File: "ab", Op: trace.OpWrite, Size: 1}}
	a := trace.Trace{{File: "a", Op: trace.OpWrite, Size: 1}}
	if TraceDigest(ab) == TraceDigest(a) {
		t.Error("file-name boundary ambiguity")
	}
	// Total on traces the validators would reject (negative sizes).
	_ = TraceDigest(trace.Trace{{File: "x", Size: -1}})
	// Empty and nil traces share the canonical empty digest.
	if TraceDigest(nil) != TraceDigest(trace.Trace{}) {
		t.Error("nil and empty traces digest differently")
	}
}
