package iosig

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mhafs/internal/trace"
)

func TestRecordAndTrace(t *testing.T) {
	now := 0.0
	c := NewCollector(func() float64 { return now })
	c.Record(100, 0, 3, "f", trace.OpWrite, 4096, 64)
	now = 1.0
	c.Record(101, 1, 3, "f", trace.OpRead, 0, 16)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	raw := c.RawTrace()
	if raw[0].Offset != 4096 || raw[1].Offset != 0 {
		t.Error("RawTrace must preserve issue order")
	}
	if raw[0].Time != 0.0 || raw[1].Time != 1.0 {
		t.Error("clock not consulted per record")
	}
	sorted := c.Trace()
	if sorted[0].Offset != 0 || sorted[1].Offset != 4096 {
		t.Error("Trace must sort by offset")
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil clock")
		}
	}()
	NewCollector(nil)
}

func TestEnableDisable(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	if !c.Enabled() {
		t.Error("collector should start enabled")
	}
	c.Disable()
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	if c.Len() != 0 {
		t.Error("disabled collector recorded")
	}
	c.Enable()
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	if c.Len() != 1 {
		t.Error("re-enabled collector did not record")
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestRawTraceIsCopy(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	c.Record(0, 0, 0, "f", trace.OpRead, 0, 1)
	raw := c.RawTrace()
	raw[0].Offset = 999
	if c.RawTrace()[0].Offset == 999 {
		t.Error("RawTrace must return a copy")
	}
}

func TestDump(t *testing.T) {
	c := NewCollector(func() float64 { return 0.25 })
	c.Record(7, 3, 5, "data.bin", trace.OpWrite, 128, 64)
	var buf bytes.Buffer
	if err := c.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "data.bin") || !strings.Contains(out, "write") {
		t.Errorf("dump missing fields:\n%s", out)
	}
	back, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Rank != 3 || back[0].Size != 64 {
		t.Errorf("round trip wrong: %+v", back)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(func() float64 { return 0 })
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(rank, rank, 3, "f", trace.OpRead, int64(i), 1)
			}
		}(r)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("Len = %d, want 800", c.Len())
	}
}

func TestDumpPerRankAndReadDir(t *testing.T) {
	c := NewCollector(func() float64 { return 0.5 })
	for i := 0; i < 12; i++ {
		c.Record(1000+i%3, i%3, 3, "f", trace.OpWrite, int64(i)*4096, 4096)
	}
	dir := t.TempDir()
	if err := c.DumpPerRank(dir); err != nil {
		t.Fatal(err)
	}
	// One file per rank.
	for rank := 0; rank < 3; rank++ {
		if _, err := os.Stat(filepath.Join(dir, "iosig.rank."+strconv.Itoa(rank)+".txt")); err != nil {
			t.Errorf("rank %d file missing: %v", rank, err)
		}
	}
	merged, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 12 {
		t.Fatalf("merged %d records", len(merged))
	}
	// Merged trace is offset-sorted (the reordering phase's input order).
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Offset > merged[i].Offset {
			t.Fatal("merged trace not offset-sorted")
		}
	}
}

func TestReadDirEmpty(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}
