// Package iosig is the I/O Collector of the MHA tracing phase — the
// repository's stand-in for the IOSIG profiling library.
//
// The collector hooks the middleware's file operations during the
// application's first run and records process ID, MPI rank, file
// descriptor, request type, file offset, request size and time stamp. As
// the paper prescribes, the trace handed to the reordering phase is sorted
// ascending by offset; the raw issue-order trace remains available for
// replay and concurrency analysis.
package iosig

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mhafs/internal/trace"
)

// Clock supplies time stamps; in simulations it is the engine's virtual
// clock.
type Clock func() float64

// Collector accumulates trace records. It is safe for concurrent use:
// the paper's applications run one tracer shared by many processes.
type Collector struct {
	mu      sync.Mutex
	clock   Clock
	records trace.Trace
	enabled bool
}

// NewCollector creates an enabled collector using the given clock. A nil
// clock is a wiring bug, not a runtime condition, and panics.
func NewCollector(clock Clock) *Collector {
	if clock == nil {
		panic("iosig: nil clock")
	}
	return &Collector{clock: clock, enabled: true}
}

// Enable turns recording on.
func (c *Collector) Enable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = true
}

// Disable turns recording off; Record calls become no-ops (the profiling
// overhead disappears after the first run).
func (c *Collector) Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = false
}

// Enabled reports the recording state.
func (c *Collector) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Record captures one file operation at the current clock time.
func (c *Collector) Record(pid, rank, fd int, file string, op trace.Op, off, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	c.records = append(c.records, trace.Record{
		PID: pid, Rank: rank, FD: fd, File: file,
		Op: op, Offset: off, Size: size, Time: c.clock(),
	})
}

// Len returns the number of records captured.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// RawTrace returns a copy of the records in capture (issue) order.
func (c *Collector) RawTrace() trace.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records.Clone()
}

// Trace returns a copy sorted ascending by offset, the order the paper's
// layout-optimization phases consume.
func (c *Collector) Trace() trace.Trace {
	t := c.RawTrace()
	t.SortByOffset()
	return t
}

// TraceDigest returns the sha256 of a canonical binary encoding of the
// trace — the content address of a profiled workload. Two traces digest
// equal iff they hold identical records in identical order: every field
// is encoded fixed-width little-endian and file names are
// length-prefixed, so no two distinct traces share an encoding. The
// digest is total (unlike the MHTR writer it never validates), which
// lets the plan cache key on any trace a planner would accept.
func TraceDigest(t trace.Trace) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	var nameBuf []byte // reused across records: one allocation per digest
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(len(t)))
	for i := range t {
		r := &t[i]
		u64(uint64(len(r.File)))
		nameBuf = append(nameBuf[:0], r.File...)
		h.Write(nameBuf)
		u64(uint64(int64(r.PID)))
		u64(uint64(int64(r.Rank)))
		u64(uint64(int64(r.FD)))
		u64(uint64(r.Op))
		u64(uint64(r.Offset))
		u64(uint64(r.Size))
		u64(math.Float64bits(r.Time))
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// Reset discards all captured records.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = nil
}

// Dump writes the offset-sorted trace to w in the text trace format.
func (c *Collector) Dump(w io.Writer) error {
	return trace.Write(w, c.Trace())
}

// DumpPerRank writes one trace file per MPI rank into dir, named
// "iosig.rank.<n>.txt" — the on-disk layout the IOSIG library produces
// ("records this information in several trace files"). Each file holds the
// rank's records in issue order.
func (c *Collector) DumpPerRank(dir string) error {
	raw := c.RawTrace()
	perRank := make(map[int]trace.Trace)
	for _, r := range raw {
		perRank[r.Rank] = append(perRank[r.Rank], r)
	}
	for rank, tr := range perRank {
		path := filepath.Join(dir, fmt.Sprintf("iosig.rank.%d.txt", rank))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("iosig: %w", err)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("iosig: %w", err)
		}
	}
	return nil
}

// ReadDir merges every per-rank trace file in dir (as written by
// DumpPerRank) into one trace sorted by offset, the order the layout
// phases consume.
func ReadDir(dir string) (trace.Trace, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "iosig.rank.*.txt"))
	if err != nil {
		return nil, fmt.Errorf("iosig: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("iosig: no per-rank trace files in %s", dir)
	}
	sort.Strings(matches)
	var merged trace.Trace
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("iosig: %w", err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("iosig: %s: %w", path, err)
		}
		merged = append(merged, tr...)
	}
	merged.SortByOffset()
	return merged, nil
}
