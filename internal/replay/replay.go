// Package replay re-issues an I/O trace against the simulated file system
// through the middleware, the way the paper replays its LANL, LU and
// Cholesky traces: every MPI rank runs as an independent client issuing
// its requests in trace order, each request blocking until its slowest
// sub-request completes (synchronous MPI-IO semantics). All ranks start
// together; the aggregate bandwidth is total bytes moved over the virtual
// makespan.
package replay

import (
	"fmt"
	"math/rand"

	"mhafs/internal/iopath"
	"mhafs/internal/metrics"
	"mhafs/internal/mpiio"
	"mhafs/internal/pattern"
	"mhafs/internal/server"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// Result summarizes one replay.
type Result struct {
	Ops        int
	Makespan   float64 // seconds of virtual time
	ReadBytes  int64
	WriteBytes int64
	PerServer  []server.Stats // activity during the replay interval

	// Latencies holds every request's issue-to-completion time in virtual
	// seconds, in completion order.
	Latencies []float64
}

// TotalBytes returns bytes moved in both directions.
func (r Result) TotalBytes() int64 { return r.ReadBytes + r.WriteBytes }

// Bandwidth returns the aggregate bandwidth in MB/s.
func (r Result) Bandwidth() float64 { return metrics.MBps(r.TotalBytes(), r.Makespan) }

// ReadBandwidth returns the read-side bandwidth in MB/s (against the full
// makespan).
func (r Result) ReadBandwidth() float64 { return metrics.MBps(r.ReadBytes, r.Makespan) }

// WriteBandwidth returns the write-side bandwidth in MB/s.
func (r Result) WriteBandwidth() float64 { return metrics.MBps(r.WriteBytes, r.Makespan) }

// LatencySummary condenses the per-request latency distribution.
func (r Result) LatencySummary() metrics.LatencySummary {
	return metrics.Summarize(r.Latencies)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("ops=%d makespan=%.6fs readB=%d writeB=%d bw=%.2fMB/s p99=%.6fs",
		r.Ops, r.Makespan, r.ReadBytes, r.WriteBytes, r.Bandwidth(),
		metrics.Percentile(r.Latencies, 0.99))
}

// Mode selects how ranks pace each other during a replay.
type Mode int

const (
	// Independent: each rank issues its records back to back; ranks never
	// wait for one another. The default, matching I/O-bound replay tools.
	Independent Mode = iota
	// LockStep: ranks synchronize at every concurrency-epoch boundary,
	// like a bulk-synchronous application with barriers between I/O
	// phases. No rank enters epoch e+1 until every rank finished epoch e.
	LockStep
	// Timed: each record is issued no earlier than its trace time stamp
	// (relative to the trace start), preserving the application's compute
	// phases between I/O bursts. Requests still wait for the rank's
	// previous request (synchronous I/O).
	Timed
)

// Options tunes a replay.
type Options struct {
	Mode Mode
	// EpochWindow groups records into epochs for LockStep mode (seconds
	// of trace time); 0 uses the pattern analyzer's default.
	EpochWindow float64
	// ScratchReads lands every read in one shared scratch buffer instead
	// of allocating a fresh buffer per record. Only for replays that
	// never look at the bytes read — the XL tier's dataless clusters,
	// where no bytes move at all. Byte-accurate replays keep it off:
	// concurrent reads would clobber each other's landing space.
	ScratchReads bool
}

// Run replays the trace through the middleware with default options. Each
// rank's records are issued sequentially in time order; distinct ranks
// proceed concurrently (in virtual time). Write payloads are
// deterministic pseudo-random bytes.
func Run(mw *mpiio.Middleware, tr trace.Trace) (Result, error) {
	return RunWith(mw, tr, Options{})
}

// RunWith replays the trace with explicit options.
func RunWith(mw *mpiio.Middleware, tr trace.Trace, opts Options) (Result, error) {
	p, err := Start(mw, tr, opts)
	if err != nil {
		return Result{}, err
	}
	mw.Cluster.Eng.Run()
	return p.Finish()
}

// recName names the replay's recorder interceptor stage.
const recName = "replay/recorder"

// Pending is a started replay: every rank client is scheduled on the
// middleware's engine, but the engine has not been driven and no result
// exists yet. The Start/Finish split lets a caller owning several
// clusters — the XL tier's sharded server groups — start one replay per
// group, drive all the engines together (sim.RunSharded), and then
// collect each group's result.
type Pending struct {
	mw  *mpiio.Middleware
	tr  trace.Trace
	rec *iopath.Recorder

	base    float64
	before  []server.Stats
	res     Result
	runErrs []error
}

// Start validates and schedules the replay without driving the engine.
// The caller must run the engine to completion before calling Finish.
func Start(mw *mpiio.Middleware, tr trace.Trace, opts Options) (*Pending, error) {
	if mw == nil {
		return nil, fmt.Errorf("replay: nil middleware")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	p := &Pending{mw: mw, tr: tr}
	if len(tr) == 0 {
		return p, nil
	}

	eng := mw.Cluster.Eng
	p.base = eng.Now()
	p.before = mw.Cluster.ServerStats()

	// Latencies and the makespan come from the pipeline's own completion
	// records: a recorder interceptor observes every request end to end,
	// instead of the replay loop scraping times around each callback.
	p.rec = iopath.NewRecorder()
	if err := mw.Intercept(recName, p.rec); err != nil {
		return nil, err
	}

	// Split records per rank, preserving time order within a rank.
	sorted := tr.Clone()
	sorted.SortByTime()
	perRank := make(map[int]trace.Trace)
	for _, r := range sorted {
		perRank[r.Rank] = append(perRank[r.Rank], r)
	}
	ranks := tr.Ranks() // deterministic launch order

	payload := sharedPayload(tr.MaxSize())
	var readScratch []byte
	if opts.ScratchReads {
		readScratch = make([]byte, tr.MaxSize())
	}

	// LockStep: compute each record's epoch and insert barriers at epoch
	// boundaries. epochBarriers[e] fires when every record of epoch e has
	// completed; ranks block on it before issuing epoch e+1.
	var epochOf map[recordKey]int
	var epochBarriers []*epochGate
	if opts.Mode == LockStep {
		window := opts.EpochWindow
		if window <= 0 {
			window = pattern.DefaultEpochWindow
		}
		epochOf = make(map[recordKey]int, len(tr))
		epochs := pattern.Epochs(tr, window)
		epochBarriers = make([]*epochGate, len(epochs))
		for e, ep := range epochs {
			epochBarriers[e] = newEpochGate(len(ep))
			for _, r := range ep {
				epochOf[keyOf(r)] = e
			}
		}
	}

	t0 := sorted[0].Time

	for _, rank := range ranks {
		records := perRank[rank]
		// A rank issues sequentially — at most one record in flight — so
		// one mutable cursor replaces per-op index captures and the whole
		// client is a fixed rankClient: its drive methods are bound to
		// function values once here, and the loop allocates nothing per
		// record (the methods are pinned in HotPathFunctions; allocheck
		// holds them to that).
		c := &rankClient{
			p:        p,
			eng:      eng,
			records:  records,
			mode:     opts.Mode,
			barriers: epochBarriers,
			handles:  make(map[string]*mpiio.FileHandle),
			payload:  payload,
			scratch:  readScratch,
			t0:       t0,
		}
		if opts.Mode == LockStep {
			// Resolve each record's epoch here, once, so completions index
			// a slice instead of hashing a map key per op.
			c.epochIdx = make([]int, len(records))
			for i, r := range records {
				c.epochIdx[i] = epochOf[keyOf(r)]
			}
		}
		c.issueFn = c.issue
		c.doneFn = c.done
		c.timedFn = c.issueTimed
		// All ranks start at the same virtual instant.
		eng.Schedule(0, c.issueFn)
	}
	return p, nil
}

// rankClient replays one rank's records sequentially: issue the next
// record, wait for its completion, repeat (optionally gated by epoch
// barriers or the trace's time stamps). The drive methods are bound to
// the *Fn fields once at Start, so the per-record loop passes existing
// function values instead of allocating closures or method values.
type rankClient struct {
	p        *Pending
	eng      *sim.Engine
	records  trace.Trace
	mode     Mode
	epochIdx []int        // LockStep: each record's epoch, precomputed
	barriers []*epochGate // LockStep: shared epoch gates
	handles  map[string]*mpiio.FileHandle
	lastFile string
	lastH    *mpiio.FileHandle
	next     int // index of the next record to issue
	payload  []byte
	scratch  []byte
	t0       float64 // trace start time (Timed mode origin)

	timed   trace.Record      // the one deferred record of Timed mode
	issueFn func()            // c.issue, bound once
	doneFn  func(end float64) // c.done, bound once
	timedFn func()            // c.issueTimed, bound once
}

// done is the rank's completion callback: account the op and drive the
// next record (through the epoch barrier in LockStep mode).
func (c *rankClient) done(end float64) {
	c.p.res.Ops++
	if c.mode == LockStep {
		// next already points past the record that just completed.
		c.barriers[c.epochIdx[c.next-1]].complete(c.issueFn)
		return
	}
	c.issue()
}

// issue starts the rank's next record, honoring Timed mode's earliest
// issue points.
func (c *rankClient) issue() {
	if c.next >= len(c.records) {
		return
	}
	rec := c.records[c.next]
	c.next++
	if c.mode == Timed {
		// Honor the record's trace time as its earliest issue point
		// (relative to the replay start). At most one record per rank is
		// ever deferred — the rank is sequential — so the record parks in
		// c.timed and the pre-bound timedFn re-issues it.
		due := c.p.base + (rec.Time - c.t0)
		if now := c.eng.Now(); due > now {
			c.timed = rec
			c.eng.Schedule(due-now, c.timedFn)
			return
		}
	}
	c.issueNow(rec)
}

// issueTimed resumes the record parked by a Timed-mode deferral.
func (c *rankClient) issueTimed() { c.issueNow(c.timed) }

// issueNow submits one record through the middleware.
func (c *rankClient) issueNow(rec trace.Record) {
	h := c.lastH
	if rec.File != c.lastFile || h == nil {
		var ok bool
		h, ok = c.handles[rec.File]
		if !ok {
			var err error
			h, err = c.p.mw.Open(rec.File, rec.Rank)
			if err != nil {
				c.p.runErrs = append(c.p.runErrs, err)
				return
			}
			c.handles[rec.File] = h
		}
		c.lastFile, c.lastH = rec.File, h
	}
	var err error
	if rec.Op == trace.OpWrite {
		c.p.res.WriteBytes += rec.Size
		err = h.WriteAt(c.payload[:rec.Size], rec.Offset, c.doneFn)
	} else {
		c.p.res.ReadBytes += rec.Size
		buf := c.scratch
		if buf == nil {
			// Byte-accurate replays land every read in a fresh buffer;
			// the XL tier's dataless replays set ScratchReads instead.
			buf = make([]byte, rec.Size) //mhavet:allow literal
		}
		err = h.ReadAt(buf[:rec.Size], rec.Offset, c.doneFn)
	}
	if err != nil {
		c.p.runErrs = append(c.p.runErrs, err)
	}
}

// Finish validates the drained replay and assembles its result. The
// caller must have run the engine until no replay events remain.
func (p *Pending) Finish() (Result, error) {
	tr := p.tr
	if len(tr) == 0 {
		return Result{}, nil
	}
	defer p.mw.Uninstall(recName)
	res := p.res
	if len(p.runErrs) > 0 {
		return Result{}, fmt.Errorf("replay: %d errors, first: %w", len(p.runErrs), p.runErrs[0])
	}
	if res.Ops != len(tr) {
		return Result{}, fmt.Errorf("replay: completed %d of %d operations", res.Ops, len(tr))
	}
	if p.rec.Len() != len(tr) {
		return Result{}, fmt.Errorf("replay: pipeline recorded %d of %d requests", p.rec.Len(), len(tr))
	}
	latest := p.base
	failed := 0
	var firstErr error
	for _, c := range p.rec.Records() {
		res.Latencies = append(res.Latencies, c.Latency())
		if c.Complete > latest {
			latest = c.Complete
		}
		if c.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = c.Err
			}
		}
	}
	if failed > 0 {
		// Resilience exhausted on some requests: the run completed (no
		// hang) but the application saw errors, which no scenario the
		// bench ships is allowed to produce.
		return Result{}, fmt.Errorf("replay: %d of %d requests failed, first: %w", failed, len(tr), firstErr)
	}
	res.Makespan = latest - p.base
	res.PerServer = metrics.DiffStats(p.before, p.mw.Cluster.ServerStats())
	return res, nil
}

// recordKey identifies a trace record within a replay.
type recordKey struct {
	rank   int
	file   string
	offset int64
	time   float64
}

func keyOf(r trace.Record) recordKey {
	return recordKey{r.Rank, r.File, r.Offset, r.Time}
}

// epochGate releases its waiters once all n records of the epoch complete.
type epochGate struct {
	remaining int
	waiters   []func()
}

func newEpochGate(n int) *epochGate {
	return &epochGate{remaining: n, waiters: make([]func(), 0, n)}
}

// complete marks one record done and registers the continuation to run
// when the whole epoch has drained. The continuation runs immediately if
// this was the last record.
func (g *epochGate) complete(cont func()) {
	g.remaining--
	g.waiters = append(g.waiters, cont)
	if g.remaining == 0 {
		ws := g.waiters
		g.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// sharedPayload builds one deterministic buffer reused by every write.
func sharedPayload(n int64) []byte {
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(buf)
	return buf
}
