package replay

import (
	"testing"

	"mhafs/internal/iopath"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func benchTrace() trace.Trace {
	var tr trace.Trace
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 6; i++ {
			op := trace.OpWrite
			if i%2 == 1 {
				op = trace.OpRead
			}
			tr = append(tr, trace.Record{
				Rank: rank, File: "shared.dat", Op: op,
				Offset: int64(rank*6+i) * 64 * units.KB,
				Size:   64 * units.KB,
				Time:   float64(i),
			})
		}
	}
	return tr
}

// TestNoOpInterceptorPreservesResults: a chain carrying a pass-through
// interceptor must reproduce the plain chain's replay bit for bit — same
// makespan, bandwidth and latencies.
func TestNoOpInterceptorPreservesResults(t *testing.T) {
	tr := benchTrace()

	plain := testMW(t, 2, 2)
	base, err := Run(plain, tr)
	if err != nil {
		t.Fatal(err)
	}

	wrapped := testMW(t, 2, 2)
	noop := iopath.StageFunc(func(req *iopath.Request, next iopath.Handler) error {
		return next(req)
	})
	if err := wrapped.Intercept("noop", noop); err != nil {
		t.Fatal(err)
	}
	got, err := Run(wrapped, tr)
	if err != nil {
		t.Fatal(err)
	}

	if got.Makespan != base.Makespan {
		t.Errorf("makespan %v != %v", got.Makespan, base.Makespan)
	}
	if got.Bandwidth() != base.Bandwidth() {
		t.Errorf("bandwidth %v != %v", got.Bandwidth(), base.Bandwidth())
	}
	if got.Ops != base.Ops || got.ReadBytes != base.ReadBytes || got.WriteBytes != base.WriteBytes {
		t.Errorf("counters differ: %+v vs %+v", got, base)
	}
	if len(got.Latencies) != len(base.Latencies) {
		t.Fatalf("latency count %d != %d", len(got.Latencies), len(base.Latencies))
	}
	for i := range got.Latencies {
		if got.Latencies[i] != base.Latencies[i] {
			t.Fatalf("latency[%d] = %v, want %v", i, got.Latencies[i], base.Latencies[i])
		}
	}
}

// TestCountingInterceptorSeesEveryReplayedRequest is the pipeline's
// end-to-end acceptance check: a custom interceptor registered on the
// middleware observes every request a replay issues.
func TestCountingInterceptorSeesEveryReplayedRequest(t *testing.T) {
	tr := benchTrace()
	mw := testMW(t, 2, 2)
	var seen int
	var bytes int64
	count := iopath.StageFunc(func(req *iopath.Request, next iopath.Handler) error {
		seen++
		bytes += req.Size()
		return next(req)
	})
	if err := mw.Intercept("count", count); err != nil {
		t.Fatal(err)
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(tr) {
		t.Errorf("interceptor saw %d requests, want %d", seen, len(tr))
	}
	if bytes != tr.TotalBytes() {
		t.Errorf("interceptor saw %d bytes, want %d", bytes, tr.TotalBytes())
	}
	if res.Ops != len(tr) {
		t.Errorf("replay completed %d ops, want %d", res.Ops, len(tr))
	}
}
