package replay

import (
	"math"
	"strings"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testMW(t *testing.T, h, s int) *mpiio.Middleware {
	t.Helper()
	cfg := pfs.DefaultConfig()
	cfg.HServers, cfg.SServers = h, s
	cfg.MDSLookup = 0 // keep hand-computed timings exact
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mpiio.New(c)
}

func TestRunEmptyTrace(t *testing.T) {
	mw := testMW(t, 2, 2)
	res, err := Run(mw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 0 || res.Makespan != 0 {
		t.Errorf("empty replay = %+v", res)
	}
}

func TestRunNilMiddleware(t *testing.T) {
	if _, err := Run(nil, nil); err == nil {
		t.Error("nil middleware accepted")
	}
}

func TestRunInvalidTrace(t *testing.T) {
	mw := testMW(t, 2, 2)
	bad := trace.Trace{{File: "f", Size: 0}}
	if _, err := Run(mw, bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRunCountsOpsAndBytes(t *testing.T) {
	mw := testMW(t, 2, 2)
	tr := trace.Trace{
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 0, Size: 64 * units.KB, Time: 0},
		{Rank: 0, File: "f", Op: trace.OpRead, Offset: 0, Size: 32 * units.KB, Time: 1},
		{Rank: 1, File: "f", Op: trace.OpRead, Offset: 64 * units.KB, Size: 16 * units.KB, Time: 0},
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 3 {
		t.Errorf("Ops = %d", res.Ops)
	}
	if res.WriteBytes != 64*units.KB || res.ReadBytes != 48*units.KB {
		t.Errorf("bytes = %d/%d", res.ReadBytes, res.WriteBytes)
	}
	if res.TotalBytes() != 112*units.KB {
		t.Errorf("TotalBytes = %d", res.TotalBytes())
	}
	if res.Makespan <= 0 || res.Bandwidth() <= 0 {
		t.Errorf("makespan/bw = %v/%v", res.Makespan, res.Bandwidth())
	}
	if res.ReadBandwidth() <= 0 || res.WriteBandwidth() <= 0 {
		t.Error("per-op bandwidths should be positive")
	}
	if !strings.Contains(res.String(), "ops=3") {
		t.Errorf("String = %s", res.String())
	}
	if len(res.PerServer) != 4 {
		t.Errorf("PerServer len = %d", len(res.PerServer))
	}
}

// A single rank issues synchronously: with every request hitting one
// HServer, the makespan is the sum of the individual service times.
func TestRunSingleRankSerializes(t *testing.T) {
	mw := testMW(t, 1, 1)
	// Layout with only the HServer holding data.
	f, err := mw.Cluster.Create("f", stripe.Layout{M: 1, N: 1, H: 64 * units.KB, S: 0})
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	const ops = 5
	for i := 0; i < ops; i++ {
		tr = append(tr, trace.Record{
			Rank: 0, File: "f", Op: trace.OpWrite,
			Offset: int64(i) * 32 * units.KB, Size: 32 * units.KB, Time: float64(i),
		})
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	h := mw.Cluster.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	want := float64(ops) * h.ServiceTime(trace.OpWrite, 32*units.KB)
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	_ = f
}

// Two ranks writing to regions on different single-server layouts overlap
// perfectly: the makespan equals one rank's time, not the sum.
func TestRunRanksProceedConcurrently(t *testing.T) {
	mw := testMW(t, 2, 2)
	if _, err := mw.Cluster.Create("fh", stripe.Layout{M: 1, N: 2, H: 64 * units.KB, S: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Cluster.Create("fs", stripe.Layout{M: 2, N: 1, H: 0, S: 64 * units.KB}); err != nil {
		t.Fatal(err)
	}
	n := int64(64 * units.KB)
	tr := trace.Trace{
		{Rank: 0, File: "fh", Op: trace.OpWrite, Offset: 0, Size: n, Time: 0},
		{Rank: 1, File: "fs", Op: trace.OpWrite, Offset: 0, Size: n, Time: 0},
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	h := mw.Cluster.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	slow := h.ServiceTime(trace.OpWrite, n)
	if math.Abs(res.Makespan-slow) > 1e-9 {
		t.Errorf("makespan = %v, want the slower rank alone %v", res.Makespan, slow)
	}
}

// Contention check: two ranks targeting the same single-server file
// serialize; the makespan doubles.
func TestRunContentionSerializes(t *testing.T) {
	mw := testMW(t, 1, 1)
	if _, err := mw.Cluster.Create("f", stripe.Layout{M: 1, N: 1, H: 64 * units.KB, S: 0}); err != nil {
		t.Fatal(err)
	}
	n := int64(64 * units.KB)
	tr := trace.Trace{
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 0, Size: n, Time: 0},
		{Rank: 1, File: "f", Op: trace.OpWrite, Offset: n, Size: n, Time: 0},
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	h := mw.Cluster.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	// The second request arrives while the first is in flight, so it pays
	// one queue-depth step of seek interference on the HDD.
	want := 2*h.ServiceTime(trace.OpWrite, n) + h.Dev.SeekInterference
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want serialized %v", res.Makespan, want)
	}
}

// Replays are deterministic: identical traces on identical clusters give
// identical makespans.
func TestRunDeterministic(t *testing.T) {
	mk := func() float64 {
		mw := testMW(t, 3, 2)
		var tr trace.Trace
		for i := 0; i < 40; i++ {
			op := trace.OpRead
			if i%3 == 0 {
				op = trace.OpWrite
			}
			tr = append(tr, trace.Record{
				Rank: i % 5, File: "f", Op: op,
				Offset: int64(i) * 17 * units.KB, Size: int64(i%4+1) * 16 * units.KB,
				Time: float64(i / 5),
			})
		}
		res, err := Run(mw, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("replay not deterministic: %v vs %v", a, b)
	}
}

// End-to-end scheme comparison on a heterogeneous workload: MHA must beat
// DEF, and per-server loads must be more balanced under MHA.
func TestRunMHABeatsDEF(t *testing.T) {
	// Heterogeneous read workload: small requests at high concurrency plus
	// large requests at low concurrency, interleaved through the file.
	mixed := func() trace.Trace {
		var tr trace.Trace
		off := int64(0)
		for loop := 0; loop < 6; loop++ {
			for r := 0; r < 8; r++ {
				tr = append(tr, trace.Record{Rank: r, File: "app", Op: trace.OpRead,
					Offset: off, Size: 16 * units.KB, Time: float64(2 * loop)})
				off += 16 * units.KB
			}
			for r := 0; r < 2; r++ {
				tr = append(tr, trace.Record{Rank: r, File: "app", Op: trace.OpRead,
					Offset: off, Size: 256 * units.KB, Time: float64(2*loop + 1)})
				off += 256 * units.KB
			}
		}
		return tr
	}

	run := func(scheme layout.Scheme) Result {
		mw := testMW(t, 6, 2)
		tr := mixed()
		env := layout.DefaultEnv()
		env.M, env.N = 6, 2
		pl, err := layout.NewPlanner(scheme)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.Plan(tr, env)
		if err != nil {
			t.Fatal(err)
		}
		placement, err := reorder.Apply(mw.Cluster, plan, reorder.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer placement.Close()
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, 5e-6))
		// Write phase to populate, then read back per the trace.
		res, err := Run(mw, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	def := run(layout.DEF)
	mha := run(layout.MHA)
	if !(mha.Makespan < def.Makespan) {
		t.Errorf("MHA makespan %v should beat DEF %v", mha.Makespan, def.Makespan)
	}
}

func TestRunLatencies(t *testing.T) {
	mw := testMW(t, 2, 2)
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, trace.Record{
			Rank: 0, File: "f", Op: trace.OpWrite,
			Offset: int64(i) * 64 * units.KB, Size: 64 * units.KB, Time: float64(i),
		})
	}
	res, err := Run(mw, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != 10 {
		t.Fatalf("latencies = %d, want 10", len(res.Latencies))
	}
	for i, l := range res.Latencies {
		if l <= 0 {
			t.Errorf("latency %d = %v, want positive", i, l)
		}
	}
	s := res.LatencySummary()
	if s.Count != 10 || s.Max < s.P99 || s.P99 < s.P50 || s.Mean <= 0 {
		t.Errorf("summary inconsistent: %+v", s)
	}
	// A single rank issuing sequentially to an uncontended cluster: the
	// latency sum equals the makespan.
	var sum float64
	for _, l := range res.Latencies {
		sum += l
	}
	if math.Abs(sum-res.Makespan) > 1e-9 {
		t.Errorf("latency sum %v != makespan %v", sum, res.Makespan)
	}
	if !strings.Contains(res.String(), "p99=") {
		t.Errorf("String missing p99: %s", res.String())
	}
}

// LockStep: no rank may start epoch e+1 before all ranks finish epoch e.
// Construction: the two ranks use files on disjoint single-server layouts
// so they never contend; rank 0 issues one slow epoch-0 write, rank 1 a
// fast epoch-0 write plus an epoch-1 write. Independent mode lets rank 1
// finish both quickly; lockstep holds its epoch-1 write until rank 0's
// slow epoch-0 write completes.
func TestRunLockStepBarriers(t *testing.T) {
	mk := func(mode Mode) Result {
		mw := testMW(t, 2, 2)
		// Disjoint server classes per file: "big" on the HServers only,
		// "small" on the SServers only.
		if _, err := mw.Cluster.Create("big", stripe.Layout{M: 2, N: 2, H: 64 * units.KB, S: 0}); err != nil {
			t.Fatal(err)
		}
		if _, err := mw.Cluster.Create("small", stripe.Layout{M: 2, N: 2, H: 0, S: 64 * units.KB}); err != nil {
			t.Fatal(err)
		}
		tr := trace.Trace{
			{Rank: 0, File: "big", Op: trace.OpWrite, Offset: 0, Size: 4 * units.MB, Time: 0},
			{Rank: 1, File: "small", Op: trace.OpWrite, Offset: 0, Size: 4096, Time: 0},
			{Rank: 1, File: "small", Op: trace.OpWrite, Offset: 4096, Size: 4096, Time: 1},
		}
		res, err := RunWith(mw, tr, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ind := mk(Independent)
	lock := mk(LockStep)
	if ind.Ops != lock.Ops {
		t.Fatalf("op counts differ: %d vs %d", ind.Ops, lock.Ops)
	}
	// Independent: makespan is rank 0's slow write alone. Lockstep: rank
	// 1's epoch-1 write starts only after the slow write, so the makespan
	// must strictly exceed independent's.
	if !(lock.Makespan > ind.Makespan) {
		t.Errorf("lockstep %.6f should exceed independent %.6f", lock.Makespan, ind.Makespan)
	}
}

// Lockstep on a perfectly symmetric workload must equal independent mode.
func TestRunLockStepSymmetric(t *testing.T) {
	mk := func(mode Mode) float64 {
		mw := testMW(t, 2, 2)
		var tr trace.Trace
		for e := 0; e < 3; e++ {
			for r := 0; r < 4; r++ {
				tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpWrite,
					Offset: int64(e*4+r) * 64 * units.KB, Size: 64 * units.KB, Time: float64(e)})
			}
		}
		res, err := RunWith(mw, tr, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := mk(Independent), mk(LockStep)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("symmetric lockstep %.6f != independent %.6f", b, a)
	}
}

// Timed mode: records may not issue before their trace time stamps, so a
// trace with long compute gaps has a makespan at least the trace span.
func TestRunTimedHonorsTimestamps(t *testing.T) {
	mw := testMW(t, 2, 2)
	tr := trace.Trace{
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 0, Size: 4096, Time: 0},
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 4096, Size: 4096, Time: 2.5},
	}
	fast, err := RunWith(mw, tr, Options{Mode: Independent})
	if err != nil {
		t.Fatal(err)
	}
	mw2 := testMW(t, 2, 2)
	timed, err := RunWith(mw2, tr, Options{Mode: Timed})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= 2.5 {
		t.Fatalf("independent replay should ignore the gap: %v", fast.Makespan)
	}
	if timed.Makespan < 2.5 {
		t.Errorf("timed makespan %v must cover the 2.5s compute gap", timed.Makespan)
	}
	if timed.Ops != 2 {
		t.Errorf("ops = %d", timed.Ops)
	}
}

// In timed mode a rank's synchronous ordering still holds: a late record
// never overtakes an earlier slow one.
func TestRunTimedKeepsOrdering(t *testing.T) {
	mw := testMW(t, 1, 1)
	if _, err := mw.Cluster.Create("f", stripe.Layout{M: 1, N: 1, H: 64 * units.KB, S: 0}); err != nil {
		t.Fatal(err)
	}
	tr := trace.Trace{
		// Big request at t=0 takes far longer than 1 virtual ms.
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 0, Size: 4 * units.MB, Time: 0},
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 4 * units.MB, Size: 4096, Time: 0.001},
	}
	res, err := RunWith(mw, tr, Options{Mode: Timed})
	if err != nil {
		t.Fatal(err)
	}
	// The second write waits for the first despite its early due time.
	h := mw.Cluster.ServerFor(stripe.ServerRef{Class: stripe.ClassH, Index: 0})
	first := h.ServiceTime(trace.OpWrite, 4*units.MB)
	if res.Makespan <= first {
		t.Errorf("makespan %v should exceed the first request alone %v", res.Makespan, first)
	}
}
