package fault

import (
	"fmt"
	"math"
	"sort"

	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
)

// Decision is the fault state a server applies to one sub-request
// attempt. The zero value is NOT healthy (Scale 0); use Healthy().
type Decision struct {
	Scale     float64 // combined device-time multiplier, 1 = healthy
	Transient bool    // the attempt fails with ErrTransient after service
	Down      bool    // the server refuses the attempt with ErrUnavailable
}

// Healthy returns the no-fault decision.
func Healthy() Decision { return Decision{Scale: 1} }

// Injector binds a validated Schedule to a simulation engine: servers ask
// it for the Decision covering an attempt, and Arm schedules the window
// boundaries as engine events so openings are observable in telemetry.
// All methods are driven from engine callbacks or the pipeline's
// submission lock — the injector itself holds no locks, like the rest of
// the deterministic core.
type Injector struct {
	eng      *sim.Engine
	byServer map[string][]Window
	armed    bool

	reg      *telemetry.Registry
	injected map[string]*telemetry.Counter // per server+kind, lazily cached
	windows  map[Kind]*telemetry.Counter
}

// NewInjector validates the schedule and binds it to the engine. Server
// name validation happens later, against the cluster the injector is
// attached to.
func NewInjector(eng *sim.Engine, s Schedule) (*Injector, error) {
	if eng == nil {
		return nil, fmt.Errorf("fault: injector needs an engine")
	}
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	by := make(map[string][]Window)
	ws := append([]Window(nil), s.Windows...)
	sortWindows(ws)
	for _, w := range ws {
		by[w.Server] = append(by[w.Server], w)
	}
	return &Injector{eng: eng, byServer: by}, nil
}

// Engine returns the engine the injector is bound to.
func (in *Injector) Engine() *sim.Engine { return in.eng }

// Empty reports whether the injector carries no windows.
func (in *Injector) Empty() bool { return len(in.byServer) == 0 }

// Servers returns the number of servers with at least one window.
func (in *Injector) Servers() int { return len(in.byServer) }

// At returns the Decision covering server at virtual time t: Down if any
// outage window covers t, Transient if any transient window does, and
// Scale multiplying the factors of every covering slowdown window. At is
// pure — it emits nothing.
func (in *Injector) At(server string, t float64) Decision {
	d := Healthy()
	for _, w := range in.byServer[server] {
		if !w.Covers(t) {
			continue
		}
		switch w.Kind {
		case Outage:
			d.Down = true
		case Transient:
			d.Transient = true
		case Slowdown:
			d.Scale *= w.Factor
		}
	}
	return d
}

// Down reports whether any outage window covers server at time t — the
// availability probe the client-side failover stage uses.
func (in *Injector) Down(server string, t float64) bool {
	for _, w := range in.byServer[server] {
		if w.Kind == Outage && w.Covers(t) {
			return true
		}
	}
	return false
}

// Recovery returns the earliest time ≥ t at which no outage window covers
// the server (math.Inf(1) if it never recovers). Deterministic clients
// use it to bound recovery waits.
func (in *Injector) Recovery(server string, t float64) float64 {
	r := t
	// Windows are sorted by start; a later window can extend the outage
	// the moment an earlier one closes.
	for _, w := range in.byServer[server] {
		if w.Kind == Outage && w.Covers(r) {
			r = w.End
		}
	}
	return r
}

// SetTelemetry installs (or, with nil, removes) the registry the injector
// counts into. Series are registered eagerly, so a fault-armed run
// exports zero-valued fault counters rather than omitting them.
func (in *Injector) SetTelemetry(reg *telemetry.Registry) {
	in.reg = reg
	if reg == nil {
		in.injected, in.windows = nil, nil
		return
	}
	in.injected = make(map[string]*telemetry.Counter)
	in.windows = map[Kind]*telemetry.Counter{
		Slowdown:  reg.Counter(MetricWindows, telemetry.L("kind", Slowdown.String())),
		Transient: reg.Counter(MetricWindows, telemetry.L("kind", Transient.String())),
		Outage:    reg.Counter(MetricWindows, telemetry.L("kind", Outage.String())),
	}
	// Register the per-server injection counters for every scheduled
	// window up front: a window that never catches a request still shows
	// up as an explicit zero.
	for _, server := range in.serverNames() {
		for _, w := range in.byServer[server] {
			in.injectedCounter(server, w.Kind)
		}
	}
}

// serverNames returns the scheduled servers in sorted order, so every
// walk of the window map is deterministic.
func (in *Injector) serverNames() []string {
	out := make([]string, 0, len(in.byServer))
	for n := range in.byServer {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// injectedCounter returns (registering on first use) the per-server
// injection counter. Fault accounting runs only when a scheduled fault
// actually catches a request; the measured XL path runs fault-free.
//
//mhavet:coldpath fault-injection accounting, off on the measured path
func (in *Injector) injectedCounter(server string, k Kind) *telemetry.Counter {
	key := server + "\x00" + k.String()
	c, ok := in.injected[key]
	if !ok {
		c = in.reg.Counter(MetricInjected,
			telemetry.L("kind", k.String()), telemetry.L("server", server))
		in.injected[key] = c
	}
	return c
}

// Observe folds one applied decision into the injection counters. The
// server calls it once per affected attempt; healthy decisions count
// nothing.
func (in *Injector) Observe(server string, d Decision) {
	if in.reg == nil {
		return
	}
	if d.Down {
		in.injectedCounter(server, Outage).Inc()
		return
	}
	if d.Transient {
		in.injectedCounter(server, Transient).Inc()
	}
	if d.Scale != 1 {
		in.injectedCounter(server, Slowdown).Inc()
	}
}

// Arm schedules each window's opening as an engine event so the window
// counters advance at the boundary times. Idempotent; windows opening at
// or before the current virtual time are counted immediately. Unbounded
// windows need no closing event — Covers handles +Inf ends.
func (in *Injector) Arm() {
	if in.armed {
		return
	}
	in.armed = true
	now := in.eng.Now()
	for _, server := range in.serverNames() {
		for _, w := range in.byServer[server] {
			k := w.Kind
			open := func() {
				if in.windows != nil {
					in.windows[k].Inc()
				}
			}
			if w.Start <= now {
				open()
				continue
			}
			in.eng.At(w.Start, open)
		}
	}
}

// Armed reports whether Arm has run.
func (in *Injector) Armed() bool { return in.armed }

// MaxEnd returns the latest finite window end (0 when the schedule is
// empty or all windows are unbounded) — handy for sizing test runs.
func (in *Injector) MaxEnd() float64 {
	var end float64
	for _, ws := range in.byServer {
		for _, w := range ws {
			if !math.IsInf(w.End, 1) && w.End > end {
				end = w.End
			}
		}
	}
	return end
}
