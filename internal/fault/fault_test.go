package fault

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
)

func TestWindowValidate(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		ok   bool
	}{
		{"slowdown", Window{Server: "h0", Kind: Slowdown, Start: 0, End: 1, Factor: 2}, true},
		{"unbounded", Window{Server: "h0", Kind: Slowdown, Start: 0, End: math.Inf(1), Factor: 1}, true},
		{"transient", Window{Server: "s1", Kind: Transient, Start: 0.5, End: 0.6}, true},
		{"outage", Window{Server: "s0", Kind: Outage, Start: 0, End: 0.1}, true},
		{"empty server", Window{Kind: Outage, Start: 0, End: 1}, false},
		{"backward", Window{Server: "h0", Kind: Outage, Start: 1, End: 1}, false},
		{"negative start", Window{Server: "h0", Kind: Outage, Start: -1, End: 1}, false},
		{"factor below one", Window{Server: "h0", Kind: Slowdown, Start: 0, End: 1, Factor: 0.5}, false},
		{"unknown kind", Window{Server: "h0", Kind: Kind(9), Start: 0, End: 1}, false},
	}
	for _, tc := range cases {
		if err := tc.w.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestScheduleValidateNames(t *testing.T) {
	s := Schedule{Windows: []Window{{Server: "s9", Kind: Outage, Start: 0, End: 1}}}
	if err := s.Validate(nil); err != nil {
		t.Fatalf("nil server set must skip name checks: %v", err)
	}
	if err := s.Validate([]string{"h0", "s0"}); err == nil {
		t.Fatal("unknown server name must be rejected")
	}
	if err := s.Validate([]string{"h0", "s9"}); err != nil {
		t.Fatalf("known server rejected: %v", err)
	}
}

// TestScenariosDeterministic pins that scenario construction is a pure
// function of (m, n, seed).
func TestScenariosDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		a, err := sc.Build(6, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		b, err := sc.Build(6, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules:\n%v\n%v", sc, a, b)
		}
		if err := a.Validate([]string{"h0", "h1", "h2", "h3", "h4", "h5", "s0", "s1"}); err != nil {
			t.Errorf("%s: schedule names unknown servers: %v", sc, err)
		}
	}
	fl1, _ := ScenarioFlaky.Build(6, 2, 1)
	fl2, _ := ScenarioFlaky.Build(6, 2, 2)
	if reflect.DeepEqual(fl1, fl2) {
		t.Error("flaky: different seeds must scatter bursts differently")
	}
}

func TestScenarioShapes(t *testing.T) {
	st, _ := ScenarioStraggler.Build(6, 2, 1)
	if len(st.Windows) != 1 || st.Windows[0].Server != "h0" || st.Windows[0].Kind != Slowdown {
		t.Errorf("straggler: unexpected schedule %v", st)
	}
	if !math.IsInf(st.Windows[0].End, 1) {
		t.Error("straggler must last the whole run")
	}
	ot, _ := ScenarioOutage.Build(6, 2, 1)
	if len(ot.Windows) != 1 || ot.Windows[0].Server != "s0" || ot.Windows[0].Kind != Outage {
		t.Errorf("outage: unexpected schedule %v", ot)
	}
	fl, _ := ScenarioFlaky.Build(6, 2, 1)
	if len(fl.Windows) != 8 {
		t.Errorf("flaky: want 8 bursts, got %d", len(fl.Windows))
	}
	for _, w := range fl.Windows {
		if w.Server != "s1" || w.Kind != Transient {
			t.Errorf("flaky: burst on wrong target: %v", w)
		}
	}
	none, _ := ScenarioNone.Build(6, 2, 1)
	if !none.Empty() {
		t.Errorf("none: want empty schedule, got %v", none)
	}
	if _, err := ParseScenario("bogus"); err == nil {
		t.Error("ParseScenario must reject unknown names")
	}
	if sc, err := ParseScenario("outage"); err != nil || sc != ScenarioOutage {
		t.Errorf("ParseScenario(outage) = %v, %v", sc, err)
	}
}

func TestInjectorDecisions(t *testing.T) {
	eng := &sim.Engine{}
	in, err := NewInjector(eng, Schedule{Windows: []Window{
		{Server: "h0", Kind: Slowdown, Start: 1, End: 2, Factor: 4},
		{Server: "h0", Kind: Slowdown, Start: 1.5, End: 3, Factor: 2},
		{Server: "s0", Kind: Outage, Start: 0, End: 1},
		{Server: "s0", Kind: Transient, Start: 0.5, End: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.At("h0", 0.5); d != Healthy() {
		t.Errorf("h0@0.5 = %+v, want healthy", d)
	}
	if d := in.At("h0", 1.25); d.Scale != 4 || d.Down || d.Transient {
		t.Errorf("h0@1.25 = %+v, want scale 4", d)
	}
	// Overlapping slowdowns compound.
	if d := in.At("h0", 1.75); d.Scale != 8 {
		t.Errorf("h0@1.75 = %+v, want scale 8", d)
	}
	// Windows are half-open: the end instant is healthy again.
	if d := in.At("h0", 3); d.Scale != 1 {
		t.Errorf("h0@3 = %+v, want scale 1", d)
	}
	// Outage dominates the overlapping transient window.
	if d := in.At("s0", 0.75); !d.Down {
		t.Errorf("s0@0.75 = %+v, want down", d)
	}
	if d := in.At("s0", 1.5); d.Down || !d.Transient {
		t.Errorf("s0@1.5 = %+v, want transient only", d)
	}
	if !in.Down("s0", 0.2) || in.Down("s0", 1) {
		t.Error("Down must track only outage windows, half-open")
	}
	if got := in.Recovery("s0", 0.2); got != 1 {
		t.Errorf("Recovery(s0, 0.2) = %v, want 1", got)
	}
	if got := in.Recovery("s0", 1.2); got != 1.2 {
		t.Errorf("Recovery after the outage = %v, want 1.2", got)
	}
	if got := in.MaxEnd(); got != 3 {
		t.Errorf("MaxEnd = %v, want 3", got)
	}
}

// TestRecoveryChainedOutages pins that back-to-back outage windows are
// treated as one: recovery jumps past both.
func TestRecoveryChainedOutages(t *testing.T) {
	eng := &sim.Engine{}
	in, err := NewInjector(eng, Schedule{Windows: []Window{
		{Server: "s0", Kind: Outage, Start: 0, End: 1},
		{Server: "s0", Kind: Outage, Start: 1, End: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Recovery("s0", 0); got != 2 {
		t.Errorf("Recovery(s0, 0) = %v, want 2", got)
	}
}

func TestInjectorArmAndTelemetry(t *testing.T) {
	eng := &sim.Engine{}
	in, err := NewInjector(eng, Schedule{Windows: []Window{
		{Server: "h0", Kind: Slowdown, Start: 0, End: math.Inf(1), Factor: 2},
		{Server: "s0", Kind: Outage, Start: 0.5, End: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.SetTelemetry(reg)
	in.Arm()
	in.Arm() // idempotent
	eng.Run()
	if got := reg.Counter(MetricWindows, telemetry.L("kind", "slowdown")).Value(); got != 1 {
		t.Errorf("slowdown windows = %v, want 1", got)
	}
	if got := reg.Counter(MetricWindows, telemetry.L("kind", "outage")).Value(); got != 1 {
		t.Errorf("outage windows = %v, want 1", got)
	}
	// Injection counters exist eagerly at zero even before any request.
	if got := reg.Counter(MetricInjected,
		telemetry.L("kind", "outage"), telemetry.L("server", "s0")).Value(); got != 0 {
		t.Errorf("eager injected counter = %v, want 0", got)
	}
	in.Observe("s0", Decision{Down: true})
	in.Observe("h0", Decision{Scale: 2})
	in.Observe("h0", Healthy()) // healthy decisions count nothing
	if got := reg.Counter(MetricInjected,
		telemetry.L("kind", "outage"), telemetry.L("server", "s0")).Value(); got != 1 {
		t.Errorf("outage injections = %v, want 1", got)
	}
	if got := reg.Counter(MetricInjected,
		telemetry.L("kind", "slowdown"), telemetry.L("server", "h0")).Value(); got != 1 {
		t.Errorf("slowdown injections = %v, want 1", got)
	}
}

// TestInjectorExportStable pins byte-stable exports of an armed injector's
// registry across repeated snapshots.
func TestInjectorExportStable(t *testing.T) {
	sched, err := ScenarioOutage.Build(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	in, err := NewInjector(eng, sched)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.SetTelemetry(reg)
	in.Arm()
	eng.Run()
	var a, b bytes.Buffer
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated JSON exports differ")
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(ErrUnavailable) || !Retryable(ErrTransient) {
		t.Error("injected errors must be retryable")
	}
	if Retryable(nil) {
		t.Error("nil is not retryable")
	}
}
