// Package fault is the deterministic fault-injection subsystem: seeded,
// sim-time fault schedules that degrade individual servers of the
// simulated cluster for bounded windows of virtual time.
//
// The paper's cost model (Eq. 2) assumes every server of a class is
// healthy and identical, yet a striped request completes only when its
// slowest sub-request completes — exactly the property stragglers and
// faults attack. A Schedule describes per-server fault windows of three
// kinds:
//
//   - Slowdown — the device term of the server's service time is scaled
//     by a factor over the window (a straggler disk);
//   - Transient — sub-requests whose service falls in the window consume
//     their service time but fail with a retryable error (a flaky
//     controller or link);
//   - Outage — the server refuses requests outright for the window (a
//     crashed or partitioned server).
//
// Everything is a pure function of the schedule and virtual time: no wall
// clock, no unseeded PRNG. Scenario builders derive their windows from an
// explicit seed, so every run of a scenario is byte-stable — the same
// determinism contract the rest of the repository keeps.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind classifies a fault window.
type Kind uint8

// Fault kinds.
const (
	Slowdown  Kind = iota // device time scaled by Window.Factor
	Transient             // attempts fail with ErrTransient after full service
	Outage                // server refuses attempts with ErrUnavailable
)

// String returns the lower-case kind name used in telemetry labels.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case Transient:
		return "transient"
	case Outage:
		return "outage"
	default:
		return fmt.Sprintf("kind%d", uint8(k))
	}
}

// Window is one per-server fault interval [Start, End) in virtual
// seconds. End may be math.Inf(1) for a fault lasting the rest of the
// run.
type Window struct {
	Server string // physical server name, e.g. "h0" or "s1"
	Kind   Kind
	Start  float64
	End    float64
	Factor float64 // Slowdown only: device-time multiplier, ≥ 1
}

// Covers reports whether t falls inside the window.
func (w Window) Covers(t float64) bool { return t >= w.Start && t < w.End }

// Validate checks one window's invariants.
func (w Window) Validate() error {
	if w.Server == "" {
		return fmt.Errorf("fault: window with empty server name")
	}
	if math.IsNaN(w.Start) || math.IsNaN(w.End) || w.Start < 0 || w.End <= w.Start {
		return fmt.Errorf("fault: window [%v, %v) on %s is not a forward interval", w.Start, w.End, w.Server)
	}
	switch w.Kind {
	case Slowdown:
		if math.IsNaN(w.Factor) || w.Factor < 1 {
			return fmt.Errorf("fault: slowdown factor %v on %s must be ≥ 1", w.Factor, w.Server)
		}
	case Transient, Outage:
		// Factor is ignored.
	default:
		return fmt.Errorf("fault: unknown kind %d on %s", uint8(w.Kind), w.Server)
	}
	return nil
}

// Schedule is a set of fault windows. The zero value is a healthy run.
type Schedule struct {
	Windows []Window
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Windows) == 0 }

// Validate checks every window, and — when servers is non-nil — that each
// window names a server in that set.
func (s Schedule) Validate(servers []string) error {
	known := make(map[string]bool, len(servers))
	for _, n := range servers {
		known[n] = true
	}
	for _, w := range s.Windows {
		if err := w.Validate(); err != nil {
			return err
		}
		if servers != nil && !known[w.Server] {
			return fmt.Errorf("fault: window names unknown server %q", w.Server)
		}
	}
	return nil
}

// Injection errors. Both are retryable: ErrTransient clears when the
// window closes, ErrUnavailable when the server recovers.
var (
	ErrUnavailable = errors.New("fault: server unavailable")
	ErrTransient   = errors.New("fault: transient server error")
)

// Retryable reports whether err is a fault-injected error a client may
// retry (as opposed to a configuration or programming error).
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTransient)
}

// Telemetry series of the resilience path. The injector emits the first
// two; the client-side retry and failover stages own the rest, but the
// names live here so the whole fault vocabulary has one home.
const (
	// MetricInjected counts fault decisions applied to sub-request
	// attempts, labeled by server and kind.
	MetricInjected = "fault_injected_total"
	// MetricWindows counts fault windows opening, labeled by kind.
	MetricWindows = "fault_windows_total"
	// MetricRetries counts client retry attempts, labeled by op.
	MetricRetries = "fault_retries_total"
	// MetricBackoffSeconds accumulates virtual seconds spent backing off.
	MetricBackoffSeconds = "fault_backoff_seconds_total"
	// MetricTimeouts counts attempts abandoned by the per-attempt timeout.
	MetricTimeouts = "fault_timeouts_total"
	// MetricFailovers counts extents remapped onto a degraded fallback
	// layout.
	MetricFailovers = "fault_failovers_total"
	// MetricDegraded counts requests that touched an unavailable server
	// and took the degraded path (failover or recovery wait).
	MetricDegraded = "fault_degraded_requests_total"
)

// Scenario names a canned, seeded fault schedule for the resilience
// bench.
type Scenario string

// Canned scenarios.
const (
	ScenarioNone      Scenario = "none"      // resilience armed, no faults
	ScenarioStraggler Scenario = "straggler" // h0 device 4× slower all run
	ScenarioFlaky     Scenario = "flaky"     // last SServer fails transiently in seeded bursts
	ScenarioOutage    Scenario = "outage"    // s0 down for an early window
)

// Scenarios returns the canned scenarios in figure row order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioNone, ScenarioStraggler, ScenarioFlaky, ScenarioOutage}
}

// ParseScenario resolves a scenario name.
func ParseScenario(s string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if string(sc) == s {
			return sc, nil
		}
	}
	return "", fmt.Errorf("fault: unknown scenario %q (want none, straggler, flaky or outage)", s)
}

// stragglerFactor is the device slowdown of the straggler scenario: the
// paper's HDDOverrides ablation degrades a disk by the same order.
const stragglerFactor = 4

// Build derives the scenario's schedule for a cluster of m HServers and n
// SServers. The seed feeds the flaky scenario's burst placement; every
// scenario is a pure function of (m, n, seed).
func (sc Scenario) Build(m, n int, seed int64) (Schedule, error) {
	if m < 0 || n < 0 || m+n == 0 {
		return Schedule{}, fmt.Errorf("fault: scenario %s needs at least one server (m=%d n=%d)", sc, m, n)
	}
	switch sc {
	case ScenarioNone:
		return Schedule{}, nil
	case ScenarioStraggler:
		// The first HServer drags the whole run; with no HServers the
		// first SServer stands in.
		name := "h0"
		if m == 0 {
			name = "s0"
		}
		return Schedule{Windows: []Window{{
			Server: name, Kind: Slowdown, Start: 0, End: math.Inf(1), Factor: stragglerFactor,
		}}}, nil
	case ScenarioFlaky:
		// The last SServer fails transiently in short seeded bursts over
		// the first 400 ms: roughly a 20% duty cycle, jittered so the
		// bursts do not align with any workload phase.
		name := fmt.Sprintf("s%d", n-1)
		if n == 0 {
			name = fmt.Sprintf("h%d", m-1)
		}
		rng := rand.New(rand.NewSource(seed))
		ws := make([]Window, 0, 8)
		for i := 0; i < 8; i++ {
			start := (float64(i)*50 + rng.Float64()*30) * 1e-3
			ws = append(ws, Window{Server: name, Kind: Transient, Start: start, End: start + 10e-3})
		}
		return Schedule{Windows: ws}, nil
	case ScenarioOutage:
		// The first SServer — where MHA concentrates its hottest regions —
		// goes down early and stays down long enough that every scheme
		// must either fail over or wait it out.
		name := "s0"
		if n == 0 {
			name = "h0"
		}
		return Schedule{Windows: []Window{{
			Server: name, Kind: Outage, Start: 2e-3, End: 250e-3,
		}}}, nil
	default:
		return Schedule{}, fmt.Errorf("fault: unknown scenario %q", sc)
	}
}

// sortWindows orders windows by (server, start, kind) — the canonical
// order the injector stores and Arm schedules them in.
func sortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Server != ws[j].Server {
			return ws[i].Server < ws[j].Server
		}
		if ws[i].Start != ws[j].Start {
			return ws[i].Start < ws[j].Start
		}
		return ws[i].Kind < ws[j].Kind
	})
}
