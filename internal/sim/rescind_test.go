package sim

import "testing"

// TestRescindTailOnly pins the rollback rule: only the last reservation
// can be withdrawn, and only while its start is still in the future.
func TestRescindTailOnly(t *testing.T) {
	eng := &Engine{}
	r := NewResource(eng, "r")
	s1, e1 := r.Reserve(1)
	s2, e2 := r.Reserve(2)
	if s1 != 0 || e1 != 1 || s2 != 1 || e2 != 3 {
		t.Fatalf("windows = [%v,%v] [%v,%v], want [0,1] [1,3]", s1, e1, s2, e2)
	}

	if r.Rescind(s1, e1) {
		t.Fatal("rescinded a covered (non-tail) window")
	}
	if !r.Rescind(s2, e2) {
		t.Fatal("could not rescind the unstarted tail")
	}
	if r.BusyUntil() != 1 || r.Depth() != 1 || r.BusyTime() != 1 {
		t.Errorf("after rescind: busyUntil=%v depth=%d busyTime=%v, want 1/1/1",
			r.BusyUntil(), r.Depth(), r.BusyTime())
	}

	// The freed capacity is reusable: the next reservation starts where
	// the rescinded one would have.
	if s3, e3 := r.Reserve(1); s3 != 1 || e3 != 2 {
		t.Errorf("re-reserve = [%v,%v], want [1,2]", s3, e3)
	}
}

// TestRescindRefusesStartedService: once virtual time reaches a
// window's start it is in service and burns even as the tail.
func TestRescindRefusesStartedService(t *testing.T) {
	eng := &Engine{}
	r := NewResource(eng, "r")
	s1, e1 := r.Reserve(1)
	eng.Schedule(0.5, func() {
		if r.Rescind(s1, e1) {
			t.Error("rescinded a window already in service")
		}
	})
	eng.Run()
	if r.BusyUntil() != 1 {
		t.Errorf("busyUntil = %v, want the window kept to 1", r.BusyUntil())
	}
}
