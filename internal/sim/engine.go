// Package sim is a small deterministic discrete-event simulation engine.
//
// The MHA paper measures wall-clock I/O time on a physical cluster; this
// repository replaces the cluster with a virtual-time simulation. The
// engine maintains a clock and a priority queue of events; each event is a
// callback executed at its scheduled virtual time. Ties are broken by a
// monotonically increasing sequence number so runs are bit-for-bit
// reproducible regardless of map iteration order or goroutine scheduling —
// the engine is single-threaded by design.
package sim

import (
	"fmt"
	"math"
)

// Callback is the interface form of a scheduled event: AtCall fires
// Fire() at the event's time. A pooled descriptor implementing Callback
// schedules without the per-event closure allocation func-based At pays —
// converting a pointer to an interface does not allocate.
type Callback interface {
	Fire()
}

// event is a scheduled callback, either a func (fn) or a Callback value
// (call) — exactly one is set. timer, when non-nil, is the cancellable
// Timer wrapping this event: Step consults it instead of the callback so a
// stopped timer costs no call, and heap compaction can identify dead
// events without running anything.
type event struct {
	time  float64
	seq   uint64
	fn    func()
	call  Callback
	timer *Timer
}

// dead reports whether the event is a cancelled timer occupying the heap.
func (e event) dead() bool { return e.timer != nil && e.timer.stopped }

// eventHeap is a concrete-typed binary min-heap of events ordered by
// (time, seq), inlined instead of container/heap: the interface-based
// heap boxes every pushed and popped event into an `any`, one allocation
// each way, in the simulator's single hottest loop. The slice's capacity
// is retained across pop/push cycles, so a steady-state Schedule/Step
// pair allocates nothing.
type eventHeap []event

// less orders by (time, seq); seq breaks ties so execution order is
// bit-for-bit reproducible.
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

// push appends e and sifts it up to its heap position.
func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event. The caller must check
// emptiness first.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop the callback reference so it can be collected
	q = q[:n]
	q.siftDown(0)
	*h = q
	return top
}

// siftDown restores the heap property below index i.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// Engine is a discrete-event simulator clock plus pending-event queue.
// The zero value is ready to use at time 0.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	fired  uint64

	// dead counts cancelled timer events still occupying the heap; when
	// they pile past compactDeadMin and outnumber half the heap, the heap
	// is compacted in place (see compactDead).
	dead int
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled but not yet executed live
// events. Cancelled timers awaiting their time (or compaction) are not
// counted: they can no longer run anything.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn after delay seconds of virtual time. Negative or NaN
// delays panic: they indicate a bug in a latency model.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fn: fn})
}

// AtCall schedules c.Fire() at absolute virtual time t, which must not be
// in the past. It is At for pooled descriptors: no closure is allocated,
// so a steady-state submit/fire cycle over reused Callback values is
// allocation-free.
func (e *Engine) AtCall(t float64, c Callback) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if c == nil {
		panic("sim: schedule nil callback")
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, call: c})
}

// Step executes the next event, advancing the clock to its time. It
// reports whether an event was executed. A cancelled timer's event still
// advances the clock and counts as fired (the historical no-op firing),
// but its callback is skipped.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.time
	e.fired++
	if t := ev.timer; t != nil {
		if t.stopped {
			e.dead--
			return true
		}
		t.fired = true
	}
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.call.Fire()
	}
	return true
}

// compactDeadMin is the dead-event floor below which compaction is not
// worth the rebuild: cancelled timers are cheap to fire as no-ops, the
// pathology is thousands of them piling up front of far-future deadlines.
const compactDeadMin = 256

// compactDead removes cancelled timer events from the heap in place and
// restores the heap property. Execution order is untouched: the heap pops
// by total order (time, seq) regardless of layout, and dead events run
// nothing. Called when dead events exceed compactDeadMin and at least
// half the heap.
func (e *Engine) compactDead() {
	src := e.events
	kept := src[:0]
	for _, ev := range src {
		if ev.dead() {
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(src); i++ {
		src[i] = event{} // drop callback references for collection
	}
	e.events = kept
	e.dead = 0
	for i := len(kept)/2 - 1; i >= 0; i-- {
		e.events.siftDown(i)
	}
}

// timerStopped records a timer cancellation and compacts the heap when
// dead events dominate it.
func (e *Engine) timerStopped() {
	e.dead++
	if e.dead >= compactDeadMin && e.dead*2 >= len(e.events) {
		e.compactDead()
	}
}

// Run executes events until the queue drains and returns the final clock.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// peek returns the (time, seq) key of the next event without executing
// it. ok is false when the queue is empty. The sharded runner uses it to
// merge independent engine timelines in deterministic key order.
func (e *Engine) peek() (time float64, seq uint64, ok bool) {
	if len(e.events) == 0 {
		return 0, 0, false
	}
	return e.events[0].time, e.events[0].seq, true
}

// RunUntil executes events with time ≤ deadline; the clock never exceeds
// the deadline. It returns the number of events executed.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for len(e.events) > 0 && e.events[0].time <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
