// Package sim is a small deterministic discrete-event simulation engine.
//
// The MHA paper measures wall-clock I/O time on a physical cluster; this
// repository replaces the cluster with a virtual-time simulation. The
// engine maintains a clock and a priority queue of events; each event is a
// callback executed at its scheduled virtual time. Ties are broken by a
// monotonically increasing sequence number so runs are bit-for-bit
// reproducible regardless of map iteration order or goroutine scheduling —
// the engine is single-threaded by design.
package sim

import (
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

// eventHeap is a concrete-typed binary min-heap of events ordered by
// (time, seq), inlined instead of container/heap: the interface-based
// heap boxes every pushed and popped event into an `any`, one allocation
// each way, in the simulator's single hottest loop. The slice's capacity
// is retained across pop/push cycles, so a steady-state Schedule/Step
// pair allocates nothing.
type eventHeap []event

// less orders by (time, seq); seq breaks ties so execution order is
// bit-for-bit reproducible.
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

// push appends e and sifts it up to its heap position.
func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event. The caller must check
// emptiness first.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop the callback reference so it can be collected
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*h = q
	return top
}

// Engine is a discrete-event simulator clock plus pending-event queue.
// The zero value is ready to use at time 0.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn after delay seconds of virtual time. Negative or NaN
// delays panic: they indicate a bug in a latency model.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fn: fn})
}

// Step executes the next event, advancing the clock to its time. It
// reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.time
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final clock.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline; the clock never exceeds
// the deadline. It returns the number of events executed.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for len(e.events) > 0 && e.events[0].time <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
