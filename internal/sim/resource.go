package sim

import (
	"fmt"
	"math"
)

// Resource is a FIFO single-channel server: requests are serviced one at a
// time in arrival order. Storage servers and their network links are
// Resources in the cluster simulation — a sub-request that arrives while
// the server is busy waits behind the in-flight work, which is how
// multi-process contention (Fig. 9 and Fig. 11 of the paper) arises.
type Resource struct {
	Name string

	eng       *Engine
	busyUntil float64
	inflight  int

	// Accumulated statistics.
	busyTime float64 // total service time performed
	served   uint64  // number of requests completed
}

// NewResource creates a FIFO resource bound to an engine.
func NewResource(eng *Engine, name string) *Resource {
	if eng == nil {
		panic("sim: NewResource with nil engine")
	}
	return &Resource{Name: name, eng: eng}
}

// Acquire enqueues a request with the given service time. done (optional)
// runs at completion with the virtual start and end times of service.
// FIFO semantics: service starts at max(now, end of previous request).
func (r *Resource) Acquire(service float64, done func(start, end float64)) {
	start, end := r.Reserve(service)
	r.eng.At(end, func() {
		r.Complete()
		if done != nil {
			done(start, end)
		}
	})
}

// Reserve claims the next FIFO service window without scheduling the
// completion event, returning the window's virtual start and end. The
// caller must schedule its own event at end and call Complete from it —
// the split exists so pooled submission descriptors can use AtCall and
// keep the whole acquire/complete cycle allocation-free. Accounting is
// identical to Acquire, which is built on it.
func (r *Resource) Reserve(service float64) (start, end float64) {
	if service < 0 || math.IsNaN(service) {
		panic(fmt.Sprintf("sim: resource %s acquire with invalid service time %v", r.Name, service))
	}
	start = r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + service
	r.busyUntil = end
	r.busyTime += service
	r.inflight++
	return start, end
}

// Complete records the completion of a window claimed with Reserve. It
// must be called exactly once per Reserve, at the window's end event.
func (r *Resource) Complete() {
	r.inflight--
	r.served++
}

// Rescind rolls back a reservation that has not started service, undoing
// its Reserve accounting. Under eager FIFO reservation every later
// arrival's start time was fixed at submission, so only the queue tail can
// be withdrawn: Rescind succeeds exactly when the window is the last one
// reserved (end == BusyUntil) and its service has not begun (start is
// strictly in the future). On success the caller must NOT call Complete
// for the window; its completion event, if already scheduled, must no-op.
// When Rescind reports false the window burns — the device performs the
// work and the caller suppresses only the commit (see server.Pending).
func (r *Resource) Rescind(start, end float64) bool {
	if r.busyUntil != end || start <= r.eng.Now() {
		return false
	}
	r.busyUntil = start
	r.busyTime -= end - start
	r.inflight--
	return true
}

// BusyUntil returns the virtual time at which the queue drains.
func (r *Resource) BusyUntil() float64 { return r.busyUntil }

// Depth returns the number of requests currently queued or in service.
func (r *Resource) Depth() int { return r.inflight }

// BusyTime returns total accumulated service time.
func (r *Resource) BusyTime() float64 { return r.busyTime }

// Served returns the number of completed requests.
func (r *Resource) Served() uint64 { return r.served }

// Utilization returns busyTime / elapsed for a given makespan.
func (r *Resource) Utilization(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return r.busyTime / makespan
}

// Barrier waits for n completions and then invokes fn once. It is the
// simulation analogue of MPI_Barrier / waiting for all sub-requests of a
// striped request.
type Barrier struct {
	remaining int
	fn        func()
	fired     bool
}

// NewBarrier creates a barrier expecting n arrivals. n must be positive.
func NewBarrier(n int, fn func()) *Barrier {
	if n <= 0 {
		panic("sim: barrier with non-positive count")
	}
	if fn == nil {
		panic("sim: barrier with nil callback")
	}
	return &Barrier{remaining: n, fn: fn}
}

// Arrive signals one completion; the n-th arrival fires the callback.
// Arrivals beyond n panic — they indicate double-completion bugs.
func (b *Barrier) Arrive() {
	if b.fired {
		panic("sim: barrier arrival after firing")
	}
	b.remaining--
	if b.remaining == 0 {
		b.fired = true
		b.fn()
	}
}

// Remaining returns the arrivals still awaited.
func (b *Barrier) Remaining() int { return b.remaining }
