package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Error("zero engine should start empty at time 0")
	}
	if e.Step() {
		t.Error("Step on empty engine should report false")
	}
	if got := e.Run(); got != 0 {
		t.Errorf("Run on empty engine = %v, want 0", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(2.0, func() { order = append(order, 2) })
	e.Schedule(1.0, func() { order = append(order, 1) })
	e.Schedule(3.0, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3.0 {
		t.Errorf("final time = %v, want 3.0", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events must fire in schedule order: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.Schedule(1.0, func() {
		times = append(times, e.Now())
		e.Schedule(0.5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1.0 || times[1] != 1.5 {
		t.Errorf("times = %v", times)
	}
}

func TestScheduleZeroDelay(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(1, func() {
		e.Schedule(0, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Error("zero-delay event did not run")
	}
}

func TestSchedulePanics(t *testing.T) {
	var e Engine
	mustPanic(t, "negative delay", func() { e.Schedule(-1, func() {}) })
	mustPanic(t, "NaN delay", func() { e.Schedule(math.NaN(), func() {}) })
	mustPanic(t, "nil fn", func() { e.Schedule(1, nil) })
	e.Schedule(5, func() {})
	e.Run()
	mustPanic(t, "past time", func() { e.At(1, func() {}) })
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(2.5)
	if n != 2 || len(fired) != 2 {
		t.Errorf("RunUntil fired %d events (%v), want 2", n, fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("clock = %v, want 2.5 after RunUntil", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("remaining events lost: %v", fired)
	}
}

func TestFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", e.Fired())
	}
}

// Property: events always fire in non-decreasing time order.
func TestEventOrderQuick(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		var e Engine
		var fired []float64
		for _, d := range delaysRaw {
			e.Schedule(float64(d)/100.0, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	var e Engine
	r := NewResource(&e, "srv")
	var ends []float64
	// Three requests arriving at time 0 with service 1s each must finish at
	// 1, 2, 3 (FIFO serialization).
	for i := 0; i < 3; i++ {
		r.Acquire(1.0, func(start, end float64) { ends = append(ends, end) })
	}
	e.Run()
	want := []float64{1, 2, 3}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.Served() != 3 {
		t.Errorf("Served = %d", r.Served())
	}
	if math.Abs(r.BusyTime()-3.0) > 1e-12 {
		t.Errorf("BusyTime = %v", r.BusyTime())
	}
	if got := r.Utilization(6.0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if r.Utilization(0) != 0 {
		t.Error("Utilization with zero makespan should be 0")
	}
}

func TestResourceIdleGap(t *testing.T) {
	var e Engine
	r := NewResource(&e, "srv")
	var starts []float64
	e.Schedule(0, func() { r.Acquire(1, func(s, _ float64) { starts = append(starts, s) }) })
	// Second request arrives after the first completed: no queueing.
	e.Schedule(5, func() { r.Acquire(1, func(s, _ float64) { starts = append(starts, s) }) })
	e.Run()
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 5 {
		t.Errorf("starts = %v, want [0 5]", starts)
	}
}

func TestResourcePanics(t *testing.T) {
	mustPanic(t, "nil engine", func() { NewResource(nil, "x") })
	var e Engine
	r := NewResource(&e, "x")
	mustPanic(t, "negative service", func() { r.Acquire(-1, nil) })
	mustPanic(t, "NaN service", func() { r.Acquire(math.NaN(), nil) })
}

// Property: for any arrival pattern at time 0, a FIFO resource's makespan
// equals the sum of service times.
func TestResourceMakespanQuick(t *testing.T) {
	f := func(servicesRaw []uint8) bool {
		var e Engine
		r := NewResource(&e, "srv")
		var sum float64
		for _, s := range servicesRaw {
			sv := float64(s) / 10.0
			sum += sv
			r.Acquire(sv, nil)
		}
		end := e.Run()
		return math.Abs(end-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarrier(t *testing.T) {
	fired := false
	b := NewBarrier(3, func() { fired = true })
	b.Arrive()
	b.Arrive()
	if fired {
		t.Error("barrier fired early")
	}
	if b.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", b.Remaining())
	}
	b.Arrive()
	if !fired {
		t.Error("barrier did not fire")
	}
	mustPanic(t, "extra arrival", b.Arrive)
}

func TestBarrierPanics(t *testing.T) {
	mustPanic(t, "zero count", func() { NewBarrier(0, func() {}) })
	mustPanic(t, "nil fn", func() { NewBarrier(1, nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", name)
		}
	}()
	fn()
}
