package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 100; j++ {
			e.Schedule(float64(j%10), func() {})
		}
		e.Run()
	}
}

func BenchmarkResourceAcquire(b *testing.B) {
	var e Engine
	r := NewResource(&e, "srv")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(0.001, nil)
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}
