package sim

import "testing"

func nop() {}

// BenchmarkEngineScheduleStep measures the steady-state cost of the
// simulator's hottest loop: one Schedule plus one Step. With the inlined
// concrete-typed event heap this is allocation-free (container/heap boxed
// every event into an `any` on both Push and Pop).
func BenchmarkEngineScheduleStep(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, nop)
		e.Step()
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 100; j++ {
			e.Schedule(float64(j%10), func() {})
		}
		e.Run()
	}
}

func BenchmarkResourceAcquire(b *testing.B) {
	var e Engine
	r := NewResource(&e, "srv")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(0.001, nil)
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}
