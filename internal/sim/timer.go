package sim

// Timer is a cancellable virtual-time alarm. The engine's event heap has
// no removal — events are immutable once scheduled — so a Timer wraps its
// event with a liveness flag: Stop marks the timer dead and the event
// becomes a no-op when it fires. Clients use timers for per-attempt
// timeouts, where the common case (the attempt completes first) must be
// able to disarm the pending deadline.
//
// Timers are driven from engine callbacks, which are single-threaded like
// the engine itself.
type Timer struct {
	fired   bool
	stopped bool
}

// AfterFunc schedules fn to run after delay seconds of virtual time and
// returns a Timer that can cancel it. A stopped timer's event still
// occupies the heap until its time arrives, but fn does not run.
func (e *Engine) AfterFunc(delay float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil callback")
	}
	t := &Timer{}
	e.Schedule(delay, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Stop cancels the timer, reporting whether it was still pending (false
// when it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }
