package sim

// Timer is a cancellable virtual-time alarm. The engine's event heap has
// no removal — events are immutable once scheduled — so a Timer marks its
// event with a liveness flag: Stop marks the timer dead, the event fires
// as a no-op when its time arrives, and once dead events dominate the
// heap the engine compacts them away (see Engine.compactDead). Clients
// use timers for per-attempt timeouts, where the common case (the attempt
// completes first) must be able to disarm the pending deadline.
//
// Timers are driven from engine callbacks, which are single-threaded like
// the engine itself.
type Timer struct {
	eng     *Engine
	fired   bool
	stopped bool
}

// AfterFunc schedules fn to run after delay seconds of virtual time and
// returns a Timer that can cancel it. A stopped timer's event occupies
// the heap until its time arrives or the engine compacts dead events,
// whichever comes first; fn does not run either way.
func (e *Engine) AfterFunc(delay float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil callback")
	}
	if delay < 0 {
		panic("sim: AfterFunc with negative delay")
	}
	t := &Timer{eng: e}
	e.seq++
	e.events.push(event{time: e.now + delay, seq: e.seq, fn: fn, timer: t})
	return t
}

// Stop cancels the timer, reporting whether it was still pending (false
// when it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.eng.timerStopped()
	return true
}

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }
