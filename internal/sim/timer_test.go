package sim

import "testing"

func TestTimerFires(t *testing.T) {
	eng := &Engine{}
	var at float64 = -1
	tm := eng.AfterFunc(2, func() { at = eng.Now() })
	eng.Run()
	if at != 2 {
		t.Errorf("timer fired at %v, want 2", at)
	}
	if !tm.Fired() || tm.Stopped() {
		t.Errorf("state after firing: fired=%v stopped=%v", tm.Fired(), tm.Stopped())
	}
	if tm.Stop() {
		t.Error("Stop after firing must report false")
	}
}

func TestTimerStop(t *testing.T) {
	eng := &Engine{}
	ran := false
	tm := eng.AfterFunc(2, func() { ran = true })
	if !tm.Stop() {
		t.Error("first Stop must report true")
	}
	if tm.Stop() {
		t.Error("second Stop must report false")
	}
	eng.Run()
	if ran {
		t.Error("stopped timer must not run its callback")
	}
	if tm.Fired() || !tm.Stopped() {
		t.Errorf("state after stop: fired=%v stopped=%v", tm.Fired(), tm.Stopped())
	}
	// The dead event still advanced the clock when it fired as a no-op.
	if eng.Now() != 2 {
		t.Errorf("clock = %v, want 2 (dead event still occupies the heap)", eng.Now())
	}
}

func TestTimerStopFromEarlierEvent(t *testing.T) {
	eng := &Engine{}
	ran := false
	tm := eng.AfterFunc(5, func() { ran = true })
	eng.Schedule(1, func() { tm.Stop() })
	eng.Run()
	if ran {
		t.Error("timer stopped at t=1 must not fire at t=5")
	}
}
