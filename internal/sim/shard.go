package sim

import "mhafs/internal/parfan"

// Sharded execution of independent engines.
//
// A single Engine is strictly single-threaded; scaling past one timeline
// therefore means many engines, each owning a shared-nothing cell of the
// simulated world (one server group, its clients, its files). Events never
// cross engines, so each engine's execution — and every byte it produces —
// is a pure function of its own initial schedule, independent of when the
// other engines advance. That is the same shape as parfan's per-index
// slots (DESIGN.md §12), lifted from result slots to whole simulations,
// and it is why the functions below can change how engines are grouped and
// parallelized without changing any output: partitioning affects wall
// clock only, never bytes. DESIGN.md §14 spells out the argument.

// RunInterleaved drains every engine, stepping them in globally merged
// (time, engine index, seq) order, and returns the total number of events
// executed. The merge order is the one a single engine hosting all the
// cells would have used (with engine index as the tiebreak between cells
// scheduled at identical times), which makes interleaved stepping easy to
// reason about in logs and debuggers — but because the engines share
// nothing, any stepping order produces the same final state.
func RunInterleaved(engines []*Engine) uint64 {
	var fired uint64
	for {
		best := -1
		var bt float64
		var bs uint64
		for i, e := range engines {
			t, s, ok := e.peek()
			if !ok {
				continue
			}
			if best < 0 || t < bt || (t == bt && s < bs) {
				best, bt, bs = i, t, s
			}
		}
		if best < 0 {
			return fired
		}
		engines[best].Step()
		fired++
	}
}

// RunSharded partitions engines into the given number of contiguous
// shards, drains each shard with RunInterleaved, and fans the shards out
// across at most workers goroutines via parfan.Map. It returns the total
// number of events executed.
//
// Because the engines are shared-nothing, the result bytes of every
// engine are identical for every (shards, workers) pair — including
// (1, 1), the serial path — so shard and worker counts are pure
// performance knobs, verified by TestRunShardedEquivalence and the XL
// determinism matrix in internal/bench.
func RunSharded(engines []*Engine, shards, workers int) uint64 {
	n := len(engines)
	if n == 0 {
		return 0
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	counts := parfan.Map(shards, workers, func(s int) uint64 {
		// Contiguous partition: shard s owns engines [lo, hi). The split is
		// a function of (n, shards) alone, so the grouping — irrelevant to
		// bytes, visible in traces — is itself reproducible.
		lo := s * n / shards
		hi := (s + 1) * n / shards
		return RunInterleaved(engines[lo:hi])
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}
