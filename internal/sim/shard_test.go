package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// buildCell populates eng with a deterministic little workload — a FIFO
// resource fed by staggered arrivals, a cancelled timer, a live timer —
// and returns the slice the workload appends its completion log to. The
// log is a pure function of idx, so two cells built with the same idx
// must produce identical logs no matter how their engines are stepped.
func buildCell(eng *Engine, idx int) *[]string {
	log := &[]string{}
	res := NewResource(eng, fmt.Sprintf("cell%d", idx))
	for j := 0; j < 5; j++ {
		j := j
		eng.Schedule(float64(j)+float64(idx)*0.1, func() {
			res.Acquire(1.5, func(start, end float64) {
				*log = append(*log, fmt.Sprintf("cell%d req%d %.3f-%.3f", idx, j, start, end))
			})
		})
	}
	dead := eng.AfterFunc(100, func() { *log = append(*log, "dead timer fired") })
	eng.Schedule(0.5, func() { dead.Stop() })
	eng.AfterFunc(3, func() { *log = append(*log, fmt.Sprintf("cell%d alarm %.3f", idx, eng.Now())) })
	return log
}

// buildCells returns n freshly built engines and their logs.
func buildCells(n int) ([]*Engine, []*[]string) {
	engines := make([]*Engine, n)
	logs := make([]*[]string, n)
	for i := range engines {
		engines[i] = &Engine{}
		logs[i] = buildCell(engines[i], i)
	}
	return engines, logs
}

func TestRunShardedEquivalence(t *testing.T) {
	const cells = 6
	serial, serialLogs := buildCells(cells)
	var serialFired uint64
	for _, e := range serial {
		e.Run()
		serialFired += e.Fired()
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			engines, logs := buildCells(cells)
			fired := RunSharded(engines, shards, workers)
			if fired != serialFired {
				t.Errorf("%s: fired %d events, serial fired %d", name, fired, serialFired)
			}
			for i := range logs {
				if !reflect.DeepEqual(*logs[i], *serialLogs[i]) {
					t.Errorf("%s: cell %d log diverged\n got %v\nwant %v", name, i, *logs[i], *serialLogs[i])
				}
				if got, want := engines[i].Now(), serial[i].Now(); got != want {
					t.Errorf("%s: cell %d final clock %v, serial %v", name, i, got, want)
				}
			}
		}
	}
}

func TestRunInterleavedMergeOrder(t *testing.T) {
	// Two engines with events at interleaving times: the merged stepping
	// order must be by (time, engine index, seq), observable through a
	// shared trace — safe here because RunInterleaved is single-threaded.
	a, b := &Engine{}, &Engine{}
	var order []string
	a.Schedule(1, func() { order = append(order, "a1") })
	b.Schedule(0.5, func() { order = append(order, "b0.5") })
	a.Schedule(2, func() { order = append(order, "a2") })
	b.Schedule(2, func() { order = append(order, "b2") })
	if fired := RunInterleaved([]*Engine{a, b}); fired != 4 {
		t.Fatalf("fired %d events, want 4", fired)
	}
	// At t=2 both engines have an event; engine index breaks the tie.
	want := []string{"b0.5", "a1", "a2", "b2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("interleave order %v, want %v", order, want)
	}
}

func TestRunShardedEmpty(t *testing.T) {
	if fired := RunSharded(nil, 4, 4); fired != 0 {
		t.Errorf("fired %d on no engines, want 0", fired)
	}
	// More shards than engines must clamp rather than index out of range.
	e := &Engine{}
	e.Schedule(1, func() {})
	if fired := RunSharded([]*Engine{e}, 8, 4); fired != 1 {
		t.Errorf("fired %d, want 1", fired)
	}
}

func TestDeadTimerCompaction(t *testing.T) {
	eng := &Engine{}
	const n = 4 * compactDeadMin
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = eng.AfterFunc(1000, func() { t.Error("stopped timer ran") })
	}
	var ran bool
	eng.Schedule(1, func() { ran = true })
	if got := eng.Pending(); got != n+1 {
		t.Fatalf("Pending() = %d before stops, want %d", got, n+1)
	}
	for _, tm := range timers {
		tm.Stop()
	}
	// Every cancelled timer vanishes from Pending immediately, compacted or
	// not: a dead event can no longer run anything.
	if got := eng.Pending(); got != 1 {
		t.Errorf("Pending() = %d after stops, want 1", got)
	}
	// Compaction must have physically shrunk the heap: the trigger fires
	// whenever dead events reach compactDeadMin and half the heap, so at
	// most compactDeadMin residual dead events (plus the live one) survive
	// the stop burst — far-future cancelled deadlines cannot pile up (the
	// retry stage cancels one timeout per successful attempt).
	if len(eng.events) > compactDeadMin+1 {
		t.Errorf("heap holds %d events after stopping %d timers, want <= %d", len(eng.events), n, compactDeadMin+1)
	}
	eng.Run()
	if !ran {
		t.Error("live event did not run")
	}
	if got := eng.Pending(); got != 0 {
		t.Errorf("Pending() = %d after drain, want 0", got)
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	// Interleave live events with a compaction-triggering burst of
	// cancellations and verify the surviving events still run in (time,
	// seq) order with correct clocks.
	eng := &Engine{}
	var got []float64
	for i := 0; i < 10; i++ {
		at := float64(i)*2 + 10
		eng.At(at, func() { got = append(got, eng.Now()) })
	}
	timers := make([]*Timer, 2*compactDeadMin)
	for i := range timers {
		timers[i] = eng.AfterFunc(500, func() {})
	}
	eng.Schedule(1, func() {
		for _, tm := range timers {
			tm.Stop()
		}
	})
	eng.Run()
	want := make([]float64, 10)
	for i := range want {
		want[i] = float64(i)*2 + 10
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("execution times %v, want %v", got, want)
	}
}
