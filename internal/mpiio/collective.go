package mpiio

import (
	"fmt"
	"sort"

	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// Collective (two-phase) I/O, the optimization MPI-IO applies when many
// ranks access interleaved pieces of a shared file together: instead of
// each rank issuing its own small, non-contiguous request, the pieces are
// exchanged over the interconnect so that a few aggregator ranks issue
// large contiguous file-domain requests. The MHA paper's middleware sits
// exactly at this layer (its BTIO runs use the MPI-IO library); collective
// operations flow through the same tracing and redirection hooks as
// independent ones.

// Piece is one rank's contribution to a collective operation.
type Piece struct {
	Rank   int
	Offset int64
	// Data is the payload for writes; for reads it is the destination
	// buffer, filled at completion.
	Data []byte
}

// CollectiveOptions tunes the two-phase exchange.
type CollectiveOptions struct {
	// Aggregators is the number of ranks issuing file-domain requests
	// (MPI-IO's cb_nodes). 0 selects one aggregator per four pieces,
	// at least one.
	Aggregators int
}

func (o CollectiveOptions) aggregators(pieces int) int {
	a := o.Aggregators
	if a <= 0 {
		a = (pieces + 3) / 4
	}
	if a < 1 {
		a = 1
	}
	if a > pieces {
		a = pieces
	}
	return a
}

// CollectiveWrite performs a two-phase collective write of the pieces to
// the named file. Pieces must not overlap. done (optional) receives the
// virtual completion time of the slowest file-domain request. The shuffle
// phase charges each aggregator the network time of the bytes it gathers.
func (m *Middleware) CollectiveWrite(name string, pieces []Piece, opts CollectiveOptions, done func(end float64)) error {
	return m.collective(trace.OpWrite, name, pieces, opts, done)
}

// CollectiveRead performs a two-phase collective read: aggregators read
// contiguous file domains and scatter the bytes back into the pieces'
// buffers (filled when done runs).
func (m *Middleware) CollectiveRead(name string, pieces []Piece, opts CollectiveOptions, done func(end float64)) error {
	return m.collective(trace.OpRead, name, pieces, opts, done)
}

// domain is one aggregator's contiguous file range with the piece slices
// that fall into it.
type domain struct {
	start, end int64
	pieces     []Piece
}

func (m *Middleware) collective(op trace.Op, name string, pieces []Piece, opts CollectiveOptions, done func(end float64)) error {
	if len(pieces) == 0 {
		if done != nil {
			m.Cluster.Eng.Schedule(0, func() { done(m.Cluster.Eng.Now()) })
		}
		return nil
	}
	sorted := make([]Piece, len(pieces))
	copy(sorted, pieces)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	for i, p := range sorted {
		if p.Offset < 0 {
			return fmt.Errorf("mpiio: collective piece with negative offset %d", p.Offset)
		}
		if len(p.Data) == 0 {
			return fmt.Errorf("mpiio: collective piece with empty buffer at offset %d", p.Offset)
		}
		if i > 0 && sorted[i-1].Offset+int64(len(sorted[i-1].Data)) > p.Offset {
			return fmt.Errorf("mpiio: collective pieces overlap at offset %d", p.Offset)
		}
	}
	// Resolve the target now (creating it when AutoCreate permits) so a
	// missing file surfaces as a synchronous error to the caller rather
	// than a failure inside the scheduled aggregator callbacks, where no
	// error return exists. Creation is metadata-only and consumes no
	// virtual time, so doing it here is timing-neutral.
	if _, err := m.ResolveFile(name); err != nil {
		return fmt.Errorf("mpiio: collective %v: %w", op, err)
	}

	// Record the logical per-rank requests (the application's view). The
	// aggregated file-domain requests below run untraced instead.
	if c := m.Collector(); c != nil {
		for _, p := range sorted {
			c.Record(1000+p.Rank, p.Rank, 3, name, op, p.Offset, int64(len(p.Data)))
		}
	}

	// Partition pieces into contiguous file domains, one per aggregator,
	// balancing piece counts (MPI-IO divides the accessed range; dividing
	// the piece list keeps domains contiguous because pieces are sorted).
	nAgg := opts.aggregators(len(sorted))
	domains := make([]domain, 0, nAgg)
	per := (len(sorted) + nAgg - 1) / nAgg
	for i := 0; i < len(sorted); i += per {
		j := i + per
		if j > len(sorted) {
			j = len(sorted)
		}
		d := domain{
			start:  sorted[i].Offset,
			end:    sorted[j-1].Offset + int64(len(sorted[j-1].Data)),
			pieces: sorted[i:j],
		}
		domains = append(domains, d)
	}

	eng := m.Cluster.Eng
	latest := new(float64)
	barrier := sim.NewBarrier(len(domains), func() {
		if done != nil {
			done(*latest)
		}
	})
	arrive := func(end float64) {
		if end > *latest {
			*latest = end
		}
		barrier.Arrive()
	}

	for _, d := range domains {
		d := d
		// Phase 1: shuffle — the aggregator exchanges every byte of its
		// domain with the owning ranks over the interconnect (one message
		// per remote piece). Pieces already owned by the aggregator rank
		// (the first piece's rank, by convention) move for free.
		aggRank := d.pieces[0].Rank
		var shuffle float64
		for _, p := range d.pieces[1:] {
			if p.Rank != aggRank {
				shuffle += m.Cluster.Config().Net.TransferTime(int64(len(p.Data)))
			}
		}
		eng.Schedule(shuffle, func() {
			if op == trace.OpWrite {
				m.collectiveWriteDomain(name, aggRank, d, arrive)
			} else {
				m.collectiveReadDomain(name, aggRank, d, arrive)
			}
		})
	}
	return nil
}

// collectiveWriteDomain gathers the domain's pieces into one buffer (gaps
// between pieces are preserved by issuing per-gap-free runs) and writes.
func (m *Middleware) collectiveWriteDomain(name string, aggRank int, d domain, arrive func(end float64)) {
	// Issue one request per gap-free run; the domain completes when the
	// slowest run completes.
	runs := contiguousRuns(d.pieces)
	latest := new(float64)
	left := len(runs)
	for _, run := range runs {
		buf := make([]byte, 0, run.end-run.start)
		for _, p := range run.pieces {
			buf = append(buf, p.Data...)
		}
		h := &FileHandle{mw: m, name: name, rank: aggRank, pid: 1000 + aggRank, fd: 3, untraced: true}
		err := h.issue(trace.OpWrite, run.start, buf, func(end float64) {
			if end > *latest {
				*latest = end
			}
			left--
			if left == 0 {
				arrive(*latest)
			}
		})
		if err != nil {
			// Structural errors were validated up front; surface loudly.
			panic(fmt.Sprintf("mpiio: collective domain write: %v", err))
		}
	}
}

// collectiveReadDomain reads each gap-free run contiguously and scatters
// the bytes back into the pieces' buffers.
func (m *Middleware) collectiveReadDomain(name string, aggRank int, d domain, arrive func(end float64)) {
	runs := contiguousRuns(d.pieces)
	latest := new(float64)
	left := len(runs)
	for _, run := range runs {
		run := run
		buf := make([]byte, run.end-run.start)
		h := &FileHandle{mw: m, name: name, rank: aggRank, pid: 1000 + aggRank, fd: 3, untraced: true}
		err := h.issue(trace.OpRead, run.start, buf, func(end float64) {
			var cursor int64
			for _, p := range run.pieces {
				off := p.Offset - run.start
				copy(p.Data, buf[off:off+int64(len(p.Data))])
				cursor += int64(len(p.Data))
			}
			if end > *latest {
				*latest = end
			}
			left--
			if left == 0 {
				arrive(*latest)
			}
		})
		if err != nil {
			// The target was resolved and the pieces validated before the
			// domains were scheduled, so any error here is a programmer error.
			panic(fmt.Sprintf("mpiio: collective domain read: %v", err))
		}
	}
}

// run is a gap-free stretch of pieces.
type pieceRun struct {
	start, end int64
	pieces     []Piece
}

// contiguousRuns groups sorted pieces into maximal gap-free runs.
func contiguousRuns(pieces []Piece) []pieceRun {
	var runs []pieceRun
	cur := pieceRun{start: pieces[0].Offset, end: pieces[0].Offset, pieces: nil}
	for _, p := range pieces {
		if p.Offset != cur.end {
			if len(cur.pieces) > 0 {
				runs = append(runs, cur)
			}
			cur = pieceRun{start: p.Offset, end: p.Offset}
		}
		cur.pieces = append(cur.pieces, p)
		cur.end += int64(len(p.Data))
	}
	if len(cur.pieces) > 0 {
		runs = append(runs, cur)
	}
	return runs
}
