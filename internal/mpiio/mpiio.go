// Package mpiio is the miniature MPI-IO-like middleware layer through
// which applications access the simulated parallel file system.
//
// It is the repository's analogue of the paper's modified MPICH2 library:
// the tracing hook (I/O Collector) records every request during a
// profiling run, and the redirection hook translates request extents
// through the Data Reordering Table before forwarding the operations to
// the underlying servers — transparently to the application, which only
// sees Open/ReadAt/WriteAt/Close on the original file names.
package mpiio

import (
	"fmt"

	"mhafs/internal/iosig"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// Middleware binds a cluster with the optional tracing and redirection
// hooks.
type Middleware struct {
	Cluster *pfs.Cluster

	// Collector, when non-nil and enabled, records every ReadAt/WriteAt
	// (the tracing phase).
	Collector *iosig.Collector

	// Redirector, when non-nil, translates extents through the DRT (the
	// redirection phase) and charges its lookup latency per request.
	Redirector *reorder.Redirector

	// AutoCreate makes WriteAt/ReadAt create missing target files with the
	// cluster default layout, like a PFS creating files on first write.
	AutoCreate bool

	nextFD int
}

// New creates a middleware over the cluster with no hooks installed.
func New(c *pfs.Cluster) *Middleware {
	if c == nil {
		panic("mpiio: nil cluster")
	}
	return &Middleware{Cluster: c, AutoCreate: true}
}

// FileHandle is one rank's open file, analogous to an MPI_File.
type FileHandle struct {
	mw   *Middleware
	name string
	rank int
	pid  int
	fd   int
}

// Open opens name for the given rank, charging one MDS lookup in virtual
// time. The target must exist unless AutoCreate is set.
func (m *Middleware) Open(name string, rank int) (*FileHandle, error) {
	if _, ok := m.Cluster.Lookup(name); !ok {
		if !m.AutoCreate {
			return nil, fmt.Errorf("mpiio: open %q: no such file", name)
		}
		if _, err := m.Cluster.CreateDefault(name); err != nil {
			return nil, err
		}
	}
	m.nextFD++
	h := &FileHandle{mw: m, name: name, rank: rank, pid: 1000 + rank, fd: m.nextFD}
	// Charge the MDS lookup asynchronously; the first data operation will
	// queue behind it only through the MDS resource, matching a real open.
	if err := m.Cluster.OpenHandle(name, nil); err != nil {
		return nil, err
	}
	return h, nil
}

// Name returns the logical (original) file name the handle refers to.
func (h *FileHandle) Name() string { return h.name }

// Rank returns the MPI rank owning the handle.
func (h *FileHandle) Rank() int { return h.rank }

// targetOp issues one operation against a (possibly redirected) target
// file, creating it if permitted.
func (h *FileHandle) targetFile(name string) (*pfs.File, error) {
	f, ok := h.mw.Cluster.Lookup(name)
	if ok {
		return f, nil
	}
	if !h.mw.AutoCreate {
		return nil, fmt.Errorf("mpiio: target %q does not exist", name)
	}
	return h.mw.Cluster.CreateDefault(name)
}

// WriteAt schedules a write of data at offset off in the logical file.
// done (optional) receives the virtual completion time of the slowest
// piece. The caller drives the simulation engine.
func (h *FileHandle) WriteAt(data []byte, off int64, done func(end float64)) error {
	return h.issue(trace.OpWrite, off, data, done)
}

// ReadAt schedules a read into buf from offset off; buf is populated when
// done runs.
func (h *FileHandle) ReadAt(buf []byte, off int64, done func(end float64)) error {
	return h.issue(trace.OpRead, off, buf, done)
}

func (h *FileHandle) issue(op trace.Op, off int64, buf []byte, done func(end float64)) error {
	if off < 0 {
		return fmt.Errorf("mpiio: negative offset %d", off)
	}
	n := int64(len(buf))
	eng := h.mw.Cluster.Eng
	if c := h.mw.Collector; c != nil && n > 0 {
		c.Record(h.pid, h.rank, h.fd, h.name, op, off, n)
	}
	if n == 0 {
		if done != nil {
			eng.Schedule(0, func() { done(eng.Now()) })
		}
		return nil
	}

	r := h.mw.Redirector
	if r == nil {
		f, err := h.targetFile(h.name)
		if err != nil {
			return err
		}
		return h.forward(op, f, off, buf, done)
	}

	// Redirection: charge the DRT lookup, then forward each piece.
	targets := r.Resolve(h.name, off, n)
	type piece struct {
		f    *pfs.File
		off  int64
		data []byte
	}
	pieces := make([]piece, 0, len(targets))
	var cursor int64
	for _, tg := range targets {
		f, err := h.targetFile(tg.File)
		if err != nil {
			return err
		}
		pieces = append(pieces, piece{f: f, off: tg.Offset, data: buf[cursor : cursor+tg.Size]})
		cursor += tg.Size
	}
	if cursor != n {
		return fmt.Errorf("mpiio: redirection covered %d of %d bytes", cursor, n)
	}
	eng.Schedule(r.LookupTime, func() {
		latest := new(float64)
		barrier := sim.NewBarrier(len(pieces), func() {
			if done != nil {
				done(*latest)
			}
		})
		arrive := func(end float64) {
			if end > *latest {
				*latest = end
			}
			barrier.Arrive()
		}
		for _, p := range pieces {
			// Errors cannot occur here: extents were validated above.
			if op == trace.OpWrite {
				_ = h.mw.Cluster.Write(p.f, p.off, p.data, arrive)
			} else {
				_ = h.mw.Cluster.Read(p.f, p.off, p.data, arrive)
			}
		}
	})
	return nil
}

// forward issues a non-redirected operation.
func (h *FileHandle) forward(op trace.Op, f *pfs.File, off int64, buf []byte, done func(end float64)) error {
	if op == trace.OpWrite {
		return h.mw.Cluster.Write(f, off, buf, done)
	}
	return h.mw.Cluster.Read(f, off, buf, done)
}

// WriteAtSync writes and runs the engine to completion (single-threaded
// convenience).
func (h *FileHandle) WriteAtSync(data []byte, off int64) (float64, error) {
	var end float64
	if err := h.WriteAt(data, off, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	h.mw.Cluster.Eng.Run()
	return end, nil
}

// ReadAtSync reads and runs the engine to completion.
func (h *FileHandle) ReadAtSync(buf []byte, off int64) (float64, error) {
	var end float64
	if err := h.ReadAt(buf, off, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	h.mw.Cluster.Eng.Run()
	return end, nil
}

// Close is currently a metadata no-op, present for API fidelity.
func (h *FileHandle) Close() error { return nil }
