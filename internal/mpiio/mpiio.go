// Package mpiio is the miniature MPI-IO-like middleware layer through
// which applications access the simulated parallel file system.
//
// It is the repository's analogue of the paper's modified MPICH2 library.
// Every independent read and write is described by one iopath.Request and
// submitted into the staged I/O pipeline
//
//	trace ──▶ (interceptors…) ──▶ redirect ──▶ stripe ──▶ server
//
// so the tracing hook (I/O Collector) and the redirection hook (Data
// Reordering Table) are pipeline stages installed with SetCollector and
// SetRedirector rather than hard-wired special cases, and cross-cutting
// concerns register as interceptors with Intercept — all transparently to
// the application, which only sees Open/ReadAt/WriteAt/Close on the
// original file names.
package mpiio

import (
	"fmt"

	"mhafs/internal/adaptive"
	"mhafs/internal/fault"
	"mhafs/internal/iopath"
	"mhafs/internal/iosig"
	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/reorder"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// StageMeter names the application-level telemetry interceptor installed
// by EnableTelemetry.
const StageMeter = "telemetry/meter"

// Middleware binds a cluster to an I/O pipeline.
type Middleware struct {
	Cluster *pfs.Cluster

	// AutoCreate makes WriteAt/ReadAt create missing target files with the
	// cluster default layout, like a PFS creating files on first write.
	AutoCreate bool

	pipe       *iopath.Pipeline
	collector  *iosig.Collector
	redirector *reorder.Redirector
	telemetry  *telemetry.Registry
	resilience *iopath.Resilience
	retryStage *iopath.RetryServerStage
	failover   *reorder.Failover
	adaptive   *adaptive.Scheduler
	nextFD     int
}

// New creates a middleware over the cluster with the default stage chain
// (trace pass-through, stripe fan-out, server submission) and no hooks
// installed.
func New(c *pfs.Cluster) *Middleware {
	if c == nil {
		panic("mpiio: nil cluster") // wiring bug, not a runtime condition
	}
	m := &Middleware{Cluster: c, AutoCreate: true}
	m.pipe = iopath.NewPipeline(c.Eng)
	// Registration on a fresh pipeline cannot fail: names are distinct.
	must(m.pipe.Append(iopath.StageTrace, &iopath.Capture{}))
	must(m.pipe.Append(iopath.StageStripe, &iopath.Striper{Cluster: c, Files: m}))
	must(m.pipe.Append(iopath.StageServer, iopath.ServerStage{}))
	return m
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("mpiio: pipeline wiring: %v", err))
	}
}

// Pipeline exposes the stage chain for direct composition (stage listing,
// custom placement). Most callers use SetCollector, SetRedirector and
// Intercept instead.
func (m *Middleware) Pipeline() *iopath.Pipeline { return m.pipe }

// SetCollector installs (or, with nil, clears) the tracing stage's
// collector. Configuration is not safe concurrently with submission.
func (m *Middleware) SetCollector(col *iosig.Collector) {
	m.collector = col
	must(m.pipe.Replace(iopath.StageTrace, &iopath.Capture{Collector: col}))
}

// Collector returns the installed collector (nil when tracing is not
// wired).
func (m *Middleware) Collector() *iosig.Collector { return m.collector }

// SetRedirector installs, replaces or (with nil) removes the DRT
// redirection stage. When telemetry is enabled the redirector inherits
// the registry, so its DRT hit/miss counters survive generation swaps.
// Configuration is not safe concurrently with submission.
func (m *Middleware) SetRedirector(r *reorder.Redirector) {
	m.redirector = r
	if r == nil {
		m.pipe.Remove(iopath.StageRedirect)
		return
	}
	if m.telemetry != nil {
		r.SetTelemetry(m.telemetry)
	}
	st := &iopath.Redirect{Redirector: r, Files: m, Eng: m.Cluster.Eng}
	if m.pipe.Has(iopath.StageRedirect) {
		must(m.pipe.Replace(iopath.StageRedirect, st))
		return
	}
	anchor := iopath.StageStripe
	if m.pipe.Has(iopath.StageResilience) {
		// Redirection translates logical extents to regions; failover then
		// routes the region extents around down servers.
		anchor = iopath.StageResilience
	}
	if m.pipe.Has(iopath.StageAdaptive) {
		// The adaptive scheduler decides per region extent, so it too runs
		// after redirection.
		anchor = iopath.StageAdaptive
	}
	must(m.pipe.InsertBefore(anchor, iopath.StageRedirect, st))
}

// Redirector returns the installed redirector (nil when requests are not
// redirected).
func (m *Middleware) Redirector() *reorder.Redirector { return m.redirector }

// ResilienceOptions configures EnableResilience.
type ResilienceOptions struct {
	// Injector holds the fault schedule; it is attached to every cluster
	// server and armed (window telemetry scheduled) here.
	Injector *fault.Injector
	// Policy bounds retries and backoff; the zero value means
	// DefaultRetryPolicy.
	Policy iopath.RetryPolicy
	// RST, when non-nil, receives the layout of every fallback file the
	// failover layer creates (typically the active placement's RST).
	RST *region.RST
}

// EnableResilience turns on the client's fault handling: the terminal
// server stage is replaced with the retrying one, and a failover stage is
// inserted before striping that routes extents around down servers —
// writes re-stripe onto survivors through a fallback file, reads of
// unmapped data wait for recovery. The injector is attached to the
// cluster and armed. Enabling twice is a wiring bug (the middleware owns
// one failover table per run).
func (m *Middleware) EnableResilience(opts ResilienceOptions) error {
	if opts.Injector == nil {
		return fmt.Errorf("mpiio: resilience needs a fault injector")
	}
	if m.resilience != nil {
		return fmt.Errorf("mpiio: resilience already enabled")
	}
	pol := opts.Policy
	if pol == (iopath.RetryPolicy{}) {
		pol = iopath.DefaultRetryPolicy()
	}
	fo, err := reorder.NewFailover(m.Cluster, opts.RST)
	if err != nil {
		return err
	}
	res, err := iopath.NewResilience(m.Cluster.Eng, opts.Injector, m.Cluster, m, fo, pol)
	if err != nil {
		fo.Close()
		return err
	}
	retry, err := iopath.NewRetryServerStage(m.Cluster.Eng, pol)
	if err != nil {
		fo.Close()
		return err
	}
	m.Cluster.SetFaults(opts.Injector)
	opts.Injector.Arm()
	if m.telemetry != nil {
		opts.Injector.SetTelemetry(m.telemetry)
		res.SetTelemetry(m.telemetry)
		retry.SetTelemetry(m.telemetry)
	}
	// The stage lands after redirect (region extents are what hit servers)
	// and before stripe.
	must(m.pipe.InsertBefore(iopath.StageStripe, iopath.StageResilience, res))
	must(m.pipe.Replace(iopath.StageServer, retry))
	m.resilience, m.retryStage, m.failover = res, retry, fo
	return nil
}

// Failover returns the degraded-mode failover layer (nil until resilience
// is enabled).
func (m *Middleware) Failover() *reorder.Failover { return m.failover }

// AdaptiveOptions configures EnableAdaptive.
type AdaptiveOptions struct {
	// Policy bounds the scheduler; the zero value means
	// adaptive.DefaultPolicy.
	Policy adaptive.Policy
	// RST, when non-nil, receives the layout of every straggler-avoiding
	// fallback file the scheduler creates (typically the active
	// placement's RST).
	RST *region.RST
}

// EnableAdaptive turns on the client's straggler-aware scheduling
// (SASIO): a stage inserted after redirection and before resilience and
// striping that maintains per-server latency estimates and reroutes or
// speculatively re-issues writes around lagging servers. The scheduler
// owns its own failover/relocation tables, separate from the resilience
// stage's outage tables. Enabling twice is a wiring bug. Adaptive
// scheduling and batching are mutually exclusive: a merged submission
// cannot be withdrawn by one of the requests it coalesced.
func (m *Middleware) EnableAdaptive(opts AdaptiveOptions) error {
	if m.adaptive != nil {
		return fmt.Errorf("mpiio: adaptive scheduling already enabled")
	}
	if m.pipe.Has(iopath.StageBatch) {
		return fmt.Errorf("mpiio: adaptive scheduling is incompatible with batching")
	}
	pol := opts.Policy
	if pol == (adaptive.Policy{}) {
		pol = adaptive.DefaultPolicy()
	}
	fo, err := reorder.NewFailover(m.Cluster, opts.RST)
	if err != nil {
		return err
	}
	sched, err := adaptive.NewScheduler(m.Cluster, m, fo, pol)
	if err != nil {
		fo.Close()
		return err
	}
	if m.telemetry != nil {
		sched.SetTelemetry(m.telemetry)
	}
	// The stage lands after redirect (region extents are what hit
	// servers) and before resilience, so an adaptively relocated piece
	// can still fail over if its new home goes down.
	anchor := iopath.StageStripe
	if m.pipe.Has(iopath.StageResilience) {
		anchor = iopath.StageResilience
	}
	must(m.pipe.InsertBefore(anchor, iopath.StageAdaptive, sched))
	m.adaptive = sched
	return nil
}

// Adaptive returns the straggler-aware scheduler (nil until adaptive
// scheduling is enabled).
func (m *Middleware) Adaptive() *adaptive.Scheduler { return m.adaptive }

// EnableBatching inserts the sub-request batching stage before the
// terminal server stage (or its retrying replacement): sub-requests
// issued within one aggregation window (window virtual seconds; 0 means
// one virtual instant) that address contiguous ranges of the same server
// object are submitted as single merged service events. Batching changes
// the modeled cost — that is its point — so the paper pipelines leave it
// off; the XL tier turns it on. See iopath.Batcher for the merge contract.
func (m *Middleware) EnableBatching(window float64) error {
	if m.pipe.Has(iopath.StageBatch) {
		return fmt.Errorf("mpiio: batching already enabled")
	}
	if m.adaptive != nil {
		return fmt.Errorf("mpiio: batching is incompatible with adaptive scheduling")
	}
	return m.pipe.InsertBefore(iopath.StageServer, iopath.StageBatch, iopath.NewBatcher(m.pipe, window))
}

// EnableTelemetry wires the whole I/O path into reg: a stage timer
// observing every pipeline stage against the simulation clock, an
// application-level request meter installed as an interceptor (before
// redirection, so it sees whole requests), per-server busy/queue series,
// striping fan-out, and — when a redirector is installed now or later —
// DRT lookup hit/miss counters. Passing nil disables emission everywhere.
// Configuration is not safe concurrently with submission.
func (m *Middleware) EnableTelemetry(reg *telemetry.Registry) {
	m.telemetry = reg
	m.Cluster.SetTelemetry(reg)
	if m.redirector != nil {
		m.redirector.SetTelemetry(reg)
	}
	if m.resilience != nil {
		m.resilience.SetTelemetry(reg)
		m.retryStage.SetTelemetry(reg)
		if in := m.Cluster.Faults(); in != nil && reg != nil {
			in.SetTelemetry(reg)
		}
	}
	if m.adaptive != nil {
		m.adaptive.SetTelemetry(reg)
	}
	if reg == nil {
		m.pipe.SetObserver(nil)
		m.pipe.Remove(StageMeter)
		return
	}
	m.pipe.SetObserver(iopath.NewStageTimer(reg, m.Cluster.Eng))
	if !m.pipe.Has(StageMeter) {
		must(m.Intercept(StageMeter, iopath.NewMeter(reg)))
	}
}

// Telemetry returns the enabled registry (nil when telemetry is off).
func (m *Middleware) Telemetry() *telemetry.Registry { return m.telemetry }

// Intercept registers an interceptor stage on the request path: after
// trace capture and any earlier interceptors, before redirection and
// striping. Every independent request — and each collective operation's
// aggregated file-domain requests — flows through it.
func (m *Middleware) Intercept(name string, s iopath.Stage) error {
	anchor := iopath.StageStripe
	if m.pipe.Has(iopath.StageResilience) {
		anchor = iopath.StageResilience
	}
	if m.pipe.Has(iopath.StageAdaptive) {
		anchor = iopath.StageAdaptive
	}
	if m.pipe.Has(iopath.StageRedirect) {
		anchor = iopath.StageRedirect
	}
	return m.pipe.InsertBefore(anchor, name, s)
}

// Uninstall removes a named interceptor, reporting whether it was present.
func (m *Middleware) Uninstall(name string) bool { return m.pipe.Remove(name) }

// ResolveFile implements iopath.FileResolver: it returns the file record
// for name, creating the file with the cluster default layout when
// AutoCreate permits.
func (m *Middleware) ResolveFile(name string) (*pfs.File, error) {
	f, ok := m.Cluster.Lookup(name)
	if ok {
		return f, nil
	}
	if !m.AutoCreate {
		return nil, fmt.Errorf("mpiio: target %q does not exist", name)
	}
	return m.Cluster.CreateDefault(name)
}

// FileHandle is one rank's open file, analogous to an MPI_File.
type FileHandle struct {
	mw   *Middleware
	name string
	rank int
	pid  int
	fd   int

	// untraced marks internal handles (collective aggregators) whose
	// requests must not be captured by the trace stage.
	untraced bool
}

// Open opens name for the given rank, charging one MDS lookup in virtual
// time. The target must exist unless AutoCreate is set. Open shares the
// pipeline's submission lock, so concurrent clients may open and submit
// from separate goroutines.
//
//mhavet:coldpath per-file handle creation, once per file, not per request
func (m *Middleware) Open(name string, rank int) (*FileHandle, error) {
	var h *FileHandle
	var err error
	m.pipe.Exclusive(func() {
		if _, ok := m.Cluster.Lookup(name); !ok {
			if !m.AutoCreate {
				err = fmt.Errorf("mpiio: open %q: no such file", name)
				return
			}
			if _, cerr := m.Cluster.CreateDefault(name); cerr != nil {
				err = cerr
				return
			}
		}
		m.nextFD++
		h = &FileHandle{mw: m, name: name, rank: rank, pid: 1000 + rank, fd: m.nextFD}
		// Charge the MDS lookup asynchronously; the first data operation
		// will queue behind it only through the MDS resource, matching a
		// real open.
		if oerr := m.Cluster.OpenHandle(name, nil); oerr != nil {
			h, err = nil, oerr
		}
	})
	return h, err
}

// Name returns the logical (original) file name the handle refers to.
func (h *FileHandle) Name() string { return h.name }

// Rank returns the MPI rank owning the handle.
func (h *FileHandle) Rank() int { return h.rank }

// WriteAt schedules a write of data at offset off in the logical file.
// done (optional) receives the virtual completion time of the slowest
// piece. The caller drives the simulation engine.
func (h *FileHandle) WriteAt(data []byte, off int64, done func(end float64)) error {
	return h.issue(trace.OpWrite, off, data, done)
}

// ReadAt schedules a read into buf from offset off; buf is populated when
// done runs.
func (h *FileHandle) ReadAt(buf []byte, off int64, done func(end float64)) error {
	return h.issue(trace.OpRead, off, buf, done)
}

// issue wraps the operation in a Request and submits it to the pipeline.
func (h *FileHandle) issue(op trace.Op, off int64, buf []byte, done func(end float64)) error {
	if off < 0 {
		return fmt.Errorf("mpiio: negative offset %d", off)
	}
	if len(buf) == 0 {
		// Zero-length operations complete immediately without entering
		// the chain (and, as before, are never traced).
		eng := h.mw.Cluster.Eng
		if done != nil {
			eng.Schedule(0, func() { done(eng.Now()) }) //mhavet:allow closure
		}
		return nil
	}
	// Root descriptors come from the pipeline's pool and are recycled
	// when they finish; nothing here retains req past Submit.
	req := h.mw.pipe.NewRequest()
	req.Op, req.File, req.Offset, req.Data = op, h.name, off, buf
	req.Rank, req.PID, req.FD = h.rank, h.pid, h.fd
	req.Untraced = h.untraced
	req.OnComplete = done
	return h.mw.pipe.Submit(req)
}

// WriteAtSync writes and runs the engine to completion (single-threaded
// convenience).
func (h *FileHandle) WriteAtSync(data []byte, off int64) (float64, error) {
	var end float64
	if err := h.WriteAt(data, off, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	h.mw.Cluster.Eng.Run()
	return end, nil
}

// ReadAtSync reads and runs the engine to completion.
func (h *FileHandle) ReadAtSync(buf []byte, off int64) (float64, error) {
	var end float64
	if err := h.ReadAt(buf, off, func(t float64) { end = t }); err != nil {
		return 0, err
	}
	h.mw.Cluster.Eng.Run()
	return end, nil
}

// Close is currently a metadata no-op, present for API fidelity.
func (h *FileHandle) Close() error { return nil }
