package mpiio

import (
	"bytes"
	"testing"

	"mhafs/internal/iopath"
	"mhafs/internal/layout"
	"mhafs/internal/reorder"
	"mhafs/internal/server"
	"mhafs/internal/stripe"
	"mhafs/internal/telemetry"
	"mhafs/internal/units"
)

// TestEnableTelemetryEndToEnd drives redirected I/O through a fully wired
// middleware and checks that every layer emitted into the one registry:
// application meter, stage timer, striping fan-out, per-server series, and
// DRT hit/miss counters.
func TestEnableTelemetryEndToEnd(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	reg := telemetry.NewRegistry()
	mw.EnableTelemetry(reg)
	h, _ := mw.Open("f", 0)

	data := make([]byte, 128*units.KB)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}

	// Redirect the first half into a region file; the second half stays.
	plan := layout.Plan{
		Scheme: layout.MHA,
		Regions: []layout.RegionPlan{
			{File: "f.r0", Layout: c.DefaultLayout(), Size: 64 * units.KB},
		},
	}
	plan.Mappings = append(plan.Mappings, regionMapping("f", 0, "f.r0", 0, 64*units.KB))
	placement, err := reorder.Apply(c, plan, reorder.Options{Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer placement.Close()
	mw.SetRedirector(reorder.NewRedirector(placement.DRT, 0))

	// One read in the mapped half (hit), one wholly in the unmapped half
	// (miss).
	buf := make([]byte, 32*units.KB)
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[:len(buf)]) {
		t.Fatal("redirected read corrupted data")
	}
	if _, err := h.ReadAtSync(buf, 80*units.KB); err != nil {
		t.Fatal(err)
	}

	// Application meter: 1 write + 2 reads, whole request sizes.
	if got := reg.Counter(iopath.MetricRequests, telemetry.L("op", "write")).Value(); got != 1 {
		t.Errorf("writes = %v, want 1", got)
	}
	if got := reg.Counter(iopath.MetricRequests, telemetry.L("op", "read")).Value(); got != 2 {
		t.Errorf("reads = %v, want 2", got)
	}
	sizes := reg.Histogram(iopath.MetricRequestSize, telemetry.SizeBuckets())
	if want := float64(128*units.KB + 2*32*units.KB); sizes.Sum() != want {
		t.Errorf("request size sum = %v, want %v", sizes.Sum(), want)
	}
	lat := reg.Histogram(iopath.MetricRequestLatency, telemetry.LatencyBuckets())
	if lat.Count() != 3 || lat.Sum() <= 0 {
		t.Errorf("latency = %v over %d, want positive over 3", lat.Sum(), lat.Count())
	}

	// Stage timer: the meter interceptor saw the 3 application requests;
	// the server stage saw every striped piece.
	if got := reg.Counter(iopath.MetricStageRequests, telemetry.L("stage", StageMeter)).Value(); got != 3 {
		t.Errorf("meter stage requests = %v, want 3", got)
	}
	srvStage := reg.Counter(iopath.MetricStageRequests, telemetry.L("stage", iopath.StageServer)).Value()
	if srvStage < 3 {
		t.Errorf("server stage requests = %v, want >= 3", srvStage)
	}
	span := reg.Span(iopath.MetricStageSpan, telemetry.L("stage", StageMeter))
	if span.Count() != 3 || span.Total() <= 0 {
		t.Errorf("meter stage span = %v over %d, want positive virtual time over 3",
			span.Total(), span.Count())
	}

	// DRT: two lookups, one hit, one miss, 32 KB mapped + 32 KB identity.
	if got := reg.Counter(reorder.MetricDRTLookups).Value(); got != 2 {
		t.Errorf("DRT lookups = %v, want 2", got)
	}
	if got := reg.Counter(reorder.MetricDRTHits).Value(); got != 1 {
		t.Errorf("DRT hits = %v, want 1", got)
	}
	if got := reg.Counter(reorder.MetricDRTMisses).Value(); got != 1 {
		t.Errorf("DRT misses = %v, want 1", got)
	}
	if got := reg.Counter(reorder.MetricDRTMappedBytes).Value(); got != float64(32*units.KB) {
		t.Errorf("mapped bytes = %v, want %v", got, 32*units.KB)
	}
	if got := reg.Counter(reorder.MetricDRTIdentityBytes).Value(); got != float64(32*units.KB) {
		t.Errorf("identity bytes = %v, want %v", got, 32*units.KB)
	}

	// Striping: the region hit counter distinguishes the region file from
	// the original, and the per-server op counters sum to the sub-request
	// counters.
	if got := reg.Counter(stripe.MetricRegionHits, telemetry.L("region", "f.r0")).Value(); got != 1 {
		t.Errorf("region hits f.r0 = %v, want 1", got)
	}
	if got := reg.Counter(stripe.MetricRegionHits, telemetry.L("region", "f")).Value(); got != 2 {
		t.Errorf("region hits f = %v, want 2 (initial write + unmapped read)", got)
	}
	var serverOps, subReqs float64
	for _, s := range c.Servers() {
		for _, op := range []string{"read", "write"} {
			serverOps += reg.Counter(server.MetricOps,
				telemetry.L("server", s.Name), telemetry.L("op", op)).Value()
		}
	}
	for _, class := range []stripe.Class{stripe.ClassH, stripe.ClassS} {
		subReqs += reg.Counter(stripe.MetricSubRequests,
			telemetry.L("class", class.String())).Value()
	}
	if serverOps == 0 || serverOps != subReqs {
		t.Errorf("server ops %v != striped sub-requests %v", serverOps, subReqs)
	}

	// Disabling stops every emitter.
	mw.EnableTelemetry(nil)
	before := reg.Len()
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != before {
		t.Error("disabled telemetry registered new series")
	}
	if got := reg.Counter(iopath.MetricRequests, telemetry.L("op", "read")).Value(); got != 2 {
		t.Errorf("disabled telemetry still counted reads: %v", got)
	}
	if got := reg.Counter(reorder.MetricDRTLookups).Value(); got != 2 {
		t.Errorf("disabled telemetry still counted lookups: %v", got)
	}
}

// TestTelemetrySnapshotDeterministic runs the same workload twice in fresh
// simulations and requires bit-identical exporter output.
func TestTelemetrySnapshotDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		c := testCluster(t)
		mw := New(c)
		reg := telemetry.NewRegistry()
		mw.EnableTelemetry(reg)
		h, _ := mw.Open("f", 0)
		data := make([]byte, 96*units.KB)
		if _, err := h.WriteAtSync(data, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 48*units.KB)
		if _, err := h.ReadAtSync(buf, 16*units.KB); err != nil {
			t.Fatal(err)
		}
		var j, p bytes.Buffer
		if err := reg.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WritePrometheus(&p); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), p.Bytes()
	}
	j1, p1 := run()
	j2, p2 := run()
	if !bytes.Equal(j1, j2) {
		t.Error("JSON snapshots differ between identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("Prometheus expositions differ between identical runs")
	}
	if len(j1) == 0 || len(p1) == 0 {
		t.Error("exporters produced no output")
	}
}
