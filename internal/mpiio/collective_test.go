package mpiio

import (
	"bytes"
	"math/rand"
	"testing"

	"mhafs/internal/iosig"
	"mhafs/internal/pfs"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func newTestCollector(c *pfs.Cluster) *iosig.Collector {
	return iosig.NewCollector(c.Eng.Now)
}

// interleavedPieces builds the classic collective pattern: ranks own
// alternating small chunks of a shared extent.
func interleavedPieces(ranks, rounds int, chunk int64, rng *rand.Rand) ([]Piece, []byte) {
	total := int64(ranks*rounds) * chunk
	data := make([]byte, total)
	rng.Read(data)
	var pieces []Piece
	for round := 0; round < rounds; round++ {
		for r := 0; r < ranks; r++ {
			off := (int64(round)*int64(ranks) + int64(r)) * chunk
			pieces = append(pieces, Piece{
				Rank: r, Offset: off, Data: data[off : off+chunk],
			})
		}
	}
	return pieces, data
}

func TestCollectiveWriteIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	rng := rand.New(rand.NewSource(21))
	pieces, data := interleavedPieces(8, 4, 16*units.KB, rng)

	var end float64
	if err := mw.CollectiveWrite("f", pieces, CollectiveOptions{}, func(e float64) { end = e }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if end <= 0 {
		t.Fatal("collective write did not complete")
	}

	h, _ := mw.Open("f", 0)
	buf := make([]byte, len(data))
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("collective write corrupted data")
	}
}

func TestCollectiveReadIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 512*units.KB)
	rng.Read(data)
	h, _ := mw.Open("f", 0)
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}

	var pieces []Piece
	chunk := int64(8 * units.KB)
	for i := int64(0); i < int64(len(data))/chunk; i++ {
		pieces = append(pieces, Piece{
			Rank: int(i % 8), Offset: i * chunk, Data: make([]byte, chunk),
		})
	}
	done := false
	if err := mw.CollectiveRead("f", pieces, CollectiveOptions{Aggregators: 4}, func(float64) { done = true }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if !done {
		t.Fatal("collective read did not complete")
	}
	for _, p := range pieces {
		if !bytes.Equal(p.Data, data[p.Offset:p.Offset+chunk]) {
			t.Fatalf("piece at %d corrupted", p.Offset)
		}
	}
}

// Collective aggregation must beat independent interleaved small writes:
// the aggregators issue a few large contiguous requests instead of many
// tiny striped ones.
func TestCollectiveBeatsIndependent(t *testing.T) {
	chunk := int64(4 * units.KB)
	const ranks, rounds = 8, 16
	rng := rand.New(rand.NewSource(23))

	// Independent: every rank issues its own small writes sequentially.
	cInd := testCluster(t)
	mwInd := New(cInd)
	pieces, _ := interleavedPieces(ranks, rounds, chunk, rng)
	handles := make(map[int]*FileHandle)
	perRank := make(map[int][]Piece)
	for _, p := range pieces {
		perRank[p.Rank] = append(perRank[p.Rank], p)
	}
	var latest float64
	for r := 0; r < ranks; r++ {
		h, _ := mwInd.Open("f", r)
		handles[r] = h
		ps := perRank[r]
		var issueNext func(i int)
		issueNext = func(i int) {
			if i >= len(ps) {
				return
			}
			h.WriteAt(ps[i].Data, ps[i].Offset, func(end float64) {
				if end > latest {
					latest = end
				}
				issueNext(i + 1)
			})
		}
		issueNext(0)
	}
	cInd.Eng.Run()
	independent := latest

	// Collective: same pieces, two-phase.
	cCol := testCluster(t)
	mwCol := New(cCol)
	var colEnd float64
	if err := mwCol.CollectiveWrite("f", pieces, CollectiveOptions{Aggregators: 2}, func(e float64) { colEnd = e }); err != nil {
		t.Fatal(err)
	}
	cCol.Eng.Run()

	if !(colEnd < independent) {
		t.Errorf("collective %.6fs should beat independent %.6fs", colEnd, independent)
	}
}

func TestCollectiveRecordsLogicalRequests(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	col := newTestCollector(c)
	mw.SetCollector(col)
	pieces, _ := interleavedPieces(4, 2, 4*units.KB, rand.New(rand.NewSource(3)))
	if err := mw.CollectiveWrite("f", pieces, CollectiveOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	raw := col.RawTrace()
	if len(raw) != len(pieces) {
		t.Fatalf("recorded %d, want %d logical requests", len(raw), len(pieces))
	}
	for _, r := range raw {
		if r.Op != trace.OpWrite || r.Size != 4*units.KB {
			t.Errorf("record = %+v", r)
		}
	}
}

func TestCollectiveValidation(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	// Empty set completes immediately.
	done := false
	mw.CollectiveWrite("f", nil, CollectiveOptions{}, func(float64) { done = true })
	c.Eng.Run()
	if !done {
		t.Error("empty collective did not complete")
	}
	bad := [][]Piece{
		{{Rank: 0, Offset: -1, Data: []byte{1}}},
		{{Rank: 0, Offset: 0, Data: nil}},
		{{Rank: 0, Offset: 0, Data: []byte{1, 2}}, {Rank: 1, Offset: 1, Data: []byte{3}}},
	}
	for i, ps := range bad {
		if err := mw.CollectiveWrite("f", ps, CollectiveOptions{}, nil); err == nil {
			t.Errorf("bad piece set %d accepted", i)
		}
	}
}

func TestCollectiveAggregatorDefaults(t *testing.T) {
	o := CollectiveOptions{}
	if got := o.aggregators(16); got != 4 {
		t.Errorf("default aggregators(16) = %d, want 4", got)
	}
	if got := o.aggregators(1); got != 1 {
		t.Errorf("aggregators(1) = %d", got)
	}
	o.Aggregators = 99
	if got := o.aggregators(5); got != 5 {
		t.Errorf("aggregators capped = %d, want 5", got)
	}
}

// Gaps between pieces must not be written (sparse collective).
func TestCollectiveWithGaps(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	// Pre-fill a region that falls into a gap.
	guard := bytes.Repeat([]byte{0xEE}, 4096)
	if _, err := h.WriteAtSync(guard, 8192); err != nil {
		t.Fatal(err)
	}
	pieces := []Piece{
		{Rank: 0, Offset: 0, Data: bytes.Repeat([]byte{0x11}, 4096)},
		{Rank: 1, Offset: 16384, Data: bytes.Repeat([]byte{0x22}, 4096)},
	}
	if err := mw.CollectiveWrite("f", pieces, CollectiveOptions{Aggregators: 1}, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	got := make([]byte, 4096)
	if _, err := h.ReadAtSync(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, guard) {
		t.Fatal("collective write clobbered the gap between pieces")
	}
	h.ReadAtSync(got, 0)
	if got[0] != 0x11 {
		t.Error("first piece missing")
	}
	h.ReadAtSync(got, 16384)
	if got[0] != 0x22 {
		t.Error("second piece missing")
	}
}

// TestCollectiveMissingFile pins the error contract: with AutoCreate off,
// a collective against a file that does not exist must fail synchronously
// from CollectiveWrite/CollectiveRead, not blow up later inside the
// scheduled aggregator callbacks.
func TestCollectiveMissingFile(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	mw.AutoCreate = false
	pieces := []Piece{{Rank: 0, Offset: 0, Data: make([]byte, 4*units.KB)}}

	if err := mw.CollectiveWrite("nope", pieces, CollectiveOptions{}, nil); err == nil {
		t.Error("CollectiveWrite on a missing file: want error, got nil")
	}
	if err := mw.CollectiveRead("nope", pieces, CollectiveOptions{}, nil); err == nil {
		t.Error("CollectiveRead on a missing file: want error, got nil")
	}
	// The engine must have nothing queued: the failure happened before any
	// domain was scheduled.
	c.Eng.Run()
}
