package mpiio

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mhafs/internal/iopath"
	"mhafs/internal/units"
)

// TestConcurrentSubmission drives two goroutines submitting through
// separate FileHandles; the pipeline's submission lock must make this
// race-free (run with -race). The engine is driven single-threaded after
// both clients have finished submitting.
func TestConcurrentSubmission(t *testing.T) {
	c := testCluster(t)
	mw := New(c)

	const perClient = 8
	const chunk = 64 * units.KB
	payloads := make([][]byte, 2)
	for i := range payloads {
		payloads[i] = make([]byte, perClient*chunk)
		rand.New(rand.NewSource(int64(i + 1))).Read(payloads[i])
	}
	files := []string{"client0.dat", "client1.dat"}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := mw.Open(files[i], i)
			if err != nil {
				errs[i] = err
				return
			}
			for j := 0; j < perClient; j++ {
				off := int64(j) * chunk
				if err := h.WriteAt(payloads[i][off:off+chunk], off, nil); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	c.Eng.Run()

	for i, name := range files {
		h, err := mw.Open(name, i)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(payloads[i]))
		if _, err := h.ReadAtSync(buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payloads[i]) {
			t.Errorf("client %d: read back differs from what was written", i)
		}
	}
}

// TestInterceptObservesEveryRequest registers a counting interceptor and
// checks that every independent request flows through it — and that no
// request short-circuits to the cluster behind the chain's back.
func TestInterceptObservesEveryRequest(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	var seen int
	count := iopath.StageFunc(func(req *iopath.Request, next iopath.Handler) error {
		seen++
		return next(req)
	})
	if err := mw.Intercept("count", count); err != nil {
		t.Fatal(err)
	}
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32*units.KB)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := h.WriteAtSync(data, int64(i)*int64(len(data))); err != nil {
			t.Fatal(err)
		}
		if _, err := h.ReadAtSync(data, int64(i)*int64(len(data))); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 2*n {
		t.Errorf("interceptor saw %d requests, want %d", seen, 2*n)
	}
	// Zero-length operations bypass the chain by design.
	if _, err := h.WriteAtSync(nil, 0); err != nil {
		t.Fatal(err)
	}
	if seen != 2*n {
		t.Errorf("zero-length op entered the chain (seen=%d)", seen)
	}
	if !mw.Uninstall("count") {
		t.Fatal("Uninstall(count) reported not present")
	}
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}
	if seen != 2*n {
		t.Errorf("uninstalled interceptor still sees requests (seen=%d)", seen)
	}
}

// TestCollectiveTraversesInterceptors: collective I/O's aggregated
// file-domain requests also flow through registered interceptors, marked
// untraced.
func TestCollectiveTraversesInterceptors(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	var total, untraced int
	count := iopath.StageFunc(func(req *iopath.Request, next iopath.Handler) error {
		total++
		if req.Untraced {
			untraced++
		}
		return next(req)
	})
	if err := mw.Intercept("count", count); err != nil {
		t.Fatal(err)
	}
	pieces := make([]Piece, 4)
	for i := range pieces {
		buf := make([]byte, 16*units.KB)
		rand.New(rand.NewSource(int64(i))).Read(buf)
		pieces[i] = Piece{Rank: i, Offset: int64(i) * int64(len(buf)), Data: buf}
	}
	done := false
	if err := mw.CollectiveWrite("coll.dat", pieces, CollectiveOptions{}, func(float64) { done = true }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if !done {
		t.Fatal("collective write did not complete")
	}
	if total == 0 || untraced != total {
		t.Errorf("interceptor saw %d requests (%d untraced); want >0, all untraced", total, untraced)
	}
	// The independent path is traced; mix one in to prove the flag holds.
	h, _ := mw.Open("coll.dat", 0)
	if _, err := h.ReadAtSync(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if untraced != total-1 {
		t.Errorf("independent request not distinguishable: total=%d untraced=%d", total, untraced)
	}
}
