package mpiio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mhafs/internal/iosig"
	"mhafs/internal/layout"
	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/reorder"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testCluster(t *testing.T) *pfs.Cluster {
	t.Helper()
	cfg := pfs.DefaultConfig()
	cfg.HServers, cfg.SServers = 2, 2
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenAutoCreate(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, err := mw.Open("new.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "new.dat" || h.Rank() != 0 {
		t.Errorf("handle = %s/%d", h.Name(), h.Rank())
	}
	if _, ok := c.Lookup("new.dat"); !ok {
		t.Error("AutoCreate did not create the file")
	}
	mw.AutoCreate = false
	if _, err := mw.Open("other.dat", 0); err == nil {
		t.Error("open of missing file without AutoCreate accepted")
	}
	if err := h.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestWriteReadRoundTripNoRedirect(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	data := make([]byte, 300*units.KB)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	if err := h.WriteAt([]byte{1}, -1, nil); err == nil {
		t.Error("negative write offset accepted")
	}
	if err := h.ReadAt(make([]byte, 1), -1, nil); err == nil {
		t.Error("negative read offset accepted")
	}
}

func TestZeroLengthOps(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	var n int
	h.WriteAt(nil, 0, func(float64) { n++ })
	h.ReadAt(nil, 0, func(float64) { n++ })
	c.Eng.Run()
	if n != 2 {
		t.Errorf("zero-length completions = %d", n)
	}
}

func TestCollectorHook(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	col := iosig.NewCollector(c.Eng.Now)
	mw.SetCollector(col)
	h, _ := mw.Open("f", 3)
	h.WriteAtSync(make([]byte, 64*units.KB), 128*units.KB)
	h.ReadAtSync(make([]byte, 32*units.KB), 0)
	raw := col.RawTrace()
	if len(raw) != 2 {
		t.Fatalf("collected %d records", len(raw))
	}
	w := raw[0]
	if w.Op != trace.OpWrite || w.Offset != 128*units.KB || w.Size != 64*units.KB ||
		w.Rank != 3 || w.File != "f" {
		t.Errorf("write record = %+v", w)
	}
	if raw[1].Op != trace.OpRead {
		t.Errorf("read record = %+v", raw[1])
	}
	// Zero-length operations must not be recorded.
	h.WriteAt(nil, 0, nil)
	c.Eng.Run()
	if col.Len() != 2 {
		t.Error("zero-length op recorded")
	}
}

// End-to-end MHA path: trace a run, plan, apply with migration, then read
// through the redirector and verify both data integrity and that region
// files (not the original) served the requests.
func TestRedirectedReadIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("app.dat", 0)

	// Build the original data and a heterogeneous trace.
	var tr trace.Trace
	span := int64(0)
	for loop := 0; loop < 4; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "app.dat", Op: trace.OpRead,
				Offset: span, Size: 16 * units.KB, Time: float64(loop)})
			span += 16 * units.KB
		}
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "app.dat", Op: trace.OpRead,
				Offset: span, Size: 256 * units.KB, Time: float64(loop) + 0.5})
			span += 256 * units.KB
		}
	}
	data := make([]byte, span)
	rand.New(rand.NewSource(5)).Read(data)
	orig, _ := c.Lookup("app.dat")
	reorder.RawWrite(c, orig, 0, data)

	env := layout.DefaultEnv()
	env.M, env.N = 2, 2
	pl, _ := layout.NewPlanner(layout.MHA)
	plan, err := pl.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := reorder.Apply(c, plan, reorder.Options{Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer placement.Close()
	mw.SetRedirector(reorder.NewRedirector(placement.DRT, 5e-6))

	// Replay every traced read through the middleware and verify bytes.
	for _, r := range tr {
		buf := make([]byte, r.Size)
		if _, err := h.ReadAtSync(buf, r.Offset); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[r.Offset:r.End()]) {
			t.Fatalf("redirected read at %d corrupted data", r.Offset)
		}
	}
	if mw.Redirector().Lookups() != uint64(len(tr)) {
		t.Errorf("lookups = %d, want %d", mw.Redirector().Lookups(), len(tr))
	}
}

// A request spanning two regions must be split and reassembled correctly.
func TestRedirectedSpanningRequest(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)

	data := make([]byte, 128*units.KB)
	rand.New(rand.NewSource(6)).Read(data)
	orig, _ := c.Lookup("f")
	reorder.RawWrite(c, orig, 0, data)

	// Hand-build a placement splitting the file at 64KB into two regions.
	plan := layout.Plan{
		Scheme: layout.MHA,
		Regions: []layout.RegionPlan{
			{File: "f.r0", Layout: c.DefaultLayout(), Size: 64 * units.KB},
			{File: "f.r1", Layout: c.DefaultLayout(), Size: 64 * units.KB},
		},
	}
	plan.Mappings = append(plan.Mappings,
		regionMapping("f", 0, "f.r0", 0, 64*units.KB),
		regionMapping("f", 64*units.KB, "f.r1", 0, 64*units.KB),
	)
	placement, err := reorder.Apply(c, plan, reorder.Options{Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer placement.Close()
	mw.SetRedirector(reorder.NewRedirector(placement.DRT, 0))

	buf := make([]byte, 100*units.KB)
	if _, err := h.ReadAtSync(buf, 10*units.KB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[10*units.KB:110*units.KB]) {
		t.Fatal("spanning redirected read corrupted data")
	}

	// Redirected write across the boundary, then verify via raw reads.
	newData := make([]byte, 80*units.KB)
	rand.New(rand.NewSource(7)).Read(newData)
	if _, err := h.WriteAtSync(newData, 30*units.KB); err != nil {
		t.Fatal(err)
	}
	copy(data[30*units.KB:], newData)
	r0, _ := c.Lookup("f.r0")
	r1, _ := c.Lookup("f.r1")
	got := make([]byte, 64*units.KB)
	reorder.RawRead(c, r0, 0, got)
	if !bytes.Equal(got, data[:64*units.KB]) {
		t.Fatal("region r0 bytes wrong after redirected write")
	}
	reorder.RawRead(c, r1, 0, got)
	if !bytes.Equal(got, data[64*units.KB:]) {
		t.Fatal("region r1 bytes wrong after redirected write")
	}
}

func TestRedirectionLookupLatencyCharged(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	// Identity redirection (empty DRT): requests go to the original file
	// but still pay the lookup — the Fig. 14 experiment.
	placement, err := reorder.Apply(c, layout.Plan{Scheme: layout.MHA}, reorder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer placement.Close()

	const lookup = 1e-3
	data := make([]byte, 64*units.KB)
	endNo, err := h.WriteAtSync(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Eng.Now()
	mw.SetRedirector(reorder.NewRedirector(placement.DRT, lookup))
	endYes, err := h.WriteAtSync(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := (endYes - base) - endNo
	if math.Abs(got-lookup) > 1e-9 {
		t.Errorf("redirection overhead = %v, want %v", got, lookup)
	}
}

func regionMapping(of string, oo int64, rf string, ro, n int64) region.Mapping {
	return region.Mapping{OFile: of, OOffset: oo, RFile: rf, ROffset: ro, Length: n}
}
