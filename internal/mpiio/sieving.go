package mpiio

import (
	"fmt"

	"mhafs/internal/sim"
)

// Data sieving, MPI-IO's other classic access optimization: a strided
// (regularly non-contiguous) read of many small blocks is served by one
// large contiguous read covering the holes, from which the requested
// blocks are sieved out. Profitable when the per-request overhead of many
// small reads exceeds the cost of transferring the hole bytes.

// Strided describes a regular non-contiguous access: Count blocks of
// BlockLen bytes, the starts Stride bytes apart, beginning at Offset.
type Strided struct {
	Offset   int64
	BlockLen int64
	Stride   int64
	Count    int
}

// Validate checks the access shape.
func (s Strided) Validate() error {
	if s.Offset < 0 {
		return fmt.Errorf("mpiio: strided offset %d negative", s.Offset)
	}
	if s.BlockLen <= 0 {
		return fmt.Errorf("mpiio: strided block length %d must be positive", s.BlockLen)
	}
	if s.Stride < s.BlockLen {
		return fmt.Errorf("mpiio: stride %d smaller than block length %d", s.Stride, s.BlockLen)
	}
	if s.Count <= 0 {
		return fmt.Errorf("mpiio: strided count %d must be positive", s.Count)
	}
	return nil
}

// Span returns the contiguous extent covering the whole access.
func (s Strided) Span() int64 {
	return int64(s.Count-1)*s.Stride + s.BlockLen
}

// Bytes returns the useful bytes (the blocks, excluding holes).
func (s Strided) Bytes() int64 { return int64(s.Count) * s.BlockLen }

// SievingOptions tunes ReadStrided.
type SievingOptions struct {
	// Disable forces per-block reads (no sieving), for comparison.
	Disable bool
	// MaxWaste caps the hole fraction (0–1) up to which sieving is used;
	// denser holes fall back to per-block reads. 0 selects the default
	// of 0.75 (sieve when at least a quarter of the covering read is
	// useful data).
	MaxWaste float64
}

func (o SievingOptions) maxWaste() float64 {
	if o.MaxWaste <= 0 || o.MaxWaste > 1 {
		return 0.75
	}
	return o.MaxWaste
}

// ReadStrided reads the strided blocks into buf (length Count×BlockLen,
// blocks concatenated). With sieving enabled and the hole fraction within
// bounds, one covering contiguous read is issued and the blocks are
// sieved out; otherwise each block is read individually (still through
// the redirector). done receives the virtual completion time.
func (h *FileHandle) ReadStrided(st Strided, buf []byte, opts SievingOptions, done func(end float64)) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if int64(len(buf)) != st.Bytes() {
		return fmt.Errorf("mpiio: strided buffer %d bytes, want %d", len(buf), st.Bytes())
	}
	waste := 1 - float64(st.Bytes())/float64(st.Span())
	if !opts.Disable && waste <= opts.maxWaste() {
		// Sieve: one covering read, then scatter the blocks.
		cover := make([]byte, st.Span())
		return h.ReadAt(cover, st.Offset, func(end float64) {
			for i := 0; i < st.Count; i++ {
				src := int64(i) * st.Stride
				dst := int64(i) * st.BlockLen
				copy(buf[dst:dst+st.BlockLen], cover[src:src+st.BlockLen])
			}
			if done != nil {
				done(end)
			}
		})
	}
	// Per-block fallback.
	latest := new(float64)
	barrier := sim.NewBarrier(st.Count, func() {
		if done != nil {
			done(*latest)
		}
	})
	for i := 0; i < st.Count; i++ {
		dst := buf[int64(i)*st.BlockLen : int64(i+1)*st.BlockLen]
		err := h.ReadAt(dst, st.Offset+int64(i)*st.Stride, func(end float64) {
			if end > *latest {
				*latest = end
			}
			barrier.Arrive()
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteStrided writes the blocks of buf at the strided positions. Writes
// cannot sieve blindly (the holes must not be clobbered), so a
// read-modify-write would be required; like ROMIO with atomicity off, the
// implementation simply issues per-block writes.
func (h *FileHandle) WriteStrided(st Strided, buf []byte, done func(end float64)) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if int64(len(buf)) != st.Bytes() {
		return fmt.Errorf("mpiio: strided buffer %d bytes, want %d", len(buf), st.Bytes())
	}
	latest := new(float64)
	barrier := sim.NewBarrier(st.Count, func() {
		if done != nil {
			done(*latest)
		}
	})
	for i := 0; i < st.Count; i++ {
		src := buf[int64(i)*st.BlockLen : int64(i+1)*st.BlockLen]
		err := h.WriteAt(src, st.Offset+int64(i)*st.Stride, func(end float64) {
			if end > *latest {
				*latest = end
			}
			barrier.Arrive()
		})
		if err != nil {
			return err
		}
	}
	return nil
}
