package mpiio

import (
	"bytes"
	"math/rand"
	"testing"

	"mhafs/internal/units"
)

func TestStridedValidate(t *testing.T) {
	good := Strided{Offset: 0, BlockLen: 4096, Stride: 8192, Count: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Span() != 3*8192+4096 {
		t.Errorf("Span = %d", good.Span())
	}
	if good.Bytes() != 4*4096 {
		t.Errorf("Bytes = %d", good.Bytes())
	}
	bad := []Strided{
		{Offset: -1, BlockLen: 1, Stride: 1, Count: 1},
		{Offset: 0, BlockLen: 0, Stride: 1, Count: 1},
		{Offset: 0, BlockLen: 8, Stride: 4, Count: 1},
		{Offset: 0, BlockLen: 1, Stride: 1, Count: 0},
	}
	for i, st := range bad {
		if st.Validate() == nil {
			t.Errorf("bad strided %d accepted", i)
		}
	}
}

func TestReadStridedSievedIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	data := make([]byte, 1*units.MB)
	rand.New(rand.NewSource(31)).Read(data)
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}
	st := Strided{Offset: 512, BlockLen: 3000, Stride: 10000, Count: 50}
	buf := make([]byte, st.Bytes())
	var end float64
	if err := h.ReadStrided(st, buf, SievingOptions{}, func(e float64) { end = e }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if end <= 0 {
		t.Fatal("strided read did not complete")
	}
	for i := 0; i < st.Count; i++ {
		want := data[st.Offset+int64(i)*st.Stride : st.Offset+int64(i)*st.Stride+st.BlockLen]
		got := buf[int64(i)*st.BlockLen : int64(i+1)*st.BlockLen]
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestReadStridedFallbackIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	data := make([]byte, 1*units.MB)
	rand.New(rand.NewSource(32)).Read(data)
	h.WriteAtSync(data, 0)
	// Sparse access (waste ≈ 96%) falls back to per-block reads.
	st := Strided{Offset: 0, BlockLen: 1024, Stride: 32768, Count: 30}
	buf := make([]byte, st.Bytes())
	if err := h.ReadStrided(st, buf, SievingOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	for i := 0; i < st.Count; i++ {
		want := data[int64(i)*st.Stride : int64(i)*st.Stride+st.BlockLen]
		if !bytes.Equal(buf[int64(i)*st.BlockLen:int64(i+1)*st.BlockLen], want) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

// Sieving must beat per-block reads for dense strided access.
func TestSievingFasterThanPerBlock(t *testing.T) {
	run := func(disable bool) float64 {
		c := testCluster(t)
		mw := New(c)
		h, _ := mw.Open("f", 0)
		h.WriteAtSync(make([]byte, 2*units.MB), 0)
		st := Strided{Offset: 0, BlockLen: 6 * 1024, Stride: 8 * 1024, Count: 128}
		buf := make([]byte, st.Bytes())
		var end float64
		if err := h.ReadStrided(st, buf, SievingOptions{Disable: disable}, func(e float64) { end = e }); err != nil {
			t.Fatal(err)
		}
		c.Eng.Run()
		return end
	}
	sieved := run(false)
	perBlock := run(true)
	if !(sieved < perBlock) {
		t.Errorf("sieving %.6f should beat per-block %.6f", sieved, perBlock)
	}
}

func TestWriteStridedIntegrity(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	// Guard bytes in the holes.
	guard := bytes.Repeat([]byte{0xEE}, 64*1024)
	h.WriteAtSync(guard, 0)

	st := Strided{Offset: 0, BlockLen: 1000, Stride: 4096, Count: 10}
	payload := make([]byte, st.Bytes())
	rand.New(rand.NewSource(33)).Read(payload)
	if err := h.WriteStrided(st, payload, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	full := make([]byte, 64*1024)
	h.ReadAtSync(full, 0)
	for i := 0; i < st.Count; i++ {
		off := int64(i) * st.Stride
		if !bytes.Equal(full[off:off+1000], payload[int64(i)*1000:int64(i+1)*1000]) {
			t.Fatalf("block %d not written", i)
		}
		// Hole after the block must be untouched.
		if full[off+1000] != 0xEE {
			t.Fatalf("hole after block %d clobbered", i)
		}
	}
}

func TestStridedBufferSizeChecked(t *testing.T) {
	c := testCluster(t)
	mw := New(c)
	h, _ := mw.Open("f", 0)
	st := Strided{Offset: 0, BlockLen: 100, Stride: 200, Count: 3}
	if err := h.ReadStrided(st, make([]byte, 10), SievingOptions{}, nil); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := h.WriteStrided(st, make([]byte, 10), nil); err == nil {
		t.Error("short write buffer accepted")
	}
}
