// Scheduler tests drive the real middleware → adaptive → stripe →
// server path on a dataless paper-shaped cluster, loading chosen
// servers directly to pose the congestion the policies react to.
package adaptive_test

import (
	"testing"

	"mhafs/internal/adaptive"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/server"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// setup builds a dataless cluster with the adaptive stage installed
// under the given policy and a registry on its counters.
func setup(t *testing.T, pol adaptive.Policy) (*mpiio.Middleware, *pfs.Cluster, *telemetry.Registry) {
	t.Helper()
	cfg := pfs.DefaultConfig()
	cfg.Dataless = true
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mw := mpiio.New(c)
	if err := mw.EnableAdaptive(mpiio.AdaptiveOptions{Policy: pol}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	mw.Adaptive().SetTelemetry(reg)
	return mw, c, reg
}

// firstServer resolves the server the file's first stripe unit lands on
// — the one a 4 KB write at offset 0 addresses.
func firstServer(t *testing.T, mw *mpiio.Middleware, c *pfs.Cluster, name string) *server.Server {
	t.Helper()
	f, err := mw.ResolveFile(name)
	if err != nil {
		t.Fatal(err)
	}
	split := f.Layout.AppendSplit(nil, 0, 4096)
	if len(split) != 1 {
		t.Fatalf("4KB at offset 0 split into %d pieces, want 1", len(split))
	}
	return c.ServerForFile(f, split[0].Server)
}

// rerouteOnly trusts the very first observation (α = 1, one sample) and
// never speculates, so a single write decides purely on the ratio gate.
func rerouteOnly() adaptive.Policy {
	return adaptive.Policy{
		Alpha:            1,
		RerouteThreshold: 4,
		MinSamples:       1,
		MinEstimate:      1e-6,
		MaxReroutes:      2,
	}
}

// TestRerouteCrossesThreshold: one server holds a deep queue while its
// class sits idle — the ratio gate clears, the write is remapped onto
// the fallback, and it completes without waiting behind the straggler.
func TestRerouteCrossesThreshold(t *testing.T) {
	mw, c, reg := setup(t, rerouteOnly())
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := firstServer(t, mw, c, "f")
	var preloadEnd float64
	srv.SubmitOpErr(trace.OpWrite, 8*units.MB, func(end float64, err error) { preloadEnd = end })

	var end float64
	if err := h.WriteAt(make([]byte, 4096), 0, func(e float64) { end = e }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	if got := reg.Counter(adaptive.MetricReroutes).Value(); got != 1 {
		t.Errorf("reroutes = %v, want 1", got)
	}
	if !mw.Adaptive().Failover().HasMapping("f") {
		t.Error("reroute published no relocation mapping for f")
	}
	if got := srv.Stats().Writes; got != 1 {
		t.Errorf("straggler writes = %d, want 1 (the preload only)", got)
	}
	if end <= 0 || end >= preloadEnd {
		t.Errorf("rerouted write finished at %v, want before the straggler queue drains at %v",
			end, preloadEnd)
	}
}

// TestRerouteStaysUnderThreshold: the same depth of queue on every
// class server holds the ratio at exactly 1 — no straggler, the write
// waits its turn on its original server.
func TestRerouteStaysUnderThreshold(t *testing.T) {
	mw, c, reg := setup(t, rerouteOnly())
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := firstServer(t, mw, c, "f")
	for _, s := range c.Servers() {
		s.SubmitOpErr(trace.OpWrite, 8*units.MB, func(end float64, err error) {})
	}

	if err := h.WriteAt(make([]byte, 4096), 0, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	if got := reg.Counter(adaptive.MetricReroutes).Value(); got != 0 {
		t.Errorf("reroutes = %v, want 0 under uniform load", got)
	}
	if mw.Adaptive().Failover().HasMapping("f") {
		t.Error("uniform load published a relocation mapping")
	}
	if got := srv.Stats().Writes; got != 2 {
		t.Errorf("target writes = %d, want 2 (preload + the write itself)", got)
	}
}

// TestReadsPassThrough: reads are never rerouted — their bytes live
// where they were written — however lopsided the estimates.
func TestReadsPassThrough(t *testing.T) {
	mw, c, reg := setup(t, rerouteOnly())
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := firstServer(t, mw, c, "f")
	srv.SubmitOpErr(trace.OpWrite, 8*units.MB, func(end float64, err error) {})

	if err := h.ReadAt(make([]byte, 4096), 0, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	if got := reg.Counter(adaptive.MetricReroutes).Value(); got != 0 {
		t.Errorf("reroutes = %v, want 0 for a read", got)
	}
	if got := srv.Stats().Reads; got != 1 {
		t.Errorf("straggler reads = %d, want 1 (the read stayed put)", got)
	}
}

// TestSpeculationDuplicateWins arbitrates a full race by hand: the
// primary leg queues behind a deep backlog, the deadline launches the
// duplicate on the idle fallback, the duplicate finishes first, the
// primary is withdrawn before service (its commit never lands on the
// straggler), and the relocation mapping is published.
func TestSpeculationDuplicateWins(t *testing.T) {
	pol := adaptive.Policy{
		Alpha:            0.25,
		RerouteThreshold: 4,
		MinSamples:       1 << 30, // rerouting never trusts the estimator
		MinEstimate:      2e-3,
		SpecWait:         10e-3,
		SpecThreshold:    2,
		MaxReroutes:      1,
	}
	mw, c, reg := setup(t, pol)
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := firstServer(t, mw, c, "f")
	var preloadEnd float64
	srv.SubmitOpErr(trace.OpWrite, 8*units.MB, func(end float64, err error) { preloadEnd = end })
	if b := srv.Backlog(); b <= pol.SpecWait {
		t.Fatalf("posed backlog %v does not clear the speculation deadline %v", b, pol.SpecWait)
	}

	var end float64
	if err := h.WriteAt(make([]byte, 4096), 0, func(e float64) { end = e }); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	for metric, want := range map[string]float64{
		adaptive.MetricSpeculations:  1,
		adaptive.MetricSpecWins:      1,
		adaptive.MetricSpecCancelled: 1,
	} {
		if got := reg.Counter(metric).Value(); got != want {
			t.Errorf("%s = %v, want %v", metric, got, want)
		}
	}
	if !mw.Adaptive().Failover().HasMapping("f") {
		t.Error("winning duplicate published no relocation mapping")
	}
	if got := srv.Stats().Writes; got != 1 {
		t.Errorf("straggler writes = %d, want 1 (the losing primary was withdrawn)", got)
	}
	if end <= 0 || end >= preloadEnd {
		t.Errorf("raced write finished at %v, want before the straggler queue drains at %v",
			end, preloadEnd)
	}
}
