// Package adaptive is the client-side straggler-aware I/O scheduler
// (after Tavakoli et al.'s SASIO): the runtime complement to the paper's
// static layout intelligence. Clients maintain per-server latency
// estimates — a virtual-clock EWMA over each server's observable queue
// backlog — and two policies act on them when a target server lags its
// class:
//
//   - reroute: a write whose stripe fan-out touches a server whose
//     estimate exceeds a threshold relative to the class median is
//     remapped onto a straggler-avoiding fallback layout through the same
//     DRT/fallback-file machinery degraded-mode failover uses;
//   - speculative re-issue: a write predicted to wait beyond a deadline
//     races two copies — the original placement and, once the deadline
//     passes, a duplicate on the straggler-avoiding fallback — first
//     completion wins and the loser is cancelled through the servers'
//     cancellable submission path.
//
// The scheduler installs as an iopath stage (StageAdaptive, before
// resilience and striping) via mpiio.EnableAdaptive. Everything runs
// under the virtual clock from pipeline events, so runs are bit-for-bit
// reproducible at every worker count; DESIGN.md §16 carries the
// determinism and cancellation arguments.
package adaptive

import (
	"fmt"
)

// Policy bounds the scheduler's behaviour. All times are virtual seconds.
type Policy struct {
	// Alpha is the EWMA weight of the newest backlog sample (0, 1].
	Alpha float64

	// RerouteThreshold: a server whose smoothed estimate exceeds
	// RerouteThreshold × its class median is a straggler and writes are
	// rerouted off it. Must exceed 1.
	RerouteThreshold float64

	// MinSamples is the per-server sample count before the estimator is
	// trusted for rerouting — the warm-up guard against first-impression
	// relocation.
	MinSamples int

	// MinEstimate is the absolute floor (virtual seconds) below which no
	// server counts as a straggler, however its ratio looks: an idle
	// class has a near-zero median that would otherwise flag noise.
	MinEstimate float64

	// SpecWait arms speculative re-issue: a write predicted to wait
	// longer than this on its slowest server races a duplicate, launched
	// once the deadline has actually passed. 0 disables speculation.
	SpecWait float64

	// SpecThreshold gates speculation on heterogeneity: the slowest
	// server's instantaneous backlog must exceed SpecThreshold × its
	// class median backlog, so a uniformly loaded (healthy) cluster does
	// not breed duplicates. Must exceed 1 when speculation is enabled.
	SpecThreshold float64

	// MaxReroutes bounds recursive rerouting of one piece (the fallback
	// may itself develop a straggler).
	MaxReroutes int
}

// DefaultPolicy returns the bench defaults, sized against the simulator's
// device models (HDD 128 KB service ≈ 3 ms) and tuned on the resilience
// workload: a quarter-weight EWMA, a 4× class-median reroute ratio after
// 64 samples, and speculation once a piece would wait 50 ms behind a
// server 4× over its class median. The ratios are deliberately high —
// under a healthy cluster's transient load imbalance the scheduler must
// stay close to idle (the bench gates the fault-free scenario at ±5%),
// while a persistent straggler's queue ratio grows without bound and
// clears them quickly.
func DefaultPolicy() Policy {
	return Policy{
		Alpha:            0.25,
		RerouteThreshold: 4,
		MinSamples:       64,
		MinEstimate:      2e-3,
		SpecWait:         50e-3,
		SpecThreshold:    4,
		MaxReroutes:      2,
	}
}

// Validate checks the policy's invariants.
func (p Policy) Validate() error {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("adaptive: alpha %v outside (0, 1]", p.Alpha)
	}
	if p.RerouteThreshold <= 1 {
		return fmt.Errorf("adaptive: reroute threshold %v must exceed 1", p.RerouteThreshold)
	}
	if p.MinSamples < 1 {
		return fmt.Errorf("adaptive: min samples %d must be positive", p.MinSamples)
	}
	if p.MinEstimate < 0 {
		return fmt.Errorf("adaptive: negative estimate floor %v", p.MinEstimate)
	}
	if p.SpecWait < 0 {
		return fmt.Errorf("adaptive: negative speculation deadline %v", p.SpecWait)
	}
	if p.SpecWait > 0 && p.SpecThreshold <= 1 {
		return fmt.Errorf("adaptive: speculation threshold %v must exceed 1", p.SpecThreshold)
	}
	if p.MaxReroutes < 1 {
		return fmt.Errorf("adaptive: max reroutes %d must be positive", p.MaxReroutes)
	}
	return nil
}

// Telemetry series the scheduler emits (eagerly registered, so an
// adaptive run that never acted still exports zeros).
const (
	// MetricReroutes counts writes relocated off a straggler.
	MetricReroutes = "adaptive_reroutes_total"
	// MetricSpeculations counts speculation races armed.
	MetricSpeculations = "adaptive_speculations_total"
	// MetricSpecWins counts races the duplicate won (mapping published).
	MetricSpecWins = "adaptive_speculation_wins_total"
	// MetricSpecCancelled counts losing legs withdrawn.
	MetricSpecCancelled = "adaptive_speculation_cancelled_total"
)
