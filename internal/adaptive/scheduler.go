package adaptive

import (
	"fmt"

	"mhafs/internal/iopath"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/sim"
	"mhafs/internal/stripe"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// Scheduler is the straggler-aware iopath stage (StageAdaptive). On every
// request it refreshes the estimator, translates the extent through its
// own failover tables (relocations it performed earlier), and decides per
// write piece:
//
//	confident straggler on the stripe path  → reroute (permanent remap)
//	long predicted wait on a lagging server → speculative re-issue (race)
//	otherwise                               → pass through untouched
//
// The pass-through path is the common case and allocation-free; both
// interventions are coldpaths. Reads are never rerouted or raced — a
// read's bytes live where they were written, so redirecting one would
// read the wrong replica; reads still benefit because writes migrate off
// the straggler and the translated layout serves subsequent reads.
//
// The scheduler owns a reorder.Failover layer distinct from the
// resilience stage's: adaptive relocations and outage failovers keep
// separate tables, and the adaptive translation runs first (the stage
// sits before resilience), so a relocated piece can still fail over if
// its new home goes down.
type Scheduler struct {
	eng     *sim.Engine
	cluster *pfs.Cluster
	files   iopath.FileResolver
	fo      *reorder.Failover
	pol     Policy
	est     *Estimator

	// scratch backs the per-request stripe split; the scan extracts what
	// it needs before any recursion reuses it.
	scratch []stripe.SubRequest

	reroutes      *telemetry.Counter
	speculations  *telemetry.Counter
	specWins      *telemetry.Counter
	specCancelled *telemetry.Counter
}

// NewScheduler wires the stage. fo is the scheduler's private failover
// layer (its relocation tables); the caller builds it over the same
// cluster, typically passing the placement's RST so relocated layouts are
// visible next to the optimized ones.
func NewScheduler(c *pfs.Cluster, files iopath.FileResolver, fo *reorder.Failover, pol Policy) (*Scheduler, error) {
	switch {
	case c == nil:
		return nil, fmt.Errorf("adaptive: scheduler needs a cluster")
	case files == nil:
		return nil, fmt.Errorf("adaptive: scheduler needs a file resolver")
	case fo == nil:
		return nil, fmt.Errorf("adaptive: scheduler needs a failover layer")
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		eng:     c.Eng,
		cluster: c,
		files:   files,
		fo:      fo,
		pol:     pol,
		est:     NewEstimator(c, pol.Alpha),
	}, nil
}

// SetTelemetry installs (or, with nil, removes) a registry for the
// scheduler's action counters, registered eagerly so a run that never
// acted still exports them at zero.
func (s *Scheduler) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.reroutes, s.speculations, s.specWins, s.specCancelled = nil, nil, nil, nil
		return
	}
	s.reroutes = reg.Counter(MetricReroutes)
	s.speculations = reg.Counter(MetricSpeculations)
	s.specWins = reg.Counter(MetricSpecWins)
	s.specCancelled = reg.Counter(MetricSpecCancelled)
}

// Estimator exposes the latency estimator (tests and diagnostics).
func (s *Scheduler) Estimator() *Estimator { return s.est }

// Failover exposes the scheduler's relocation tables (tests).
func (s *Scheduler) Failover() *reorder.Failover { return s.fo }

// Handle implements iopath.Stage.
func (s *Scheduler) Handle(req *iopath.Request, next iopath.Handler) error {
	s.est.Observe()
	return s.handlePiece(req, next, 0, true)
}

// handlePiece routes one piece. translate gates the relocation-table
// lookup: it is true for fresh requests and for pieces whose file changed
// under translation (a relocated file may itself have been relocated
// further — the chain is acyclic because every hop appends to the
// fallback name), and false for the untouched pieces handleMapped
// derives, which Translate already proved unmapped.
func (s *Scheduler) handlePiece(req *iopath.Request, next iopath.Handler, reroutes int, translate bool) error {
	if translate && s.fo.HasMapping(req.File) {
		return s.handleMapped(req, next)
	}
	if req.Op != trace.OpWrite {
		return next(req)
	}
	f := req.Target
	if f == nil {
		var err error
		f, err = s.files.ResolveFile(req.File)
		if err != nil {
			return err
		}
		req.Target = f
	}
	// Scan the stripe fan-out (stripe order — deterministic) for the
	// first confident straggler and for the slowest server right now.
	s.scratch = f.Layout.AppendSplit(s.scratch[:0], req.Offset, req.Size())
	straggler := -1
	slowest := -1
	var worst float64
	for i := range s.scratch {
		ref := s.scratch[i].Server
		srv := s.cluster.ServerForFile(f, ref)
		if straggler < 0 && reroutes < s.pol.MaxReroutes && s.est.IsStraggler(s.est.Index(srv), &s.pol) {
			straggler = i
		}
		if w := srv.Backlog(); slowest < 0 || w > worst {
			worst, slowest = w, i
		}
	}
	if straggler >= 0 {
		return s.reroute(req, next, reroutes, f, s.scratch[straggler].Server)
	}
	if s.pol.SpecWait > 0 && req.Cancels == nil && worst > s.pol.SpecWait {
		ref := s.scratch[slowest].Server
		if worst > s.pol.SpecThreshold*s.est.BacklogMedian(ref.Class) {
			return s.speculate(req, next, f, ref)
		}
	}
	return next(req)
}

// handleMapped fans a request over its relocation-table translation,
// exactly like the resilience stage fans over its failover tables: one
// child per piece, the parent completes with the slowest child.
//
//mhavet:coldpath translation fan-out runs only after a relocation happened
func (s *Scheduler) handleMapped(req *iopath.Request, next iopath.Handler) error {
	targets := s.fo.Translate(req.File, req.Offset, req.Size())
	if len(targets) == 1 && !targets[0].Mapped {
		return s.handlePiece(req, next, 0, false)
	}
	children := make([]*iopath.Request, 0, len(targets))
	var cursor int64
	for _, tg := range targets {
		f, err := s.files.ResolveFile(tg.File)
		if err != nil {
			return err
		}
		child := req.Child(tg.File, tg.Offset, req.Data[cursor:cursor+tg.Size])
		child.Target = f
		children = append(children, child)
		cursor += tg.Size
	}
	if cursor != req.Size() {
		return fmt.Errorf("adaptive: translation covered %d of %d bytes", cursor, req.Size())
	}
	req.FanOut(len(children))
	for _, child := range children {
		if err := s.handlePiece(child, next, 0, child.File != req.File); err != nil {
			return err
		}
	}
	return nil
}

// reroute relocates the write off the straggler: remap the extent onto
// the straggler-avoiding fallback file (same machinery as degraded-mode
// failover, but in the scheduler's own tables) and re-run the decision on
// the fallback under the remaining reroute budget — the fallback may have
// its own straggler. A nil fallback (no layout avoids the server —
// single-server class on a degenerate cluster) passes the piece through.
//
//mhavet:coldpath straggler relocation allocates (fallback metadata, DRT records)
func (s *Scheduler) reroute(req *iopath.Request, next iopath.Handler, reroutes int, f *pfs.File, ref stripe.ServerRef) error {
	srv := s.cluster.ServerForFile(f, ref)
	fb, err := s.fo.Remap(f, req.Offset, req.Size(), srv.Name, ref.Class, s.cluster.PhysicalIndex(f, ref))
	if err != nil {
		return err
	}
	if fb == nil {
		return next(req)
	}
	if s.reroutes != nil {
		s.reroutes.Inc()
	}
	req.File, req.Target = fb.Name, fb
	return s.handlePiece(req, next, reroutes+1, true)
}

// race arbitrates one speculative re-issue: leg 0 is the original
// placement, leg 1 the duplicate on the straggler-avoiding fallback,
// launched by the deadline timer if the race has not already settled.
// The first successful leg wins and finishes the raced request at its
// end time; the loser's submissions are cancelled. A failed leg drops
// out; the race settles with an error only when no leg remains and the
// duplicate decision has been taken. Legs are parentless derivations
// (iopath.Derive) so a cancelled-and-burned loser cannot drag the raced
// request's completion out to its own end time.
//
// Every transition runs at an engine event under the pipeline's
// submission lock (leg completions arrive from server events the
// pipeline already serializes; the deadline timer re-enters via
// Exclusive), so races are deterministic and worker-count independent.
type race struct {
	sch  *Scheduler
	req  *iopath.Request
	next iopath.Handler

	// Raced extent and the lagging server the duplicate avoids.
	f        *pfs.File
	off, n   int64
	slowName string
	class    stripe.Class
	phys     int

	timer *sim.Timer
	sets  [2]*iopath.CancelSet
	fb    *pfs.File

	legs       int
	failures   int
	firstErr   error
	failEnd    float64
	dupDecided bool
	settled    bool
}

// speculate arms a race for the piece and dispatches the primary leg.
// The duplicate is not issued yet: it launches only if the primary is
// still unfinished when the deadline passes, so a piece that merely
// looked slow costs nothing extra.
//
//mhavet:coldpath speculation races allocate (legs, closures, deadline timer)
func (s *Scheduler) speculate(req *iopath.Request, next iopath.Handler, f *pfs.File, ref stripe.ServerRef) error {
	srv := s.cluster.ServerForFile(f, ref)
	r := &race{
		sch: s, req: req, next: next,
		f: f, off: req.Offset, n: req.Size(),
		slowName: srv.Name, class: ref.Class,
		phys: s.cluster.PhysicalIndex(f, ref),
	}
	if s.speculations != nil {
		s.speculations.Inc()
	}
	primary := req.Derive(req.File, req.Offset, req.Data)
	primary.Target = f
	primary.Cancels = iopath.NewCancelSet()
	r.sets[0] = primary.Cancels
	primary.OnComplete = func(end float64) { r.arrive(0, primary.Err, end) }
	r.legs = 1
	pipe := req.Pipeline()
	r.timer = s.eng.AfterFunc(s.pol.SpecWait, func() {
		pipe.Exclusive(func() { r.launchDup() })
	})
	if err := next(primary); err != nil {
		// Synchronous dispatch failure: the leg never entered the servers.
		// Disarm the race and surface the error to the submitter.
		r.settled = true
		r.timer.Stop()
		return err
	}
	return nil
}

// launchDup runs at the deadline: if the race is still open, issue the
// duplicate on the straggler-avoiding fallback. The fallback file is
// resolved (or created) here, but the relocation mapping is NOT
// published — Map runs only if the duplicate wins, so a losing duplicate
// leaves the tables untouched and readers keep resolving to the original
// placement the primary wrote.
func (r *race) launchDup() {
	r.dupDecided = true
	if r.settled {
		return
	}
	fb, err := r.sch.fo.Fallback(r.f, r.slowName, r.class, r.phys)
	if err != nil || fb == nil {
		// No layout avoids the lagging server (or the fallback wiring
		// failed): the race degenerates to the primary alone.
		if err != nil && r.firstErr == nil {
			r.firstErr = err
		}
		if r.failures == r.legs {
			r.settle(-1, r.failEnd, r.firstErr)
		}
		return
	}
	r.fb = fb
	dup := r.req.Derive(fb.Name, r.off, r.req.Data)
	dup.Target = fb
	dup.Cancels = iopath.NewCancelSet()
	r.sets[1] = dup.Cancels
	dup.OnComplete = func(end float64) { r.arrive(1, dup.Err, end) }
	r.legs = 2
	if err := r.next(dup); err != nil {
		// Synchronous dispatch failure counts as the leg failing now.
		r.arrive(1, err, r.sch.eng.Now())
	}
}

// arrive folds one leg completion into the race.
func (r *race) arrive(leg int, err error, end float64) {
	if r.settled {
		// Late arrivals are the cancelled loser completing; the race is
		// decided.
		return
	}
	if err == nil {
		r.settle(leg, end, nil)
		return
	}
	r.failures++
	if r.firstErr == nil {
		r.firstErr = err
	}
	if end > r.failEnd {
		r.failEnd = end
	}
	if r.failures < r.legs {
		return // the other leg is still running
	}
	if !r.dupDecided {
		return // the deadline timer may still add a leg
	}
	r.settle(-1, r.failEnd, r.firstErr)
}

// settle decides the race: stop the deadline timer, cancel the losing
// leg's submissions, publish the relocation mapping if the duplicate won,
// and finish the raced request. winner is -1 when every leg failed.
func (r *race) settle(winner int, end float64, err error) {
	r.settled = true
	if r.timer != nil {
		r.timer.Stop()
	}
	for i, set := range r.sets {
		if set == nil || i == winner {
			continue
		}
		set.Cancel()
		if winner >= 0 && r.sch.specCancelled != nil {
			r.sch.specCancelled.Inc()
		}
	}
	if winner == 1 {
		// The duplicate's bytes are the authoritative copy now: record the
		// extent as living in the fallback so every later read and write
		// translates there.
		if mapErr := r.sch.fo.Map(r.f.Name, r.fb.Name, r.off, r.n); mapErr != nil {
			err = mapErr
		} else if r.sch.specWins != nil {
			r.sch.specWins.Inc()
		}
	}
	if err != nil {
		r.req.FinishErr(end, err)
		return
	}
	r.req.Finish(end)
}
