// Hand-computed estimator tests: the EWMA fold, the class medians, and
// the straggler predicate are checked against arithmetic done on paper,
// in-package so the flat state can be posed directly.
package adaptive

import (
	"testing"

	"mhafs/internal/pfs"
	"mhafs/internal/server"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// fakeEstimator builds an estimator with posed state and no live
// servers; valid for everything that reads only est/samples.
func fakeEstimator(hCount, total int) *Estimator {
	return &Estimator{
		servers: make([]*server.Server, total),
		hCount:  hCount,
		est:     make([]float64, total),
		samples: make([]int, total),
		scratch: make([]float64, total),
	}
}

// TestObserveEWMAHandComputed drives Observe against a live dataless
// cluster with one loaded server and checks the fold by hand: starting
// from zero with α = 1/2 the estimate walks b/2, 3b/4 while the backlog
// holds at b, then decays to 3b/8 once the queue drains (halving
// weights are exact in binary floating point, so == comparisons hold).
func TestObserveEWMAHandComputed(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.Dataless = true
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(c, 0.5)
	srv := c.Servers()[0]
	if got := e.Index(srv); got != 0 {
		t.Fatalf("Index(first server) = %d, want 0", got)
	}

	srv.SubmitOpErr(trace.OpWrite, 8*units.MB, func(end float64, err error) {})
	b := srv.Backlog()
	if b <= 0 {
		t.Fatalf("backlog after submission = %v, want > 0", b)
	}

	e.Observe()
	if got := e.Estimate(0); got != 0.5*b {
		t.Errorf("after 1 observation: est = %v, want b/2 = %v", got, 0.5*b)
	}
	e.Observe()
	if got := e.Estimate(0); got != 0.75*b {
		t.Errorf("after 2 observations: est = %v, want 3b/4 = %v", got, 0.75*b)
	}
	for i := range c.Servers() {
		if got := e.Samples(i); got != 2 {
			t.Errorf("samples[%d] = %d, want 2 (all servers observed together)", i, got)
		}
		if i > 0 && e.Estimate(i) != 0 {
			t.Errorf("idle server %d drifted to %v", i, e.Estimate(i))
		}
	}

	c.Eng.Run() // drain: backlog falls to zero
	e.Observe()
	if got := e.Estimate(0); got != 0.375*b {
		t.Errorf("after drain: est = %v, want 3b/8 = %v", got, 0.375*b)
	}
}

// TestClassMedianHandComputed poses estimates directly: odd classes take
// the middle value, even classes the mean of the middle pair, and the
// two classes never mix.
func TestClassMedianHandComputed(t *testing.T) {
	odd := fakeEstimator(3, 5)
	copy(odd.est, []float64{5, 1, 2, 7, 3})
	if got := odd.ClassMedian(stripe.ClassH); got != 2 {
		t.Errorf("odd H median of {5,1,2} = %v, want 2", got)
	}
	if got := odd.ClassMedian(stripe.ClassS); got != 5 {
		t.Errorf("even S median of {7,3} = %v, want 5", got)
	}

	even := fakeEstimator(4, 6)
	copy(even.est, []float64{5, 1, 4, 2, 9, 9})
	if got := even.ClassMedian(stripe.ClassH); got != 3 {
		t.Errorf("even H median of {5,1,4,2} = %v, want (2+4)/2 = 3", got)
	}
}

// TestIsStragglerThresholds walks the predicate across each gate by
// hand: the warm-up sample floor, the absolute estimate floor, and the
// exact ratio boundary (at the threshold is not over it).
func TestIsStragglerThresholds(t *testing.T) {
	pol := Policy{RerouteThreshold: 4, MinSamples: 8, MinEstimate: 0.05}
	e := fakeEstimator(3, 4)
	copy(e.est, []float64{0.9, 0.1, 0.1, 0})
	e.samples[0] = 7
	if e.IsStraggler(0, &pol) {
		t.Error("7 samples < MinSamples 8: must not be trusted yet")
	}
	e.samples[0] = 8
	if !e.IsStraggler(0, &pol) {
		t.Error("0.9 > 4 × median 0.1 with enough samples: straggler")
	}
	e.est[0] = 0.4
	if e.IsStraggler(0, &pol) {
		t.Error("0.4 == 4 × median 0.1 exactly: at the threshold is not over it")
	}
	// Ratio clears but the absolute floor does not: an idle class's noise.
	copy(e.est, []float64{0.04, 0.002, 0.002, 0})
	if e.IsStraggler(0, &pol) {
		t.Error("0.04 < MinEstimate 0.05: below the absolute floor")
	}
	e.est[0] = 0.06
	if !e.IsStraggler(0, &pol) {
		t.Error("0.06 clears both the floor and 4 × median 0.002")
	}
}

// TestPolicyValidate pins each invariant and that the defaults pass.
func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("DefaultPolicy invalid: %v", err)
	}
	base := DefaultPolicy()
	cases := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"alpha zero", func(p *Policy) { p.Alpha = 0 }},
		{"alpha above one", func(p *Policy) { p.Alpha = 1.5 }},
		{"reroute threshold at one", func(p *Policy) { p.RerouteThreshold = 1 }},
		{"min samples zero", func(p *Policy) { p.MinSamples = 0 }},
		{"negative estimate floor", func(p *Policy) { p.MinEstimate = -1 }},
		{"negative spec deadline", func(p *Policy) { p.SpecWait = -1 }},
		{"spec threshold at one", func(p *Policy) { p.SpecWait = 0.01; p.SpecThreshold = 1 }},
		{"max reroutes zero", func(p *Policy) { p.MaxReroutes = 0 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
	// SpecWait 0 disables speculation and exempts SpecThreshold.
	p := base
	p.SpecWait, p.SpecThreshold = 0, 0
	if err := p.Validate(); err != nil {
		t.Errorf("speculation disabled: Validate rejected %+v: %v", p, err)
	}
}
