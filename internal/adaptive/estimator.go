package adaptive

import (
	"mhafs/internal/pfs"
	"mhafs/internal/server"
	"mhafs/internal/stripe"
)

// Estimator maintains the per-server latency estimates the scheduler's
// decisions run on: an EWMA, under the virtual clock, of each server's
// observable queue backlog (the time a sub-request arriving now would
// wait before service starts). The client reads only what a real PFS
// client could observe from its own completions — queue congestion —
// never the simulator's fault injector, so a straggler is detected by
// its symptoms.
//
// State is flat-indexed in the cluster's server order (HServers then
// SServers) and updated in that order on every Observe, which keeps the
// estimator deterministic and the hot path free of map iteration and
// allocation.
type Estimator struct {
	servers []*server.Server
	index   map[*server.Server]int
	hCount  int // servers[:hCount] are ClassH, the rest ClassS

	alpha   float64
	est     []float64 // smoothed backlog per server
	samples []int     // observations folded into est
	scratch []float64 // class-median workspace, len == len(servers)
}

// NewEstimator captures the cluster's server set (flat order, fixed for
// the run) and starts all estimates at zero.
func NewEstimator(c *pfs.Cluster, alpha float64) *Estimator {
	servers := c.Servers()
	e := &Estimator{
		servers: servers,
		index:   make(map[*server.Server]int, len(servers)),
		hCount:  c.Config().HServers,
		alpha:   alpha,
		est:     make([]float64, len(servers)),
		samples: make([]int, len(servers)),
		scratch: make([]float64, len(servers)),
	}
	for i, s := range servers {
		e.index[s] = i
	}
	return e
}

// Observe folds the current backlog of every server into the estimates.
// The scheduler calls it once per request passing the stage, so sampling
// density follows request density — a busy run converges faster.
func (e *Estimator) Observe() {
	a := e.alpha
	for i, s := range e.servers {
		e.est[i] += a * (s.Backlog() - e.est[i])
		e.samples[i]++
	}
}

// Index returns the flat index of a server captured at construction.
func (e *Estimator) Index(s *server.Server) int { return e.index[s] }

// Estimate returns the smoothed backlog of server i.
func (e *Estimator) Estimate(i int) float64 { return e.est[i] }

// Samples returns how many observations server i's estimate folds.
func (e *Estimator) Samples(i int) int { return e.samples[i] }

// classRange returns the flat half-open index range of a class.
func (e *Estimator) classRange(c stripe.Class) (lo, hi int) {
	if c == stripe.ClassH {
		return 0, e.hCount
	}
	return e.hCount, len(e.servers)
}

// ClassMedian returns the median smoothed estimate across the servers of
// a class (the straggler's own estimate included — one outlier barely
// moves the median of a class of six). Even-sized classes take the mean
// of the middle pair. Runs on the per-request decision path: the
// workspace is preallocated and the sort is in-place insertion sort.
func (e *Estimator) ClassMedian(c stripe.Class) float64 {
	lo, hi := e.classRange(c)
	n := hi - lo
	if n == 0 {
		return 0
	}
	w := e.scratch
	for i := 0; i < n; i++ {
		v := e.est[lo+i]
		j := i
		for j > 0 && w[j-1] > v {
			w[j] = w[j-1]
			j--
		}
		w[j] = v
	}
	if n%2 == 1 {
		return w[n/2]
	}
	return (w[n/2-1] + w[n/2]) / 2
}

// IsStraggler reports whether server i currently counts as a straggler
// under the policy: enough samples, estimate above the absolute floor,
// and above RerouteThreshold × its class median.
func (e *Estimator) IsStraggler(i int, pol *Policy) bool {
	if e.samples[i] < pol.MinSamples {
		return false
	}
	v := e.est[i]
	if v < pol.MinEstimate {
		return false
	}
	c := stripe.ClassS
	if i < e.hCount {
		c = stripe.ClassH
	}
	return v > pol.RerouteThreshold*e.ClassMedian(c)
}

// BacklogMedian returns the median instantaneous (unsmoothed) backlog of
// a class — the speculation gate's heterogeneity reference. Same
// workspace discipline as ClassMedian.
func (e *Estimator) BacklogMedian(c stripe.Class) float64 {
	lo, hi := e.classRange(c)
	n := hi - lo
	if n == 0 {
		return 0
	}
	w := e.scratch
	for i := 0; i < n; i++ {
		v := e.servers[lo+i].Backlog()
		j := i
		for j > 0 && w[j-1] > v {
			w[j] = w[j-1]
			j--
		}
		w[j] = v
	}
	if n%2 == 1 {
		return w[n/2]
	}
	return (w[n/2-1] + w[n/2]) / 2
}
