// Package dynamic implements the MHA paper's stated future work: "dynamic
// approaches to further improve the performance of those applications with
// unpredictable patterns".
//
// The static MHA pipeline assumes subsequent runs repeat the profiled
// pattern. The dynamic Manager instead watches the live trace: it keeps a
// compact histogram of the access pattern the current plan was built for,
// measures the divergence of a sliding window of recent requests against
// it, and triggers a re-optimization — a new generation of regions,
// migrated from the previous generation's locations — when the divergence
// crosses a threshold.
package dynamic

import (
	"fmt"
	"math"

	"mhafs/internal/layout"
	"mhafs/internal/trace"
)

// histogram is a normalized distribution over (op, log2-size) buckets —
// the same features the grouping phase clusters on, cheap to compare.
type histogram map[int]float64

func bucketOf(r trace.Record) int {
	b := 0
	if r.Size > 0 {
		b = int(math.Log2(float64(r.Size)))
	}
	if b > 62 {
		b = 62
	}
	return int(r.Op)*64 + b
}

func histOf(tr trace.Trace) histogram {
	h := make(histogram)
	if len(tr) == 0 {
		return h
	}
	w := 1.0 / float64(len(tr))
	for _, r := range tr {
		h[bucketOf(r)] += w
	}
	return h
}

// distance is half the L1 distance between two normalized histograms —
// 0 for identical distributions, 1 for disjoint ones.
func distance(a, b histogram) float64 {
	var d float64
	for k, av := range a {
		bv := b[k]
		d += math.Abs(av - bv)
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += bv
		}
	}
	return d / 2
}

// Detector scores pattern drift against a baseline trace.
type Detector struct {
	base histogram
}

// NewDetector captures the baseline distribution.
func NewDetector(baseline trace.Trace) *Detector {
	return &Detector{base: histOf(baseline)}
}

// Divergence returns the drift of the recent window in [0, 1].
func (d *Detector) Divergence(recent trace.Trace) float64 {
	if len(recent) == 0 {
		return 0
	}
	return distance(d.base, histOf(recent))
}

// Policy tunes the manager.
type Policy struct {
	// Window is how many of the most recent requests are compared against
	// the baseline.
	Window int
	// Threshold is the divergence (0–1) that triggers re-optimization.
	Threshold float64
	// MinNewRecords throttles re-optimization: at least this many requests
	// must have arrived since the last plan.
	MinNewRecords int

	// WatchCompletions bases drift detection on the I/O pipeline's
	// per-request completion records (requests in the order they finished,
	// stamped with their completion time) instead of the collector's
	// issue-order trace. The target must implement CompletionSource.
	// Off by default; the plans themselves are always built from the
	// cumulative collected trace either way.
	WatchCompletions bool
}

// DefaultPolicy: compare the last 256 requests, re-optimize at 30% drift,
// no more often than every 256 requests.
func DefaultPolicy() Policy {
	return Policy{Window: 256, Threshold: 0.3, MinNewRecords: 256}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Window <= 0 {
		return fmt.Errorf("dynamic: window must be positive")
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return fmt.Errorf("dynamic: threshold must be in (0, 1]")
	}
	if p.MinNewRecords < 0 {
		return fmt.Errorf("dynamic: negative MinNewRecords")
	}
	return nil
}

// Target is the system under management. mhafs.System satisfies it.
type Target interface {
	// Trace returns the cumulative collected trace.
	Trace() trace.Trace
	// RawTrace returns the collected trace in issue order.
	RawTrace() trace.Trace
	// Optimize (re-)plans and applies the scheme using the given trace.
	Optimize(scheme layout.Scheme, tr trace.Trace) error
}

// CompletionSource is optionally implemented by targets whose I/O
// pipeline records per-request completions (mhafs.System does): the
// records, rendered as a trace in completion order. Used when
// Policy.WatchCompletions is set.
type CompletionSource interface {
	CompletionTrace() trace.Trace
}

// Manager drives divergence-triggered re-optimization.
type Manager struct {
	target  Target
	scheme  layout.Scheme
	policy  Policy
	det     *Detector
	lastLen int
	reopts  int
}

// NewManager builds a manager; call Check periodically (e.g. after each
// I/O phase).
func NewManager(target Target, scheme layout.Scheme, policy Policy) (*Manager, error) {
	if target == nil {
		return nil, fmt.Errorf("dynamic: nil target")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if policy.WatchCompletions {
		if _, ok := target.(CompletionSource); !ok {
			return nil, fmt.Errorf("dynamic: WatchCompletions requires a CompletionSource target")
		}
	}
	return &Manager{target: target, scheme: scheme, policy: policy}, nil
}

// Reoptimizations returns how many re-plans the manager has triggered
// (including the initial plan).
func (m *Manager) Reoptimizations() int { return m.reopts }

// Check inspects the live trace; it plans initially once enough requests
// exist, and re-plans when the recent window diverges from the baseline.
// It returns whether a (re-)optimization happened and the divergence that
// was observed.
func (m *Manager) Check() (bool, float64, error) {
	raw := m.observed()
	if m.det == nil {
		// Initial plan: wait for a full window of observations.
		if len(raw) < m.policy.Window {
			return false, 0, nil
		}
		if err := m.optimize(raw); err != nil {
			return false, 0, err
		}
		return true, 0, nil
	}
	if len(raw)-m.lastLen < m.policy.MinNewRecords {
		return false, 0, nil
	}
	recent := raw
	if len(recent) > m.policy.Window {
		recent = recent[len(recent)-m.policy.Window:]
	}
	div := m.det.Divergence(recent)
	if div <= m.policy.Threshold {
		return false, div, nil
	}
	if err := m.optimize(raw); err != nil {
		return false, div, err
	}
	return true, div, nil
}

// observed returns the request stream drift is measured on: the
// collector's issue-order trace, or — with WatchCompletions — the
// pipeline's completion records.
func (m *Manager) observed() trace.Trace {
	if m.policy.WatchCompletions {
		return m.target.(CompletionSource).CompletionTrace()
	}
	return m.target.RawTrace()
}

// optimize re-plans on the cumulative trace (so every previously mapped
// extent stays reachable) and re-baselines the detector on the most
// recent window — the pattern that is active now, which future windows
// are compared against.
func (m *Manager) optimize(raw trace.Trace) error {
	if err := m.target.Optimize(m.scheme, m.target.Trace()); err != nil {
		return err
	}
	base := raw
	if len(base) > m.policy.Window {
		base = base[len(base)-m.policy.Window:]
	}
	m.det = NewDetector(base)
	m.lastLen = len(raw)
	m.reopts++
	return nil
}
