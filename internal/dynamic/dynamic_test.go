package dynamic

import (
	"fmt"
	"math"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func uniformTrace(n int, size int64, op trace.Op) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Record{
			Rank: i % 8, File: "f", Op: op,
			Offset: int64(i) * size, Size: size, Time: float64(i),
		})
	}
	return tr
}

func TestDetectorIdenticalDistributions(t *testing.T) {
	tr := uniformTrace(100, 64*units.KB, trace.OpWrite)
	d := NewDetector(tr)
	if got := d.Divergence(tr); got > 1e-12 {
		t.Errorf("identical distributions diverge by %v", got)
	}
	if got := d.Divergence(nil); got != 0 {
		t.Errorf("empty window divergence = %v", got)
	}
}

func TestDetectorDisjointDistributions(t *testing.T) {
	base := uniformTrace(100, 64*units.KB, trace.OpWrite)
	other := uniformTrace(100, 1*units.MB, trace.OpRead)
	d := NewDetector(base)
	if got := d.Divergence(other); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("disjoint distributions diverge by %v, want 1", got)
	}
}

func TestDetectorPartialDrift(t *testing.T) {
	base := uniformTrace(100, 64*units.KB, trace.OpWrite)
	// Half the window keeps the old pattern, half moves to a new size.
	mixed := append(uniformTrace(50, 64*units.KB, trace.OpWrite),
		uniformTrace(50, 4*units.MB, trace.OpWrite)...)
	d := NewDetector(base)
	got := d.Divergence(mixed)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half-drifted divergence = %v, want 0.5", got)
	}
}

func TestDetectorOpSensitivity(t *testing.T) {
	// Same sizes, different operation: SSDs are read/write asymmetric, so
	// op drift matters.
	base := uniformTrace(100, 64*units.KB, trace.OpWrite)
	reads := uniformTrace(100, 64*units.KB, trace.OpRead)
	if got := NewDetector(base).Divergence(reads); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("op flip divergence = %v, want 1", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{Window: 0, Threshold: 0.5},
		{Window: 10, Threshold: 0},
		{Window: 10, Threshold: 1.5},
		{Window: 10, Threshold: 0.5, MinNewRecords: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

// fakeTarget records Optimize calls and serves a mutable trace.
type fakeTarget struct {
	tr        trace.Trace
	optimized []layout.Scheme
	failNext  bool
}

func (f *fakeTarget) Trace() trace.Trace    { return f.tr.Clone() }
func (f *fakeTarget) RawTrace() trace.Trace { return f.tr.Clone() }
func (f *fakeTarget) Optimize(s layout.Scheme, tr trace.Trace) error {
	if f.failNext {
		f.failNext = false
		return fmt.Errorf("boom")
	}
	f.optimized = append(f.optimized, s)
	return nil
}

func TestManagerLifecycle(t *testing.T) {
	ft := &fakeTarget{}
	pol := Policy{Window: 10, Threshold: 0.3, MinNewRecords: 10}
	m, err := NewManager(ft, layout.MHA, pol)
	if err != nil {
		t.Fatal(err)
	}

	// Too few observations: no plan yet.
	ft.tr = uniformTrace(5, 64*units.KB, trace.OpWrite)
	if did, _, _ := m.Check(); did {
		t.Fatal("planned before a full window")
	}

	// Enough observations: initial plan.
	ft.tr = uniformTrace(20, 64*units.KB, trace.OpWrite)
	did, _, err := m.Check()
	if err != nil || !did {
		t.Fatalf("initial plan: did=%v err=%v", did, err)
	}
	if m.Reoptimizations() != 1 || len(ft.optimized) != 1 {
		t.Fatalf("reopts = %d", m.Reoptimizations())
	}

	// Throttle: drifted records arrive, but fewer than MinNewRecords since
	// the plan — ignored.
	ft.tr = append(ft.tr, uniformTrace(5, 4*units.MB, trace.OpRead)...)
	if did, _, _ := m.Check(); did {
		t.Fatal("re-planned despite MinNewRecords throttle")
	}

	// Same pattern continues: enough new records, no drift, no re-plan.
	ft.tr = uniformTrace(40, 64*units.KB, trace.OpWrite)
	did, div, _ := m.Check()
	if did || div > 1e-9 {
		t.Fatalf("stable pattern re-planned (div=%v)", div)
	}

	// Full drift beyond the threshold: re-plan.
	ft.tr = append(ft.tr, uniformTrace(20, 4*units.MB, trace.OpRead)...)
	did, div, err = m.Check()
	if err != nil || !did {
		t.Fatalf("drift not detected: did=%v div=%v err=%v", did, div, err)
	}
	if div <= pol.Threshold {
		t.Errorf("divergence %v should exceed threshold", div)
	}
	if m.Reoptimizations() != 2 {
		t.Errorf("reopts = %d, want 2", m.Reoptimizations())
	}

	// After re-baselining on the new window, the new pattern is stable.
	ft.tr = append(ft.tr, uniformTrace(30, 4*units.MB, trace.OpRead)...)
	if did, div, _ := m.Check(); did {
		t.Fatalf("re-planned on the new baseline (div=%v)", div)
	}
}

func TestManagerErrors(t *testing.T) {
	if _, err := NewManager(nil, layout.MHA, DefaultPolicy()); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewManager(&fakeTarget{}, layout.MHA, Policy{}); err == nil {
		t.Error("invalid policy accepted")
	}
	ft := &fakeTarget{tr: uniformTrace(20, 64*units.KB, trace.OpWrite), failNext: true}
	m, _ := NewManager(ft, layout.MHA, Policy{Window: 10, Threshold: 0.3})
	if _, _, err := m.Check(); err == nil {
		t.Error("Optimize failure not propagated")
	}
	// A failed optimize must not advance the baseline.
	if m.Reoptimizations() != 0 {
		t.Error("failed optimize counted")
	}
	// Retry succeeds.
	if did, _, err := m.Check(); err != nil || !did {
		t.Errorf("retry: did=%v err=%v", did, err)
	}
}

// completionTarget layers a CompletionSource over fakeTarget with an
// independent completion stream.
type completionTarget struct {
	fakeTarget
	completed trace.Trace
}

func (c *completionTarget) CompletionTrace() trace.Trace { return c.completed.Clone() }

func TestWatchCompletions(t *testing.T) {
	pol := Policy{Window: 10, Threshold: 0.3, MinNewRecords: 10, WatchCompletions: true}

	// A target without completion records is rejected up front.
	if _, err := NewManager(&fakeTarget{}, layout.MHA, pol); err == nil {
		t.Fatal("WatchCompletions accepted a target without CompletionTrace")
	}

	ct := &completionTarget{}
	m, err := NewManager(ct, layout.MHA, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Drift detection follows the completion stream, not the collector:
	// the collector already holds a full window, completions do not.
	ct.tr = uniformTrace(20, 64*units.KB, trace.OpWrite)
	if did, _, _ := m.Check(); did {
		t.Fatal("planned from the collector trace despite WatchCompletions")
	}
	ct.completed = uniformTrace(10, 64*units.KB, trace.OpWrite)
	did, _, err := m.Check()
	if err != nil || !did {
		t.Fatalf("initial plan from completions: did=%v err=%v", did, err)
	}
	// Re-plan triggers on completion-stream drift.
	ct.completed = append(ct.completed, uniformTrace(15, 4*units.MB, trace.OpRead)...)
	did, div, err := m.Check()
	if err != nil || !did {
		t.Fatalf("drifted completions: did=%v err=%v", did, err)
	}
	if div <= pol.Threshold {
		t.Errorf("divergence %v not above threshold", div)
	}
	if len(ct.optimized) != 2 {
		t.Errorf("optimize calls = %d, want 2", len(ct.optimized))
	}
}
