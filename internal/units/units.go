// Package units provides byte-size and rate quantities used throughout the
// simulator: parsing ("64KB", "1.5MiB"), formatting, and arithmetic on
// bandwidths expressed as seconds-per-byte, the form the cost model of the
// MHA paper (Table I) uses for its β and t parameters.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Common power-of-two byte sizes. The paper's stripe sizes, request sizes
// and search steps are all expressed in these units (4KB step, 64KB default
// stripe, and so on).
const (
	B  int64 = 1
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Bytes is a byte count with human-friendly formatting.
type Bytes int64

// String renders b using the largest unit that divides it exactly where
// possible, falling back to a two-decimal representation.
func (b Bytes) String() string {
	n := int64(b)
	neg := ""
	if n < 0 {
		neg = "-"
		n = -n
	}
	switch {
	case n >= TB && n%TB == 0:
		return fmt.Sprintf("%s%dTB", neg, n/TB)
	case n >= GB && n%GB == 0:
		return fmt.Sprintf("%s%dGB", neg, n/GB)
	case n >= MB && n%MB == 0:
		return fmt.Sprintf("%s%dMB", neg, n/MB)
	case n >= KB && n%KB == 0:
		return fmt.Sprintf("%s%dKB", neg, n/KB)
	case n >= TB:
		return fmt.Sprintf("%s%.2fTB", neg, float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%s%.2fGB", neg, float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%s%.2fMB", neg, float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%s%.2fKB", neg, float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%s%dB", neg, n)
	}
}

// ParseBytes parses strings such as "64KB", "1.5MB", "4096", "16GiB".
// Units are binary (KB == KiB == 1024 bytes), matching the paper's usage.
func ParseBytes(s string) (Bytes, error) {
	orig := s
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	// Split numeric prefix from unit suffix.
	i := 0
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	numStr, unit := s[:i], strings.TrimSpace(s[i:])
	if numStr == "" {
		return 0, fmt.Errorf("units: no digits in %q", orig)
	}
	mult, err := unitMultiplier(unit)
	if err != nil {
		return 0, fmt.Errorf("units: %q: %w", orig, err)
	}
	if !strings.Contains(numStr, ".") {
		n, err := strconv.ParseInt(numStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("units: %q: %w", orig, err)
		}
		v := n * mult
		if n != 0 && v/n != mult {
			return 0, fmt.Errorf("units: %q overflows int64", orig)
		}
		if neg {
			v = -v
		}
		return Bytes(v), nil
	}
	f, err := strconv.ParseFloat(numStr, 64)
	if err != nil {
		return 0, fmt.Errorf("units: %q: %w", orig, err)
	}
	product := f * float64(mult)
	// float64(MaxInt64) rounds to 2^63, which is itself out of range, so
	// the comparison must be >= rather than >.
	if product >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("units: %q overflows int64", orig)
	}
	v := int64(product)
	if neg {
		v = -v
	}
	return Bytes(v), nil
}

func unitMultiplier(unit string) (int64, error) {
	switch strings.ToUpper(unit) {
	case "", "B":
		return B, nil
	case "K", "KB", "KIB":
		return KB, nil
	case "M", "MB", "MIB":
		return MB, nil
	case "G", "GB", "GIB":
		return GB, nil
	case "T", "TB", "TIB":
		return TB, nil
	default:
		return 0, fmt.Errorf("unknown unit %q", unit)
	}
}

// MustParseBytes is ParseBytes for compile-time-constant inputs; it panics
// on error and is intended for tests and default tables.
func MustParseBytes(s string) Bytes {
	b, err := ParseBytes(s)
	if err != nil {
		panic(err)
	}
	return b
}

// SecPerByte expresses a transfer speed as seconds per byte, the unit of the
// cost model's β and t parameters. It is the reciprocal of a bandwidth.
type SecPerByte float64

// PerByteFromMBps converts a bandwidth in MB/s (binary MB) into seconds per
// byte.
func PerByteFromMBps(mbps float64) SecPerByte {
	if mbps <= 0 {
		return 0
	}
	return SecPerByte(1.0 / (mbps * float64(MB)))
}

// MBps converts back to MB/s for reporting.
func (p SecPerByte) MBps() float64 {
	if p <= 0 {
		return 0
	}
	return 1.0 / (float64(p) * float64(MB))
}

// Seconds returns the transfer time for n bytes at this per-byte rate.
func (p SecPerByte) Seconds(n int64) float64 {
	return float64(p) * float64(n)
}

// BandwidthMBps reports bytes/seconds as MB/s (binary MB); it returns 0 for
// non-positive durations.
func BandwidthMBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / float64(MB) / seconds
}

// End returns the exclusive end off+n of an extent, panicking on int64
// overflow instead of silently wrapping into a negative offset. Both
// arguments must be non-negative, which every validated extent in the
// tree guarantees.
func End(off, n int64) int64 {
	if off < 0 || n < 0 {
		panic(fmt.Sprintf("units: negative extent [%d,+%d)", off, n))
	}
	if off > math.MaxInt64-n {
		panic(fmt.Sprintf("units: extent end %d+%d overflows int64", off, n))
	}
	return off + n
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units: CeilDiv by non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// RoundUp rounds n up to the next multiple of step (step > 0).
func RoundUp(n, step int64) int64 {
	return CeilDiv(n, step) * step
}

// RoundDown rounds n down to a multiple of step (step > 0).
func RoundDown(n, step int64) int64 {
	if step <= 0 {
		panic("units: RoundDown by non-positive step")
	}
	if n <= 0 {
		return 0
	}
	return n - n%step
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
