package units

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"0", 0},
		{"1", 1},
		{"4096", 4096},
		{"64KB", 64 * Bytes(KB)},
		{"64kb", 64 * Bytes(KB)},
		{"64 KB", 64 * Bytes(KB)},
		{"64KiB", 64 * Bytes(KB)},
		{"1MB", Bytes(MB)},
		{"1.5MB", Bytes(MB) + Bytes(MB)/2},
		{"16GB", 16 * Bytes(GB)},
		{"2TB", 2 * Bytes(TB)},
		{"128B", 128},
		{"-4KB", -4 * Bytes(KB)},
		{"+4KB", 4 * Bytes(KB)},
		{"0.5KB", 512},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "KB", "12XB", "1.2.3KB", "--3", "9223372036854775807KB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): want error, got nil", in)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{Bytes(KB), "1KB"},
		{64 * Bytes(KB), "64KB"},
		{Bytes(MB), "1MB"},
		{Bytes(GB), "1GB"},
		{Bytes(TB), "1TB"},
		{Bytes(KB) + 512, "1.50KB"},
		{-64 * Bytes(KB), "-64KB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Round-trip property: formatting an exact multiple and re-parsing it yields
// the same value.
func TestBytesRoundTripQuick(t *testing.T) {
	f := func(kb uint16) bool {
		v := Bytes(int64(kb)) * Bytes(KB)
		got, err := ParseBytes(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerByteFromMBps(t *testing.T) {
	p := PerByteFromMBps(100)
	// 100MB at 100MB/s should take 1 second.
	if got := p.Seconds(100 * MB); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds(100MB) = %v, want 1.0", got)
	}
	if got := p.MBps(); math.Abs(got-100) > 1e-9 {
		t.Errorf("MBps() = %v, want 100", got)
	}
	if PerByteFromMBps(0) != 0 {
		t.Error("PerByteFromMBps(0) should be 0")
	}
	if SecPerByte(0).MBps() != 0 {
		t.Error("SecPerByte(0).MBps() should be 0")
	}
}

func TestBandwidthMBps(t *testing.T) {
	if got := BandwidthMBps(100*MB, 2); math.Abs(got-50) > 1e-9 {
		t.Errorf("BandwidthMBps = %v, want 50", got)
	}
	if got := BandwidthMBps(100, 0); got != 0 {
		t.Errorf("BandwidthMBps with zero time = %v, want 0", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{-3, 4, 0},
		{8, 3, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0): want panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestRounding(t *testing.T) {
	if got := RoundUp(5, 4); got != 8 {
		t.Errorf("RoundUp(5,4) = %d, want 8", got)
	}
	if got := RoundUp(8, 4); got != 8 {
		t.Errorf("RoundUp(8,4) = %d, want 8", got)
	}
	if got := RoundDown(5, 4); got != 4 {
		t.Errorf("RoundDown(5,4) = %d, want 4", got)
	}
	if got := RoundDown(-1, 4); got != 0 {
		t.Errorf("RoundDown(-1,4) = %d, want 0", got)
	}
}

func TestRoundingInvariantsQuick(t *testing.T) {
	f := func(n uint32, stepRaw uint8) bool {
		step := int64(stepRaw%63) + 1
		v := int64(n)
		up, down := RoundUp(v, step), RoundDown(v, step)
		return up%step == 0 && down%step == 0 && up >= v && down <= v && up-down < 2*step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Clamp(10, 0, 5) != 5 || Clamp(-1, 0, 5) != 0 || Clamp(3, 0, 5) != 3 {
		t.Error("Clamp wrong")
	}
}

func ExampleParseBytes() {
	b, _ := ParseBytes("64KB")
	fmt.Println(int64(b), b)
	// Output: 65536 64KB
}
