package units

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"0", 0},
		{"1", 1},
		{"4096", 4096},
		{"64KB", 64 * Bytes(KB)},
		{"64kb", 64 * Bytes(KB)},
		{"64 KB", 64 * Bytes(KB)},
		{"64KiB", 64 * Bytes(KB)},
		{"1MB", Bytes(MB)},
		{"1.5MB", Bytes(MB) + Bytes(MB)/2},
		{"16GB", 16 * Bytes(GB)},
		{"2TB", 2 * Bytes(TB)},
		{"128B", 128},
		{"-4KB", -4 * Bytes(KB)},
		{"+4KB", 4 * Bytes(KB)},
		{"0.5KB", 512},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "KB", "12XB", "1.2.3KB", "--3", "9223372036854775807KB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): want error, got nil", in)
		}
	}
}

// TestParseBytesOverflow pins both overflow guards: the integer path
// (n*mult wraps) and the float path (f*mult exceeds int64 range, where
// the naive int64(f*mult) conversion would silently produce MinInt64).
func TestParseBytesOverflow(t *testing.T) {
	for _, in := range []string{
		"9223372036854775807KB", // integer path: 2^63-1 KB wraps
		"9007199254740993TB",    // integer path again, TB-scale
		"9999999999.5TB",        // float path: product far beyond int64
		"8388608.1TB",           // float path: just past 2^63
	} {
		if got, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want overflow error", in, got)
		}
	}
	// The largest representable whole value must still parse.
	if got, err := ParseBytes("9223372036854775807"); err != nil || got != math.MaxInt64 {
		t.Errorf("ParseBytes(MaxInt64) = %d, %v; want %d, nil", got, err, int64(math.MaxInt64))
	}
	// A fractional value close to, but inside, the limit must not error.
	if _, err := ParseBytes("8388607.5TB"); err != nil {
		t.Errorf("ParseBytes(8388607.5TB): unexpected error %v", err)
	}
}

// TestParseBytesFractional pins the truncation semantics of fractional
// sizes: the product is truncated toward zero, not rounded.
func TestParseBytesFractional(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"1.5MB", Bytes(MB + MB/2)},
		{"0.25KB", 256},
		{"2.75GB", Bytes(2*GB + 3*GB/4)},
		{"0.0001KB", 0}, // truncates to zero bytes
		{"-1.5KB", -1536},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestStringParseRoundTrip re-parses String's output across all of its
// formatting branches, including the two-decimal fallback forms, whose
// re-parse may truncate but must stay within the rendered precision.
func TestStringParseRoundTrip(t *testing.T) {
	exact := []Bytes{0, 1, 512, Bytes(KB), 3 * Bytes(KB), Bytes(MB),
		17 * Bytes(MB), Bytes(GB), Bytes(TB), -64 * Bytes(KB)}
	for _, v := range exact {
		got, err := ParseBytes(v.String())
		if err != nil || got != v {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", v.String(), got, err, v)
		}
	}
	inexact := []Bytes{Bytes(KB) + 512, Bytes(MB) + 1, Bytes(GB) + Bytes(MB), -Bytes(KB) - 512}
	for _, v := range inexact {
		s := v.String()
		got, err := ParseBytes(s)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", s, err)
			continue
		}
		// Two decimals of the rendered unit bound the representation error.
		diff := got - v
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.01*math.Abs(float64(v)) {
			t.Errorf("ParseBytes(%q) = %d, too far from %d", s, got, v)
		}
	}
}

func TestEnd(t *testing.T) {
	cases := []struct {
		off, n, want int64
	}{
		{0, 0, 0},
		{0, 5, 5},
		{64 * KB, 4 * KB, 68 * KB},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
	}
	for _, c := range cases {
		if got := End(c.off, c.n); got != c.want {
			t.Errorf("End(%d, %d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestEndPanics(t *testing.T) {
	cases := []struct {
		name   string
		off, n int64
	}{
		{"negative offset", -1, 4},
		{"negative length", 4, -1},
		{"overflow", math.MaxInt64, 1},
		{"overflow both large", math.MaxInt64 / 2, math.MaxInt64/2 + 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("End(%d, %d): want panic", c.off, c.n)
				}
			}()
			End(c.off, c.n)
		})
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{Bytes(KB), "1KB"},
		{64 * Bytes(KB), "64KB"},
		{Bytes(MB), "1MB"},
		{Bytes(GB), "1GB"},
		{Bytes(TB), "1TB"},
		{Bytes(KB) + 512, "1.50KB"},
		{-64 * Bytes(KB), "-64KB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Round-trip property: formatting an exact multiple and re-parsing it yields
// the same value.
func TestBytesRoundTripQuick(t *testing.T) {
	f := func(kb uint16) bool {
		v := Bytes(int64(kb)) * Bytes(KB)
		got, err := ParseBytes(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerByteFromMBps(t *testing.T) {
	p := PerByteFromMBps(100)
	// 100MB at 100MB/s should take 1 second.
	if got := p.Seconds(100 * MB); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds(100MB) = %v, want 1.0", got)
	}
	if got := p.MBps(); math.Abs(got-100) > 1e-9 {
		t.Errorf("MBps() = %v, want 100", got)
	}
	if PerByteFromMBps(0) != 0 {
		t.Error("PerByteFromMBps(0) should be 0")
	}
	if SecPerByte(0).MBps() != 0 {
		t.Error("SecPerByte(0).MBps() should be 0")
	}
}

func TestBandwidthMBps(t *testing.T) {
	if got := BandwidthMBps(100*MB, 2); math.Abs(got-50) > 1e-9 {
		t.Errorf("BandwidthMBps = %v, want 50", got)
	}
	if got := BandwidthMBps(100, 0); got != 0 {
		t.Errorf("BandwidthMBps with zero time = %v, want 0", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{-3, 4, 0},
		{8, 3, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0): want panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestRounding(t *testing.T) {
	if got := RoundUp(5, 4); got != 8 {
		t.Errorf("RoundUp(5,4) = %d, want 8", got)
	}
	if got := RoundUp(8, 4); got != 8 {
		t.Errorf("RoundUp(8,4) = %d, want 8", got)
	}
	if got := RoundDown(5, 4); got != 4 {
		t.Errorf("RoundDown(5,4) = %d, want 4", got)
	}
	if got := RoundDown(-1, 4); got != 0 {
		t.Errorf("RoundDown(-1,4) = %d, want 0", got)
	}
}

func TestRoundingInvariantsQuick(t *testing.T) {
	f := func(n uint32, stepRaw uint8) bool {
		step := int64(stepRaw%63) + 1
		v := int64(n)
		up, down := RoundUp(v, step), RoundDown(v, step)
		return up%step == 0 && down%step == 0 && up >= v && down <= v && up-down < 2*step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Clamp(10, 0, 5) != 5 || Clamp(-1, 0, 5) != 0 || Clamp(3, 0, 5) != 3 {
		t.Error("Clamp wrong")
	}
}

func ExampleParseBytes() {
	b, _ := ParseBytes("64KB")
	fmt.Println(int64(b), b)
	// Output: 65536 64KB
}
