package units_test

import (
	"fmt"

	"mhafs/internal/units"
)

func ExampleParseBytes_stripes() {
	h, _ := units.ParseBytes("32KB")
	s, _ := units.ParseBytes("96KB")
	fmt.Printf("stripe pair <%v, %v>\n", h, s)
	// Output: stripe pair <32KB, 96KB>
}

func ExamplePerByteFromMBps() {
	beta := units.PerByteFromMBps(110) // the testbed HDD's streaming rate
	fmt.Printf("128KB transfer: %.3fms\n", beta.Seconds(128*units.KB)*1e3)
	// Output: 128KB transfer: 1.136ms
}
