package device

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func TestKindString(t *testing.T) {
	if HDD.String() != "hdd" || SSD.String() != "ssd" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown kind should embed value")
	}
}

func TestDefaultsValid(t *testing.T) {
	for _, m := range []Model{DefaultHDD(), DefaultSSD()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Model{
		{Name: "x", ReadStartup: -1, WriteStartup: 0, ReadPerByte: 1, WritePerByte: 1},
		{Name: "x", ReadStartup: 0, WriteStartup: -1, ReadPerByte: 1, WritePerByte: 1},
		{Name: "x", ReadPerByte: 0, WritePerByte: 1},
		{Name: "x", ReadPerByte: 1, WritePerByte: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestStartupPerByteSelection(t *testing.T) {
	m := Model{
		ReadStartup: 1, WriteStartup: 2,
		ReadPerByte: 3, WritePerByte: 4,
	}
	if m.Startup(trace.OpRead) != 1 || m.Startup(trace.OpWrite) != 2 {
		t.Error("Startup selection wrong")
	}
	if m.PerByte(trace.OpRead) != 3 || m.PerByte(trace.OpWrite) != 4 {
		t.Error("PerByte selection wrong")
	}
}

func TestServiceTime(t *testing.T) {
	m := Model{
		ReadStartup: 0.010, WriteStartup: 0.020,
		ReadPerByte:  units.PerByteFromMBps(100),
		WritePerByte: units.PerByteFromMBps(50),
	}
	// 100MB read: 10ms + 1s.
	if got := m.ServiceTime(trace.OpRead, 100*units.MB); math.Abs(got-1.010) > 1e-9 {
		t.Errorf("read ServiceTime = %v, want 1.010", got)
	}
	// 100MB write: 20ms + 2s.
	if got := m.ServiceTime(trace.OpWrite, 100*units.MB); math.Abs(got-2.020) > 1e-9 {
		t.Errorf("write ServiceTime = %v, want 2.020", got)
	}
	if m.ServiceTime(trace.OpRead, 0) != 0 {
		t.Error("zero-byte request should cost 0")
	}
	if m.ServiceTime(trace.OpRead, -5) != 0 {
		t.Error("negative request should cost 0")
	}
}

// SSD must be strictly faster than HDD for any positive request size under
// the default calibration — this is the premise of the whole paper.
func TestSSDFasterThanHDDQuick(t *testing.T) {
	h, s := DefaultHDD(), DefaultSSD()
	f := func(kb uint16, write bool) bool {
		n := (int64(kb) + 1) * units.KB
		op := trace.OpRead
		if write {
			op = trace.OpWrite
		}
		return s.ServiceTime(op, n) < h.ServiceTime(op, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Service time must be monotonic in the request size.
func TestServiceTimeMonotonicQuick(t *testing.T) {
	m := DefaultHDD()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.ServiceTime(trace.OpRead, x) <= m.ServiceTime(trace.OpRead, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSDAsymmetry(t *testing.T) {
	s := DefaultSSD()
	n := int64(1 * units.MB)
	if !(s.ServiceTime(trace.OpWrite, n) > s.ServiceTime(trace.OpRead, n)) {
		t.Error("SSD writes should be slower than reads")
	}
}

func TestHDDSymmetry(t *testing.T) {
	h := DefaultHDD()
	n := int64(1 * units.MB)
	r, w := h.ServiceTime(trace.OpRead, n), h.ServiceTime(trace.OpWrite, n)
	if math.Abs(r-w) > 1e-12 {
		t.Errorf("HDD read/write should be symmetric: %v vs %v", r, w)
	}
}
