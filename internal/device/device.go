// Package device models the storage media behind file servers: hard disk
// drives (HDDs) and flash solid-state drives (SSDs).
//
// The MHA paper characterizes a device by a startup time α (seek plus
// rotational latency for HDDs, controller overhead for SSDs) and a per-byte
// transfer time β, with SSDs having distinct read and write parameters
// (α_sr/β_sr and α_sw/β_sw in Table I). Both the analytic cost model and
// the discrete-event simulator consume the same Model, so the planner's
// predictions and the simulator's measurements come from one source of
// truth — the paper achieves the same effect by calibrating its model on
// the deployment it later measures.
package device

import (
	"fmt"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Kind distinguishes the two media classes of a hybrid PFS.
type Kind uint8

// Media kinds.
const (
	HDD Kind = iota
	SSD
)

// String returns "hdd" or "ssd".
func (k Kind) String() string {
	switch k {
	case HDD:
		return "hdd"
	case SSD:
		return "ssd"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Model is a parameterized storage device.
type Model struct {
	Name string
	Kind Kind

	// ReadStartup and WriteStartup are the per-request startup times in
	// seconds (α in the paper). For HDDs they are equal.
	ReadStartup  float64
	WriteStartup float64

	// ReadPerByte and WritePerByte are the per-byte transfer times (β).
	ReadPerByte  units.SecPerByte
	WritePerByte units.SecPerByte

	// SeekInterference models inter-stream seek thrashing on mechanical
	// media: each request already queued at the device when a new request
	// arrives adds this many seconds of extra positioning time, up to
	// SeekInterferenceCap. Zero for SSDs. The paper observes the effect as
	// "the contention among processes becomes more severe" when process
	// counts grow (Fig. 9, Fig. 11).
	SeekInterference    float64
	SeekInterferenceCap float64
}

// Validate checks that all latencies are non-negative and transfer rates
// positive.
func (m Model) Validate() error {
	if m.ReadStartup < 0 || m.WriteStartup < 0 {
		return fmt.Errorf("device %s: negative startup time", m.Name)
	}
	if m.ReadPerByte <= 0 || m.WritePerByte <= 0 {
		return fmt.Errorf("device %s: per-byte transfer time must be positive", m.Name)
	}
	if m.SeekInterference < 0 || m.SeekInterferenceCap < 0 {
		return fmt.Errorf("device %s: negative seek interference", m.Name)
	}
	return nil
}

// Startup returns α for the given operation.
func (m Model) Startup(op trace.Op) float64 {
	if op == trace.OpWrite {
		return m.WriteStartup
	}
	return m.ReadStartup
}

// PerByte returns β for the given operation.
func (m Model) PerByte(op trace.Op) units.SecPerByte {
	if op == trace.OpWrite {
		return m.WritePerByte
	}
	return m.ReadPerByte
}

// ServiceTime returns the storage-side time to service one contiguous
// sub-request of n bytes with an idle queue: α + n·β. Zero-byte requests
// cost nothing (the striping layer never issues them).
func (m Model) ServiceTime(op trace.Op, n int64) float64 {
	return m.ServiceTimeAt(op, n, 0)
}

// ServiceTimeAt is ServiceTime with queueDepth requests already pending at
// the device: mechanical media pay extra positioning time per competing
// stream, capped at SeekInterferenceCap.
func (m Model) ServiceTimeAt(op trace.Op, n int64, queueDepth int) float64 {
	if n <= 0 {
		return 0
	}
	extra := float64(queueDepth) * m.SeekInterference
	if m.SeekInterferenceCap > 0 && extra > m.SeekInterferenceCap {
		extra = m.SeekInterferenceCap
	}
	return m.Startup(op) + extra + m.PerByte(op).Seconds(n)
}

// DefaultHDD returns a model calibrated to the paper's testbed disks:
// 250 GB 7.2k-RPM SATA-II drives, streaming at ~110 MB/s for both reads
// and writes. The startup time α_h is the *average* positioning cost per
// striped sub-request, not the worst-case full-stroke seek (~8 ms): a PFS
// server services mostly short seeks within a striped file plus queue
// reordering, so the measured average the paper's cost model uses is on
// the order of 1–2 ms. Competing client streams push the arm apart —
// modeled as 30 µs of extra positioning per queued request, capped at
// 2 ms (approaching a full-stroke seek).
func DefaultHDD() Model {
	return Model{
		Name:                "sata-hdd-250g",
		Kind:                HDD,
		ReadStartup:         1.5e-3,
		WriteStartup:        1.5e-3,
		ReadPerByte:         units.PerByteFromMBps(110),
		WritePerByte:        units.PerByteFromMBps(110),
		SeekInterference:    30e-6,
		SeekInterferenceCap: 2e-3,
	}
}

// DefaultSSD returns a model calibrated to the paper's PCI-E X4 100 GB
// SSDs: negligible positioning time (tens of microseconds of controller
// latency) and asymmetric read/write streaming rates (~700 / ~500 MB/s).
func DefaultSSD() Model {
	return Model{
		Name:         "pcie-ssd-100g",
		Kind:         SSD,
		ReadStartup:  50e-6,
		WriteStartup: 80e-6,
		ReadPerByte:  units.PerByteFromMBps(700),
		WritePerByte: units.PerByteFromMBps(500),
	}
}
