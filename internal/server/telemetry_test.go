package server

import (
	"math"
	"testing"

	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

func TestServerTelemetry(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)

	s.SubmitWrite("f", 0, make([]byte, 1000), nil)
	s.SubmitRead("f", 0, make([]byte, 400), nil)
	eng.Run()

	srv := telemetry.L("server", "h0")
	if got := reg.Counter(MetricOps, srv, telemetry.L("op", "write")).Value(); got != 1 {
		t.Errorf("write ops = %v, want 1", got)
	}
	if got := reg.Counter(MetricOps, srv, telemetry.L("op", "read")).Value(); got != 1 {
		t.Errorf("read ops = %v, want 1", got)
	}
	if got := reg.Counter(MetricBytes, srv, telemetry.L("op", "write")).Value(); got != 1000 {
		t.Errorf("write bytes = %v, want 1000", got)
	}
	// Accumulated busy seconds must equal the resource's own accounting.
	busy := reg.Counter(MetricBusy, srv).Value()
	if want := s.Stats().BusyTime; math.Abs(busy-want) > 1e-12 {
		t.Errorf("busy = %v, want %v", busy, want)
	}
	// Both ops were submitted at t=0: the write starts immediately (wait 0)
	// and the read waits out the write's full service time.
	qw := reg.Histogram(MetricQueueWait, telemetry.LatencyBuckets(), srv)
	if qw.Count() != 2 {
		t.Fatalf("queue-wait samples = %d, want 2", qw.Count())
	}
	if want := s.ServiceTime(trace.OpWrite, 1000); math.Abs(qw.Sum()-want) > 1e-12 {
		t.Errorf("queue-wait sum = %v, want %v (the write's service time)", qw.Sum(), want)
	}
	sv := reg.Histogram(MetricService, telemetry.LatencyBuckets(), srv)
	if sv.Count() != 2 || math.Abs(sv.Sum()-busy) > 1e-12 {
		t.Errorf("service sum = %v over %d, want busy %v over 2", sv.Sum(), sv.Count(), busy)
	}

	// Detaching stops emission without disturbing recorded series.
	s.SetTelemetry(nil)
	s.SubmitWrite("f", 0, make([]byte, 100), nil)
	eng.Run()
	if got := reg.Counter(MetricOps, srv, telemetry.L("op", "write")).Value(); got != 1 {
		t.Errorf("detached server still emitted: write ops = %v", got)
	}
}
