// Package server models one file server of a hybrid parallel file system:
// a storage device (HDD or SSD), the network link to it, a FIFO request
// queue, and the bytes it stores.
//
// A server services sub-requests one at a time. The service time of an
// n-byte sub-request is the device time α + n·β plus the network time
// n·t (+ per-message overhead) — exactly the per-server term of the
// paper's cost model (Eq. 2), so the simulator realizes the model's
// assumptions and adds queueing on top.
package server

import (
	"fmt"

	"mhafs/internal/device"
	"mhafs/internal/fault"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// Server is one storage server in the simulated cluster.
type Server struct {
	Name string
	Dev  device.Model
	Net  netmodel.Model

	eng    *sim.Engine
	res    *sim.Resource
	stores map[string]*ByteStore
	tel    *serverMetrics
	faults *fault.Injector

	// dataless servers charge full virtual-time costs but move no bytes;
	// freeIn is their pooled in-flight descriptor list (see dataless.go).
	dataless bool
	freeIn   []*inflight

	readBytes  int64
	writeBytes int64
	reads      int64
	writes     int64
}

// New creates a server bound to the simulation engine.
func New(eng *sim.Engine, name string, dev device.Model, net netmodel.Model) (*Server, error) {
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	return &Server{
		Name:   name,
		Dev:    dev,
		Net:    net,
		eng:    eng,
		res:    sim.NewResource(eng, name),
		stores: make(map[string]*ByteStore),
	}, nil
}

// Telemetry series emitted per server. Busy time accumulates actual
// service seconds (the per-server I/O time of Fig. 8); queue wait is the
// submit-to-service-start residency behind the FIFO.
const (
	MetricOps       = "server_ops_total"
	MetricBytes     = "server_bytes_total"
	MetricBusy      = "server_busy_seconds_total"
	MetricQueueWait = "server_queue_wait_seconds"
	MetricService   = "server_service_seconds"
)

// serverMetrics caches this server's series handles so the per-request
// emission path does not re-resolve registry identities.
type serverMetrics struct {
	readOps, writeOps     *telemetry.Counter
	readBytes, writeBytes *telemetry.Counter
	busy                  *telemetry.Counter
	queueWait             *telemetry.Histogram
	service               *telemetry.Histogram
}

// SetTelemetry installs (or, with nil, removes) a registry the server
// emits per-request observations into: op and byte counters, accumulated
// busy seconds, and queue-wait/service-time histograms, all labeled by
// server name and measured in virtual time.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	srv := telemetry.L("server", s.Name)
	s.tel = &serverMetrics{
		readOps:    reg.Counter(MetricOps, srv, telemetry.L("op", "read")),
		writeOps:   reg.Counter(MetricOps, srv, telemetry.L("op", "write")),
		readBytes:  reg.Counter(MetricBytes, srv, telemetry.L("op", "read")),
		writeBytes: reg.Counter(MetricBytes, srv, telemetry.L("op", "write")),
		busy:       reg.Counter(MetricBusy, srv),
		queueWait:  reg.Histogram(MetricQueueWait, telemetry.LatencyBuckets(), srv),
		service:    reg.Histogram(MetricService, telemetry.LatencyBuckets(), srv),
	}
}

// observe folds one completed sub-request into the telemetry series.
func (m *serverMetrics) observe(op trace.Op, n int64, submit, start, end float64) {
	if op == trace.OpWrite {
		m.writeOps.Inc()
		m.writeBytes.Add(float64(n))
	} else {
		m.readOps.Inc()
		m.readBytes.Add(float64(n))
	}
	m.busy.Add(end - start)
	m.queueWait.Observe(start - submit)
	m.service.Observe(end - start)
}

// ServiceTime returns the device+network time for one n-byte sub-request
// arriving at an idle server.
func (s *Server) ServiceTime(op trace.Op, n int64) float64 {
	return s.serviceTimeAt(op, n, 0)
}

// serviceTimeAt includes the device's queue-depth seek interference.
func (s *Server) serviceTimeAt(op trace.Op, n int64, depth int) float64 {
	if n <= 0 {
		return 0
	}
	return s.Dev.ServiceTimeAt(op, n, depth) + s.Net.TransferTime(n)
}

// Object returns the byte store backing one file's data on this server,
// creating it on first use. A PFS server keeps a separate local object per
// file, so distinct files never collide in local offset space.
func (s *Server) Object(name string) *ByteStore {
	st, ok := s.stores[name]
	if !ok {
		st = NewByteStore(0)
		s.stores[name] = st
	}
	return st
}

// SetFaults attaches (or, with nil, detaches) a fault injector: the hook
// every submit consults at service time. With no injector the submit path
// is byte-for-byte the historical healthy one.
func (s *Server) SetFaults(in *fault.Injector) { s.faults = in }

// Faults returns the attached injector (nil when the server is healthy).
func (s *Server) Faults() *fault.Injector { return s.faults }

// SubmitWrite enqueues a write of data at the given local offset of the
// named object. The bytes are committed and done (optional) invoked when
// the FIFO queue reaches and completes the request.
//
// SubmitWrite is the fault-unaware legacy path: it panics if the attached
// injector fails the attempt. Resilient clients (the pipeline's retry
// stage) use SubmitWriteErr.
//
// The closure-based submits allocate per request by design (byte copies,
// completion closures); the XL tier's 0-alloc contract is carried by the
// descriptor path, SubmitDataless + IODone.
//
//mhavet:coldpath closure-based submission; the XL tier uses SubmitDataless
func (s *Server) SubmitWrite(obj string, local int64, data []byte, done func(end float64)) {
	s.SubmitWriteErr(obj, local, data, func(end float64, err error) {
		if err != nil {
			// Reaching a faulted server without the resilient pipeline is a
			// wiring bug, not a runtime condition: the raw path has no way
			// to retry or fail over.
			panic(fmt.Sprintf("server %s: injected fault on the fault-unaware path: %v", s.Name, err))
		}
		if done != nil {
			done(end)
		}
	})
}

// SubmitRead enqueues a read into buf from the given local offset of the
// named object. buf is filled at virtual completion time, before done
// runs. Like SubmitWrite, it panics on injected faults.
//
//mhavet:coldpath closure-based submission; the XL tier uses SubmitDataless
func (s *Server) SubmitRead(obj string, local int64, buf []byte, done func(end float64)) {
	s.SubmitReadErr(obj, local, buf, func(end float64, err error) {
		if err != nil {
			panic(fmt.Sprintf("server %s: injected fault on the fault-unaware path: %v", s.Name, err))
		}
		if done != nil {
			done(end)
		}
	})
}

// SubmitWriteErr is the fault-aware write submission: done receives the
// attempt's virtual end time and its error. An outage refuses the attempt
// immediately (no queueing, no service time); a transient fault consumes
// the full service slot and then fails without committing bytes; a
// slowdown scales the device term of the service time.
//
//mhavet:coldpath closure-based submission; the XL tier uses SubmitDataless
func (s *Server) SubmitWriteErr(obj string, local int64, data []byte, done func(end float64, err error)) {
	n := int64(len(data))
	if s.dataless {
		s.submit(trace.OpWrite, n, func() {
			s.writeBytes += n
			s.writes++
		}, done)
		return
	}
	// Copy now: the caller may reuse its buffer before virtual completion.
	buf := make([]byte, n)
	copy(buf, data)
	s.submit(trace.OpWrite, n, func() {
		s.Object(obj).WriteAt(buf, local)
		s.writeBytes += n
		s.writes++
	}, done)
}

// SubmitReadErr is the fault-aware read submission, mirroring
// SubmitWriteErr. buf is filled only on success.
//
//mhavet:coldpath closure-based submission; the XL tier uses SubmitDataless
func (s *Server) SubmitReadErr(obj string, local int64, buf []byte, done func(end float64, err error)) {
	n := int64(len(buf))
	if s.dataless {
		s.submit(trace.OpRead, n, func() {
			s.readBytes += n
			s.reads++
		}, done)
		return
	}
	s.submit(trace.OpRead, n, func() {
		s.Object(obj).ReadAt(buf, local)
		s.readBytes += n
		s.reads++
	}, done)
}

// submit is the shared submission path. commit applies the operation's
// data movement and counters; it runs only when the attempt succeeds.
//
// The fault hook is consulted at the attempt's service-start time: under
// FIFO the start is max(now, queue drain), known deterministically at
// submission. A transient attempt still occupies the server (and is
// observed in telemetry — the device and wire did the work); only the
// commit is skipped.
func (s *Server) submit(op trace.Op, n int64, commit func(), done func(end float64, err error)) {
	if done == nil {
		panic(fmt.Sprintf("server %s: submit with nil completion", s.Name))
	}
	submit, tel := s.eng.Now(), s.tel
	d := fault.Healthy()
	if s.faults != nil {
		start := submit
		if bu := s.res.BusyUntil(); bu > start {
			start = bu
		}
		d = s.faults.At(s.Name, start)
		s.faults.Observe(s.Name, d)
		if d.Down {
			// Refused at the door: an unreachable server consumes neither
			// queue nor service time. Completion is still asynchronous,
			// like every other submit.
			s.eng.Schedule(0, func() { done(s.eng.Now(), fault.ErrUnavailable) })
			return
		}
	}
	service := s.serviceTimeAt(op, n, s.res.Depth())
	if d.Scale != 1 && n > 0 {
		// Only the device term degrades; the network path is healthy.
		service = s.Dev.ServiceTimeAt(op, n, s.res.Depth())*d.Scale + s.Net.TransferTime(n)
	}
	s.res.Acquire(service, func(start, end float64) {
		if d.Transient {
			if tel != nil {
				tel.observe(op, n, submit, start, end)
			}
			done(end, fault.ErrTransient)
			return
		}
		commit()
		if tel != nil {
			tel.observe(op, n, submit, start, end)
		}
		done(end, nil)
	})
}

// Stats summarizes the server's activity.
type Stats struct {
	Name       string
	Kind       device.Kind
	Reads      int64
	Writes     int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   float64 // total service time (the per-server I/O time of Fig. 8)
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Name:       s.Name,
		Kind:       s.Dev.Kind,
		Reads:      s.reads,
		Writes:     s.writes,
		ReadBytes:  s.readBytes,
		WriteBytes: s.writeBytes,
		BusyTime:   s.res.BusyTime(),
	}
}

// DeleteObject discards the named object's bytes (a no-op for unknown
// names).
func (s *Server) DeleteObject(name string) {
	delete(s.stores, name)
}

// Objects returns the names of the objects stored on this server.
func (s *Server) Objects() []string {
	out := make([]string, 0, len(s.stores))
	for n := range s.stores {
		out = append(out, n)
	}
	return out
}

// ResetStats clears the activity counters but keeps stored data.
func (s *Server) ResetStats() {
	s.reads, s.writes, s.readBytes, s.writeBytes = 0, 0, 0, 0
}
