// Package server models one file server of a hybrid parallel file system:
// a storage device (HDD or SSD), the network link to it, a FIFO request
// queue, and the bytes it stores.
//
// A server services sub-requests one at a time. The service time of an
// n-byte sub-request is the device time α + n·β plus the network time
// n·t (+ per-message overhead) — exactly the per-server term of the
// paper's cost model (Eq. 2), so the simulator realizes the model's
// assumptions and adds queueing on top.
package server

import (
	"fmt"

	"mhafs/internal/device"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// Server is one storage server in the simulated cluster.
type Server struct {
	Name string
	Dev  device.Model
	Net  netmodel.Model

	eng    *sim.Engine
	res    *sim.Resource
	stores map[string]*ByteStore
	tel    *serverMetrics

	readBytes  int64
	writeBytes int64
	reads      int64
	writes     int64
}

// New creates a server bound to the simulation engine.
func New(eng *sim.Engine, name string, dev device.Model, net netmodel.Model) (*Server, error) {
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	return &Server{
		Name:   name,
		Dev:    dev,
		Net:    net,
		eng:    eng,
		res:    sim.NewResource(eng, name),
		stores: make(map[string]*ByteStore),
	}, nil
}

// Telemetry series emitted per server. Busy time accumulates actual
// service seconds (the per-server I/O time of Fig. 8); queue wait is the
// submit-to-service-start residency behind the FIFO.
const (
	MetricOps       = "server_ops_total"
	MetricBytes     = "server_bytes_total"
	MetricBusy      = "server_busy_seconds_total"
	MetricQueueWait = "server_queue_wait_seconds"
	MetricService   = "server_service_seconds"
)

// serverMetrics caches this server's series handles so the per-request
// emission path does not re-resolve registry identities.
type serverMetrics struct {
	readOps, writeOps     *telemetry.Counter
	readBytes, writeBytes *telemetry.Counter
	busy                  *telemetry.Counter
	queueWait             *telemetry.Histogram
	service               *telemetry.Histogram
}

// SetTelemetry installs (or, with nil, removes) a registry the server
// emits per-request observations into: op and byte counters, accumulated
// busy seconds, and queue-wait/service-time histograms, all labeled by
// server name and measured in virtual time.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	srv := telemetry.L("server", s.Name)
	s.tel = &serverMetrics{
		readOps:    reg.Counter(MetricOps, srv, telemetry.L("op", "read")),
		writeOps:   reg.Counter(MetricOps, srv, telemetry.L("op", "write")),
		readBytes:  reg.Counter(MetricBytes, srv, telemetry.L("op", "read")),
		writeBytes: reg.Counter(MetricBytes, srv, telemetry.L("op", "write")),
		busy:       reg.Counter(MetricBusy, srv),
		queueWait:  reg.Histogram(MetricQueueWait, telemetry.LatencyBuckets(), srv),
		service:    reg.Histogram(MetricService, telemetry.LatencyBuckets(), srv),
	}
}

// observe folds one completed sub-request into the telemetry series.
func (m *serverMetrics) observe(op trace.Op, n int64, submit, start, end float64) {
	if op == trace.OpWrite {
		m.writeOps.Inc()
		m.writeBytes.Add(float64(n))
	} else {
		m.readOps.Inc()
		m.readBytes.Add(float64(n))
	}
	m.busy.Add(end - start)
	m.queueWait.Observe(start - submit)
	m.service.Observe(end - start)
}

// ServiceTime returns the device+network time for one n-byte sub-request
// arriving at an idle server.
func (s *Server) ServiceTime(op trace.Op, n int64) float64 {
	return s.serviceTimeAt(op, n, 0)
}

// serviceTimeAt includes the device's queue-depth seek interference.
func (s *Server) serviceTimeAt(op trace.Op, n int64, depth int) float64 {
	if n <= 0 {
		return 0
	}
	return s.Dev.ServiceTimeAt(op, n, depth) + s.Net.TransferTime(n)
}

// Object returns the byte store backing one file's data on this server,
// creating it on first use. A PFS server keeps a separate local object per
// file, so distinct files never collide in local offset space.
func (s *Server) Object(name string) *ByteStore {
	st, ok := s.stores[name]
	if !ok {
		st = NewByteStore(0)
		s.stores[name] = st
	}
	return st
}

// SubmitWrite enqueues a write of data at the given local offset of the
// named object. The bytes are committed and done (optional) invoked when
// the FIFO queue reaches and completes the request.
func (s *Server) SubmitWrite(obj string, local int64, data []byte, done func(end float64)) {
	n := int64(len(data))
	// Copy now: the caller may reuse its buffer before virtual completion.
	buf := make([]byte, n)
	copy(buf, data)
	submit, tel := s.eng.Now(), s.tel
	s.res.Acquire(s.serviceTimeAt(trace.OpWrite, n, s.res.Depth()), func(start, end float64) {
		s.Object(obj).WriteAt(buf, local)
		s.writeBytes += n
		s.writes++
		if tel != nil {
			tel.observe(trace.OpWrite, n, submit, start, end)
		}
		if done != nil {
			done(end)
		}
	})
}

// SubmitRead enqueues a read into buf from the given local offset of the
// named object. buf is filled at virtual completion time, before done
// runs.
func (s *Server) SubmitRead(obj string, local int64, buf []byte, done func(end float64)) {
	n := int64(len(buf))
	submit, tel := s.eng.Now(), s.tel
	s.res.Acquire(s.serviceTimeAt(trace.OpRead, n, s.res.Depth()), func(start, end float64) {
		s.Object(obj).ReadAt(buf, local)
		s.readBytes += n
		s.reads++
		if tel != nil {
			tel.observe(trace.OpRead, n, submit, start, end)
		}
		if done != nil {
			done(end)
		}
	})
}

// Stats summarizes the server's activity.
type Stats struct {
	Name       string
	Kind       device.Kind
	Reads      int64
	Writes     int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   float64 // total service time (the per-server I/O time of Fig. 8)
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Name:       s.Name,
		Kind:       s.Dev.Kind,
		Reads:      s.reads,
		Writes:     s.writes,
		ReadBytes:  s.readBytes,
		WriteBytes: s.writeBytes,
		BusyTime:   s.res.BusyTime(),
	}
}

// DeleteObject discards the named object's bytes (a no-op for unknown
// names).
func (s *Server) DeleteObject(name string) {
	delete(s.stores, name)
}

// Objects returns the names of the objects stored on this server.
func (s *Server) Objects() []string {
	out := make([]string, 0, len(s.stores))
	for n := range s.stores {
		out = append(out, n)
	}
	return out
}

// ResetStats clears the activity counters but keeps stored data.
func (s *Server) ResetStats() {
	s.reads, s.writes, s.readBytes, s.writeBytes = 0, 0, 0, 0
}
