// Package server models one file server of a hybrid parallel file system:
// a storage device (HDD or SSD), the network link to it, a FIFO request
// queue, and the bytes it stores.
//
// A server services sub-requests one at a time. The service time of an
// n-byte sub-request is the device time α + n·β plus the network time
// n·t (+ per-message overhead) — exactly the per-server term of the
// paper's cost model (Eq. 2), so the simulator realizes the model's
// assumptions and adds queueing on top.
package server

import (
	"fmt"

	"mhafs/internal/device"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// Server is one storage server in the simulated cluster.
type Server struct {
	Name string
	Dev  device.Model
	Net  netmodel.Model

	res    *sim.Resource
	stores map[string]*ByteStore

	readBytes  int64
	writeBytes int64
	reads      int64
	writes     int64
}

// New creates a server bound to the simulation engine.
func New(eng *sim.Engine, name string, dev device.Model, net netmodel.Model) (*Server, error) {
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	return &Server{
		Name:   name,
		Dev:    dev,
		Net:    net,
		res:    sim.NewResource(eng, name),
		stores: make(map[string]*ByteStore),
	}, nil
}

// ServiceTime returns the device+network time for one n-byte sub-request
// arriving at an idle server.
func (s *Server) ServiceTime(op trace.Op, n int64) float64 {
	return s.serviceTimeAt(op, n, 0)
}

// serviceTimeAt includes the device's queue-depth seek interference.
func (s *Server) serviceTimeAt(op trace.Op, n int64, depth int) float64 {
	if n <= 0 {
		return 0
	}
	return s.Dev.ServiceTimeAt(op, n, depth) + s.Net.TransferTime(n)
}

// Object returns the byte store backing one file's data on this server,
// creating it on first use. A PFS server keeps a separate local object per
// file, so distinct files never collide in local offset space.
func (s *Server) Object(name string) *ByteStore {
	st, ok := s.stores[name]
	if !ok {
		st = NewByteStore(0)
		s.stores[name] = st
	}
	return st
}

// SubmitWrite enqueues a write of data at the given local offset of the
// named object. The bytes are committed and done (optional) invoked when
// the FIFO queue reaches and completes the request.
func (s *Server) SubmitWrite(obj string, local int64, data []byte, done func(end float64)) {
	n := int64(len(data))
	// Copy now: the caller may reuse its buffer before virtual completion.
	buf := make([]byte, n)
	copy(buf, data)
	s.res.Acquire(s.serviceTimeAt(trace.OpWrite, n, s.res.Depth()), func(_, end float64) {
		s.Object(obj).WriteAt(buf, local)
		s.writeBytes += n
		s.writes++
		if done != nil {
			done(end)
		}
	})
}

// SubmitRead enqueues a read into buf from the given local offset of the
// named object. buf is filled at virtual completion time, before done
// runs.
func (s *Server) SubmitRead(obj string, local int64, buf []byte, done func(end float64)) {
	n := int64(len(buf))
	s.res.Acquire(s.serviceTimeAt(trace.OpRead, n, s.res.Depth()), func(_, end float64) {
		s.Object(obj).ReadAt(buf, local)
		s.readBytes += n
		s.reads++
		if done != nil {
			done(end)
		}
	})
}

// Stats summarizes the server's activity.
type Stats struct {
	Name       string
	Kind       device.Kind
	Reads      int64
	Writes     int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   float64 // total service time (the per-server I/O time of Fig. 8)
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Name:       s.Name,
		Kind:       s.Dev.Kind,
		Reads:      s.reads,
		Writes:     s.writes,
		ReadBytes:  s.readBytes,
		WriteBytes: s.writeBytes,
		BusyTime:   s.res.BusyTime(),
	}
}

// DeleteObject discards the named object's bytes (a no-op for unknown
// names).
func (s *Server) DeleteObject(name string) {
	delete(s.stores, name)
}

// Objects returns the names of the objects stored on this server.
func (s *Server) Objects() []string {
	out := make([]string, 0, len(s.stores))
	for n := range s.stores {
		out = append(out, n)
	}
	return out
}

// ResetStats clears the activity counters but keeps stored data.
func (s *Server) ResetStats() {
	s.reads, s.writes, s.readBytes, s.writeBytes = 0, 0, 0, 0
}
