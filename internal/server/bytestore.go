package server

import "mhafs/internal/units"

// ByteStore is a sparse in-memory byte array: the storage medium behind a
// simulated file server. Unwritten ranges read as zeros, like a sparse
// POSIX file. Storage is chunked so a server holding a few scattered
// stripes of a terabyte-scale file costs memory proportional to the data
// actually written.
type ByteStore struct {
	chunkSize int64
	chunks    map[int64][]byte
	size      int64 // high-water mark: one past the last written byte
}

// DefaultChunkSize balances map overhead against slack for typical stripe
// sizes (4 KB – several MB).
const DefaultChunkSize = 256 * units.KB

// NewByteStore creates a store with the given chunk size (0 selects the
// default).
func NewByteStore(chunkSize int64) *ByteStore {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ByteStore{chunkSize: chunkSize, chunks: make(map[int64][]byte)}
}

// WriteAt stores p at offset off, growing the store as needed. A negative
// offset panics: offsets are validated at the middleware boundary, so one
// arriving here is a programmer error in the layout math.
func (b *ByteStore) WriteAt(p []byte, off int64) {
	if off < 0 {
		panic("server: negative write offset")
	}
	for len(p) > 0 {
		ci := off / b.chunkSize
		within := off % b.chunkSize
		chunk := b.chunks[ci]
		if chunk == nil {
			chunk = make([]byte, b.chunkSize)
			b.chunks[ci] = chunk
		}
		n := copy(chunk[within:], p)
		p = p[n:]
		off += int64(n)
	}
	if off > b.size {
		b.size = off
	}
}

// ReadAt fills p from offset off; unwritten bytes are zero. Like WriteAt,
// a negative offset is a programmer error and panics.
func (b *ByteStore) ReadAt(p []byte, off int64) {
	if off < 0 {
		panic("server: negative read offset")
	}
	for len(p) > 0 {
		ci := off / b.chunkSize
		within := off % b.chunkSize
		n := int64(len(p))
		if room := b.chunkSize - within; n > room {
			n = room
		}
		if chunk := b.chunks[ci]; chunk != nil {
			copy(p[:n], chunk[within:within+n])
		} else {
			for i := int64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

// Size returns the high-water mark (one past the last byte ever written).
func (b *ByteStore) Size() int64 { return b.size }

// StoredBytes returns the bytes of backing memory actually allocated.
func (b *ByteStore) StoredBytes() int64 {
	return int64(len(b.chunks)) * b.chunkSize
}

// Reset discards all data.
func (b *ByteStore) Reset() {
	b.chunks = make(map[int64][]byte)
	b.size = 0
}
