package server

import (
	"fmt"

	"mhafs/internal/fault"
	"mhafs/internal/trace"
)

// Dataless mode: the XL simulation tier measures timing, queueing and
// layout behaviour over ≥10⁶ requests — it never reads the bytes back
// out-of-band, so materializing every payload in ByteStores (and the
// defensive copy each submit makes) is pure overhead at that scale. A
// dataless server charges exactly the same virtual-time costs through
// exactly the same FIFO resource, but skips the byte movement, and its
// submission path runs on pooled in-flight descriptors: steady state it
// allocates nothing per request.
//
// Paper-scale clusters keep Dataless off, so their byte-accurate
// write/read round-trips — and their golden figures — are untouched.

// Done receives a sub-request completion on the descriptor-based
// submission path. *iopath.Request implements it, so the pipeline's
// terminal stage hands the request itself to the server — no completion
// closure per sub-request.
type Done interface {
	IODone(end float64, err error)
}

// SetDataless switches the server's payload handling. Flipping it on a
// server that already stores bytes is a wiring bug the caller owns;
// clusters set it once at construction.
func (s *Server) SetDataless(v bool) { s.dataless = v }

// IsDataless reports whether the server skips payload materialization.
func (s *Server) IsDataless() bool { return s.dataless }

// inflight is one submission in service: the reserved window, the fault
// decision taken at submit, and the completion target. It implements
// sim.Callback so the service-end event schedules without a closure, and
// it is pooled on the server, so the steady-state submit path performs no
// allocation at all.
type inflight struct {
	srv       *Server
	op        trace.Op
	n         int64
	submit    float64
	start     float64
	end       float64
	transient bool
	done      Done
}

// Fire completes the submission at its service-end event: resource
// bookkeeping, counters, telemetry, then the Done callback. The
// descriptor is recycled before the callback runs — IODone may submit
// follow-on work to this same server and immediately reuse it.
func (f *inflight) Fire() {
	s, op, n := f.srv, f.op, f.n
	submit, start, end := f.submit, f.start, f.end
	transient, done := f.transient, f.done
	*f = inflight{}
	s.freeIn = append(s.freeIn, f)

	s.res.Complete()
	if transient {
		if s.tel != nil {
			s.tel.observe(op, n, submit, start, end)
		}
		done.IODone(end, fault.ErrTransient)
		return
	}
	if op == trace.OpWrite {
		s.writeBytes += n
		s.writes++
	} else {
		s.readBytes += n
		s.reads++
	}
	if s.tel != nil {
		s.tel.observe(op, n, submit, start, end)
	}
	done.IODone(end, nil)
}

// getInflight pops a pooled descriptor (the pool is confined to the
// engine's single thread, like the server itself).
func (s *Server) getInflight() *inflight {
	if n := len(s.freeIn); n > 0 {
		f := s.freeIn[n-1]
		s.freeIn[n-1] = nil
		s.freeIn = s.freeIn[:n-1]
		return f
	}
	return &inflight{}
}

// SubmitDataless is the descriptor-based submission path of a dataless
// server: it charges the same fault decisions, queueing and service time
// as SubmitWriteErr/SubmitReadErr, but moves no bytes and allocates
// nothing steady-state. done receives the attempt's virtual end time and
// its error, exactly like the Err-returning submits.
func (s *Server) SubmitDataless(op trace.Op, n int64, done Done) {
	if !s.dataless {
		panic(fmt.Sprintf("server %s: SubmitDataless on a byte-storing server", s.Name))
	}
	if done == nil {
		panic(fmt.Sprintf("server %s: submit with nil completion", s.Name))
	}
	submit := s.eng.Now()
	d := fault.Healthy()
	if s.faults != nil {
		start := submit
		if bu := s.res.BusyUntil(); bu > start {
			start = bu
		}
		d = s.faults.At(s.Name, start)
		s.faults.Observe(s.Name, d)
		if d.Down {
			// Refused at the door, asynchronously like every submit. The
			// fault path may allocate: outages are rare by construction.
			s.eng.Schedule(0, func() { done.IODone(s.eng.Now(), fault.ErrUnavailable) }) //mhavet:allow closure
			return
		}
	}
	service := s.serviceTimeAt(op, n, s.res.Depth())
	if d.Scale != 1 && n > 0 {
		service = s.Dev.ServiceTimeAt(op, n, s.res.Depth())*d.Scale + s.Net.TransferTime(n)
	}
	start, end := s.res.Reserve(service)
	f := s.getInflight()
	f.srv, f.op, f.n = s, op, n
	f.submit, f.start, f.end = submit, start, end
	f.transient, f.done = d.Transient, done
	s.eng.AtCall(end, f)
}

// doneFunc adapts a completion func to Done for callers that need a
// per-attempt closure rather than a descriptor.
type doneFunc func(end float64, err error)

// IODone implements Done.
func (f doneFunc) IODone(end float64, err error) { f(end, err) }

// SubmitOpErr is the func-based fault-aware submission of a dataless
// server, the analogue of SubmitWriteErr/SubmitReadErr by size alone. The
// client retry stage uses it: each attempt owns a settling closure, so the
// descriptor path does not apply (and boxing the closure may allocate —
// retries ride the fault path, not the hot loop).
func (s *Server) SubmitOpErr(op trace.Op, n int64, done func(end float64, err error)) {
	if done == nil {
		panic(fmt.Sprintf("server %s: submit with nil completion", s.Name))
	}
	s.SubmitDataless(op, n, doneFunc(done))
}
