package server

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"mhafs/internal/device"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

func TestByteStoreReadWrite(t *testing.T) {
	b := NewByteStore(16)
	data := []byte("hello, parallel file system")
	b.WriteAt(data, 5)
	got := make([]byte, len(data))
	b.ReadAt(got, 5)
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
	if b.Size() != 5+int64(len(data)) {
		t.Errorf("Size = %d", b.Size())
	}
}

func TestByteStoreSparseZeros(t *testing.T) {
	b := NewByteStore(16)
	b.WriteAt([]byte{0xFF}, 100)
	got := make([]byte, 10)
	b.ReadAt(got, 0)
	for i, v := range got {
		if v != 0 {
			t.Errorf("unwritten byte %d = %d", i, v)
		}
	}
}

func TestByteStoreCrossChunk(t *testing.T) {
	b := NewByteStore(8)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	b.WriteAt(data, 3) // spans 9 chunks
	got := make([]byte, 64)
	b.ReadAt(got, 3)
	if !bytes.Equal(got, data) {
		t.Error("cross-chunk round trip failed")
	}
}

func TestByteStoreOverwrite(t *testing.T) {
	b := NewByteStore(16)
	b.WriteAt([]byte("aaaa"), 0)
	b.WriteAt([]byte("bb"), 1)
	got := make([]byte, 4)
	b.ReadAt(got, 0)
	if string(got) != "abba" {
		t.Errorf("got %q", got)
	}
}

func TestByteStoreDefaultChunk(t *testing.T) {
	b := NewByteStore(0)
	b.WriteAt([]byte{1}, 0)
	if b.StoredBytes() != DefaultChunkSize {
		t.Errorf("StoredBytes = %d", b.StoredBytes())
	}
}

func TestByteStoreReset(t *testing.T) {
	b := NewByteStore(16)
	b.WriteAt([]byte{1, 2, 3}, 0)
	b.Reset()
	if b.Size() != 0 || b.StoredBytes() != 0 {
		t.Error("Reset did not clear")
	}
	got := make([]byte, 3)
	b.ReadAt(got, 0)
	if got[0] != 0 {
		t.Error("data survived Reset")
	}
}

func TestByteStorePanics(t *testing.T) {
	b := NewByteStore(16)
	for _, fn := range []func(){
		func() { b.WriteAt([]byte{1}, -1) },
		func() { b.ReadAt(make([]byte, 1), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for negative offset")
				}
			}()
			fn()
		}()
	}
}

// Property: write-then-read round trips for arbitrary offsets and data.
func TestByteStoreRoundTripQuick(t *testing.T) {
	f := func(offRaw uint16, data []byte) bool {
		b := NewByteStore(32)
		off := int64(offRaw)
		b.WriteAt(data, off)
		got := make([]byte, len(data))
		b.ReadAt(got, off)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func newTestServer(t *testing.T, eng *sim.Engine) *Server {
	t.Helper()
	s, err := New(eng, "h0", device.DefaultHDD(), netmodel.DefaultGigE())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerNewValidates(t *testing.T) {
	var eng sim.Engine
	if _, err := New(&eng, "bad", device.Model{}, netmodel.DefaultGigE()); err == nil {
		t.Error("invalid device accepted")
	}
	if _, err := New(&eng, "bad", device.DefaultHDD(), netmodel.Model{}); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestServerWriteReadRoundTrip(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	data := []byte("stripe data")
	var wrote, read bool
	s.SubmitWrite("f", 100, data, func(end float64) { wrote = true })
	buf := make([]byte, len(data))
	s.SubmitRead("f", 100, buf, func(end float64) { read = true })
	eng.Run()
	if !wrote || !read {
		t.Fatal("callbacks did not run")
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("read %q", buf)
	}
}

func TestServerServiceTimeMatchesModels(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	n := int64(1 << 20)
	want := s.Dev.ServiceTime(trace.OpRead, n) + s.Net.TransferTime(n)
	if got := s.ServiceTime(trace.OpRead, n); math.Abs(got-want) > 1e-15 {
		t.Errorf("ServiceTime = %v, want %v", got, want)
	}
	if s.ServiceTime(trace.OpRead, 0) != 0 {
		t.Error("zero bytes should cost 0")
	}
}

func TestServerFIFOTiming(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	n := int64(64 << 10)
	per := s.ServiceTime(trace.OpWrite, n)
	var ends []float64
	for i := 0; i < 3; i++ {
		s.SubmitWrite("f", int64(i)*n, make([]byte, n), func(end float64) { ends = append(ends, end) })
	}
	eng.Run()
	// Request i arrives with i requests already queued, paying i steps of
	// HDD seek interference on top of the base service time.
	want := 0.0
	for i, end := range ends {
		want += per + float64(i)*s.Dev.SeekInterference
		if math.Abs(end-want) > 1e-12 {
			t.Errorf("request %d ended at %v, want %v", i, end, want)
		}
	}
}

func TestServerCallerBufferReuse(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	buf := []byte("first")
	s.SubmitWrite("f", 0, buf, nil)
	copy(buf, "XXXXX") // caller reuses buffer before virtual completion
	eng.Run()
	got := make([]byte, 5)
	s.Object("f").ReadAt(got, 0)
	if string(got) != "first" {
		t.Errorf("stored %q; SubmitWrite must copy", got)
	}
}

func TestServerStats(t *testing.T) {
	var eng sim.Engine
	s := newTestServer(t, &eng)
	s.SubmitWrite("f", 0, make([]byte, 1000), nil)
	s.SubmitRead("f", 0, make([]byte, 400), nil)
	eng.Run()
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Errorf("ops = %d/%d", st.Reads, st.Writes)
	}
	if st.WriteBytes != 1000 || st.ReadBytes != 400 {
		t.Errorf("bytes = %d/%d", st.ReadBytes, st.WriteBytes)
	}
	// The read arrives while the write is queued, paying one step of seek
	// interference.
	wantBusy := s.ServiceTime(trace.OpWrite, 1000) + s.ServiceTime(trace.OpRead, 400) + s.Dev.SeekInterference
	if math.Abs(st.BusyTime-wantBusy) > 1e-12 {
		t.Errorf("BusyTime = %v, want %v", st.BusyTime, wantBusy)
	}
	if st.Kind != device.HDD {
		t.Errorf("Kind = %v", st.Kind)
	}
	s.ResetStats()
	st = s.Stats()
	if st.Reads != 0 || st.WriteBytes != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestSSDServerFasterThanHDD(t *testing.T) {
	var eng sim.Engine
	h := newTestServer(t, &eng)
	ssd, err := New(&eng, "s0", device.DefaultSSD(), netmodel.DefaultGigE())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	if !(ssd.ServiceTime(trace.OpRead, n) < h.ServiceTime(trace.OpRead, n)) {
		t.Error("SServer should service the same sub-request faster than HServer")
	}
}
