package server

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"mhafs/internal/device"
	"mhafs/internal/fault"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// newFaultyServer builds a server with the given schedule attached.
func newFaultyServer(t *testing.T, eng *sim.Engine, sched fault.Schedule) (*Server, *fault.Injector) {
	t.Helper()
	s, err := New(eng, "h0", device.DefaultHDD(), netmodel.DefaultGigE())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.NewInjector(eng, sched)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(in)
	return s, in
}

// TestSlowdownScalesDeviceTermOnly pins the degraded service time by
// hand: device time scales by the factor, the network term does not.
func TestSlowdownScalesDeviceTermOnly(t *testing.T) {
	eng := &sim.Engine{}
	s, _ := newFaultyServer(t, eng, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Slowdown, Start: 0, End: math.Inf(1), Factor: 4},
	}})
	const n = 64 << 10
	var end float64
	s.SubmitWriteErr("f", 0, make([]byte, n), func(e float64, err error) {
		if err != nil {
			t.Errorf("slowdown must not fail the attempt: %v", err)
		}
		end = e
	})
	eng.Run()
	want := s.Dev.ServiceTimeAt(trace.OpWrite, n, 0)*4 + s.Net.TransferTime(n)
	if end != want {
		t.Errorf("degraded write end = %v, want %v", end, want)
	}
	// The healthy service time is strictly smaller.
	if healthy := s.ServiceTime(trace.OpWrite, n); end <= healthy {
		t.Errorf("degraded %v not slower than healthy %v", end, healthy)
	}
}

// TestTransientConsumesServiceAndSkipsCommit: the attempt occupies the
// full service slot, fails with ErrTransient, and no bytes land.
func TestTransientConsumesServiceAndSkipsCommit(t *testing.T) {
	eng := &sim.Engine{}
	s, _ := newFaultyServer(t, eng, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Transient, Start: 0, End: 1},
	}})
	const n = 4096
	var end float64
	var gotErr error
	s.SubmitWriteErr("f", 0, bytes.Repeat([]byte{0xAB}, n), func(e float64, err error) {
		end, gotErr = e, err
	})
	eng.Run()
	if !errors.Is(gotErr, fault.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", gotErr)
	}
	if want := s.ServiceTime(trace.OpWrite, n); end != want {
		t.Errorf("failed attempt end = %v, want full service time %v", end, want)
	}
	buf := make([]byte, n)
	s.Object("f").ReadAt(buf, 0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x committed by a failed write", i, b)
		}
	}
	if st := s.Stats(); st.Writes != 0 || st.WriteBytes != 0 {
		t.Errorf("failed attempt counted in stats: %+v", st)
	}
	if s.Stats().BusyTime == 0 {
		t.Error("failed attempt must still accumulate busy time")
	}
}

// TestOutageRefusesImmediately: no queue, no service time — completion at
// the submission instant (asynchronously).
func TestOutageRefusesImmediately(t *testing.T) {
	eng := &sim.Engine{}
	s, _ := newFaultyServer(t, eng, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Outage, Start: 0, End: 1},
	}})
	var end float64 = -1
	var gotErr error
	s.SubmitReadErr("f", 0, make([]byte, 4096), func(e float64, err error) {
		end, gotErr = e, err
	})
	eng.Run()
	if !errors.Is(gotErr, fault.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", gotErr)
	}
	if end != 0 {
		t.Errorf("refusal at %v, want the submission instant 0", end)
	}
	if s.Stats().BusyTime != 0 {
		t.Error("a refused attempt must not occupy the server")
	}
}

// TestFaultConsultedAtServiceTime: a request submitted while healthy but
// whose FIFO service start falls inside a later window is faulted — the
// hook is consulted at service time, not submission time.
func TestFaultConsultedAtServiceTime(t *testing.T) {
	eng := &sim.Engine{}
	const n = 1 << 20 // ~11 ms of HDD service
	s, _ := newFaultyServer(t, eng, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Transient, Start: 5e-3, End: 10},
	}})
	first := s.ServiceTime(trace.OpWrite, n)
	if first <= 5e-3 {
		t.Fatalf("test needs the first request to outlast the window start, got %v", first)
	}
	var errs []error
	done := func(e float64, err error) { errs = append(errs, err) }
	// At t=0 the server is healthy: the first attempt starts immediately
	// and succeeds. The second queues behind it; its service starts at
	// first > 5 ms, inside the transient window, so it fails.
	s.SubmitWriteErr("f", 0, make([]byte, n), done)
	s.SubmitWriteErr("f", n, make([]byte, n), done)
	eng.Run()
	if len(errs) != 2 {
		t.Fatalf("completions = %d, want 2", len(errs))
	}
	if errs[0] != nil {
		t.Errorf("first attempt (service start 0) failed: %v", errs[0])
	}
	if !errors.Is(errs[1], fault.ErrTransient) {
		t.Errorf("queued attempt (service start %v) = %v, want ErrTransient", first, errs[1])
	}
}

// TestLegacyPathPanicsOnFault: the fault-unaware SubmitWrite/SubmitRead
// must fail loudly rather than silently dropping an injected error.
func TestLegacyPathPanicsOnFault(t *testing.T) {
	eng := &sim.Engine{}
	s, _ := newFaultyServer(t, eng, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Outage, Start: 0, End: 1},
	}})
	defer func() {
		if recover() == nil {
			t.Error("legacy submit must panic on an injected fault")
		}
	}()
	s.SubmitWrite("f", 0, make([]byte, 16), nil)
	eng.Run()
}

// TestHealthyPathUnchangedWithInjector: an attached injector with no
// covering window leaves the timing exactly as without one.
func TestHealthyPathUnchangedWithInjector(t *testing.T) {
	const n = 128 << 10
	run := func(attach bool) float64 {
		eng := &sim.Engine{}
		s, err := New(eng, "h0", device.DefaultHDD(), netmodel.DefaultGigE())
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			in, err := fault.NewInjector(eng, fault.Schedule{Windows: []fault.Window{
				{Server: "h0", Kind: fault.Outage, Start: 100, End: 200},
			}})
			if err != nil {
				t.Fatal(err)
			}
			s.SetFaults(in)
		}
		var end float64
		s.SubmitWrite("f", 0, make([]byte, n), func(e float64) { end = e })
		s.SubmitRead("f", 0, make([]byte, n), func(e float64) { end = e })
		eng.Run()
		return end
	}
	if with, without := run(true), run(false); with != without {
		t.Errorf("healthy timing differs with injector attached: %v vs %v", with, without)
	}
}
