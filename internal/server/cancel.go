package server

import (
	"errors"
	"fmt"

	"mhafs/internal/fault"
	"mhafs/internal/trace"
)

// Cancellable submission: the adaptive scheduler's speculative re-issue
// races one sub-request on two servers and must be able to withdraw the
// loser. Under the simulator's eager FIFO reservation (sim.Resource), a
// submission's service window is fixed the moment it is reserved, so
// cancellation has exactly two deterministic outcomes:
//
//   - the window has not started and is still the queue tail: the
//     reservation is rescinded and the server never performs the work;
//   - otherwise the window burns — the device and wire do the work, as
//     they would for a request already dispatched to a real server's
//     queue — but the commit (byte movement, op counters) is suppressed.
//
// Either way the submission completes with ErrCancelled, so descriptor
// bookkeeping upstream always runs. ErrCancelled is not retryable.

// ErrCancelled reports a submission withdrawn by its client before
// completion. It is terminal: the retry stage must not re-issue a
// cancelled attempt.
var ErrCancelled = errors.New("server: submission cancelled")

// Backlog returns the server's current queue backlog in virtual seconds:
// how long a sub-request submitted now would wait before service starts.
// It is the client-observable congestion signal the adaptive scheduler's
// latency estimator samples — clients cannot see injected fault state
// directly, but they can see its effect on the queue.
func (s *Server) Backlog() float64 {
	b := s.res.BusyUntil() - s.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}

// QueueDepth returns the number of sub-requests queued or in service.
func (s *Server) QueueDepth() int { return s.res.Depth() }

// Pending is the handle of one cancellable in-flight submission.
type Pending struct {
	srv       *Server
	op        trace.Op
	n         int64
	submit    float64
	start     float64
	end       float64
	transient bool
	commit    func()
	done      func(end float64, err error)
	cancelled bool
	rescinded bool
	settled   bool
}

// Cancel withdraws the submission. An unstarted tail window is rescinded
// (the server never does the work); a started or covered window burns with
// its commit suppressed. The completion callback receives ErrCancelled in
// both cases — asynchronously for a rescinded window, at the original
// service-end event for a burned one. Cancelling a settled or already
// cancelled submission is a no-op.
func (p *Pending) Cancel() {
	if p == nil || p.settled || p.cancelled {
		return
	}
	p.cancelled = true
	if p.srv.res.Rescind(p.start, p.end) {
		// The service-end event still fires, but fire sees rescinded and
		// does nothing; Rescind already undid the Reserve accounting.
		p.rescinded = true
		p.settled = true
		s := p.srv
		done := p.done
		s.eng.Schedule(0, func() { done(s.eng.Now(), ErrCancelled) })
	}
}

// Cancelled reports whether Cancel ran.
func (p *Pending) Cancelled() bool { return p != nil && p.cancelled }

// Rescinded reports whether cancellation withdrew the reservation before
// service (false when the window burned or the submission completed).
func (p *Pending) Rescinded() bool { return p != nil && p.rescinded }

// fire completes the submission at its service-end event.
func (p *Pending) fire() {
	if p.rescinded {
		return
	}
	p.settled = true
	s := p.srv
	s.res.Complete()
	if p.cancelled || p.transient {
		// The device did the work (telemetry observes it) but nothing is
		// committed.
		if s.tel != nil {
			s.tel.observe(p.op, p.n, p.submit, p.start, p.end)
		}
		if p.cancelled {
			p.done(p.end, ErrCancelled)
			return
		}
		p.done(p.end, fault.ErrTransient)
		return
	}
	p.commit()
	if s.tel != nil {
		s.tel.observe(p.op, p.n, p.submit, p.start, p.end)
	}
	p.done(p.end, nil)
}

// submitCancellable mirrors submit — same fault consultation at the
// attempt's service-start time, same Reserve accounting, same telemetry —
// but returns a Pending handle instead of owning the window outright. An
// outage refuses the attempt immediately and returns nil (there is nothing
// to cancel).
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func (s *Server) submitCancellable(op trace.Op, n int64, commit func(), done func(end float64, err error)) *Pending {
	if done == nil {
		panic(fmt.Sprintf("server %s: submit with nil completion", s.Name))
	}
	submit := s.eng.Now()
	d := fault.Healthy()
	if s.faults != nil {
		start := submit
		if bu := s.res.BusyUntil(); bu > start {
			start = bu
		}
		d = s.faults.At(s.Name, start)
		s.faults.Observe(s.Name, d)
		if d.Down {
			s.eng.Schedule(0, func() { done(s.eng.Now(), fault.ErrUnavailable) })
			return nil
		}
	}
	service := s.serviceTimeAt(op, n, s.res.Depth())
	if d.Scale != 1 && n > 0 {
		service = s.Dev.ServiceTimeAt(op, n, s.res.Depth())*d.Scale + s.Net.TransferTime(n)
	}
	start, end := s.res.Reserve(service)
	p := &Pending{
		srv: s, op: op, n: n,
		submit: submit, start: start, end: end,
		transient: d.Transient, commit: commit, done: done,
	}
	s.eng.At(end, p.fire)
	return p
}

// SubmitWriteCancellable is SubmitWriteErr with a cancellation handle.
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func (s *Server) SubmitWriteCancellable(obj string, local int64, data []byte, done func(end float64, err error)) *Pending {
	n := int64(len(data))
	if s.dataless {
		return s.submitCancellable(trace.OpWrite, n, func() {
			s.writeBytes += n
			s.writes++
		}, done)
	}
	// Copy now: the caller may reuse its buffer before virtual completion.
	buf := make([]byte, n)
	copy(buf, data)
	return s.submitCancellable(trace.OpWrite, n, func() {
		s.Object(obj).WriteAt(buf, local)
		s.writeBytes += n
		s.writes++
	}, done)
}

// SubmitReadCancellable is SubmitReadErr with a cancellation handle; buf
// is filled only on success.
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func (s *Server) SubmitReadCancellable(obj string, local int64, buf []byte, done func(end float64, err error)) *Pending {
	n := int64(len(buf))
	if s.dataless {
		return s.submitCancellable(trace.OpRead, n, func() {
			s.readBytes += n
			s.reads++
		}, done)
	}
	return s.submitCancellable(trace.OpRead, n, func() {
		s.Object(obj).ReadAt(buf, local)
		s.readBytes += n
		s.reads++
	}, done)
}

// SubmitOpCancellable is the by-size cancellable submission of a dataless
// server, the analogue of SubmitOpErr.
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func (s *Server) SubmitOpCancellable(op trace.Op, n int64, done func(end float64, err error)) *Pending {
	if !s.dataless {
		panic(fmt.Sprintf("server %s: SubmitOpCancellable on a byte-storing server", s.Name))
	}
	return s.submitCancellable(op, n, func() {
		if op == trace.OpWrite {
			s.writeBytes += n
			s.writes++
		} else {
			s.readBytes += n
			s.reads++
		}
	}, done)
}
