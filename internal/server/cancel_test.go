package server

import (
	"errors"
	"testing"

	"mhafs/internal/device"
	"mhafs/internal/netmodel"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// newCancelServer builds a dataless server for cancellation tests.
func newCancelServer(t *testing.T) (*sim.Engine, *Server) {
	t.Helper()
	eng := &sim.Engine{}
	s, err := New(eng, "h0", device.DefaultHDD(), netmodel.DefaultGigE())
	if err != nil {
		t.Fatal(err)
	}
	s.SetDataless(true)
	return eng, s
}

// TestCancelRescindsUnstartedTail: cancelling the queue tail before its
// service window starts withdraws the reservation — the backlog rolls
// back, the commit never runs, and the completion surfaces ErrCancelled
// asynchronously.
func TestCancelRescindsUnstartedTail(t *testing.T) {
	eng, s := newCancelServer(t)
	var firstErr, tailErr error
	done1 := func(end float64, err error) { firstErr = err }
	p1 := s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, done1)
	backlogOne := s.Backlog()
	p2 := s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, func(end float64, err error) { tailErr = err })
	if s.Backlog() <= backlogOne {
		t.Fatalf("backlog %v did not grow past %v on the second submission", s.Backlog(), backlogOne)
	}

	p2.Cancel()
	if !p2.Rescinded() || !p2.Cancelled() {
		t.Fatalf("unstarted tail: rescinded=%v cancelled=%v, want both true", p2.Rescinded(), p2.Cancelled())
	}
	if got := s.Backlog(); got != backlogOne {
		t.Errorf("backlog after rescind = %v, want rolled back to %v", got, backlogOne)
	}
	eng.Run()

	if !errors.Is(tailErr, ErrCancelled) {
		t.Errorf("rescinded completion err = %v, want ErrCancelled", tailErr)
	}
	if firstErr != nil {
		t.Errorf("first submission err = %v, want nil", firstErr)
	}
	if st := s.Stats(); st.Writes != 1 || st.WriteBytes != 64*units.KB {
		t.Errorf("stats = %d writes / %d bytes, want the surviving submission only", st.Writes, st.WriteBytes)
	}
	if p1.Cancelled() {
		t.Error("first submission reports cancelled")
	}
}

// TestCancelBurnsStartedWindow: a window already in service cannot be
// rescinded — the device does the work to the original end time, but
// the commit is suppressed and the completion carries ErrCancelled.
func TestCancelBurnsStartedWindow(t *testing.T) {
	eng, s := newCancelServer(t)
	var end float64
	var err error
	p := s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, func(e float64, e2 error) { end, err = e, e2 })
	want := s.Backlog() // the reserved service window

	p.Cancel()
	if p.Rescinded() {
		t.Fatal("in-service window reports rescinded")
	}
	p.Cancel() // double-cancel is a no-op
	eng.Run()

	if !errors.Is(err, ErrCancelled) {
		t.Errorf("burned completion err = %v, want ErrCancelled", err)
	}
	if end != want {
		t.Errorf("burned completion at %v, want the original service end %v", end, want)
	}
	if st := s.Stats(); st.Writes != 0 || st.WriteBytes != 0 {
		t.Errorf("stats = %d writes / %d bytes, want commit suppressed", st.Writes, st.WriteBytes)
	}
	p.Cancel() // cancelling a settled handle is a no-op
}

// TestCancelCoveredWindowBurns: a queued window that is no longer the
// tail burns too — eager FIFO reservation fixed every later start time,
// so the middle of the queue cannot be withdrawn.
func TestCancelCoveredWindowBurns(t *testing.T) {
	eng, s := newCancelServer(t)
	s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, func(end float64, err error) {})
	mid := s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, func(end float64, err error) {})
	s.SubmitOpCancellable(trace.OpWrite, 64*units.KB, func(end float64, err error) {})

	mid.Cancel()
	if mid.Rescinded() {
		t.Fatal("covered window reports rescinded")
	}
	eng.Run()

	if st := s.Stats(); st.Writes != 2 {
		t.Errorf("stats = %d writes, want 2 (the cancelled middle burned)", st.Writes)
	}
}
