package telemetry

import "fmt"

// Merge folds every series of src into r, creating series that r lacks.
// Counters add, histograms add bucket-wise (bounds must match exactly),
// spans combine count/total/min/max.
//
// Merge iterates src's series in canonical sorted id order, so merging a
// fixed sequence of registries in a fixed order is fully deterministic —
// including the float additions, whose association depends only on the
// merge order, never on goroutine scheduling. This is what lets the bench
// runner give every parallel cell its own registry and still export
// byte-identical snapshots at any worker count: the cells record into
// private registries concurrently, and the single-threaded merge replays
// them in cell order.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	for _, id := range src.ids() {
		s := src.lookup(id)
		switch {
		case s.counter != nil:
			r.Counter(s.name, s.labels...).Add(s.counter.Value())
		case s.gauge != nil:
			// Gauges add like counters: parallel cells own disjoint
			// instruments, so the merged level is the sum of the cells'.
			// Levels that must stay distinct belong under distinct labels.
			r.Gauge(s.name, s.labels...).Add(s.gauge.Value())
		case s.hist != nil:
			bounds, buckets, sum, count := s.hist.snapshot()
			r.Histogram(s.name, bounds, s.labels...).merge(bounds, buckets, sum, count)
		case s.span != nil:
			count, total, min, max := s.span.snapshot()
			r.Span(s.name, s.labels...).merge(count, total, min, max)
		}
	}
}

// merge folds a snapshot of another histogram with identical bounds into h.
func (h *Histogram) merge(bounds []float64, buckets []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("telemetry: merge of histogram with different bounds (%v vs %v)", h.bounds[i], b))
		}
	}
	for i, c := range buckets {
		h.buckets[i] += c
	}
	h.sum += sum
	h.count += count
}

// merge folds a snapshot of another span into s. An empty source is a
// no-op so it never disturbs min/max.
func (s *Span) merge(count uint64, total, min, max float64) {
	if count == 0 {
		return
	}
	s.mu.Lock()
	if s.count == 0 || min < s.min {
		s.min = min
	}
	if max > s.max {
		s.max = max
	}
	s.count += count
	s.total += total
	s.mu.Unlock()
}
