package telemetry

import (
	"strings"
	"testing"
)

// TestMergeAllKinds folds two registries and checks every metric kind
// combines correctly, including series present on only one side.
func TestMergeAllKinds(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("ops", L("op", "read")).Add(3)
	src.Counter("ops", L("op", "read")).Add(4)
	src.Counter("ops", L("op", "write")).Add(5) // only in src

	bounds := []float64{1, 10}
	dst.Histogram("sizes", bounds).Observe(0.5)
	src.Histogram("sizes", bounds).Observe(5)
	src.Histogram("sizes", bounds).Observe(50)

	dst.Span("stage").Observe(2)
	src.Span("stage").Observe(1)
	src.Span("stage").Observe(9)
	src.Span("other") // registered but empty: must not disturb min/max

	dst.Merge(src)

	if got := dst.Counter("ops", L("op", "read")).Value(); got != 7 {
		t.Errorf("read counter = %v, want 7", got)
	}
	if got := dst.Counter("ops", L("op", "write")).Value(); got != 5 {
		t.Errorf("write counter = %v, want 5", got)
	}
	h := dst.Histogram("sizes", bounds)
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Errorf("histogram count=%d sum=%v, want 3/55.5", h.Count(), h.Sum())
	}
	s := dst.Span("stage")
	count, total, min, max := s.snapshot()
	if count != 3 || total != 12 || min != 1 || max != 9 {
		t.Errorf("span = (%d, %v, %v, %v), want (3, 12, 1, 9)", count, total, min, max)
	}
}

// TestMergeOrderDeterminism pins the property the bench harness relies
// on: merging the same cell registries in the same order produces a
// byte-identical snapshot, however the cells were populated.
func TestMergeOrderDeterminism(t *testing.T) {
	build := func() *Registry {
		parent := NewRegistry()
		for _, cell := range []string{"a", "b", "c"} {
			r := NewRegistry()
			r.Counter("cost").Add(0.1)
			r.Counter("cost").Add(0.2)
			r.Span("t", L("cell", cell)).Observe(0.3)
			parent.Merge(r)
		}
		return parent
	}
	var one, two strings.Builder
	if err := build().WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two identical merge sequences produced different snapshots")
	}
}

// TestMergeBoundMismatchPanics: merging histograms with different bounds
// is an accounting bug, not a recoverable condition.
func TestMergeBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched bounds")
		}
	}()
	dst, src := NewRegistry(), NewRegistry()
	dst.Histogram("h", []float64{1, 2})
	src.Histogram("h", []float64{1, 3})
	dst.Merge(src)
}

// TestMergeNilAndSelf: both degenerate merges are no-ops.
func TestMergeNilAndSelf(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Merge(nil)
	r.Merge(r)
	if got := r.Counter("c").Value(); got != 2 {
		t.Errorf("counter = %v after degenerate merges, want 2", got)
	}
}
