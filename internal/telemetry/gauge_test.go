package telemetry

import (
	"strings"
	"testing"
)

// TestGauge covers the level semantics counters refuse: Set overwrites,
// Add moves in both directions, SetMax keeps the high-water mark.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	if g.Value() != 0 {
		t.Fatalf("zero value %v", g.Value())
	}
	g.Set(5)
	g.Add(3)
	g.Add(-6)
	if v := g.Value(); v != 2 {
		t.Fatalf("value %v, want 2", v)
	}
	if r.Gauge("queue_depth") != g {
		t.Fatal("same series returned a different handle")
	}

	peak := r.Gauge("queue_depth_peak")
	peak.SetMax(4)
	peak.SetMax(2) // lower: no effect
	peak.SetMax(7)
	if v := peak.Value(); v != 7 {
		t.Fatalf("peak %v, want 7", v)
	}
}

// TestGaugeKindCollision: a name registered as a gauge cannot be re-read
// as another kind.
func TestGaugeKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Gauge("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Counter("x")
}

// TestGaugeExport: gauges appear in both export formats — and the JSON
// gauges array is omitted entirely when none are registered, so
// registries that predate gauges export the exact bytes they always did.
func TestGaugeExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Inc()
	var without strings.Builder
	if err := r.WriteJSON(&without); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "gauges") {
		t.Fatalf("gauge-free snapshot mentions gauges:\n%s", without.String())
	}

	r.Gauge("depth", L("tenant", "acme")).Set(3)
	var with strings.Builder
	if err := r.WriteJSON(&with); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), `"depth{tenant=\"acme\"}"`) {
		t.Fatalf("JSON lacks the gauge series:\n%s", with.String())
	}

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "# TYPE depth gauge\ndepth{tenant=\"acme\"} 3\n") {
		t.Fatalf("Prometheus output lacks the gauge family:\n%s", prom.String())
	}
}

// TestGaugeMerge: parallel cells own disjoint gauge instruments, so the
// merged level is the sum.
func TestGaugeMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("depth").Set(2)
	b.Gauge("depth").Set(5)
	b.Gauge("only_b").Set(1)
	a.Merge(b)
	if v := a.Gauge("depth").Value(); v != 7 {
		t.Fatalf("merged depth %v, want 7", v)
	}
	if v := a.Gauge("only_b").Value(); v != 1 {
		t.Fatalf("merged only_b %v, want 1", v)
	}
}
