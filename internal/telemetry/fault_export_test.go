// External test package: the fault package imports telemetry, so the
// exporter edge cases that involve fault series have to live outside
// package telemetry to avoid an import cycle.
package telemetry_test

import (
	"strings"
	"testing"

	"mhafs/internal/fault"
	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
)

// armedRegistry returns a registry wired to an injector carrying the
// outage scenario's schedule, with nothing observed yet: every fault
// series exists at value zero.
func armedRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	sched, err := fault.ScenarioOutage.Build(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var eng sim.Engine
	in, err := fault.NewInjector(&eng, sched)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.SetTelemetry(reg)
	return reg
}

// TestFaultCountersZeroVersusAbsent pins the exporter edge the resilience
// figure relies on: a fault-armed run that never observes a fault exports
// its counters as explicit zeros, while a run without the injector omits
// the series entirely — and both exports are byte-stable when repeated.
func TestFaultCountersZeroVersusAbsent(t *testing.T) {
	armed := armedRegistry(t)
	bare := telemetry.NewRegistry()

	render := func(reg *telemetry.Registry) (string, string) {
		var j, p strings.Builder
		if err := reg.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WritePrometheus(&p); err != nil {
			t.Fatal(err)
		}
		return j.String(), p.String()
	}

	aj, ap := render(armed)
	wantZero := []string{
		fault.MetricInjected + `{kind="outage",server="s0"}`,
		fault.MetricWindows + `{kind="outage"}`,
	}
	for _, series := range wantZero {
		// The series string itself contains label quotes, which the JSON
		// encoder escapes.
		escaped := strings.ReplaceAll(series, `"`, `\"`)
		if !strings.Contains(aj, escaped) {
			t.Errorf("armed JSON export missing zero-valued series %q:\n%s", series, aj)
		}
	}
	if !strings.Contains(ap, fault.MetricInjected+`{kind="outage",server="s0"} 0`+"\n") {
		t.Errorf("armed Prometheus export missing explicit zero:\n%s", ap)
	}

	bj, bp := render(bare)
	for _, out := range []string{bj, bp} {
		if strings.Contains(out, fault.MetricInjected) || strings.Contains(out, fault.MetricWindows) {
			t.Errorf("bare registry exports fault series it never registered:\n%s", out)
		}
	}

	// Repeated exports of the same registry are byte-identical — the
	// zero/absent distinction cannot flap between renders.
	if aj2, ap2 := render(armed); aj2 != aj || ap2 != ap {
		t.Error("armed registry export not byte-stable across repeated renders")
	}
	if bj2, bp2 := render(bare); bj2 != bj || bp2 != bp {
		t.Error("bare registry export not byte-stable across repeated renders")
	}

	// A second armed registry built the same way renders identically:
	// eager registration order is deterministic, not map-order dependent.
	cj, cp := render(armedRegistry(t))
	if cj != aj || cp != ap {
		t.Errorf("two identically-armed registries export differently:\n%s\nvs\n%s", aj, cj)
	}
}
