// Package telemetry is the simulator's deterministic observability core:
// a Registry of named, labeled counters, fixed-bucket histograms and span
// aggregates, with two byte-stable exporters (Prometheus text exposition
// and canonical JSON).
//
// Determinism contract: the registry stores only what its callers feed it.
// Time never enters through this package — every duration is computed by
// the emitting layer against an injected Clock, which in simulation-driven
// code is the engine's virtual clock (sim.Engine satisfies Clock
// directly). Two identical runs therefore produce bit-for-bit identical
// snapshots, which is what lets CI diff telemetry output the same way it
// diffs the figure tables. The wall-clock adapter for interactive
// profiling lives in the telemetry/wallclock subpackage, which is the one
// place the static analyzer's determinism allowlist exempts.
//
// Concurrency: metric handles are safe for concurrent use (each carries
// its own lock), and the registry lock covers only get-or-create, so hot
// emission paths never contend on a global lock.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mhafs/internal/units"
)

// Clock supplies the current time in seconds. sim.Engine satisfies it
// with virtual time; wallclock.Clock (telemetry/wallclock) adapts the
// real clock for profiling outside the determinism boundary.
type Clock interface {
	Now() float64
}

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesID renders the canonical identity of a series: the metric name
// followed by its labels sorted by key, e.g. `server_ops_total{op="read",server="h0"}`.
// Sorting here is what makes every exporter byte-stable regardless of
// registration order.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a sorted copy of the labels.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter is a monotonically increasing series.
type Counter struct {
	mu  sync.Mutex
	val float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative increments panic, as a counter
// going backwards indicates an accounting bug.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: counter decremented by %v", v))
	}
	c.mu.Lock()
	c.val += v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Gauge is a point-in-time level that can rise and fall — a queue depth,
// an in-flight count, a high-water mark. Unlike Counter, Add accepts
// negative deltas and Set overwrites outright; the exported value is
// whatever the level was when the snapshot was taken.
type Gauge struct {
	mu  sync.Mutex
	val float64
}

// Set overwrites the level.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Add moves the level by v (either direction).
func (g *Gauge) Add(v float64) {
	g.mu.Lock()
	g.val += v
	g.mu.Unlock()
}

// SetMax raises the level to v when v exceeds it — the idiom for
// high-water marks (peak queue depth), kept atomic under the gauge lock
// so concurrent emitters cannot lose a peak.
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if v > g.val {
		g.val = v
	}
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// Histogram is a fixed-bucket distribution: cumulative counts per
// upper-bound bucket plus an implicit +Inf bucket, a sum, and a count —
// the Prometheus histogram shape.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // strictly increasing upper bounds (le)
	buckets []uint64  // len(bounds)+1; last is +Inf
	sum     float64
	count   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshotBuckets returns the bounds and per-bucket (non-cumulative)
// counts under the histogram lock.
func (h *Histogram) snapshot() (bounds []float64, buckets []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.buckets...), h.sum, h.count
}

// Span aggregates durations of one kind of interval — a pipeline stage,
// a queue residency — as count/total/min/max. It is the compact form of
// "enter/exit recorded against the clock": the emitter measures the
// duration and the span folds it in.
type Span struct {
	mu       sync.Mutex
	count    uint64
	total    float64
	min, max float64
}

// Observe folds one interval duration into the aggregate.
func (s *Span) Observe(d float64) {
	s.mu.Lock()
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.total += d
	s.mu.Unlock()
}

// Count returns the number of intervals observed.
func (s *Span) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Total returns the summed duration.
func (s *Span) Total() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

func (s *Span) snapshot() (count uint64, total, min, max float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.total, s.min, s.max
}

// SizeBuckets returns the standard request-size bucket bounds in bytes:
// powers of four from 1 KB to 16 MB, covering the paper's 16 B noise
// records up through full-round collective aggregates.
func SizeBuckets() []float64 {
	return []float64{
		float64(1 * units.KB),
		float64(4 * units.KB),
		float64(16 * units.KB),
		float64(64 * units.KB),
		float64(256 * units.KB),
		float64(1 * units.MB),
		float64(4 * units.MB),
		float64(16 * units.MB),
	}
}

// LatencyBuckets returns the standard latency bucket bounds in seconds,
// decades from 10 µs to 10 s — the simulated device times run from ~50 µs
// (SSD α) to tens of milliseconds under queueing.
func LatencyBuckets() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

// FanoutBuckets returns bucket bounds for small integral fan-out counts
// (sub-requests per striped extent, targets per DRT translation).
func FanoutBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

// series is one registered metric with its identity split out for the
// exporters (Prometheus needs name and labels separately).
type series struct {
	name   string
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	span    *Span
}

// Registry holds every metric series of one run. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// get returns the series for (name, labels), creating it with mk when
// absent. It panics when the same identity was registered as a different
// metric kind — that is a naming collision, a programmer error.
func (r *Registry) get(name string, labels []Label, kind string, mk func(*series)) *series {
	labels = sortLabels(labels)
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: labels}
		mk(s)
		r.series[id] = s
		return s
	}
	switch kind {
	case "counter":
		if s.counter == nil {
			panic(fmt.Sprintf("telemetry: %s already registered as a non-counter", id))
		}
	case "gauge":
		if s.gauge == nil {
			panic(fmt.Sprintf("telemetry: %s already registered as a non-gauge", id))
		}
	case "histogram":
		if s.hist == nil {
			panic(fmt.Sprintf("telemetry: %s already registered as a non-histogram", id))
		}
	case "span":
		if s.span == nil {
			panic(fmt.Sprintf("telemetry: %s already registered as a non-span", id))
		}
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.get(name, labels, "counter", func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.get(name, labels, "gauge", func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// Histogram returns the fixed-bucket histogram for (name, labels),
// creating it with the given bounds on first use. Bounds must be strictly
// increasing; re-registration with different bounds panics.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not increasing at %d", name, i))
		}
	}
	s := r.get(name, labels, "histogram", func(s *series) {
		s.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]uint64, len(bounds)+1),
		}
	})
	if len(s.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with different bounds", name))
	}
	return s.hist
}

// Span returns the span aggregate for (name, labels), creating it on
// first use.
func (r *Registry) Span(name string, labels ...Label) *Span {
	s := r.get(name, labels, "span", func(s *series) { s.span = &Span{} })
	return s.span
}

// ids returns the registered series identities in sorted order — the
// single iteration order every exporter uses.
func (r *Registry) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for id := range r.series {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// lookup returns the series for a canonical id.
func (r *Registry) lookup(id string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[id]
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}
