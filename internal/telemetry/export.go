package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the registry's full state in canonical form: every slice is
// sorted by series identity, so marshaling a snapshot is byte-stable
// across runs — the property the CI perf-gate and the bit-identity checks
// rely on.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Spans      []SpanSnapshot      `json:"spans"`
}

// CounterSnapshot is one counter series.
type CounterSnapshot struct {
	Series string  `json:"series"` // canonical name{labels} identity
	Value  float64 `json:"value"`
}

// GaugeSnapshot is one gauge series. The slice is omitted entirely when
// no gauges are registered, so registries that predate gauges export the
// exact bytes they always did.
type GaugeSnapshot struct {
	Series string  `json:"series"`
	Value  float64 `json:"value"`
}

// HistogramSnapshot is one histogram series with per-bucket
// (non-cumulative) counts; the final bucket is +Inf and is omitted from
// Bounds.
type HistogramSnapshot struct {
	Series  string    `json:"series"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// SpanSnapshot is one span aggregate.
type SpanSnapshot struct {
	Series string  `json:"series"`
	Count  uint64  `json:"count"`
	Total  float64 `json:"total"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Snapshot captures the registry state. Series appear in sorted identity
// order.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, id := range r.ids() {
		s := r.lookup(id)
		switch {
		case s.counter != nil:
			snap.Counters = append(snap.Counters, CounterSnapshot{Series: id, Value: s.counter.Value()})
		case s.gauge != nil:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{Series: id, Value: s.gauge.Value()})
		case s.hist != nil:
			bounds, buckets, sum, count := s.hist.snapshot()
			snap.Histograms = append(snap.Histograms, HistogramSnapshot{
				Series: id, Bounds: bounds, Buckets: buckets, Sum: sum, Count: count,
			})
		case s.span != nil:
			count, total, min, max := s.span.snapshot()
			snap.Spans = append(snap.Spans, SpanSnapshot{
				Series: id, Count: count, Total: total, Min: min, Max: max,
			})
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented canonical JSON followed by a
// newline. Identical registry states produce identical bytes.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// fnum renders a float the way Prometheus exposition expects, stable
// across runs (shortest round-trip representation).
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} or the empty string.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters as counters, histograms with
// cumulative le buckets, spans as per-series gauges (_count, _sum, _min,
// _max). Families and series are emitted in sorted order, so the output
// is byte-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Group series into families by metric name, keeping each family's
	// series in sorted identity order.
	families := make(map[string][]*series)
	var names []string
	for _, id := range r.ids() {
		s := r.lookup(id)
		if len(families[s.name]) == 0 {
			names = append(names, s.name)
		}
		families[s.name] = append(families[s.name], s)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		fam := families[name]
		switch {
		case fam[0].counter != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			for _, s := range fam {
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(s.labels), fnum(s.counter.Value()))
			}
		case fam[0].gauge != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			for _, s := range fam {
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(s.labels), fnum(s.gauge.Value()))
			}
		case fam[0].hist != nil:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			for _, s := range fam {
				bounds, buckets, sum, count := s.hist.snapshot()
				var cum uint64
				for i, bound := range bounds {
					cum += buckets[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
						labelString(s.labels, L("le", fnum(bound))), cum)
				}
				cum += buckets[len(buckets)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
					labelString(s.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelString(s.labels), fnum(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(s.labels), count)
			}
		case fam[0].span != nil:
			fmt.Fprintf(&b, "# TYPE %s_seconds gauge\n", name)
			for _, s := range fam {
				count, total, min, max := s.span.snapshot()
				ls := labelString(s.labels)
				fmt.Fprintf(&b, "%s_count%s %d\n", name, ls, count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, ls, fnum(total))
				fmt.Fprintf(&b, "%s_min%s %s\n", name, ls, fnum(min))
				fmt.Fprintf(&b, "%s_max%s %s\n", name, ls, fnum(max))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
