package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", L("op", "read"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	// Same identity returns the same counter regardless of label order.
	if r.Counter("ops_total", Label{"op", "read"}) != c {
		t.Error("re-lookup returned a different counter")
	}
	if r.Len() != 1 {
		t.Errorf("registry has %d series, want 1", r.Len())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("registering a histogram over a counter did not panic")
		}
	}()
	r.Histogram("m", LatencyBuckets())
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	_, buckets, sum, count := h.snapshot()
	// ≤1: 0.5 and 1; ≤10: 5 and 10; ≤100: 50; +Inf: 1000.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, buckets[i], w)
		}
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
	if sum != 0.5+1+5+10+50+1000 {
		t.Errorf("sum = %v", sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds did not panic")
		}
	}()
	NewRegistry().Histogram("h", []float64{1, 1})
}

func TestSpanAggregate(t *testing.T) {
	r := NewRegistry()
	s := r.Span("stage", L("stage", "server"))
	for _, d := range []float64{0.3, 0.1, 0.2} {
		s.Observe(d)
	}
	count, total, min, max := s.snapshot()
	if count != 3 || total != 0.6000000000000001 && total != 0.6 {
		t.Errorf("count=%d total=%v", count, total)
	}
	if min != 0.1 || max != 0.3 {
		t.Errorf("min=%v max=%v, want 0.1/0.3", min, max)
	}
}

// TestConcurrentEmission hammers one registry from many goroutines; run
// under -race this pins the lock discipline of handles and get-or-create.
func TestConcurrentEmission(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", L("w", fmt.Sprint(w%2))).Inc()
				r.Histogram("sizes", SizeBuckets()).Observe(float64(i))
				r.Span("span").Observe(float64(i) * 1e-3)
			}
		}()
	}
	wg.Wait()
	var sum float64
	sum += r.Counter("ops_total", L("w", "0")).Value()
	sum += r.Counter("ops_total", L("w", "1")).Value()
	if sum != workers*iters {
		t.Errorf("counters sum to %v, want %d", sum, workers*iters)
	}
	if got := r.Histogram("sizes", SizeBuckets()).Count(); got != workers*iters {
		t.Errorf("histogram count %d, want %d", got, workers*iters)
	}
	if got := r.Span("span").Count(); got != workers*iters {
		t.Errorf("span count %d, want %d", got, workers*iters)
	}
}

// fill populates a registry the same way twice to compare exporter bytes.
func fill(r *Registry) {
	// Deliberately interleave registration orders.
	r.Counter("z_last").Add(4)
	r.Histogram("req_size_bytes", SizeBuckets(), L("op", "write")).Observe(131072)
	r.Counter("ops_total", L("op", "read")).Add(7)
	r.Span("stage_span", L("stage", "stripe")).Observe(0.25)
	r.Histogram("req_size_bytes", SizeBuckets(), L("op", "read")).Observe(16)
	r.Counter("ops_total", L("op", "write")).Add(3)
	r.Span("stage_span", L("stage", "server")).Observe(0.125)
}

// fillReversed is fill with every emission in the opposite order.
func fillReversed(r *Registry) {
	r.Span("stage_span", L("stage", "server")).Observe(0.125)
	r.Counter("ops_total", L("op", "write")).Add(3)
	r.Histogram("req_size_bytes", SizeBuckets(), L("op", "read")).Observe(16)
	r.Span("stage_span", L("stage", "stripe")).Observe(0.25)
	r.Counter("ops_total", L("op", "read")).Add(7)
	r.Histogram("req_size_bytes", SizeBuckets(), L("op", "write")).Observe(131072)
	r.Counter("z_last").Add(4)
}

func TestExportersByteStable(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill(a)
	fillReversed(b)
	var ja, jb, pa, pb strings.Builder
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Errorf("JSON export depends on emission order:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if err := a.WritePrometheus(&pa); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if pa.String() != pb.String() {
		t.Errorf("Prometheus export depends on emission order:\n%s\nvs\n%s", pa.String(), pb.String())
	}
}

func TestPrometheusShape(t *testing.T) {
	r := NewRegistry()
	fill(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ops_total counter\n",
		`ops_total{op="read"} 7` + "\n",
		"# TYPE req_size_bytes histogram\n",
		`req_size_bytes_bucket{op="read",le="1024"} 1` + "\n",
		`req_size_bytes_bucket{op="write",le="+Inf"} 1` + "\n",
		`req_size_bytes_count{op="write"} 1` + "\n",
		`stage_span_count{stage="server"} 1` + "\n",
		`stage_span_max{stage="stripe"} 0.25` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if len(hs.Buckets) != 3 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 || hs.Buckets[2] != 1 {
		t.Errorf("buckets = %v, want [1 1 1]", hs.Buckets)
	}
	if hs.Count != 3 {
		t.Errorf("count = %d, want 3", hs.Count)
	}
}
