package wallclock

import "testing"

func TestMonotoneFromZero(t *testing.T) {
	c := New()
	a := c.Now()
	if a < 0 {
		t.Errorf("first reading %v is negative", a)
	}
	if b := c.Now(); b < a {
		t.Errorf("clock went backwards: %v then %v", a, b)
	}
}
