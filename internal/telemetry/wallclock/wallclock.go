// Package wallclock adapts the process's real clock to telemetry.Clock,
// for profiling the implementation itself (planner CPU time, CI perf
// runs) rather than the simulated system.
//
// This package is the sanctioned home for wall-clock reads on the
// telemetry path: it appears in the static analyzer's determinism
// allowlist (analysis.WallclockAllowedPackages) precisely so that no
// simulation-driven package needs a per-site //mhavet:allow suppression.
// Never wire a wallclock.Clock into anything whose output feeds the
// figure suite or a BENCH_*.json export — those must observe only virtual
// time to stay byte-stable.
package wallclock

import (
	"time"

	"mhafs/internal/telemetry"
)

// Clock reports seconds elapsed since its creation. The zero value is not
// usable; call New.
type Clock struct {
	base time.Time
}

var _ telemetry.Clock = (*Clock)(nil)

// New creates a clock anchored at the current instant, so readings start
// near zero like the simulator's virtual clock.
func New() *Clock {
	return &Clock{base: time.Now()}
}

// Now returns the seconds elapsed since New.
func (c *Clock) Now() float64 {
	return time.Since(c.base).Seconds()
}
