package costmodel_test

import (
	"fmt"

	"mhafs/internal/costmodel"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// The paper's Fig. 1 argument in numbers: under fixed 64KB stripes a
// 256KB request is bound by the HServers; the varied pair <32KB, 96KB>
// rebalances it.
func ExampleRequestCost() {
	p := costmodel.Default()
	fixed := stripe.Uniform(6, 2, 64*units.KB)
	varied := stripe.Layout{M: 6, N: 2, H: 32 * units.KB, S: 96 * units.KB}
	req := int64(384 * units.KB) // one full round of the varied layout
	cf := costmodel.RequestCost(p, fixed, trace.OpRead, 0, req, 0, 1)
	cv := costmodel.RequestCost(p, varied, trace.OpRead, 0, req, 0, 1)
	fmt.Printf("varied stripes cheaper: %v\n", cv < cf)
	// Output: varied stripes cheaper: true
}
