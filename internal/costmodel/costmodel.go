// Package costmodel implements the data-access cost model of the MHA paper
// (§III-F, Table I, Eq. 2).
//
// The cost of a file request under a stripe pair <h, s> is the I/O time of
// its slowest sub-request:
//
//	T_R(r, h, s) = max{ p_i·α_h  + s_i·(t + β_h),
//	                    p_j·α_sr + s_j·(t + β_sr) | ∀i∈H, j∈S }
//
// where s_i is the accumulated sub-request size on server i, p_i the number
// of processes with sub-requests on server i, t the unit network transfer
// time, and α/β the per-class startup and per-byte storage times. Writes
// (T_W) substitute the SServer write parameters α_sw/β_sw — SSDs have
// asymmetric read/write performance. The model assumes every server offers
// the same network bandwidth, as the paper does.
package costmodel

import (
	"fmt"

	"mhafs/internal/device"
	"mhafs/internal/netmodel"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Params carries every symbol of Table I that does not describe an
// individual request or layout: the network time t and the per-class
// device parameters.
type Params struct {
	// T is the unit data network transfer time (seconds/byte).
	T units.SecPerByte
	// PerMessage is a fixed network overhead charged once per sub-request.
	PerMessage float64

	// HServer storage parameters (identical for reads and writes).
	AlphaH float64
	BetaH  units.SecPerByte

	// SServer read parameters.
	AlphaSR float64
	BetaSR  units.SecPerByte

	// SServer write parameters.
	AlphaSW float64
	BetaSW  units.SecPerByte

	// HServer seek interference: when p requests are queued at a
	// mechanical device, the j-th pays roughly j·SeekInterference of extra
	// positioning time (capped at SeekInterferenceCap) — competing client
	// streams pull the arm apart. Mirrors device.Model so the planner
	// predicts the same queueing penalty the simulator charges.
	SeekInterference    float64
	SeekInterferenceCap float64
}

// FromModels derives Params from device and network models, keeping the
// planner and the simulator in exact agreement.
func FromModels(hdd, ssd device.Model, net netmodel.Model) Params {
	return Params{
		T:          net.PerByte,
		PerMessage: net.PerMessage,
		AlphaH:     hdd.ReadStartup,
		BetaH:      hdd.ReadPerByte,
		AlphaSR:    ssd.ReadStartup,
		BetaSR:     ssd.ReadPerByte,
		AlphaSW:    ssd.WriteStartup,
		BetaSW:     ssd.WritePerByte,

		SeekInterference:    hdd.SeekInterference,
		SeekInterferenceCap: hdd.SeekInterferenceCap,
	}
}

// Default returns the calibration used throughout the experiments: the
// default HDD, SSD and GbE models.
func Default() Params {
	return FromModels(device.DefaultHDD(), device.DefaultSSD(), netmodel.DefaultGigE())
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.T <= 0 {
		return fmt.Errorf("costmodel: network per-byte time must be positive")
	}
	if p.PerMessage < 0 {
		return fmt.Errorf("costmodel: per-message overhead must be non-negative")
	}
	if p.AlphaH < 0 || p.AlphaSR < 0 || p.AlphaSW < 0 {
		return fmt.Errorf("costmodel: negative startup time")
	}
	if p.BetaH <= 0 || p.BetaSR <= 0 || p.BetaSW <= 0 {
		return fmt.Errorf("costmodel: per-byte storage time must be positive")
	}
	if p.SeekInterference < 0 || p.SeekInterferenceCap < 0 {
		return fmt.Errorf("costmodel: negative seek interference")
	}
	return nil
}

// Homogeneous returns a copy in which SServers are given HServer
// parameters. The AAL baseline plans with this variant: it understands
// access patterns but is blind to server heterogeneity.
func (p Params) Homogeneous() Params {
	q := p
	q.AlphaSR, q.BetaSR = p.AlphaH, p.BetaH
	q.AlphaSW, q.BetaSW = p.AlphaH, p.BetaH
	return q
}

// Alpha returns the startup time of a server class for an operation.
func (p Params) Alpha(class stripe.Class, op trace.Op) float64 {
	if class == stripe.ClassH {
		return p.AlphaH
	}
	if op == trace.OpWrite {
		return p.AlphaSW
	}
	return p.AlphaSR
}

// Beta returns the per-byte storage time of a server class for an
// operation.
func (p Params) Beta(class stripe.Class, op trace.Op) units.SecPerByte {
	if class == stripe.ClassH {
		return p.BetaH
	}
	if op == trace.OpWrite {
		return p.BetaSW
	}
	return p.BetaSR
}

// SubRequestTime is one term of Eq. 2 for p processes and n accumulated
// bytes on one server: p·α + n·(t + β), plus p per-message overheads and —
// on HServers — the summed seek-interference penalty of draining p queued
// requests.
func (p Params) SubRequestTime(class stripe.Class, op trace.Op, procs int, n int64) float64 {
	if n <= 0 || procs <= 0 {
		return 0
	}
	t := float64(procs)*(p.Alpha(class, op)+p.PerMessage) +
		(p.T + p.Beta(class, op)).Seconds(n)
	if class == stripe.ClassH {
		t += p.interferenceSum(procs)
	}
	return t
}

// interferenceSum is Σ_{j=0..p-1} min(j·si, cap): the total extra
// positioning time of p requests arriving together at one HServer.
func (p Params) interferenceSum(procs int) float64 {
	si := p.SeekInterference
	if si <= 0 || procs <= 1 {
		return 0
	}
	last := procs - 1
	if cap := p.SeekInterferenceCap; cap > 0 {
		k := int(cap / si) // depths ≤ k are below the cap
		if last > k {
			return si*float64(k)*float64(k+1)/2 + float64(last-k)*cap
		}
	}
	return si * float64(last) * float64(last+1) / 2
}

// RequestCost evaluates Eq. 2 for one concurrency epoch: conc similar
// requests of the given size issued simultaneously at offsets spaced
// stride bytes apart starting at off (similar requests are packed at
// stride-aligned region offsets after reordering, and bulk-synchronous
// ranks access consecutive extents). stride < size falls back to size.
// Per-server byte volumes s_i accumulate across the epoch and p_i counts
// the requests with at least one sub-request on server i — the paper's
// concurrency extension of the HARL cost model. The epoch's cost is the
// slowest server's time.
func RequestCost(p Params, l stripe.Layout, op trace.Op, off, size, stride int64, conc int) float64 {
	if conc < 1 {
		conc = 1
	}
	if size <= 0 {
		return 0
	}
	if stride < size {
		stride = size
	}
	n := l.M + l.N
	bytes := make([]int64, n)
	procs := make([]int, n)
	for j := 0; j < conc; j++ {
		reqOff := off + int64(j)*stride
		for _, sr := range l.Split(reqOff, size) {
			i := sr.Server.Flat(l.M)
			bytes[i] += sr.Size
			procs[i]++
		}
	}
	var worst float64
	refs := l.Servers()
	for i := range refs {
		t := p.SubRequestTime(refs[i].Class, op, procs[i], bytes[i])
		if t > worst {
			worst = t
		}
	}
	return worst
}

// EpochRequest is one member of a set of simultaneously issued requests.
type EpochRequest struct {
	Op     trace.Op
	Offset int64
	Size   int64
	Rank   int
}

// EpochCost evaluates Eq. 2 exactly for a set of simultaneous requests:
// per-server byte volumes are accumulated across the epoch and p_i counts
// the distinct ranks with sub-requests on server i. Reads and writes may
// mix; each server's time uses the slower applicable parameters per
// operation, summed per op class.
func EpochCost(p Params, l stripe.Layout, reqs []EpochRequest) float64 {
	n := l.M + l.N
	type acc struct {
		bytes [2]int64        // per op
		ranks [2]map[int]bool // per op
	}
	accs := make([]acc, n)
	for _, r := range reqs {
		for _, sr := range l.Split(r.Offset, r.Size) {
			i := sr.Server.Flat(l.M)
			accs[i].bytes[r.Op] += sr.Size
			if accs[i].ranks[r.Op] == nil {
				accs[i].ranks[r.Op] = make(map[int]bool)
			}
			accs[i].ranks[r.Op][r.Rank] = true
		}
	}
	var worst float64
	refs := l.Servers()
	for i, a := range accs {
		var t float64
		for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
			t += p.SubRequestTime(refs[i].Class, op, len(a.ranks[op]), a.bytes[op])
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}
