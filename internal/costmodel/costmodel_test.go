package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// simpleParams gives round numbers for hand-computable expectations:
// network 1 µs/B with no per-message cost, HDD α=10ms β=1µs/B,
// SSD read α=1ms β=0.1µs/B, SSD write α=2ms β=0.2µs/B.
func simpleParams() Params {
	return Params{
		T:       1e-6,
		AlphaH:  10e-3,
		BetaH:   1e-6,
		AlphaSR: 1e-3,
		BetaSR:  0.1e-6,
		AlphaSW: 2e-3,
		BetaSW:  0.2e-6,
	}
}

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	good := simpleParams()
	mutations := []func(*Params){
		func(p *Params) { p.T = 0 },
		func(p *Params) { p.PerMessage = -1 },
		func(p *Params) { p.AlphaH = -1 },
		func(p *Params) { p.AlphaSR = -1 },
		func(p *Params) { p.AlphaSW = -1 },
		func(p *Params) { p.BetaH = 0 },
		func(p *Params) { p.BetaSR = 0 },
		func(p *Params) { p.BetaSW = 0 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestHomogeneous(t *testing.T) {
	p := simpleParams().Homogeneous()
	if p.AlphaSR != p.AlphaH || p.AlphaSW != p.AlphaH {
		t.Error("Homogeneous should copy HServer startup to SServers")
	}
	if p.BetaSR != p.BetaH || p.BetaSW != p.BetaH {
		t.Error("Homogeneous should copy HServer per-byte to SServers")
	}
}

func TestAlphaBetaSelection(t *testing.T) {
	p := simpleParams()
	if p.Alpha(stripe.ClassH, trace.OpRead) != p.AlphaH ||
		p.Alpha(stripe.ClassH, trace.OpWrite) != p.AlphaH {
		t.Error("HServer alpha must ignore op")
	}
	if p.Alpha(stripe.ClassS, trace.OpRead) != p.AlphaSR ||
		p.Alpha(stripe.ClassS, trace.OpWrite) != p.AlphaSW {
		t.Error("SServer alpha must select by op")
	}
	if p.Beta(stripe.ClassS, trace.OpRead) != p.BetaSR ||
		p.Beta(stripe.ClassS, trace.OpWrite) != p.BetaSW {
		t.Error("SServer beta must select by op")
	}
}

func TestSubRequestTime(t *testing.T) {
	p := simpleParams()
	// HServer, 1 process, 1000 bytes: 10ms + 1000*(1µs+1µs) = 12ms.
	got := p.SubRequestTime(stripe.ClassH, trace.OpRead, 1, 1000)
	if math.Abs(got-0.012) > 1e-12 {
		t.Errorf("SubRequestTime = %v, want 0.012", got)
	}
	// 2 processes double the startup but bytes are passed pre-accumulated.
	got = p.SubRequestTime(stripe.ClassH, trace.OpRead, 2, 1000)
	if math.Abs(got-0.022) > 1e-12 {
		t.Errorf("SubRequestTime(2 procs) = %v, want 0.022", got)
	}
	if p.SubRequestTime(stripe.ClassH, trace.OpRead, 1, 0) != 0 {
		t.Error("zero bytes should cost 0")
	}
	if p.SubRequestTime(stripe.ClassH, trace.OpRead, 0, 100) != 0 {
		t.Error("zero processes should cost 0")
	}
}

func TestSubRequestTimePerMessage(t *testing.T) {
	p := simpleParams()
	p.PerMessage = 0.001
	got := p.SubRequestTime(stripe.ClassS, trace.OpRead, 3, 0+1)
	want := 3*(p.AlphaSR+0.001) + (p.T + p.BetaSR).Seconds(1)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("per-message overhead not applied: %v vs %v", got, want)
	}
}

func TestRequestCostFixedStripe(t *testing.T) {
	p := simpleParams()
	// 2H+2S, 64KB stripes; 256KB request splits into 4×64KB sub-requests.
	l := stripe.Uniform(2, 2, 64*units.KB)
	sz := int64(64 * units.KB)
	costH := p.SubRequestTime(stripe.ClassH, trace.OpRead, 1, sz)
	costS := p.SubRequestTime(stripe.ClassS, trace.OpRead, 1, sz)
	got := RequestCost(p, l, trace.OpRead, 0, 256*units.KB, 0, 1)
	if math.Abs(got-costH) > 1e-12 {
		t.Errorf("RequestCost = %v, want HServer-bound %v", got, costH)
	}
	if costS >= costH {
		t.Fatal("test premise broken: SServer should be faster")
	}
}

// The motivating example of §II-A: with fixed stripes the HServers bound
// the request; shifting bytes to the SServers (larger s, smaller h) must
// reduce the cost until balance is reached.
func TestVariedStripeBeatsFixed(t *testing.T) {
	p := simpleParams()
	fixed := stripe.Uniform(2, 2, 64*units.KB)
	varied := stripe.Layout{M: 2, N: 2, H: 32 * units.KB, S: 96 * units.KB}
	req := int64(256 * units.KB)
	cf := RequestCost(p, fixed, trace.OpRead, 0, req, 0, 1)
	cv := RequestCost(p, varied, trace.OpRead, 0, req, 0, 1)
	if cv >= cf {
		t.Errorf("varied stripes should beat fixed: %v vs %v", cv, cf)
	}
}

func TestRequestCostSSDOnly(t *testing.T) {
	p := simpleParams()
	l := stripe.Layout{M: 2, N: 2, H: 0, S: 64 * units.KB}
	got := RequestCost(p, l, trace.OpRead, 0, 128*units.KB, 0, 1)
	want := p.SubRequestTime(stripe.ClassS, trace.OpRead, 1, 64*units.KB)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SSD-only cost = %v, want %v", got, want)
	}
}

func TestRequestCostWriteUsesWriteParams(t *testing.T) {
	p := simpleParams()
	l := stripe.Layout{M: 0, N: 1, H: 0, S: 64 * units.KB}
	r := RequestCost(p, l, trace.OpRead, 0, 1024, 0, 1)
	w := RequestCost(p, l, trace.OpWrite, 0, 1024, 0, 1)
	if !(w > r) {
		t.Errorf("SSD write cost %v should exceed read cost %v", w, r)
	}
}

func TestRequestCostConcurrencyScales(t *testing.T) {
	p := simpleParams()
	l := stripe.Uniform(2, 2, 64*units.KB)
	c1 := RequestCost(p, l, trace.OpRead, 0, 256*units.KB, 0, 1)
	c4 := RequestCost(p, l, trace.OpRead, 0, 256*units.KB, 0, 4)
	if math.Abs(c4-4*c1) > 1e-9 {
		t.Errorf("concurrency 4 cost = %v, want 4×%v", c4, c1)
	}
	// conc < 1 is clamped to 1.
	if got := RequestCost(p, l, trace.OpRead, 0, 256*units.KB, 0, 0); got != c1 {
		t.Errorf("conc=0 cost = %v, want %v", got, c1)
	}
}

func TestRequestCostZeroSize(t *testing.T) {
	p := simpleParams()
	l := stripe.Uniform(2, 2, 64*units.KB)
	if got := RequestCost(p, l, trace.OpRead, 0, 0, 0, 1); got != 0 {
		t.Errorf("zero-size cost = %v", got)
	}
}

// Property: request cost is monotonically non-decreasing in request size.
func TestRequestCostMonotonicQuick(t *testing.T) {
	p := Default()
	l := stripe.Layout{M: 6, N: 2, H: 32 * units.KB, S: 96 * units.KB}
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		cx := RequestCost(p, l, trace.OpRead, 0, x, 0, 1)
		cy := RequestCost(p, l, trace.OpRead, 0, y, 0, 1)
		return cx <= cy+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the cost equals the max over per-server terms computed
// directly from Split.
func TestRequestCostMatchesDefinitionQuick(t *testing.T) {
	p := Default()
	l := stripe.Layout{M: 3, N: 2, H: 16 * units.KB, S: 48 * units.KB}
	f := func(offRaw, szRaw uint16, write bool) bool {
		off := int64(offRaw) * 512
		sz := int64(szRaw)%(256*units.KB) + 1
		op := trace.OpRead
		if write {
			op = trace.OpWrite
		}
		var want float64
		for _, sr := range l.Split(off, sz) {
			t := p.SubRequestTime(sr.Server.Class, op, 1, sr.Size)
			if t > want {
				want = t
			}
		}
		got := RequestCost(p, l, op, off, sz, 0, 1)
		return math.Abs(got-want) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEpochCostSingleEqualsRequestCost(t *testing.T) {
	p := simpleParams()
	l := stripe.Uniform(2, 2, 64*units.KB)
	req := EpochRequest{Op: trace.OpRead, Offset: 0, Size: 256 * units.KB, Rank: 0}
	got := EpochCost(p, l, []EpochRequest{req})
	want := RequestCost(p, l, trace.OpRead, 0, 256*units.KB, 0, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EpochCost single = %v, RequestCost = %v", got, want)
	}
}

func TestEpochCostAccumulates(t *testing.T) {
	p := simpleParams()
	l := stripe.Uniform(2, 2, 64*units.KB)
	reqs := []EpochRequest{
		{Op: trace.OpRead, Offset: 0, Size: 256 * units.KB, Rank: 0},
		{Op: trace.OpRead, Offset: 256 * units.KB, Size: 256 * units.KB, Rank: 1},
	}
	got := EpochCost(p, l, reqs)
	// Each server now holds 128KB from 2 ranks: 2α + 128KB(t+β) on HServers.
	want := p.SubRequestTime(stripe.ClassH, trace.OpRead, 2, 128*units.KB)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EpochCost = %v, want %v", got, want)
	}
}

func TestEpochCostMixedOps(t *testing.T) {
	p := simpleParams()
	l := stripe.Layout{M: 0, N: 1, H: 0, S: 64 * units.KB}
	reqs := []EpochRequest{
		{Op: trace.OpRead, Offset: 0, Size: 1024, Rank: 0},
		{Op: trace.OpWrite, Offset: 4096, Size: 1024, Rank: 1},
	}
	got := EpochCost(p, l, reqs)
	want := p.SubRequestTime(stripe.ClassS, trace.OpRead, 1, 1024) +
		p.SubRequestTime(stripe.ClassS, trace.OpWrite, 1, 1024)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed-op EpochCost = %v, want %v", got, want)
	}
}

func TestEpochCostEmpty(t *testing.T) {
	if got := EpochCost(simpleParams(), stripe.Uniform(1, 1, 64), nil); got != 0 {
		t.Errorf("empty epoch cost = %v", got)
	}
}

func TestInterferenceSum(t *testing.T) {
	p := simpleParams()
	p.SeekInterference = 1e-3
	p.SeekInterferenceCap = 3e-3
	cases := []struct {
		procs int
		want  float64
	}{
		{0, 0},
		{1, 0},                  // a lone request queues behind nobody
		{2, 1e-3},               // second request at depth 1
		{4, (1 + 2 + 3) * 1e-3}, // depths 1..3, all under the cap
		{6, (1+2+3)*1e-3 /* capped depths: */ + 2*3e-3},
	}
	for _, c := range cases {
		if got := p.interferenceSum(c.procs); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("interferenceSum(%d) = %v, want %v", c.procs, got, c.want)
		}
	}
	p.SeekInterference = 0
	if p.interferenceSum(10) != 0 {
		t.Error("zero interference should cost 0")
	}
	p.SeekInterference = 1e-3
	p.SeekInterferenceCap = 0 // uncapped
	if got, want := p.interferenceSum(5), (1+2+3+4)*1e-3; math.Abs(got-want) > 1e-15 {
		t.Errorf("uncapped = %v, want %v", got, want)
	}
}

// Interference applies to HServers only, consistent with the devices.
func TestInterferenceClassSelective(t *testing.T) {
	p := simpleParams()
	p.SeekInterference = 1e-3
	hWith := p.SubRequestTime(stripe.ClassH, trace.OpRead, 4, 1000)
	p2 := p
	p2.SeekInterference = 0
	hWithout := p2.SubRequestTime(stripe.ClassH, trace.OpRead, 4, 1000)
	if !(hWith > hWithout) {
		t.Error("interference not charged on HServers")
	}
	sWith := p.SubRequestTime(stripe.ClassS, trace.OpRead, 4, 1000)
	sWithout := p2.SubRequestTime(stripe.ClassS, trace.OpRead, 4, 1000)
	if sWith != sWithout {
		t.Error("interference wrongly charged on SServers")
	}
}
