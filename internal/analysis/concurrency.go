package analysis

import (
	"go/ast"
	"strconv"
)

// syncImports are the import paths that introduce shared-memory
// concurrency primitives.
var syncImports = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// Concurrency confines goroutines and shared-memory primitives to the
// packages listed in ConcurrencyAllowedPackages (rule "go" for go
// statements, rule "sync" for sync/sync-atomic imports).
//
// The repository's determinism argument rests on every parallel fan-out
// going through parfan's ordered pool: results are committed in index
// order, telemetry is merged in cell order, and nothing else may race. A
// stray `go` statement or ad-hoc mutex in a planner or the simulator
// would reopen exactly the scheduling dependence the parfan design closes
// off, so concurrency outside the sanctioned packages is a finding, not a
// style choice.
func Concurrency() *Analyzer {
	const name = "concurrency"
	return &Analyzer{
		Name: name,
		Doc:  "confine go statements and sync primitives to the sanctioned concurrency packages",
		Run: func(p *Package) []Diagnostic {
			if p.pathMatches(ConcurrencyAllowedPackages) {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil || !syncImports[path] {
						continue
					}
					out = append(out, p.diag(name, "sync", imp,
						"import of %s outside the sanctioned concurrency packages; fan out through internal/parfan instead", path))
				}
				ast.Inspect(f, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						out = append(out, p.diag(name, "go", g,
							"go statement outside the sanctioned concurrency packages; fan out through internal/parfan instead"))
					}
					return true
				})
			}
			return out
		},
	}
}
