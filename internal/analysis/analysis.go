// Package analysis is mhavet's domain-aware static-analysis framework: a
// stdlib-only (go/parser + go/types, no golang.org/x/tools) driver plus
// the analyzers that machine-check the repository's reproducibility
// contract.
//
// The simulator's core guarantee — the cost model and the staged iopath
// pipeline produce bit-for-bit identical virtual-time figures across runs
// — is a property of the whole codebase, not of any single package:
// one wall-clock read or one aliased request descriptor anywhere on the
// request path silently breaks it. The analyzers encode those invariants
// so refactors are checked by machine rather than by review convention:
//
//   - determinism — no wall-clock (time.Now and friends) and no
//     unseeded global math/rand anywhere in the module; wall-clock is
//     permitted only in the packages listed in WallclockAllowedPackages
//     (see scopes.go) or under an explicit allow comment;
//   - unitscheck — magic byte-size literals (64*1024, 1<<20, 1048576)
//     must use the internal/units constants instead;
//   - extentcheck — extent arithmetic packages must not truncate int64
//     offsets/lengths into narrower integers or compute raw off+len
//     ends that can overflow (use units.End);
//   - stagecheck — iopath pipeline invariants: the shared chain snapshot
//     is immutable, requests are constructed only by the pipeline's
//     owners, and child requests never alias a parent's completion
//     callback, annotations or server binding;
//   - poolcheck — pooled iopath request descriptors must pass through
//     Reset() before Pipeline.put returns them to the free list, in the
//     same function and before the put;
//   - concurrency — go statements and sync/sync-atomic imports are
//     confined to the packages in ConcurrencyAllowedPackages; everything
//     else must fan out through internal/parfan's deterministic ordered
//     pool.
//
// A finding can be suppressed at the finding site with a comment on the
// same line or the line above:
//
//	//mhavet:allow <rule> [rule...]
//
// where <rule> is the rule name the diagnostic carries (for example
// "wallclock" or "trunc"). Allow comments are deliberate, reviewable
// escape hatches; package-level exemptions live in the scope tables in
// scopes.go, the single place widening a rule's reach is reviewed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // analyzer name, e.g. "determinism"
	Rule     string // rule within the analyzer, e.g. "wallclock"
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s/%s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Rule, d.Message)
}

// Analyzer is one domain check, applied package by package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		UnitsCheck(),
		ExtentCheck(),
		StageCheck(),
		PoolCheck(),
		Concurrency(),
		AllocCheck(),
		FlowCheck(),
	}
}

// Run applies the analyzers to every package of the module, drops
// findings suppressed by allow comments, and returns the remainder
// sorted by position.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range m.Pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if p.allowed(d.Pos, d.Rule) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// AllowPrefix introduces an allow comment: //mhavet:allow rule [rule...]
const AllowPrefix = "mhavet:allow"

// parseDirective is the one parser for mhavet comment directives
// (//mhavet:allow, //mhavet:coldpath, ...). It reports whether the
// comment carries exactly the named directive — "mhavet:allowx" does not
// match "mhavet:allow" — and returns the whitespace-separated arguments.
func parseDirective(text, directive string) (args []string, ok bool) {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if t != directive && !strings.HasPrefix(t, directive+" ") && !strings.HasPrefix(t, directive+"\t") {
		return nil, false
	}
	return strings.Fields(strings.TrimPrefix(t, directive)), true
}

// collectAllows records, per file and line, the rules an allow comment
// suppresses. A comment suppresses findings on its own line and on the
// line immediately below (so a standalone comment line covers the
// statement it precedes).
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	allows := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseDirective(c.Text, AllowPrefix)
				if !ok || len(rules) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					allows[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, r := range rules {
					set[r] = true
				}
			}
		}
	}
	return allows
}

// allowed reports whether a finding with the given rule at pos is
// suppressed by an allow comment on the same line or the line above.
func (p *Package) allowed(pos token.Position, rule string) bool {
	byLine := p.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if set := byLine[line]; set != nil && (set[rule] || set["all"]) {
			return true
		}
	}
	return false
}

// pathMatches reports whether the package's import path, relative to its
// module, equals one of the suffixes or lies beneath one (so
// "internal/sim" matches both mhafs/internal/sim and any sub-package).
func (p *Package) pathMatches(suffixes []string) bool {
	rel := p.Path
	if prefix := p.Module.Path + "/"; strings.HasPrefix(rel, prefix) {
		rel = strings.TrimPrefix(rel, prefix)
	} else if rel == p.Module.Path {
		rel = "."
	}
	for _, s := range suffixes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// diag builds a Diagnostic at the node's position.
func (p *Package) diag(analyzer, rule string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Module.Fset.Position(node.Pos()),
		Analyzer: analyzer,
		Rule:     rule,
		Message:  fmt.Sprintf(format, args...),
	}
}

// isNamed reports whether t (after pointer indirection) is the named type
// pkgSuffix.name, matching the defining package by import-path suffix so
// fixture copies of a package satisfy the same checks as the real one.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
