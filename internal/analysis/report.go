package analysis

// This file is the reporting layer shared by the mhavet driver and its
// tests: stable per-finding fingerprints, the committed-baseline filter,
// and the text / json / sarif renderers. The fingerprint is the identity
// a baseline entry suppresses, so its construction is the compatibility
// contract — see Fingerprints.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Finding is a Diagnostic resolved against its module: the file path is
// rewritten relative to the module root (slash-separated, so output and
// fingerprints match across machines) and a stable fingerprint is
// attached.
type Finding struct {
	Diagnostic
	RelPath     string // module-root-relative, slash-separated
	Fingerprint string
}

// Fingerprints resolves diagnostics (already sorted by Run) into
// Findings. The fingerprint hashes relpath|analyzer|rule|message plus an
// occurrence index — deliberately NOT the line number, so a finding keeps
// its identity (and its baseline entry) when unrelated edits move it.
// The occurrence index disambiguates identical findings in one file; it
// is assigned in position order, so inserting a duplicate earlier in the
// file shifts later indices — an accepted, and rare, invalidation.
func Fingerprints(m *Module, diags []Diagnostic) []Finding {
	occ := make(map[string]int)
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(m.Root, d.Pos.Filename); err == nil {
			rel = filepath.ToSlash(r)
		}
		base := rel + "|" + d.Analyzer + "|" + d.Rule + "|" + d.Message
		n := occ[base]
		occ[base] = n + 1
		sum := sha256.Sum256([]byte(base + "|" + strconv.Itoa(n)))
		out = append(out, Finding{
			Diagnostic:  d,
			RelPath:     rel,
			Fingerprint: hex.EncodeToString(sum[:8]),
		})
	}
	return out
}

// Baseline maps a finding's fingerprint to the human justification for
// tolerating it. The committed file is plain JSON:
//
//	{ "<fingerprint>": "why this finding is accepted", ... }
//
// An empty object means the tree must be clean. Entries whose fingerprint
// no longer matches any finding are reported by Stale so the file cannot
// quietly rot.
type Baseline map[string]string

// LoadBaseline reads and parses a baseline file. A missing path is an
// error — CI passes the committed file explicitly, and a typo'd flag
// should not silently mean "no baseline".
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// Filter splits findings into those not covered by the baseline (kept)
// and the count it suppressed.
func (b Baseline) Filter(fs []Finding) (kept []Finding, suppressed int) {
	for _, f := range fs {
		if _, ok := b[f.Fingerprint]; ok {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// Stale returns the baseline fingerprints that matched no finding, in
// sorted order.
func (b Baseline) Stale(fs []Finding) []string {
	seen := make(map[string]bool, len(fs))
	for _, f := range fs {
		seen[f.Fingerprint] = true
	}
	var out []string
	for fp := range b {
		if !seen[fp] {
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out
}

// WriteText renders findings in the conventional gofmt-style
// file:line:col form, one per line.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s/%s: %s\n",
			f.RelPath, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Rule, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the -format json wire shape: flat, stable field names,
// one object per finding.
type jsonFinding struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Column      int    `json:"column"`
	Analyzer    string `json:"analyzer"`
	Rule        string `json:"rule"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
}

// WriteJSON renders findings as a JSON array (never null — an empty
// tree emits []).
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File:        f.RelPath,
			Line:        f.Pos.Line,
			Column:      f.Pos.Column,
			Analyzer:    f.Analyzer,
			Rule:        f.Rule,
			Message:     f.Message,
			Fingerprint: f.Fingerprint,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 shapes — just the subset code-scanning consumers
// require: tool metadata, rule ids, physical locations, and a partial
// fingerprint carrying mhavet's own stable identity.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. Rule ids use the
// "analyzer/rule" form the text format prints; the analyzer suite
// provides the rule inventory (one SARIF rule per analyzer — individual
// rule names stay in the result's ruleId suffix, keeping the inventory
// stable as rules are added).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, fs []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer + "/" + f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.RelPath},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{"mhavet/v1": f.Fingerprint},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mhavet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
