package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Module is a fully parsed and type-checked Go module.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute directory containing go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	graph *CallGraph // built lazily by Graph(); the driver is single-threaded
}

// Package is one type-checked package of the module. Test files are not
// loaded: the invariants guard the simulator and its tools, while tests
// legitimately use, for example, bare byte-size literals as expected
// values.
type Package struct {
	Module *Module
	Path   string // import path, e.g. "mhafs/internal/sim"
	Dir    string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info

	allows map[string]map[int]map[string]bool
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// skipDir reports whether a directory is excluded from loading, following
// the go command's conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// pkgNode is a parsed, not-yet-type-checked package.
type pkgNode struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // intra-module imports only
}

// LoadModule parses and type-checks every non-test package under root,
// which must contain a go.mod. Type checking resolves standard-library
// imports from source (GOROOT), so the loader needs no network, no
// module cache, and no dependencies outside the standard library.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	mm := moduleDirective.FindSubmatch(modData)
	if mm == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s", filepath.Join(root, "go.mod"))
	}
	m := &Module{Path: string(mm[1]), Root: root, Fset: token.NewFileSet()}

	nodes := make(map[string]*pkgNode)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		ip := m.importPath(dir)
		node := nodes[ip]
		if node == nil {
			node = &pkgNode{path: ip, dir: dir}
			nodes[ip] = node
		}
		node.files = append(node.files, f)
		for _, imp := range f.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if target == m.Path || strings.HasPrefix(target, m.Path+"/") {
				node.imports = append(node.imports, target)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}

	order, err := topoSort(nodes)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		module: m.Path,
		pkgs:   checked,
		std:    importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, node := range order {
		conf := types.Config{Importer: imp}
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		// Keep files in a stable order so diagnostics are deterministic.
		sort.Slice(node.files, func(i, j int) bool {
			return m.Fset.Position(node.files[i].Pos()).Filename <
				m.Fset.Position(node.files[j].Pos()).Filename
		})
		tpkg, err := conf.Check(node.path, m.Fset, node.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", node.path, err)
		}
		checked[node.path] = tpkg
		m.Pkgs = append(m.Pkgs, &Package{
			Module: m,
			Path:   node.path,
			Dir:    node.dir,
			Files:  node.files,
			Pkg:    tpkg,
			Info:   info,
			allows: collectAllows(m.Fset, node.files),
		})
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// importPath maps a directory under the module root to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// topoSort orders packages so every intra-module import precedes its
// importer, rejecting cycles.
func topoSort(nodes map[string]*pkgNode) ([]*pkgNode, error) {
	paths := make([]string, 0, len(nodes))
	for p := range nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(nodes))
	var order []*pkgNode
	var visit func(path string) error
	visit = func(path string) error {
		node := nodes[path]
		if node == nil {
			return nil // import of a module path with no loaded package (e.g. pruned dir)
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		deps := append([]string(nil), node.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, node)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the already-checked
// set and everything else (the standard library) from source.
type moduleImporter struct {
	module string
	pkgs   map[string]*types.Package
	std    types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if path == i.module || strings.HasPrefix(path, i.module+"/") {
		if p := i.pkgs[path]; p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("analysis: internal import %q not yet checked", path)
	}
	return i.std.Import(path)
}
