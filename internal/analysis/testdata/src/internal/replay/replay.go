// Package replay is a fixture for the request-ownership rule: it is not
// an owner, so constructing a Request literal here must be flagged.
package replay

import "mhafs/internal/iopath"

func submit(off int64) *iopath.Request {
	return &iopath.Request{Offset: off} //want:stagecheck/reqliteral
}
