// Package plancache is a fixture for the plan cache's analyzer
// contract: the package sits in ConcurrencyAllowedPackages (the
// single-flight mutex, map and completion channels are sanctioned) and
// in DeterministicPackages (a cached plan must be a pure function of its
// content-address key, so wall-clock freshness logic flags).
package plancache

import (
	"sync"
	"time"
)

// entry is the single-flight rendezvous: the done channel blocks
// coalesced callers until the leader publishes its result.
type entry struct {
	done chan struct{}
	plan int64
}

// Cache mirrors the real shape: one mutex over a key → entry map.
type Cache struct {
	mu      sync.Mutex // sanctioned: plancache is concurrency-allowed
	entries map[[32]byte]*entry
}

// GetOrCompute is the single-flight sketch: first caller computes,
// concurrent callers block on the entry's channel — no analyzer finding,
// the locking discipline is exactly what the allowlist sanctions.
func (c *Cache) GetOrCompute(key [32]byte, compute func() int64) int64 {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.plan
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	e.plan = compute()
	close(e.done)
	return e.plan
}

// expiredNow would make cache validity depend on when the process runs —
// a freshness check has no place in a content-addressed cache, and the
// determinism analyzer flags the wall-clock read.
func expiredNow(writtenAt int64) bool {
	return time.Now().Unix()-writtenAt > 3600 //want:determinism/wallclock
}

var _ = expiredNow
