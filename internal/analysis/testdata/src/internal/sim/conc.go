package sim

import (
	"sync"        //want:concurrency/sync
	"sync/atomic" //want:concurrency/sync
)

// raceyCount is ad-hoc concurrency in the deterministic core: both the go
// statement and the sync primitives must be flagged.
func raceyCount(n int) int64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { //want:concurrency/go
			defer wg.Done()
			total.Add(1)
		}()
	}
	wg.Wait()
	return total.Load()
}
