// Package sim is a fixture standing in for the engine: determinism
// violations here must be flagged.
package sim

import (
	"math/rand"
	"time"
)

// clock references (not calls) time.Now: passing the wall clock around is
// as nondeterministic as reading it.
var clock func() time.Time = time.Now //want:determinism/wallclock

func wall() time.Time {
	return time.Now() //want:determinism/wallclock
}

func allowedWall() time.Time {
	//mhavet:allow wallclock
	return time.Now()
}

func pause() {
	time.Sleep(time.Millisecond) //want:determinism/wallclock
}

func globalDraw() int {
	return rand.Intn(6) //want:determinism/rand
}

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// durations and time constants are fine: they do not observe the clock.
var tick = 3 * time.Second
