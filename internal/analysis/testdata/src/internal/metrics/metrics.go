// Package metrics is a fixture mirror of the real table builder: the
// flowcheck sink key internal/metrics.(*Table).AddRow resolves here
// exactly as in the real tree.
package metrics

// Table collects rows for figure emission.
type Table struct {
	rows [][]any
}

// AddRow appends one emitted row.
func (t *Table) AddRow(cells ...any) {
	t.rows = append(t.rows, cells)
}
