// Package adaptive is a fixture for the straggler-aware scheduler's
// analyzer contract: (*Scheduler).Handle and (*Estimator).Observe match
// the HotPathFunctions entries, so everything reachable from them is
// held to the zero-alloc standard; the package sits in
// DeterministicPackages (wall-clock reads flag) and in
// ConcurrencyAllowedPackages (its locking is sanctioned).
package adaptive

import (
	"sync"
	"time"

	"mhafs/internal/iopath"
)

// Estimator mirrors the per-server EWMA state: flat slices plus a
// preallocated median workspace.
type Estimator struct {
	mu      sync.Mutex // sanctioned: adaptive is concurrency-allowed
	est     []float64
	scratch []float64
}

// Observe is a HotPathFunctions root: the in-place EWMA fold must not
// allocate.
func (e *Estimator) Observe() {
	e.mu.Lock()
	for i := range e.est {
		e.est[i] += 0.25 * (1 - e.est[i])
	}
	e.mu.Unlock()
}

// Scheduler mirrors the decision stage.
type Scheduler struct {
	est *Estimator
}

// Handle is a HotPathFunctions root: the pass-through decision path is
// the common case and must stay allocation-free; interventions are
// pruned as coldpaths.
func (s *Scheduler) Handle(req *iopath.Request, next iopath.Handler) error {
	s.est.Observe()
	var lagging []int64
	lagging = append(lagging, req.Offset) //want:allocheck/append
	_ = lagging
	w := s.est.scratch[:0]
	w = append(w, 1) // re-sliced reuse idiom: presized
	s.est.scratch = w
	if req.Offset > 4 {
		return s.intervene(req, next)
	}
	return next(req)
}

// intervene stands in for reroute/speculate: it allocates freely, and
// the directive prunes the hot-path walk at its boundary.
//
//mhavet:coldpath fixture: straggler interventions are rare
func (s *Scheduler) intervene(req *iopath.Request, next iopath.Handler) error {
	relocated := map[int64]bool{req.Offset: true} // no finding: coldpath
	_ = relocated
	return next(req)
}

// deadlineNow would stamp a speculation deadline from real time instead
// of the virtual clock: flagged, adaptive is a deterministic package.
func deadlineNow() float64 {
	return float64(time.Now().UnixNano()) //want:determinism/wallclock
}

var _ = deadlineNow
