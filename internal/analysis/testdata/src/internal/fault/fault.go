// Package fault is a fixture for the determinism contract in the
// fault-injection subsystem: schedules are seeded and live in virtual
// time, so wall-clock reads and global randomness here must be flagged.
package fault

import (
	"math/rand"
	"time"
)

// Window is a simplified stand-in for the real fault window.
type Window struct {
	Start, End float64
}

// jitterNow would leak real time into a schedule.
func jitterNow() Window {
	t := float64(time.Now().UnixNano()) //want:determinism/wallclock
	return Window{Start: t, End: t + 1}
}

// globalBurst draws burst placement from the global source: unseeded and
// call-order dependent, it would break byte-identical figures.
func globalBurst() float64 {
	return rand.Float64() //want:determinism/rand
}

// seededBurst is the sanctioned form: an explicit source seeded by the
// scenario seed.
func seededBurst(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
