// Package parfan is a fixture standing in for the sanctioned fan-out
// primitive: goroutines and sync primitives here are the point, so the
// concurrency analyzer must stay silent.
package parfan

import (
	"sync"
	"sync/atomic"
)

// Map mirrors the real package's shape: a pool of workers pulling via an
// atomic cursor, committed in index order.
func Map(n, workers int, fn func(int) int) []int {
	out := make([]int, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
