// Package stripe is a fixture for the extent rules: truncating casts and
// raw off+len ends must be flagged in the extent packages.
package stripe

import "mhafs/internal/units"

func locate(off, h int64) int {
	idx := off / h
	return int(idx) //want:extentcheck/trunc
}

func locateChecked(off, h int64) int {
	idx := off / h
	// idx is bounded by the server count, an int.
	return int(idx) //mhavet:allow trunc
}

func end(off, length int64) int64 {
	return off + length //want:extentcheck/extentsum
}

func endChecked(off, length int64) int64 {
	return units.End(off, length)
}

func unrelatedSum(a, b int64) int64 {
	return a + b // operand names carry no extent meaning
}

const window = int(1 << 8) // constant conversions are compiler-checked
