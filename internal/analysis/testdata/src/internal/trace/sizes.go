// Package trace is a fixture for the units rule: magic byte-size literals
// in any non-exempt package must be flagged; units-constant spellings,
// small counts and allow comments must not.
package trace

import "mhafs/internal/units"

var bufSizes = []int64{
	64 * 1024,       //want:unitscheck/units
	4 * 1024 * 1024, //want:unitscheck/units
	1 << 20,         //want:unitscheck/units
	1048576,         //want:unitscheck/units
	64 * units.KB,   // sanctioned spelling
	4096,            // small powers of two are too often counts to flag
	3000,            // not a binary size at all
}

//mhavet:allow units
var legacy = 512 * 1024

func alloc() []byte {
	return make([]byte, 256<<10) //want:unitscheck/units
}
