// Package mpiio is a fixture for the request-ownership rule: the
// middleware owns root-request construction, so the literal here is fine.
package mpiio

import "mhafs/internal/iopath"

func issue(off int64) *iopath.Request {
	return &iopath.Request{Offset: off}
}
