// Package export is the flowcheck fixture: nondeterministic values and
// map-ordered sequences reaching the metrics table, the sanctioned
// sorted contrast, and taint carried through one call level in each
// direction (a tainted return, and a sink-forwarding parameter).
package export

import (
	"sort"
	"time"

	"mhafs/internal/metrics"
)

// emitUnsorted ranges a map straight into the table: the key argument
// is map-ordered AND the sink call sits lexically inside the range body,
// so both maprange forms fire on the one line.
func emitUnsorted(t *metrics.Table, m map[string]int) {
	for k := range m {
		t.AddRow(k) //want:flowcheck/maprange //want:flowcheck/maprange
	}
}

// emitCollected builds the slice in map order and emits it after the
// loop: only the value-taint form fires.
func emitCollected(t *metrics.Table, m map[string]int) {
	var rows []int
	for _, v := range m {
		rows = append(rows, v)
	}
	for _, r := range rows {
		t.AddRow(r) //want:flowcheck/maprange
	}
}

// emitSorted is the sanctioned fix: sorting the keys launders the
// map-iteration-order taint.
func emitSorted(t *metrics.Table, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, m[k])
	}
}

// wallStamp returns a wall-clock-derived value; the taint travels to
// callers through the TaintedReturn summary (determinism flags the read
// itself at the source).
func wallStamp() float64 {
	return float64(time.Now().UnixNano()) //want:determinism/wallclock
}

// emitStamp receives the taint one call level down.
func emitStamp(t *metrics.Table) {
	t.AddRow(wallStamp()) //want:flowcheck/taint
}

// forward pushes its argument into the sink, making its own call sites
// sinks via the SinkParams summary.
func forward(t *metrics.Table, v any) {
	t.AddRow(v)
}

// emitViaForward is a sink one level removed.
func emitViaForward(t *metrics.Table) {
	forward(t, wallStamp()) //want:flowcheck/taint
}

// emitDirect reads the clock at the sink itself: the determinism source
// rule and the flow rule fire on the same line.
func emitDirect(t *metrics.Table) {
	t.AddRow(float64(time.Now().Unix())) //want:determinism/wallclock //want:flowcheck/taint
}
