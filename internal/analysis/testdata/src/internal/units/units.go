// Package units is a fixture mirror of the real constants package. It is
// exempt from the units rule, so the raw powers of two here must produce
// no findings.
package units

const (
	B  int64 = 1
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// End mirrors the real overflow-checked extent-end helper so the extent
// fixtures can call the sanctioned spelling.
func End(off, n int64) int64 { return off + n }
