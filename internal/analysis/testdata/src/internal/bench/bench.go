// Package bench is a fixture for the wall-clock allowlist: internal/bench
// times real planner overhead, so time.Now here is sanctioned — for the
// determinism import rule and for flowcheck's taint sources alike.
package bench

import (
	"time"

	"mhafs/internal/metrics"
)

func stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// EmitWallTime exports a wall-time measurement: the sanctioned package
// emits wall-clock-derived values by design, so flowcheck stays quiet.
func EmitWallTime(t *metrics.Table) {
	t.AddRow(stamp().Seconds())
}
