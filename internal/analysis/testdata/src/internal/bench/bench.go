// Package bench is a fixture for the wall-clock allowlist: internal/bench
// times real planner overhead, so time.Now here is sanctioned.
package bench

import "time"

func stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}
