// Fixture hot path for allocheck: (*Pipeline).dispatch matches the
// HotPathFunctions entry (the key grammar resolves by module-relative
// package path, so the fixture root resolves exactly like the real
// pipeline), and everything reachable from it — statically or through
// the Stage interface — is scanned for allocation forms.
package iopath

import "fmt"

// termStage is reached only through the Stage interface: the
// class-hierarchy edge from dispatch's s.stage.Handle call must find it.
type termStage struct {
	hits map[string]int
}

func (t *termStage) Handle(req *Request, next Handler) error {
	t.hits = map[string]int{"seen": 1} //want:allocheck/literal
	return nil
}

// dispatch mirrors the real chain walk; it is an allocheck root.
func (p *Pipeline) dispatch(req *Request) error {
	for _, s := range p.chain {
		if err := s.stage.Handle(req, nil); err != nil {
			return err
		}
	}
	p.audit(req)
	if err := hotHelper(p, req); err != nil {
		return err
	}
	return nil
}

// hotHelper carries one instance of each allocation form allocheck
// names, next to the sanctioned contrast for each.
func hotHelper(p *Pipeline, req *Request) error {
	fanout := 0
	for i := 0; i < 4; i++ {
		n := i
		run(func() { fanout += n }) //want:allocheck/closure
	}
	run(noCapture) // a named function value does not allocate

	recordAny(fanout)                 //want:allocheck/box
	debugf("binding %d", req.Binding) //want:allocheck/box

	buf := make([]byte, 8) //want:allocheck/literal
	_ = buf
	tmp := make([]byte, 8) //mhavet:allow literal fixture: reviewed one-off
	_ = tmp

	var grown []int
	grown = append(grown, fanout) //want:allocheck/append
	_ = grown
	reuse := p.scratch[:0]
	reuse = append(reuse, fanout) // re-sliced reuse idiom: presized
	p.scratch = reuse

	if err := failure(req); err != nil {
		return err
	}
	return nil
}

// audit is wired into dispatch but runs at audit frequency, not per
// request; the directive prunes the walk here.
//
//mhavet:coldpath fixture: installed rarely
func (p *Pipeline) audit(req *Request) {
	log := map[int64]bool{req.Offset: true} // no finding: coldpath
	_ = log
}

// failure builds its error inside the return statement: allocheck skips
// return subtrees as cold error paths.
func failure(req *Request) error {
	if req.Offset < 0 {
		return fmt.Errorf("fixture: offset %d", req.Offset)
	}
	return nil
}

func run(f func()) { f() }

func noCapture() {}

var lastAny any

// recordAny's any parameter makes every concrete argument a boxing site
// at the caller.
func recordAny(v any) { lastAny = v }

var lastTrace string

// debugf sits one call level below the root: the fmt finding lands
// here, the variadic boxing at its callers.
func debugf(format string, args ...any) {
	lastTrace = fmt.Sprintf(format, args...) //want:allocheck/fmt
}
