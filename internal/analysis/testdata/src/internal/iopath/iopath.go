// Package iopath is a fixture mirror of the pipeline's types: the
// analyzer matches Request and slot by package suffix and type name, so
// the stagecheck rules apply here exactly as in the real package.
package iopath

// Request mirrors the descriptor's alias-sensitive fields.
type Request struct {
	Offset      int64
	OnComplete  func()
	Binding     int
	annotations map[string]string
}

// Handler and Stage mirror the dispatch signature.
type Handler func(*Request) error

type Stage interface {
	Handle(req *Request, next Handler) error
}

type slot struct {
	name  string
	stage Stage
}

// Pipeline mirrors the copy-on-write chain holder and the descriptor
// free list.
type Pipeline struct {
	chain   []slot
	saved   []slot
	freed   []*Request
	scratch []int
}

func (p *Pipeline) register(chain []slot, s Stage) {
	chain[0] = slot{"x", s} //want:stagecheck/chain
	p.saved = chain         //want:stagecheck/chain
}

func extend(chain []slot, s Stage) []slot {
	return append(chain, slot{"y", s}) //want:stagecheck/chain
}

func dispatchCopy(chain []slot) []slot {
	cp := make([]slot, len(chain))
	copy(cp, chain)
	local := chain // a local alias does not outlive the dispatch
	_ = local
	return cp
}

func derive(parent *Request) *Request {
	child := &Request{
		Offset:     parent.Offset,
		OnComplete: parent.OnComplete, //want:stagecheck/alias
	}
	child.Binding = parent.Binding //want:stagecheck/alias
	return child
}

func wrap(req *Request) {
	prev := req.OnComplete
	req.OnComplete = func() { prev() } // wrapping your own callback is sanctioned
}

// The descriptor free list, mirroring the pooled hot path: poolcheck
// holds every put site to the Reset-before-put contract.

func (r *Request) Reset() { *r = Request{} }

func (p *Pipeline) put(r *Request) { p.freed = append(p.freed, r) }

func release(p *Pipeline, r *Request) {
	r.Reset()
	p.put(r) // Reset first: the sanctioned recycle path
}

func recycleStale(p *Pipeline, r *Request) {
	p.put(r) //want:poolcheck/reset
}

func resetTooLate(p *Pipeline, r *Request) {
	p.put(r) //want:poolcheck/reset
	r.Reset()
}

func deferredRecycle(p *Pipeline, r *Request) func() {
	r.Reset()
	// Reset credit must not cross the closure boundary: the put runs
	// later, when the descriptor may be live again.
	return func() { p.put(r) } //want:poolcheck/reset
}
