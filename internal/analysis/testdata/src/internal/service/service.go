// Package service is a fixture for the plan service's analyzer
// contract: the package sits in DeterministicPackages (job IDs, ledger
// rows and state dumps must be byte-identical across runs, so wall-clock
// reads flag) and in ConcurrencyAllowedPackages (its tests hold
// single-flight computations open across goroutines; the event loop
// itself is single-threaded).
package service

import (
	"sync"
	"time"
)

// event mirrors the real (time, seq)-ordered queue entry.
type event struct {
	time float64
	seq  uint64
}

// queue mirrors the virtual-time event heap: pure data, ordered by
// (time, seq), no analyzer finding — determinism comes from the total
// order, not from locking.
type queue struct {
	events []event
}

func (q *queue) push(e event) {
	q.events = append(q.events, e)
	for i := len(q.events) - 1; i > 0; {
		parent := (i - 1) / 2
		if !less(q.events[i], q.events[parent]) {
			break
		}
		q.events[i], q.events[parent] = q.events[parent], q.events[i]
		i = parent
	}
}

func less(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// ledger mirrors the test-side synchronization the allowlist sanctions:
// a mutex-guarded append log written from fixture goroutines.
type ledger struct {
	mu      sync.Mutex // sanctioned: service is concurrency-allowed
	entries []event
}

func (l *ledger) append(e event) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// submittedNow would stamp ledger rows with the wall clock — the exact
// nondeterminism the virtual clock exists to exclude: two replays of one
// script would produce different ledgers. The determinism analyzer flags
// the read.
func submittedNow() float64 {
	return float64(time.Now().UnixNano()) / 1e9 //want:determinism/wallclock
}

var _ = submittedNow
var _ = (&queue{}).push
var _ = (&ledger{}).append
