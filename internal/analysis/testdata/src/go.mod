module mhafs

go 1.22
