package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"

	"mhafs/internal/units"
)

// UnitsCheck flags magic byte-size literals (rule "units"): literal-only
// expressions that clearly denote a byte quantity — products with a
// multiple-of-1024 factor (64*1024), shifts by a binary-unit exponent
// (1<<20, 256<<10), and bare power-of-two literals of 64 Ki and above.
// Such sizes must be written with the internal/units constants
// (64*units.KB), which keeps the figure parameters greppable and the
// arithmetic int64 by construction.
func UnitsCheck() *Analyzer {
	const name = "unitscheck"
	return &Analyzer{
		Name: name,
		Doc:  "magic byte-size literals must use internal/units constants",
		Run: func(p *Package) []Diagnostic {
			if p.pathMatches(UnitsExemptPackages) {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				var visit func(n ast.Node) bool
				visit = func(n ast.Node) bool {
					expr, ok := n.(ast.Expr)
					if !ok {
						return true
					}
					if v, render, bad := magicSize(p, expr); bad {
						out = append(out, p.diag(name, "units", expr,
							"magic byte-size literal %s (= %d); use internal/units constants (%s)",
							render, v, unitsSpelling(v)))
						return false // do not re-flag sub-expressions
					}
					return true
				}
				ast.Inspect(f, visit)
			}
			return out
		},
	}
}

// magicSize reports whether expr is a flaggable byte-size literal, with
// its folded value and a compact rendering for the message.
func magicSize(p *Package, expr ast.Expr) (v int64, render string, bad bool) {
	val, ok := litValue(p, expr)
	if !ok {
		return 0, "", false
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			// A product is a size when one literal factor is itself a
			// whole number of KB (64*1024, 4*1024*1024, 2*4096).
			if val >= 1024 && val%1024 == 0 && hasKiloFactor(p, e) {
				return val, renderExpr(e), true
			}
		case token.SHL:
			// x<<10/20/30/40 is the idiomatic KB/MB/GB/TB shift.
			if k, ok := litValue(p, e.Y); ok {
				switch k {
				case 10, 20, 30, 40:
					return val, renderExpr(e), true
				}
			}
		}
	case *ast.BasicLit:
		// A bare power of two of 64 Ki and above is virtually always a
		// byte size; smaller ones (4096…) are too often counts to flag.
		if val >= 64*units.KB && val&(val-1) == 0 {
			return val, e.Value, true
		}
	}
	return 0, "", false
}

// litValue folds expr to an int64 if it is built purely from integer
// literals (possibly parenthesized or combined with * and <<). Constants
// named elsewhere (units.KB) make the expression non-literal.
func litValue(p *Package, expr ast.Expr) (int64, bool) {
	switch e := expr.(type) {
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return 0, false
		}
	case *ast.ParenExpr:
		return litValue(p, e.X)
	case *ast.BinaryExpr:
		if e.Op != token.MUL && e.Op != token.SHL {
			return 0, false
		}
		if _, ok := litValue(p, e.X); !ok {
			return 0, false
		}
		if _, ok := litValue(p, e.Y); !ok {
			return 0, false
		}
	default:
		return 0, false
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// hasKiloFactor reports whether any literal leaf of a product is a
// positive multiple of 1024.
func hasKiloFactor(p *Package, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return hasKiloFactor(p, x.X)
	case *ast.BinaryExpr:
		return hasKiloFactor(p, x.X) || hasKiloFactor(p, x.Y)
	case *ast.BasicLit:
		v, ok := litValue(p, x)
		return ok && v >= 1024 && v%1024 == 0
	}
	return false
}

// renderExpr renders the literal expression compactly for the message.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Value
	case *ast.ParenExpr:
		return "(" + renderExpr(x.X) + ")"
	case *ast.BinaryExpr:
		return renderExpr(x.X) + x.Op.String() + renderExpr(x.Y)
	}
	return "?"
}

// unitsSpelling suggests the units-constant spelling of v.
func unitsSpelling(v int64) string {
	for _, u := range []struct {
		name string
		size int64
	}{{"TB", units.TB}, {"GB", units.GB}, {"MB", units.MB}, {"KB", units.KB}} {
		if v >= u.size && v%u.size == 0 {
			if q := v / u.size; q != 1 {
				return fmt.Sprintf("%d*units.%s", q, u.name)
			}
			return "units." + u.name
		}
	}
	return fmt.Sprintf("units.Bytes(%d)", v)
}
