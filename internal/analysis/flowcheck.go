package analysis

// flowcheck extends the determinism analyzer from import-site checks to
// dataflow: a nondeterministic value — wall clock, unseeded math/rand,
// os.Getenv, runtime.GOMAXPROCS — or a sequence built in map-iteration
// order must never reach an emission sink (EmissionSinkFunctions in
// scopes.go: the table rows every figure, export and telemetry dump is
// built from).
//
// The tracking is deliberately coarse so its verdicts are predictable:
//
//   - per function, flow-insensitive: a variable that is ever assigned a
//     tainted value is tainted everywhere in the function;
//   - field-insensitive: a struct value is tainted as a whole (x.f
//     carries x's taint);
//   - interprocedural through call-graph summaries: a module function
//     that returns a tainted value taints its callers' results
//     (TaintedReturn / MapOrderedReturn), and one that forwards a
//     parameter into a sink makes its own call sites sinks on that
//     argument (SinkParams), computed to a fixpoint over the module;
//   - passing a sequence to a sort.* function launders its
//     map-iteration-order taint — a deterministic sort is exactly the
//     sanctioned fix;
//   - wall-clock sources inside WallclockAllowedPackages do not taint:
//     those packages (bench wall-time measurements, the telemetry
//     real-clock adapter) emit wall-clock-derived values by design, and
//     their nondeterministic export fields are documented as such.
//
// Two rules come out: "taint" (nondeterministic value reaches a sink)
// and "maprange" (map-ordered sequence reaches a sink, or a sink is
// called lexically inside a map-range body — rows emitted one per map
// key are in nondeterministic order even when each row's values are
// deterministic).
import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	taintNondet   uint8 = 1 << iota // wall clock, env, unseeded rand
	taintMapOrder                   // sequence in map-iteration order
)

// taintVal carries a value's colors plus the set of enclosing-function
// parameters it derives from (receiver = bit 0 for methods), used to
// compute SinkParams summaries.
type taintVal struct {
	colors uint8
	params uint64
}

func (t taintVal) union(o taintVal) taintVal {
	return taintVal{t.colors | o.colors, t.params | o.params}
}

const flowcheckName = "flowcheck"

// FlowCheck builds the interprocedural determinism-taint analyzer.
func FlowCheck() *Analyzer {
	return &Analyzer{
		Name: flowcheckName,
		Doc:  "forbid nondeterministic and map-ordered values from reaching emission sinks",
		Run: func(p *Package) []Diagnostic {
			return p.Module.Graph().flowFindings()[p]
		},
	}
}

// flowFindings runs the module-wide summary fixpoint once, then a final
// diagnostic pass, grouping findings by owning package.
func (g *CallGraph) flowFindings() map[*Package][]Diagnostic {
	if g.flowDiags != nil {
		return g.flowDiags
	}
	g.flowDiags = make(map[*Package][]Diagnostic)
	sinks := make(map[string]bool, len(EmissionSinkFunctions))
	for _, k := range EmissionSinkFunctions {
		sinks[k] = true
	}
	// Summary fixpoint: iterate until no TaintedReturn/MapOrderedReturn/
	// SinkParams bit changes. Facts only accumulate, so this terminates;
	// the bound is a safety net.
	for pass := 0; pass < 32; pass++ {
		changed := false
		for _, node := range g.Functions() {
			ff := newFuncFlow(g, node, sinks)
			ff.propagate()
			if ff.updateSummary() {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, node := range g.Functions() {
		ff := newFuncFlow(g, node, sinks)
		ff.propagate()
		ff.updateSummary()
		for _, d := range ff.diagnostics() {
			g.flowDiags[node.Pkg] = append(g.flowDiags[node.Pkg], d)
		}
	}
	return g.flowDiags
}

// funcFlow is the per-function propagation state.
type funcFlow struct {
	g     *CallGraph
	node  *FuncNode
	p     *Package
	sinks map[string]bool

	wallOK   bool // package may read the wall clock (scopes.go)
	vars     map[*types.Var]taintVal
	paramIdx map[*types.Var]int
	sorted   map[*types.Var]bool // ever passed to a sort.* function

	mapRanges []span // body spans of range-over-map statements
	changed   bool
}

type span struct{ lo, hi token.Pos }

func newFuncFlow(g *CallGraph, node *FuncNode, sinks map[string]bool) *funcFlow {
	ff := &funcFlow{
		g:        g,
		node:     node,
		p:        node.Pkg,
		sinks:    sinks,
		wallOK:   node.Pkg.pathMatches(WallclockAllowedPackages),
		vars:     make(map[*types.Var]taintVal),
		paramIdx: make(map[*types.Var]int),
		sorted:   make(map[*types.Var]bool),
	}
	idx := 0
	bind := func(names []*ast.Ident) {
		for _, name := range names {
			if v, ok := ff.p.Info.Defs[name].(*types.Var); ok && idx < 64 {
				ff.paramIdx[v] = idx
			}
			idx++
		}
	}
	fd := node.Decl
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			bind(f.Names)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			bind(f.Names)
		}
	}
	ff.prepass()
	return ff
}

// prepass records the sort-laundered variables and the map-range body
// spans; both are syntactic facts that hold for the whole function.
func (ff *funcFlow) prepass() {
	ast.Inspect(ff.node.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			if _, ok := ff.typeOfExpr(e.X).(*types.Map); ok && e.Body != nil {
				ff.mapRanges = append(ff.mapRanges, span{e.Body.Pos(), e.Body.End()})
			}
		case *ast.CallExpr:
			sel, ok := unparen(e.Fun).(*ast.SelectorExpr)
			if !ok || len(e.Args) == 0 {
				return true
			}
			fn, ok := ff.p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			if id, ok := unparen(e.Args[0]).(*ast.Ident); ok {
				if v, ok := ff.p.objOf(id).(*types.Var); ok {
					ff.sorted[v] = true
				}
			}
		}
		return true
	})
}

func (ff *funcFlow) typeOfExpr(e ast.Expr) types.Type {
	if tv, ok := ff.p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// propagate runs the flow-insensitive transfer functions to a local
// fixpoint.
func (ff *funcFlow) propagate() {
	for i := 0; i < 32; i++ {
		ff.changed = false
		ast.Inspect(ff.node.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.RangeStmt:
				ff.transferRange(e)
			case *ast.AssignStmt:
				ff.transferAssign(e)
			case *ast.ValueSpec:
				for i, name := range e.Names {
					if i < len(e.Values) {
						ff.assignIdent(name, ff.eval(e.Values[i]))
					}
				}
			}
			return true
		})
		if !ff.changed {
			return
		}
	}
}

func (ff *funcFlow) transferRange(rs *ast.RangeStmt) {
	if _, ok := ff.typeOfExpr(rs.X).(*types.Map); !ok {
		// Ranging over a non-map only forwards the operand's taint.
		t := ff.eval(rs.X)
		ff.assignExpr(rs.Key, t)
		ff.assignExpr(rs.Value, t)
		return
	}
	t := ff.eval(rs.X)
	t.colors |= taintMapOrder
	ff.assignExpr(rs.Key, t)
	ff.assignExpr(rs.Value, t)
}

func (ff *funcFlow) transferAssign(as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment: every lhs inherits the single rhs taint.
		t := ff.eval(as.Rhs[0])
		for _, lhs := range as.Lhs {
			ff.assignExpr(lhs, t)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) {
			t := ff.eval(as.Rhs[i])
			if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
				as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
				t = t.union(ff.eval(lhs))
			}
			ff.assignExpr(lhs, t)
		}
	}
}

// assignExpr stores taint into an assignment target: identifiers are
// tracked precisely, field/index targets taint the base variable
// (field-insensitivity working in the conservative direction).
func (ff *funcFlow) assignExpr(lhs ast.Expr, t taintVal) {
	switch e := unparen(lhs).(type) {
	case nil:
	case *ast.Ident:
		ff.assignIdent(e, t)
	case *ast.SelectorExpr:
		ff.assignExpr(e.X, t)
	case *ast.IndexExpr:
		ff.assignExpr(e.X, t)
	case *ast.StarExpr:
		ff.assignExpr(e.X, t)
	}
}

func (ff *funcFlow) assignIdent(id *ast.Ident, t taintVal) {
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := ff.p.objOf(id).(*types.Var)
	if !ok {
		return
	}
	if ff.sorted[v] {
		// A deterministic sort anywhere in the function sanctions the
		// sequence: map-order taint never sticks to this variable.
		t.colors &^= taintMapOrder
	}
	old := ff.vars[v]
	merged := old.union(t)
	if merged != old {
		ff.vars[v] = merged
		ff.changed = true
	}
}

// eval computes an expression's taint under the current state.
func (ff *funcFlow) eval(e ast.Expr) taintVal {
	switch e := unparen(e).(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		if v, ok := ff.p.objOf(e).(*types.Var); ok {
			if t, ok := ff.vars[v]; ok {
				if i, pok := ff.paramIdx[v]; pok {
					t.params |= 1 << i
				}
				return t
			}
			if i, ok := ff.paramIdx[v]; ok {
				return taintVal{params: 1 << i}
			}
		}
		return taintVal{}
	case *ast.SelectorExpr:
		if _, ok := ff.p.Info.Uses[ff.baseIdent(e)].(*types.PkgName); ok {
			return taintVal{} // pkg.Name reference, not a field chain
		}
		return ff.eval(e.X)
	case *ast.CallExpr:
		return ff.evalCall(e)
	case *ast.BinaryExpr:
		return ff.eval(e.X).union(ff.eval(e.Y))
	case *ast.UnaryExpr:
		return ff.eval(e.X)
	case *ast.StarExpr:
		return ff.eval(e.X)
	case *ast.IndexExpr:
		return ff.eval(e.X)
	case *ast.SliceExpr:
		return ff.eval(e.X)
	case *ast.TypeAssertExpr:
		return ff.eval(e.X)
	case *ast.CompositeLit:
		var t taintVal
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t = t.union(ff.eval(kv.Value))
			} else {
				t = t.union(ff.eval(elt))
			}
		}
		return t
	}
	return taintVal{}
}

// baseIdent returns the leftmost identifier of a selector chain.
func (ff *funcFlow) baseIdent(sel *ast.SelectorExpr) *ast.Ident {
	x := unparen(sel.X)
	for {
		inner, ok := x.(*ast.SelectorExpr)
		if !ok {
			break
		}
		x = unparen(inner.X)
	}
	if id, ok := x.(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{} // resolves to nothing in Uses
}

// evalCall computes a call result's taint: nondeterminism sources
// introduce colors, module calls contribute their summaries, unknown
// (stdlib) calls conservatively forward their arguments' taint.
func (ff *funcFlow) evalCall(call *ast.CallExpr) taintVal {
	if tv, ok := ff.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return ff.eval(call.Args[0]) // conversion
	}
	fn := ff.calledFunc(call)
	if b := ff.calledBuiltin(call); b != "" {
		switch b {
		case "make", "new", "len", "cap":
			return taintVal{}
		default: // append, copy, min, max...
			var t taintVal
			for _, a := range call.Args {
				t = t.union(ff.eval(a))
			}
			return t
		}
	}
	if fn != nil && fn.Pkg() != nil {
		if t, isSource := ff.sourceTaint(fn); isSource {
			return t
		}
		if targets := ff.g.calleesOf(ff.p, call); len(targets) > 0 {
			var t taintVal
			for _, callee := range targets {
				if callee.Summary.TaintedReturn {
					t.colors |= taintNondet
				}
				if callee.Summary.MapOrderedReturn {
					t.colors |= taintMapOrder
				}
			}
			return t
		}
		if fn.Pkg().Path() == "sort" {
			return taintVal{}
		}
	}
	// Unknown callee (stdlib, func value): a pure-transformation
	// assumption — taint in, taint out.
	t := ff.eval(call.Fun)
	for _, a := range call.Args {
		t = t.union(ff.eval(a))
	}
	return t
}

// calledFunc resolves the call's static *types.Func, if any.
func (ff *funcFlow) calledFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := ff.p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := ff.p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (ff *funcFlow) calledBuiltin(call *ast.CallExpr) string {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ff.p.Info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// sourceTaint classifies calls to nondeterminism sources. Methods (a
// seeded *rand.Rand, a telemetry clock handle) are never sources here —
// the seeded-generator constructors are the sanctioned pattern, and the
// clock interface's implementations are checked where they are defined.
func (ff *funcFlow) sourceTaint(fn *types.Func) (taintVal, bool) {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return taintVal{}, false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] && !ff.wallOK {
			return taintVal{colors: taintNondet}, true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return taintVal{colors: taintNondet}, true
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ", "Hostname", "Getpid":
			return taintVal{colors: taintNondet}, true
		}
	case "runtime":
		switch fn.Name() {
		case "GOMAXPROCS", "NumCPU", "NumGoroutine":
			return taintVal{colors: taintNondet}, true
		}
	}
	return taintVal{}, false
}

// sinkArgs returns the sink-relevant argument expressions of a call,
// indexed by summary parameter position (receiver = 0 for methods), or
// nil when the call is not a sink.
func (ff *funcFlow) sinkArgs(call *ast.CallExpr) map[int]ast.Expr {
	fn := ff.calledFunc(call)
	if fn == nil {
		return nil
	}
	hasRecv := false
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		hasRecv = true
	}
	offset := 0
	if hasRecv {
		offset = 1
	}
	out := make(map[int]ast.Expr)
	if ff.sinks[ff.g.Module.FuncKey(fn)] {
		// Direct sink: every regular argument is emitted.
		for i, a := range call.Args {
			out[i+offset] = a
		}
		return out
	}
	// Summary sinks: module functions that forward a parameter into a
	// sink. Interface calls union all CHA targets.
	for _, callee := range ff.g.calleesOf(ff.p, call) {
		for idx := range callee.Summary.SinkParams {
			if idx == 0 && hasRecv {
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
					out[0] = sel.X
				}
				continue
			}
			ai := idx - offset
			if ai >= 0 && ai < len(call.Args) {
				out[idx] = call.Args[ai]
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// updateSummary recomputes the node's flow summary from the final local
// state; reports whether any summary fact changed.
func (ff *funcFlow) updateSummary() bool {
	node := ff.node
	var ret taintVal
	// Explicit return expressions.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range rs.Results {
				ret = ret.union(ff.eval(e))
			}
		}
		return true
	})
	// Named results assigned then bare-returned.
	if res := node.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if v, ok := ff.p.Info.Defs[name].(*types.Var); ok {
					ret = ret.union(ff.vars[v])
				}
			}
		}
	}
	sinkParams := make(map[int]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range ff.sinkArgs(call) {
			t := ff.eval(arg)
			for i := 0; i < 64; i++ {
				if t.params&(1<<i) != 0 {
					sinkParams[i] = true
				}
			}
		}
		return true
	})

	s := &node.Summary
	changed := false
	if v := ret.colors&taintNondet != 0; v && !s.TaintedReturn {
		s.TaintedReturn, changed = true, true
	}
	if v := ret.colors&taintMapOrder != 0; v && !s.MapOrderedReturn {
		s.MapOrderedReturn, changed = true, true
	}
	for i := range sinkParams {
		if s.SinkParams == nil {
			s.SinkParams = make(map[int]bool)
		}
		if !s.SinkParams[i] {
			s.SinkParams[i] = true
			changed = true
		}
	}
	if s.MapOrderedReturn && !s.RangesMapIntoOutput {
		s.RangesMapIntoOutput = true
	}
	return changed
}

// diagnostics reports the function's sink violations.
func (ff *funcFlow) diagnostics() []Diagnostic {
	var out []Diagnostic
	seen := make(map[string]bool) // "line:col rule" dedup
	report := func(n ast.Node, rule, format string, args ...any) {
		d := ff.p.diag(flowcheckName, rule, n, format, args...)
		key := d.Pos.String() + " " + rule
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	ast.Inspect(ff.node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		args := ff.sinkArgs(call)
		if args == nil {
			return true
		}
		sinkName := "emission sink"
		if fn := ff.calledFunc(call); fn != nil {
			sinkName = fn.Name()
		}
		for _, arg := range args {
			t := ff.eval(arg)
			if t.colors&taintNondet != 0 {
				report(arg, "taint",
					"nondeterministic value (wall clock, environment or unseeded rand) reaches emission sink %s", sinkName)
			}
			if t.colors&taintMapOrder != 0 {
				report(arg, "maprange",
					"value in map-iteration order reaches emission sink %s; sort the keys first", sinkName)
			}
		}
		for _, sp := range ff.mapRanges {
			if call.Pos() >= sp.lo && call.Pos() < sp.hi {
				report(call, "maprange",
					"%s called inside a map range emits rows in nondeterministic order; iterate sorted keys instead", sinkName)
				if ff.node.Summary.RangesMapIntoOutput == false {
					ff.node.Summary.RangesMapIntoOutput = true
				}
				break
			}
		}
		return true
	})
	return out
}
