package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ExtentPackages perform the extent arithmetic (offset/length algebra on
// int64 file ranges) whose silent truncation or overflow would corrupt
// placements rather than crash.
var ExtentPackages = []string{
	"internal/intervals",
	"internal/reorder",
	"internal/stripe",
	"internal/pfs",
}

// ExtentCheck enforces two rules in the extent-arithmetic packages:
//
//   - "trunc": conversions from a 64-bit integer to a narrower (or
//     platform-width) integer type truncate on 32-bit builds and on
//     out-of-range values. Convert through a bounds-commented site with
//     //mhavet:allow trunc, or restructure to stay in int64.
//   - "extentsum": a raw off+len addition computing an extent end can
//     overflow int64 unchecked. Use units.End, which panics on overflow
//     instead of wrapping into a negative offset.
func ExtentCheck() *Analyzer {
	const name = "extentcheck"
	return &Analyzer{
		Name: name,
		Doc:  "extent arithmetic must not truncate int64 or overflow off+len",
		Run: func(p *Package) []Diagnostic {
			if !p.pathMatches(ExtentPackages) {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.CallExpr:
						if d, ok := p.truncation(name, e); ok {
							out = append(out, d)
						}
					case *ast.BinaryExpr:
						if d, ok := p.extentSum(name, e); ok {
							out = append(out, d)
						}
					}
					return true
				})
			}
			return out
		},
	}
}

// truncation flags T(x) where T is an integer type narrower than 64 bits
// (including platform-width int/uint) and x is a 64-bit integer.
func (p *Package) truncation(name string, call *ast.CallExpr) (Diagnostic, bool) {
	if len(call.Args) != 1 {
		return Diagnostic{}, false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return Diagnostic{}, false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || !narrowInt(dst.Kind()) {
		return Diagnostic{}, false
	}
	argT := p.Info.TypeOf(call.Args[0])
	if argT == nil {
		return Diagnostic{}, false
	}
	src, ok := argT.Underlying().(*types.Basic)
	if !ok || (src.Kind() != types.Int64 && src.Kind() != types.Uint64) {
		return Diagnostic{}, false
	}
	if tv2, ok := p.Info.Types[call.Args[0]]; ok && tv2.Value != nil {
		return Diagnostic{}, false // constant conversions are checked by the compiler
	}
	return p.diag(name, "trunc", call,
		"truncating conversion %s(%s) of a 64-bit extent quantity; stay in int64 or bounds-check and annotate with //mhavet:allow trunc",
		tv.Type.String(), src.String()), true
}

// narrowInt reports whether kind can lose bits of an int64.
func narrowInt(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uintptr:
		return true
	}
	return false
}

// extentSum flags a+b where both operands are int64 and the operand names
// pair an offset with a length — the shape of an unchecked extent end.
func (p *Package) extentSum(name string, e *ast.BinaryExpr) (Diagnostic, bool) {
	if e.Op != token.ADD {
		return Diagnostic{}, false
	}
	if !isInt64(p.Info.TypeOf(e.X)) || !isInt64(p.Info.TypeOf(e.Y)) {
		return Diagnostic{}, false
	}
	xn, yn := operandName(e.X), operandName(e.Y)
	if (offsetish(xn) && lengthish(yn)) || (offsetish(yn) && lengthish(xn)) {
		return p.diag(name, "extentsum", e,
			"unchecked extent end %s+%s may overflow int64; use units.End(%s, %s)",
			xn, yn, xn, yn), true
	}
	return Diagnostic{}, false
}

func isInt64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// operandName extracts the rightmost identifier of an operand: x, s.Off,
// r.Size() all resolve to their final name.
func operandName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return operandName(x.X)
	case *ast.CallExpr:
		return operandName(x.Fun)
	}
	return ""
}

func offsetish(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "off") || strings.Contains(n, "start") ||
		strings.Contains(n, "base") || strings.Contains(n, "pos")
}

func lengthish(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "len") || strings.Contains(n, "size")
}
