package analysis

// The interprocedural layer: a module-wide call graph over go/types with
// per-function summaries, shared by the allocheck and flowcheck
// analyzers. The per-file analyzers of DESIGN.md §10 check invariants a
// single function exhibits syntactically; the whole-program invariants —
// "the hot loop allocates nothing, transitively" and "nondeterminism
// never reaches an emitted figure" — need to know who calls whom.
//
// Construction is stdlib-only, like the loader:
//
//   - Direct calls (pkg.F, method calls on concrete receivers) resolve
//     through types.Info.Uses to their *types.Func and become one edge.
//   - Interface method calls resolve by class-hierarchy analysis: the
//     call edges to every module type implementing the interface that
//     declares the method (sound over the module, blind to out-of-module
//     implementations — none exist for module-internal interfaces).
//   - Function literals are folded into their enclosing named function:
//     calls made inside a closure are edges of the function that created
//     it. Closure *values* invoked through variables or fields (Handler,
//     the prebuilt chain nexts) are NOT resolved — the soundness gap is
//     closed by listing both ends of such indirections in
//     HotPathFunctions (scopes.go).
//
// A `//mhavet:coldpath` directive on a function declaration marks the
// function as off the per-operation path (metadata creation, error
// recovery): allocheck stops traversing at it. Like //mhavet:allow, the
// directive is a deliberate, reviewable escape hatch at the site.
import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ColdPathDirective marks a function declaration as off the hot path:
// //mhavet:coldpath [reason...]
const ColdPathDirective = "mhavet:coldpath"

// FuncNode is one function of the module in the call graph.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Key  string // stable identity, e.g. "internal/iopath.(*Striper).Handle"

	// Callees are the resolved outgoing edges in stable (Key) order.
	Callees []*FuncNode

	// ColdPath is set by a //mhavet:coldpath directive on the declaration.
	ColdPath bool

	// Summary is the function's interprocedural summary; the flow facts
	// (TaintedReturn, MapOrderedReturn, SinkParams) are computed to a
	// fixpoint by flowcheck, the syntactic facts during construction.
	Summary FuncSummary
}

// FuncSummary captures what a function does that its callers care about.
type FuncSummary struct {
	// AllocSites are the direct heap-allocation sites in the body
	// (closure captures, boxing, literals, growing appends, fmt calls),
	// excluding error-return and panic subtrees. See allocheck.go.
	AllocSites []AllocSite

	// ReadsWallclock reports a direct wall-clock read in the body.
	ReadsWallclock bool

	// SpawnsGoroutine reports a go statement in the body.
	SpawnsGoroutine bool

	// RangesMapIntoOutput reports a map range whose loop variables reach
	// a return value or an emission sink (set by flowcheck).
	RangesMapIntoOutput bool

	// TaintedReturn: some return value derives from a nondeterminism
	// source (wall clock, unseeded rand, environment).
	TaintedReturn bool

	// MapOrderedReturn: some return value is a sequence built in map
	// iteration order without a deterministic sort.
	MapOrderedReturn bool

	// SinkParams are the parameter indices that flow into an emission
	// sink (receiver counts as index 0 when present; regular parameters
	// follow). A function with sink params is itself a sink on those
	// arguments.
	SinkParams map[int]bool
}

// CallGraph is the module-wide graph plus the type inventory CHA needs.
type CallGraph struct {
	Module *Module
	Nodes  map[*types.Func]*FuncNode
	ByKey  map[string]*FuncNode

	keys []string // sorted node keys, for deterministic iteration

	namedTypes []*types.Named
	chaCache   map[chaKey][]*FuncNode

	// Memoized module-wide analyzer results, grouped by owning package
	// (the driver asks per package; the graph computes once).
	allocDiags map[*Package][]Diagnostic
	flowDiags  map[*Package][]Diagnostic
}

type chaKey struct {
	iface *types.Interface
	name  string
}

// Graph returns the module's call graph, building it on first use. The
// driver is single-threaded (analyzers run package by package), so a
// plain cached field suffices.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

// relPath strips the module prefix from an import path, so keys read
// "internal/iopath" in both the real tree and the fixture module.
func (m *Module) relPath(path string) string {
	if path == m.Path {
		return "."
	}
	return strings.TrimPrefix(path, m.Path+"/")
}

// FuncKey renders a function's stable identity: the defining package's
// module-relative path plus a plain name or (Type)/(*Type) method
// selector — "internal/sim.RunInterleaved",
// "internal/iopath.(*Striper).Handle".
func (m *Module) FuncKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	rel := m.relPath(pkg.Path())
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return rel + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, isPtr := t.(*types.Pointer); isPtr {
		ptr, t = true, p.Elem()
	}
	name := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	} else if iface, isIface := t.(*types.Interface); isIface {
		_ = iface
		name = "interface"
	}
	if ptr {
		return rel + ".(*" + name + ")." + fn.Name()
	}
	return rel + ".(" + name + ")." + fn.Name()
}

// buildCallGraph constructs nodes for every function declaration in the
// module, then resolves edges.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		Module:   m,
		Nodes:    make(map[*types.Func]*FuncNode),
		ByKey:    make(map[string]*FuncNode),
		chaCache: make(map[chaKey][]*FuncNode),
	}
	// Pass 1: nodes and the named-type inventory.
	for _, p := range m.Pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{
					Obj:      obj,
					Decl:     fd,
					Pkg:      p,
					Key:      m.FuncKey(obj),
					ColdPath: hasDirective(fd.Doc, ColdPathDirective),
				}
				g.Nodes[obj] = node
				g.ByKey[node.Key] = node
			}
		}
	}
	sort.Slice(g.namedTypes, func(i, j int) bool {
		return g.namedTypes[i].Obj().Id() < g.namedTypes[j].Obj().Id()
	})
	// Pass 2: edges and syntactic summary facts.
	for _, node := range g.Nodes {
		g.resolveEdges(node)
	}
	g.keys = make([]string, 0, len(g.ByKey))
	for k := range g.ByKey {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	return g
}

// Functions iterates the graph's nodes in stable key order.
func (g *CallGraph) Functions() []*FuncNode {
	out := make([]*FuncNode, len(g.keys))
	for i, k := range g.keys {
		out[i] = g.ByKey[k]
	}
	return out
}

// Lookup resolves a scope-table entry (a FuncKey) to its node.
func (g *CallGraph) Lookup(key string) *FuncNode {
	return g.ByKey[key]
}

// resolveEdges walks the function body — closures included — collecting
// call edges and the syntactic summary facts.
func (g *CallGraph) resolveEdges(node *FuncNode) {
	p := node.Pkg
	seen := make(map[*FuncNode]bool)
	add := func(callee *FuncNode) {
		if callee != nil && callee != node && !seen[callee] {
			seen[callee] = true
			node.Callees = append(node.Callees, callee)
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			node.Summary.SpawnsGoroutine = true
		case *ast.CallExpr:
			for _, callee := range g.calleesOf(p, e) {
				add(callee)
			}
		case *ast.SelectorExpr:
			// A wall-clock *reference* (not just call) marks the summary,
			// mirroring the determinism analyzer.
			if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && wallclockFuncs[fn.Name()] {
				node.Summary.ReadsWallclock = true
			}
		}
		return true
	})
	sort.Slice(node.Callees, func(i, j int) bool {
		return node.Callees[i].Key < node.Callees[j].Key
	})
}

// calleesOf resolves one call expression to its possible module-internal
// targets: one node for a static call, every implementing method for an
// interface call, nothing for calls through function values or into the
// standard library.
func (g *CallGraph) calleesOf(p *Package, call *ast.CallExpr) []*FuncNode {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if node := g.Nodes[fn]; node != nil {
				return []*FuncNode{node}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return g.implementers(iface, fn.Name())
			}
		}
		if node := g.Nodes[fn]; node != nil {
			return []*FuncNode{node}
		}
	}
	return nil
}

// implementers returns the module methods that an interface method call
// can dispatch to: for every named module type implementing the
// interface, the method with the call's name. Results are cached per
// (interface, method).
func (g *CallGraph) implementers(iface *types.Interface, name string) []*FuncNode {
	key := chaKey{iface, name}
	if cached, ok := g.chaCache[key]; ok {
		return cached
	}
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, named := range g.namedTypes {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			if node := g.Nodes[fn]; node != nil && !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	g.chaCache[key] = out
	return out
}

// Reachable returns the functions reachable from the given roots,
// traversal stopping at (but including) cold-path functions. The
// per-root shortest-path predecessor map lets diagnostics name the route.
func (g *CallGraph) Reachable(roots []*FuncNode) (set map[*FuncNode]bool, via map[*FuncNode]*FuncNode) {
	set = make(map[*FuncNode]bool)
	via = make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if r != nil && !set[r] {
			set[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.ColdPath {
			continue // included, not traversed past
		}
		for _, c := range n.Callees {
			if !set[c] {
				set[c] = true
				via[c] = n
				queue = append(queue, c)
			}
		}
	}
	return set, via
}

// Route renders the call chain from a hot root to n, for diagnostics:
// "a → b → c".
func Route(via map[*FuncNode]*FuncNode, n *FuncNode) string {
	var parts []string
	for hop := n; hop != nil; hop = via[hop] {
		parts = append(parts, hop.Key)
		if len(parts) > 8 { // defensive: cycles cannot occur (via is a tree)
			break
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

// hasDirective reports whether a doc comment group carries the given
// mhavet directive, using the shared directive grammar.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := parseDirective(c.Text, directive); ok {
			return true
		}
	}
	return false
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = paren.X
	}
}
