package analysis

import (
	"strings"
	"testing"
)

// TestCallGraph exercises the graph machinery directly against the
// fixture module: key grammar, class-hierarchy edges, coldpath pruning,
// reachability routes, and the per-function summaries.
func TestCallGraph(t *testing.T) {
	mod, err := LoadModule(fixtureRoot)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	g := mod.Graph()

	dispatch := g.Lookup("internal/iopath.(*Pipeline).dispatch")
	if dispatch == nil {
		t.Fatal("fixture (*Pipeline).dispatch not in the graph")
	}
	set, via := g.Reachable([]*FuncNode{dispatch})

	// The terminal stage is reached only through the Stage interface: its
	// presence proves the class-hierarchy edges work.
	term := g.Lookup("internal/iopath.(*termStage).Handle")
	if term == nil {
		t.Fatal("fixture (*termStage).Handle not in the graph")
	}
	if !set[term] {
		t.Error("(*termStage).Handle not reachable through the Stage interface")
	}
	if route := Route(via, term); !strings.Contains(route, "dispatch") {
		t.Errorf("route to termStage.Handle = %q, want it to start at dispatch", route)
	}

	// audit carries the coldpath directive: in the reachable set (so its
	// own callers still count) but pruned — nothing past it is traversed.
	audit := g.Lookup("internal/iopath.(*Pipeline).audit")
	if audit == nil {
		t.Fatal("fixture (*Pipeline).audit not in the graph")
	}
	if !audit.ColdPath {
		t.Error("audit's //mhavet:coldpath directive not picked up")
	}

	// The helper one level down is statically reachable.
	if helper := g.Lookup("internal/iopath.debugf"); helper == nil || !set[helper] {
		t.Error("debugf not reachable from dispatch")
	}

	// Flow summaries: the export fixture's wallStamp returns wall-clock
	// taint, and forward sinks its second parameter. The summaries are
	// filled by the flowcheck fixpoint.
	g.flowFindings()
	if n := g.Lookup("internal/export.wallStamp"); n == nil || !n.Summary.TaintedReturn {
		t.Error("wallStamp's TaintedReturn summary not set")
	}
	if n := g.Lookup("internal/export.forward"); n == nil || !n.Summary.SinkParams[1] {
		t.Error("forward's SinkParams summary does not name parameter 1")
	}
	if n := g.Lookup("internal/export.emitUnsorted"); n == nil || !n.Summary.RangesMapIntoOutput {
		t.Error("emitUnsorted's RangesMapIntoOutput summary not set")
	}
}
