package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func testDiag(file string, line int, analyzer, rule, msg string) Diagnostic {
	d := Diagnostic{Analyzer: analyzer, Rule: rule, Message: msg}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = file, line, 5
	return d
}

// TestFingerprints pins the identity contract: path-relative, line
// independent, occurrence-indexed.
func TestFingerprints(t *testing.T) {
	m := &Module{Root: "/repo"}
	fs := Fingerprints(m, []Diagnostic{
		testDiag("/repo/internal/a.go", 3, "allocheck", "fmt", "fmt.Sprintf allocates"),
		testDiag("/repo/internal/a.go", 9, "allocheck", "fmt", "fmt.Sprintf allocates"),
		testDiag("/repo/internal/a.go", 9, "allocheck", "box", "boxing int allocates"),
	})
	if fs[0].RelPath != "internal/a.go" {
		t.Errorf("RelPath = %q, want internal/a.go", fs[0].RelPath)
	}
	if fs[0].Fingerprint == fs[1].Fingerprint {
		t.Error("identical findings not disambiguated by occurrence index")
	}
	if fs[0].Fingerprint == fs[2].Fingerprint {
		t.Error("distinct rules share a fingerprint")
	}
	// Moving a finding to another line keeps its fingerprint.
	moved := Fingerprints(m, []Diagnostic{
		testDiag("/repo/internal/a.go", 77, "allocheck", "fmt", "fmt.Sprintf allocates"),
	})
	if moved[0].Fingerprint != fs[0].Fingerprint {
		t.Error("fingerprint changed when only the line number moved")
	}
}

func TestBaseline(t *testing.T) {
	m := &Module{Root: "/repo"}
	fs := Fingerprints(m, []Diagnostic{
		testDiag("/repo/a.go", 1, "allocheck", "fmt", "one"),
		testDiag("/repo/b.go", 2, "flowcheck", "taint", "two"),
	})
	b := Baseline{
		fs[0].Fingerprint:  "known cold fmt call",
		"deadbeef00000000": "entry for a finding that no longer exists",
	}
	kept, suppressed := b.Filter(fs)
	if suppressed != 1 || len(kept) != 1 || kept[0].Rule != "taint" {
		t.Errorf("Filter kept %d suppressed %d, want 1/1 keeping the taint finding", len(kept), suppressed)
	}
	stale := b.Stale(fs)
	if len(stale) != 1 || stale[0] != "deadbeef00000000" {
		t.Errorf("Stale = %v, want the dangling entry only", stale)
	}
}

func TestWriteFormats(t *testing.T) {
	m := &Module{Root: "/repo"}
	fs := Fingerprints(m, []Diagnostic{
		testDiag("/repo/internal/a.go", 3, "flowcheck", "maprange", "map order reaches sink"),
	})

	var text bytes.Buffer
	if err := WriteText(&text, fs); err != nil {
		t.Fatal(err)
	}
	if got, want := text.String(), "internal/a.go:3:5: flowcheck/maprange: map order reaches sink\n"; got != want {
		t.Errorf("text = %q, want %q", got, want)
	}

	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Errorf("empty JSON = %q, want []", empty.String())
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, fs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"file": "internal/a.go"`, `"fingerprint": "` + fs[0].Fingerprint + `"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON output missing %s", want)
		}
	}

	var sarif bytes.Buffer
	if err := WriteSARIF(&sarif, All(), fs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"ruleId": "flowcheck/maprange"`,
		`"uri": "internal/a.go"`,
		`"mhavet/v1": "` + fs[0].Fingerprint + `"`,
		`"id": "allocheck"`, // the rule inventory carries the whole suite
	} {
		if !strings.Contains(sarif.String(), want) {
			t.Errorf("SARIF output missing %s", want)
		}
	}
}
