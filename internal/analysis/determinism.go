package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package functions that observe or depend on
// the wall clock. Duration arithmetic and the time constants are fine.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded local generators; everything else at package level draws from
// the shared, unseeded global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism flags wall-clock reads (rule "wallclock") and unseeded
// global math/rand use (rule "rand"). Both rules flag references, not
// just calls: passing time.Now as a clock function is as nondeterministic
// as calling it.
func Determinism() *Analyzer {
	const name = "determinism"
	return &Analyzer{
		Name: name,
		Doc:  "forbid wall-clock time and unseeded global math/rand in simulation-driven code",
		Run: func(p *Package) []Diagnostic {
			wallclockOK := p.pathMatches(WallclockAllowedPackages)
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
						return true // methods (e.g. on a seeded *rand.Rand) are fine
					}
					switch fn.Pkg().Path() {
					case "time":
						if wallclockFuncs[fn.Name()] && !wallclockOK {
							out = append(out, p.diag(name, "wallclock", sel,
								"time.%s reads the wall clock; simulation code must use virtual time (sim.Engine.Now)", fn.Name()))
						}
					case "math/rand", "math/rand/v2":
						if !randConstructors[fn.Name()] {
							out = append(out, p.diag(name, "rand", sel,
								"rand.%s draws from the unseeded global source; use a seeded rand.New(rand.NewSource(seed))", fn.Name()))
						}
					}
					return true
				})
			}
			return out
		},
	}
}
