package analysis

// This file is the single home of mhavet's package scopes: every
// allowlist or exemption an analyzer consults lives here, so widening a
// rule's scope is a one-line, reviewable change and the self-check test
// can pin in one place that each listed package actually exists.

// DeterministicPackages lists the sim/virtual-time packages whose outputs
// feed the figure suite directly. The determinism rules apply to the
// whole module — a wall-clock read in a workload generator corrupts
// figures just as surely as one in the engine — but this list documents
// the core that must never be exempted, and the self-check test pins it.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/iopath",
	"internal/pfs",
	"internal/server",
	"internal/costmodel",
	"internal/mpiio",
	"internal/replay",
	"internal/dynamic",
	"internal/fault",
	"internal/adaptive",
	"internal/plancache",
	// internal/service runs the multi-tenant plan service on a virtual
	// clock: job IDs, the dedupe ledger and every state dump must be
	// byte-identical across runs and worker counts, so wall-clock reads
	// are as corrupting here as in the engine.
	"internal/service",
}

// WallclockAllowedPackages may read the wall clock:
//
//   - internal/bench times the planners' real (not virtual) overhead for
//     the Fig. 14 measurements;
//   - internal/telemetry/wallclock is the sanctioned real-clock adapter
//     behind the telemetry.Clock interface, used only for profiling the
//     implementation itself.
//
// Everywhere else wall-clock use needs an explicit
// //mhavet:allow wallclock comment at the site.
var WallclockAllowedPackages = []string{
	"internal/bench",
	"internal/telemetry/wallclock",
}

// PooledRequestPackages own the iopath descriptor free list. Pipeline.put
// is unexported, so only these packages can return descriptors to the
// pool; poolcheck holds every put site in them to the Reset-before-put
// contract (Request.Reset documents why).
var PooledRequestPackages = []string{
	"internal/iopath",
}

// UnitsExemptPackages define the byte-size constants and so legitimately
// spell out raw powers of two.
var UnitsExemptPackages = []string{
	"internal/units",
}

// HotPathFunctions are the roots of the per-operation hot path: the
// functions that run once (or more) per simulated I/O request at the XL
// tier, where the runtime contract is ≤ 2 allocs/op (DESIGN.md §14).
// allocheck walks the call graph from these roots and flags every
// statically detectable heap allocation it can reach.
//
// The list names both ends of the pipeline's function-value
// indirections: dispatch invokes stages through prebuilt Handler
// closures the call graph cannot resolve, so the stage entry points are
// listed as roots in their own right rather than relying on edges
// through the chain (DESIGN.md §15 documents this soundness limit).
//
// Entries use the call graph's key grammar:
// "<module-relative-pkg>.Func" or "<pkg>.(*Type).Method". The
// self-check test pins that every entry resolves to a real function.
var HotPathFunctions = []string{
	"internal/iopath.(*Pipeline).dispatch",   // staged chain walk, one per request
	"internal/iopath.(*Striper).Handle",      // stripe fan-out loop
	"internal/iopath.(*Batcher).flush",       // batch drain: group, sort, merge
	"internal/iopath.(ServerStage).Handle",   // terminal server submission
	"internal/adaptive.(*Scheduler).Handle",  // per-request straggler decision
	"internal/adaptive.(*Estimator).Observe", // per-request EWMA refresh
	"internal/sim.(*Engine).Step",            // event loop core
	"internal/sim.RunInterleaved",            // sharded-engine merge loop
	"internal/replay.(*rankClient).issue",    // replay drive loop: next record
	"internal/replay.(*rankClient).issueNow",
	"internal/replay.(*rankClient).done", // replay completion path
}

// EmissionSinkFunctions are where figure/export data leaves the
// simulator: every table row the bench suite prints or exports passes
// through these. flowcheck forbids nondeterministic values (wall clock,
// environment, unseeded rand) and map-iteration-ordered sequences from
// reaching them, directly or through calls summarized by the call graph.
var EmissionSinkFunctions = []string{
	"internal/metrics.(*Table).AddRow",
}

// ConcurrencyAllowedPackages may use go statements and the sync /
// sync/atomic primitives. Everywhere else, parallelism must go through
// internal/parfan's deterministic ordered fan-out — the concurrency
// analyzer flags stray goroutines and mutexes because ad-hoc concurrency
// is exactly how scheduling dependence would sneak back into the
// bit-identical figure pipeline:
//
//   - internal/parfan is the sanctioned fan-out primitive itself (worker
//     pool, atomic work cursor);
//   - internal/telemetry carries per-handle locks so metric emission is
//     safe from parfan workers, and merges registries;
//   - internal/bench orchestrates parallel scheme × figure cells and the
//     in-order telemetry merge;
//   - internal/iopath guards its recorder and pipeline registration;
//   - internal/iosig guards its signature cache;
//   - internal/kvstore guards the persisted DRT/RST tables;
//   - internal/adaptive settles speculation races from deadline-timer
//     callbacks under the pipeline's submission lock and shares iopath's
//     locking discipline;
//   - internal/plancache implements single-flight plan memoization: one
//     mutex guards the key → entry map and completion channels block
//     coalesced callers, so concurrent parfan cells planning the same
//     key wait for one computation instead of racing;
//   - internal/service batch-dispatches each virtual instant's planner
//     calls through parfan and its tests hold computations open across
//     goroutines to pin the single-flight coalescing behavior; the event
//     loop itself stays single-threaded.
var ConcurrencyAllowedPackages = []string{
	"internal/parfan",
	"internal/telemetry",
	"internal/bench",
	"internal/iopath",
	"internal/iosig",
	"internal/kvstore",
	"internal/adaptive",
	"internal/plancache",
	"internal/service",
}
