package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the descriptor free-list contract: every pooled
// iopath.Request returned to the pool (Pipeline.put) must pass through
// Reset() first, in the same function and before the put. A stale
// OnComplete, parent link or binding on a recycled descriptor fires
// another request's completion or routes to another request's server
// placement — corruption no test reliably catches, because it needs pool
// reuse to line up just so. Reset credit does not cross function-literal
// boundaries: a put deferred into a closure runs later, when the
// surrounding function's proof no longer holds.
func PoolCheck() *Analyzer {
	const name = "poolcheck"
	return &Analyzer{
		Name: name,
		Doc:  "pooled iopath request descriptors must be Reset before returning to the free list",
		Run: func(p *Package) []Diagnostic {
			if !p.pathMatches(PooledRequestPackages) {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.FuncDecl:
						if e.Body != nil {
							out = append(out, p.checkPoolPuts(name, e.Body)...)
						}
					case *ast.FuncLit:
						out = append(out, p.checkPoolPuts(name, e.Body)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// checkPoolPuts flags the free-list put calls in one function body whose
// descriptor was not Reset earlier in the same body. Nested function
// literals are skipped — they are checked as their own bodies.
func (p *Package) checkPoolPuts(name string, body *ast.BlockStmt) []Diagnostic {
	type putSite struct {
		call *ast.CallExpr
		obj  types.Object // nil when the argument is not a plain variable
	}
	var puts []putSite
	resets := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, ok := p.resetReceiver(call); ok {
			resets[obj] = append(resets[obj], call.Pos())
			return true
		}
		if arg, ok := p.poolPutArg(call); ok {
			site := putSite{call: call}
			if id, ok := arg.(*ast.Ident); ok {
				site.obj = p.Info.Uses[id]
			}
			puts = append(puts, site)
		}
		return true
	})
	var out []Diagnostic
	for _, s := range puts {
		if s.obj != nil && anyBefore(resets[s.obj], s.call.Pos()) {
			continue
		}
		out = append(out, p.diag(name, "reset", s.call,
			"descriptor returned to the pool without Reset; a recycled request carrying stale completion or binding state fires another request's completion"))
	}
	return out
}

// poolPutArg matches Pipeline.put(desc) and returns the descriptor
// expression.
func (p *Package) poolPutArg(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "put" || len(call.Args) != 1 {
		return nil, false
	}
	if !isNamed(p.Info.TypeOf(sel.X), iopathPkg, "Pipeline") {
		return nil, false
	}
	if !isRequest(p, call.Args[0]) {
		return nil, false
	}
	return call.Args[0], true
}

// resetReceiver matches req.Reset() on a plain Request variable and
// returns the variable's object.
func (p *Package) resetReceiver(call *ast.CallExpr) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reset" || len(call.Args) != 0 {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isRequest(p, id) {
		return nil, false
	}
	obj := p.Info.Uses[id]
	return obj, obj != nil
}

// anyBefore reports whether any recorded position precedes pos.
func anyBefore(positions []token.Pos, pos token.Pos) bool {
	for _, q := range positions {
		if q < pos {
			return true
		}
	}
	return false
}
