package analysis

import (
	"go/ast"
	"go/types"
)

// iopathPkg and mpiioPkg identify the pipeline package and the middleware
// that owns request submission, by import-path suffix (so the fixture
// copies used in tests are held to the same contract).
const (
	iopathPkg = "internal/iopath"
	mpiioPkg  = "internal/mpiio"
)

// requestOwners are the packages allowed to construct iopath.Request
// values directly: the pipeline itself and the middleware that submits
// root requests. Everyone else must go through the middleware (or derive
// children via Request.child) so identity fields propagate consistently.
var requestOwners = []string{iopathPkg, mpiioPkg}

// aliasFields are the Request fields a derived or copied request must
// never share with its parent: an aliased OnComplete double-fires the
// completion callback, an aliased annotations map leaks interceptor
// state across requests, and an aliased Binding routes two requests to
// one server-side placement.
var aliasFields = map[string]bool{
	"OnComplete":  true,
	"Binding":     true,
	"annotations": true,
}

// StageCheck enforces the iopath pipeline invariants:
//
//   - "chain": a function holding a chain snapshot (a []slot parameter)
//     must not mutate it (element assignment, append) or retain it in a
//     field or package variable — the pipeline's copy-on-write
//     registration depends on snapshots staying frozen;
//   - "reqliteral": iopath.Request composite literals are constructed
//     only by the pipeline and the middleware;
//   - "alias": request derivation must copy, not alias: OnComplete,
//     Binding and annotations never flow from one Request into another.
func StageCheck() *Analyzer {
	const name = "stagecheck"
	return &Analyzer{
		Name: name,
		Doc:  "iopath invariants: frozen chain snapshots, owned request construction, no descriptor aliasing",
		Run: func(p *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.FuncDecl:
						if e.Body != nil {
							out = append(out, p.checkChainParams(name, e.Type, e.Body)...)
						}
					case *ast.FuncLit:
						out = append(out, p.checkChainParams(name, e.Type, e.Body)...)
					case *ast.CompositeLit:
						out = append(out, p.checkRequestLit(name, e)...)
					case *ast.AssignStmt:
						out = append(out, p.checkAliasAssign(name, e)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// isChainSlice reports whether t is a slice of the iopath chain's slot
// type.
func isChainSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	return ok && isNamed(sl.Elem(), iopathPkg, "slot")
}

// chainParams returns the parameter objects of ft that carry chain
// snapshots.
func (p *Package) chainParams(ft *ast.FuncType) map[types.Object]bool {
	if ft.Params == nil {
		return nil
	}
	var params map[types.Object]bool
	for _, field := range ft.Params.List {
		for _, nm := range field.Names {
			obj := p.Info.Defs[nm]
			if obj == nil || !isChainSlice(obj.Type()) {
				continue
			}
			if params == nil {
				params = make(map[types.Object]bool)
			}
			params[obj] = true
		}
	}
	return params
}

// checkChainParams flags mutation or retention of chain-snapshot
// parameters within the function body.
func (p *Package) checkChainParams(name string, ft *ast.FuncType, body *ast.BlockStmt) []Diagnostic {
	params := p.chainParams(ft)
	if params == nil {
		return nil
	}
	isParam := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && params[p.Info.Uses[id]]
	}
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if root, viaIndex := assignRoot(lhs); viaIndex && isParam(root) {
					out = append(out, p.diag(name, "chain", lhs,
						"mutation of chain snapshot %s: in-flight requests share it; copy before editing", operandName(root)))
				}
				// Retention: the bare snapshot stored into a field or a
				// package-level variable outlives the dispatch.
				if i < len(e.Rhs) && isParam(e.Rhs[i]) && !isLocalTarget(p, lhs) {
					out = append(out, p.diag(name, "chain", e.Rhs[i],
						"chain snapshot retained beyond the dispatch; stages must not store the chain"))
				}
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" &&
				len(e.Args) > 0 && isParam(e.Args[0]) {
				out = append(out, p.diag(name, "chain", e,
					"append to chain snapshot %s may write the shared backing array; copy first", operandName(e.Args[0])))
			}
		}
		return true
	})
	return out
}

// assignRoot unwraps an assignment target to its root expression and
// reports whether the path passes through an index (element mutation).
func assignRoot(e ast.Expr) (root ast.Expr, viaIndex bool) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			viaIndex = true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e, viaIndex
		}
	}
}

// isLocalTarget reports whether an assignment target is a plain local
// variable (including blank), as opposed to a field or package-level
// variable.
func isLocalTarget(p *Package, lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return ok && v.Parent() != v.Pkg().Scope()
}

// checkRequestLit flags Request composite literals outside the owning
// packages and aliasing field values inside any Request literal.
func (p *Package) checkRequestLit(name string, lit *ast.CompositeLit) []Diagnostic {
	tv, ok := p.Info.Types[lit]
	if !ok || !isNamed(tv.Type, iopathPkg, "Request") {
		return nil
	}
	var out []Diagnostic
	if !p.pathMatches(requestOwners) {
		out = append(out, p.diag(name, "reqliteral", lit,
			"iopath.Request constructed outside the pipeline/middleware; submit through the middleware or derive children via Request.child"))
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !aliasFields[key.Name] {
			continue
		}
		if sel, ok := kv.Value.(*ast.SelectorExpr); ok &&
			isRequest(p, sel.X) && aliasFields[sel.Sel.Name] {
			out = append(out, p.diag(name, "alias", kv,
				"derived request aliases parent's %s; child requests must copy, not share, completion/annotation state", sel.Sel.Name))
		}
	}
	return out
}

// checkAliasAssign flags req2.F = req1.F for the alias-forbidden fields
// across two different requests.
func (p *Package) checkAliasAssign(name string, as *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		lsel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !aliasFields[lsel.Sel.Name] || !isRequest(p, lsel.X) {
			continue
		}
		rsel, ok := as.Rhs[i].(*ast.SelectorExpr)
		if !ok || !aliasFields[rsel.Sel.Name] || !isRequest(p, rsel.X) {
			continue
		}
		if types.ExprString(lsel.X) == types.ExprString(rsel.X) {
			continue // wrapping req.OnComplete around itself is the sanctioned pattern
		}
		out = append(out, p.diag(name, "alias", as,
			"request %s aliased from another request; copy or wrap instead", lsel.Sel.Name))
	}
	return out
}

// isRequest reports whether e has type iopath.Request or *iopath.Request.
func isRequest(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	return t != nil && isNamed(t, iopathPkg, "Request")
}
