package analysis

// allocheck turns the runtime allocs/op ceiling (the CI hot-loop
// benchmark gate) into a merge-time check: starting from the
// HotPathFunctions roots it walks the call graph and flags every
// statically detectable heap allocation — capturing closures, interface
// boxing, map/slice literals and makes, growing appends, fmt calls — in
// any function the hot path can reach.
//
// Two deliberate blind spots keep the signal usable (DESIGN.md §15):
//
//   - subtrees of return statements and panic arguments are skipped as
//     cold error paths (building an *Errorf on the way out of a failed
//     request is not a per-op allocation in a correct run);
//   - a //mhavet:coldpath directive on a function declaration prunes
//     the walk at that function — for stages that are wired into the
//     pipeline (so the class-hierarchy edges reach them) but run at
//     file-creation or fault-recovery frequency, not per request.
//
// Escape analysis is out of scope: allocheck flags syntactic allocation
// forms, so a non-escaping &T{} the compiler would stack-allocate still
// needs an //mhavet:allow comment. On the hot path that conservatism is
// the point — the reviewer decides, with the justification in-tree.
import (
	"go/ast"
	"go/types"
)

// AllocSite is one statically detected heap allocation.
type AllocSite struct {
	Node ast.Node
	Rule string // "closure", "box", "literal", "append" or "fmt"
	Desc string
}

const allocheckName = "allocheck"

// AllocCheck builds the interprocedural allocation analyzer.
func AllocCheck() *Analyzer {
	return &Analyzer{
		Name: allocheckName,
		Doc:  "forbid heap allocations reachable from the HotPathFunctions roots",
		Run: func(p *Package) []Diagnostic {
			return p.Module.Graph().allocFindings()[p]
		},
	}
}

// allocFindings computes the module's allocation findings once, grouped
// by the package that owns each finding site (so allow comments resolve
// against the right file set).
func (g *CallGraph) allocFindings() map[*Package][]Diagnostic {
	if g.allocDiags != nil {
		return g.allocDiags
	}
	g.allocDiags = make(map[*Package][]Diagnostic)
	var roots []*FuncNode
	for _, key := range HotPathFunctions {
		if n := g.Lookup(key); n != nil {
			roots = append(roots, n)
		}
	}
	set, via := g.Reachable(roots)
	for _, node := range g.Functions() {
		if !set[node] || node.ColdPath {
			continue
		}
		sites := collectAllocSites(node)
		node.Summary.AllocSites = sites
		for _, s := range sites {
			d := node.Pkg.diag(allocheckName, s.Rule, s.Node,
				"%s on the hot path (%s)", s.Desc, Route(via, node))
			g.allocDiags[node.Pkg] = append(g.allocDiags[node.Pkg], d)
		}
	}
	return g.allocDiags
}

// collectAllocSites scans one function body for syntactic heap
// allocations, skipping return-statement and panic-argument subtrees.
func collectAllocSites(node *FuncNode) []AllocSite {
	p := node.Pkg
	body := node.Decl.Body
	presized := presizedSlices(p, body)
	var sites []AllocSite
	add := func(n ast.Node, rule, desc string) {
		sites = append(sites, AllocSite{Node: n, Rule: rule, Desc: desc})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ReturnStmt:
			return false // cold: value construction on the way out
		case *ast.FuncLit:
			if name, ok := capturesVariable(p, node.Decl, e); ok {
				add(e, "closure", "closure capturing "+name+" allocates")
			}
			return true // calls inside the closure still count
		case *ast.CompositeLit:
			switch p.typeOf(e).(type) {
			case *types.Map:
				add(e, "literal", "map literal allocates")
			case *types.Slice:
				add(e, "literal", "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := unparen(e.X).(*ast.CompositeLit); ok {
					add(e, "literal", "&composite literal allocates")
				}
			}
		case *ast.CallExpr:
			return inspectAllocCall(p, e, presized, add)
		}
		return true
	})
	return sites
}

// inspectAllocCall applies the call-site rules; its return value is the
// "descend into this subtree" answer for the walker.
func inspectAllocCall(p *Package, call *ast.CallExpr, presized map[*types.Var]bool,
	add func(ast.Node, string, string)) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // cold: argument built only on the failure path
			case "make":
				switch p.typeOf(call).(type) {
				case *types.Map:
					add(call, "literal", "make(map) allocates")
				case *types.Slice:
					add(call, "literal", "make(slice) allocates")
				case *types.Chan:
					add(call, "literal", "make(chan) allocates")
				}
				return true
			case "new":
				add(call, "literal", "new allocates")
				return true
			case "append":
				if v := growableAppendTarget(p, call, presized); v != nil {
					add(call, "append", "append to un-presized slice "+v.Name()+" may grow")
				}
				return true
			}
		}
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			flagBoxingAndFmt(p, call, fn, add)
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			flagBoxingAndFmt(p, call, fn, add)
		}
	}
	// Conversions that copy: []byte <-> string.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.typeOf(call), p.typeOf(call.Args[0])
		if isString(to) && isByteSlice(from) {
			add(call, "literal", "[]byte to string conversion allocates")
		} else if isByteSlice(to) && isString(from) {
			add(call, "literal", "string to []byte conversion allocates")
		}
	}
	return true
}

// flagBoxingAndFmt flags fmt-package calls and interface boxing of
// concrete, non-pointer-shaped arguments (including the implicit boxing
// of variadic ...any parameters).
func flagBoxingAndFmt(p *Package, call *ast.CallExpr, fn *types.Func,
	add func(ast.Node, string, string)) {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		add(call, "fmt", "fmt."+fn.Name()+" allocates")
		return // boxing into its ...any is subsumed by the fmt finding
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // a spread slice is passed as-is, no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
			continue // untyped nil and constants stay out of the heap
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		add(arg, "box", "boxing "+at.String()+" into "+pt.String()+" allocates")
	}
}

// presizedSlices records local slice variables whose appends reuse
// existing capacity rather than growing fresh storage: those initialized
// by a three-argument make (explicit capacity) and those re-sliced from
// another value (the queue := b.queue[:0] reuse idiom — the backing
// array belongs to a field that amortizes growth across calls).
func presizedSlices(p *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		target, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := p.objOf(target).(*types.Var)
		if !ok {
			return
		}
		switch r := unparen(rhs).(type) {
		case *ast.SliceExpr:
			out[v] = true
		case *ast.CallExpr:
			if len(r.Args) != 3 {
				return
			}
			id, ok := unparen(r.Fun).(*ast.Ident)
			if !ok {
				return
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i := range st.Lhs {
				if i < len(st.Rhs) {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range st.Names {
				if i < len(st.Values) {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// growableAppendTarget returns the local slice variable an append may
// grow, or nil when the append target is presized, a parameter, or a
// field/slice expression (assumed to reuse a caller-owned backing array,
// like the batcher's drained queue).
func growableAppendTarget(p *Package, call *ast.CallExpr, presized map[*types.Var]bool) *types.Var {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.objOf(id).(*types.Var)
	if !ok || v.IsField() || presized[v] {
		return nil
	}
	if fn := enclosingFuncFor(p, v); fn != nil && v.Pos() < fn.Decl.Body.Pos() {
		return nil // parameter or receiver: the caller owns the capacity
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil // package-level slice
	}
	return v
}

// enclosingFuncFor finds the graph node whose declaration contains the
// variable, if any.
func enclosingFuncFor(p *Package, v *types.Var) *FuncNode {
	g := p.Module.Graph()
	for _, node := range g.Functions() {
		if node.Pkg == p && node.Decl.Pos() <= v.Pos() && v.Pos() <= node.Decl.End() {
			return node
		}
	}
	return nil
}

// capturesVariable reports whether the function literal captures a
// variable of its enclosing function (the allocation that turns a static
// code pointer into a heap-allocated closure), naming the first one.
func capturesVariable(p *Package, enclosing *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing declaration but outside
		// the literal itself (package-level vars are accessed directly).
		if v.Pos() >= enclosing.Pos() && v.Pos() <= enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			name, found = v.Name(), true
		}
		return true
	})
	return name, found
}

// typeOf returns the expression's type, nil when untracked.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// objOf resolves an identifier to its object via Defs or Uses.
func (p *Package) objOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// pointerShaped reports whether values of the type fit in an interface's
// data word without allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
