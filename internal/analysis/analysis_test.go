package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureRoot is a self-contained module mirroring the shape of the real
// tree; every expected finding is marked in-place with a
// "//want:analyzer/rule" comment on its line.
const fixtureRoot = "testdata/src"

var wantRe = regexp.MustCompile(`//want:([a-z]+)/([a-z]+)`)

// wantFindings scans the fixture sources for want comments and returns
// the expected findings as "relpath:line analyzer/rule" keys.
func wantFindings(t *testing.T) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(fixtureRoot, path)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d %s/%s", rel, i+1, m[1], m[2])]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

// gotFindings runs the analyzers over the fixture module and returns the
// findings in the same key form.
func gotFindings(t *testing.T, analyzers []*Analyzer) map[string]int {
	t.Helper()
	mod, err := LoadModule(fixtureRoot)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	got := make(map[string]int)
	for _, d := range Run(mod, analyzers) {
		rel, err := filepath.Rel(mod.Root, d.Pos.Filename)
		if err != nil {
			t.Fatalf("finding outside fixture root: %v", d)
		}
		got[fmt.Sprintf("%s:%d %s/%s", rel, d.Pos.Line, d.Analyzer, d.Rule)]++
	}
	return got
}

// filterByAnalyzer keeps the want entries belonging to one analyzer.
func filterByAnalyzer(want map[string]int, name string) map[string]int {
	out := make(map[string]int)
	for k, n := range want {
		if strings.Contains(k, " "+name+"/") {
			out[k] = n
		}
	}
	return out
}

func diffFindings(t *testing.T, want, got map[string]int) {
	t.Helper()
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("missing finding: want %q x%d, got x%d", k, want[k], got[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected finding: %q", k)
		}
	}
}

// TestAnalyzers checks each analyzer in isolation against the want
// comments in the fixture tree, then the whole suite together.
func TestAnalyzers(t *testing.T) {
	want := wantFindings(t)
	if len(want) == 0 {
		t.Fatal("no want comments found in fixtures")
	}
	cases := []struct {
		name     string
		analyzer *Analyzer
	}{
		{"determinism", Determinism()},
		{"unitscheck", UnitsCheck()},
		{"extentcheck", ExtentCheck()},
		{"stagecheck", StageCheck()},
		{"poolcheck", PoolCheck()},
		{"concurrency", Concurrency()},
		{"allocheck", AllocCheck()},
		{"flowcheck", FlowCheck()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.analyzer.Name != tc.name {
				t.Fatalf("analyzer name %q, want %q", tc.analyzer.Name, tc.name)
			}
			diffFindings(t, filterByAnalyzer(want, tc.name), gotFindings(t, []*Analyzer{tc.analyzer}))
		})
	}
	t.Run("all", func(t *testing.T) {
		diffFindings(t, want, gotFindings(t, All()))
	})
}

// TestSelfCheck pins the repository's own cleanliness: the final tree must
// produce zero findings, and the packages the determinism contract names
// must actually exist so the scope tables cannot rot silently.
func TestSelfCheck(t *testing.T) {
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	if mod.Path != "mhafs" {
		t.Fatalf("module path %q, want mhafs", mod.Path)
	}
	byPath := make(map[string]bool, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		byPath[p.Path] = true
	}
	scopes := []struct {
		name string
		pkgs []string
	}{
		{"DeterministicPackages", DeterministicPackages},
		{"WallclockAllowedPackages", WallclockAllowedPackages},
		{"UnitsExemptPackages", UnitsExemptPackages},
		{"PooledRequestPackages", PooledRequestPackages},
		{"ConcurrencyAllowedPackages", ConcurrencyAllowedPackages},
	}
	for _, sc := range scopes {
		for _, pkg := range sc.pkgs {
			if !byPath[mod.Path+"/"+pkg] {
				t.Errorf("%s names %s, which is not in the module", sc.name, pkg)
			}
		}
	}
	// The function-scope tables must resolve against the real call graph,
	// so a rename or receiver change cannot silently un-root allocheck or
	// un-sink flowcheck.
	g := mod.Graph()
	for _, key := range HotPathFunctions {
		if g.Lookup(key) == nil {
			t.Errorf("HotPathFunctions names %s, which does not resolve to a function", key)
		}
	}
	for _, key := range EmissionSinkFunctions {
		if g.Lookup(key) == nil {
			t.Errorf("EmissionSinkFunctions names %s, which does not resolve to a function", key)
		}
	}
	for _, d := range Run(mod, All()) {
		t.Errorf("repository not clean: %s", d)
	}
}

// TestAllowMechanics exercises the comment grammar directly: multiple
// rules on one comment, the "all" wildcard, and same-line placement.
func TestAllowMechanics(t *testing.T) {
	mod, err := LoadModule(fixtureRoot)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	var sim *Package
	for _, p := range mod.Pkgs {
		if strings.HasSuffix(p.Path, "internal/sim") {
			sim = p
		}
	}
	if sim == nil {
		t.Fatal("fixture internal/sim not loaded")
	}
	if len(sim.allows) == 0 {
		t.Fatal("fixture internal/sim carries no allow comments")
	}
	// The allowedWall fixture has the comment one line above the call.
	found := false
	for _, byLine := range sim.allows {
		for _, rules := range byLine {
			if rules["wallclock"] {
				found = true
			}
		}
	}
	if !found {
		t.Error("allow comment for wallclock not collected")
	}
}

// TestDiagnosticString pins the gofmt-style rendering CI greps for.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Rule: "wallclock", Message: "no"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "a/b.go", 3, 7
	if got, want := d.String(), "a/b.go:3:7: determinism/wallclock: no"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
