package reorder

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testCluster(t *testing.T) *pfs.Cluster {
	t.Helper()
	cfg := pfs.DefaultConfig()
	cfg.HServers, cfg.SServers = 2, 2
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testEnv() layout.Env {
	e := layout.DefaultEnv()
	e.M, e.N = 2, 2
	return e
}

// mixedTrace: 16KB×8 and 256KB×2 interleaved over one file.
func mixedTrace(file string) trace.Trace {
	var tr trace.Trace
	off := int64(0)
	ts := 0.0
	for loop := 0; loop < 4; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{Rank: r, File: file, Op: trace.OpRead,
				Offset: off, Size: 16 * units.KB, Time: ts})
			off += 16 * units.KB
		}
		ts++
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{Rank: r, File: file, Op: trace.OpRead,
				Offset: off, Size: 256 * units.KB, Time: ts})
			off += 256 * units.KB
		}
		ts++
	}
	return tr
}

func TestRawReadWrite(t *testing.T) {
	c := testCluster(t)
	f, _ := c.Create("f", stripe.Layout{M: 2, N: 2, H: 16 * units.KB, S: 48 * units.KB})
	data := make([]byte, 500*units.KB)
	rand.New(rand.NewSource(1)).Read(data)
	RawWrite(c, f, 1000, data)
	if c.Eng.Now() != 0 || c.Eng.Pending() != 0 {
		t.Error("raw write consumed virtual time")
	}
	got := make([]byte, len(data))
	RawRead(c, f, 1000, got)
	if !bytes.Equal(got, data) {
		t.Fatal("raw round trip corrupted data")
	}
	if f.Size != 1000+int64(len(data)) {
		t.Errorf("Size = %d", f.Size)
	}
}

func TestRawCopy(t *testing.T) {
	c := testCluster(t)
	src, _ := c.CreateDefault("src")
	dst, _ := c.Create("dst", stripe.Layout{M: 2, N: 2, H: 0, S: 32 * units.KB})
	data := make([]byte, 5*units.MB+123) // exercises chunked copy
	rand.New(rand.NewSource(2)).Read(data)
	RawWrite(c, src, 0, data)
	if err := RawCopy(c, src, 0, dst, 4096, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	RawRead(c, dst, 4096, got)
	if !bytes.Equal(got, data) {
		t.Fatal("RawCopy corrupted data")
	}
	if err := RawCopy(c, src, -1, dst, 0, 10); err == nil {
		t.Error("negative src offset accepted")
	}
}

func planMHA(t *testing.T, tr trace.Trace) layout.Plan {
	t.Helper()
	pl, _ := layout.NewPlanner(layout.MHA)
	p, err := pl.Plan(tr, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyCreatesRegionsAndTables(t *testing.T) {
	c := testCluster(t)
	tr := mixedTrace("app.dat")
	plan := planMHA(t, tr)
	p, err := Apply(c, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.RST.Len() != len(plan.Regions) {
		t.Errorf("RST has %d entries, want %d", p.RST.Len(), len(plan.Regions))
	}
	for _, r := range plan.Regions {
		f, ok := c.Lookup(r.File)
		if !ok {
			t.Fatalf("region file %s not created", r.File)
		}
		if f.Layout != r.Layout {
			t.Errorf("region %s layout %v, want %v", r.File, f.Layout, r.Layout)
		}
		got, ok := p.RST.Get(r.File)
		if !ok || got != r.Layout {
			t.Errorf("RST entry for %s = %v,%v", r.File, got, ok)
		}
	}
	if p.DRT.Len() != len(plan.Mappings) {
		t.Errorf("DRT has %d mappings, want %d", p.DRT.Len(), len(plan.Mappings))
	}
}

func TestApplyIdempotentOnExistingRegions(t *testing.T) {
	c := testCluster(t)
	plan := planMHA(t, mixedTrace("app.dat"))
	p1, err := Apply(c, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1.Close()
	// Applying the same regions again (fresh tables) must succeed.
	p2, err := Apply(c, plan, Options{})
	if err != nil {
		t.Fatalf("re-apply failed: %v", err)
	}
	p2.Close()
}

func TestApplyRejectsConflictingLayout(t *testing.T) {
	c := testCluster(t)
	plan := planMHA(t, mixedTrace("app.dat"))
	// Pre-create one region with a different layout.
	c.Create(plan.Regions[0].File, stripe.Uniform(1, 1, 4*units.KB))
	if _, err := Apply(c, plan, Options{}); err == nil {
		t.Error("conflicting region layout accepted")
	}
}

func TestApplyRejectsInvalidPlan(t *testing.T) {
	c := testCluster(t)
	bad := layout.Plan{Regions: []layout.RegionPlan{{File: ""}}}
	if _, err := Apply(c, bad, Options{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestApplyMigratesData(t *testing.T) {
	c := testCluster(t)
	// Populate the original file with known data.
	orig, _ := c.CreateDefault("app.dat")
	tr := mixedTrace("app.dat")
	span := int64(0)
	for _, r := range tr {
		if r.End() > span {
			span = r.End()
		}
	}
	data := make([]byte, span)
	rand.New(rand.NewSource(3)).Read(data)
	RawWrite(c, orig, 0, data)

	plan := planMHA(t, tr)
	p, err := Apply(c, plan, Options{Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Every mapping's bytes must now be present in its region.
	for _, m := range plan.Mappings {
		rf, ok := c.Lookup(m.RFile)
		if !ok {
			t.Fatalf("region %s missing", m.RFile)
		}
		got := make([]byte, m.Length)
		RawRead(c, rf, m.ROffset, got)
		want := data[m.OOffset:m.OEnd()]
		if !bytes.Equal(got, want) {
			t.Fatalf("migrated bytes differ for mapping %+v", m)
		}
	}
}

func TestApplyPersistsTables(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t)
	plan := planMHA(t, mixedTrace("app.dat"))
	opts := Options{
		DRTPath: filepath.Join(dir, "drt.db"),
		RSTPath: filepath.Join(dir, "rst.db"),
	}
	p, err := Apply(c, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantDRT, wantRST := p.DRT.Len(), p.RST.Len()
	p.Close()

	drt, err := region.OpenDRT(opts.DRTPath)
	if err != nil {
		t.Fatal(err)
	}
	defer drt.Close()
	if drt.Len() != wantDRT {
		t.Errorf("reloaded DRT has %d entries, want %d", drt.Len(), wantDRT)
	}
	rst, err := region.OpenRST(opts.RSTPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	if rst.Len() != wantRST {
		t.Errorf("reloaded RST has %d entries, want %d", rst.Len(), wantRST)
	}
}

func TestRedirector(t *testing.T) {
	drt, _ := region.OpenDRT("")
	defer drt.Close()
	drt.Add(region.Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 100, Length: 50})
	r := NewRedirector(drt, 5e-6)
	ts := r.Resolve("f", 10, 20)
	if len(ts) != 1 || ts[0].File != "r0" || ts[0].Offset != 110 || ts[0].Size != 20 {
		t.Errorf("Resolve = %+v", ts)
	}
	if r.Lookups() != 1 {
		t.Errorf("Lookups = %d", r.Lookups())
	}
}

func TestRedirectorPanics(t *testing.T) {
	drt, _ := region.OpenDRT("")
	defer drt.Close()
	for name, fn := range map[string]func(){
		"nil drt":         func() { NewRedirector(nil, 0) },
		"negative lookup": func() { NewRedirector(drt, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
