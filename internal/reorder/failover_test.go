package reorder

import (
	"testing"

	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
)

func failoverCluster(t *testing.T) *pfs.Cluster {
	t.Helper()
	cfg := pfs.DefaultConfig() // 6 HServers, 2 SServers
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDropServer(t *testing.T) {
	l := stripe.Layout{M: 6, N: 2, H: 4096, S: 8192}
	if got, ok := l.DropServer(stripe.ClassS); !ok || got != (stripe.Layout{M: 6, N: 1, H: 4096, S: 8192}) {
		t.Errorf("drop S from %v = %v, %v", l, got, ok)
	}
	if got, ok := l.DropServer(stripe.ClassH); !ok || got.M != 5 {
		t.Errorf("drop H from %v = %v, %v", l, got, ok)
	}
	// Last data-bearing server of its class cannot be dropped.
	only := stripe.Layout{N: 1, S: 4096}
	if _, ok := only.DropServer(stripe.ClassS); ok {
		t.Error("dropped the only SServer of an SSD-only layout")
	}
	if _, ok := only.DropServer(stripe.ClassH); ok {
		t.Error("dropped from an empty class")
	}
	// Dropping the only data-bearing class leaves a storeless layout.
	hZero := stripe.Layout{M: 1, N: 1, H: 0, S: 4096}
	if _, ok := hZero.DropServer(stripe.ClassS); ok {
		t.Error("drop left a layout that stores no data")
	}
	if got, ok := hZero.DropServer(stripe.ClassH); !ok || got != (stripe.Layout{N: 1, S: 4096}) {
		t.Errorf("drop zero-stripe H = %v, %v", got, ok)
	}
}

// TestRemapAvoidsDownServer: the fallback file's layout and rotation keep
// every sub-request off the down server, for each physical SServer.
func TestRemapAvoidsDownServer(t *testing.T) {
	for downPhys := 0; downPhys < 2; downPhys++ {
		c := failoverCluster(t)
		f, err := c.Create("f", stripe.Layout{M: 6, N: 2, H: 64 << 10, S: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		fo, err := NewFailover(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer fo.Close()
		downName := c.ServerFor(stripe.ServerRef{Class: stripe.ClassS, Index: downPhys}).Name
		const n = 4 << 20
		fb, err := fo.Remap(f, 0, n, downName, stripe.ClassS, downPhys)
		if err != nil {
			t.Fatal(err)
		}
		if fb == nil {
			t.Fatal("remap refused although survivors exist")
		}
		if want := "f.fb." + downName; fb.Name != want {
			t.Errorf("fallback name %q, want %q", fb.Name, want)
		}
		if fb.Layout.N != 1 || fb.Layout.M != 6 {
			t.Errorf("fallback layout %v, want one SServer dropped", fb.Layout)
		}
		for _, ref := range fb.Layout.Servers() {
			if srv := c.ServerForFile(fb, ref); srv.Name == downName {
				t.Errorf("fallback %v still maps %v onto the down server %s", fb.Layout, ref, downName)
			}
		}
	}
}

// TestRemapTranslateRoundTrip: a remapped extent translates to the
// fallback file with mirrored offsets; writes land there and read back.
func TestRemapTranslateRoundTrip(t *testing.T) {
	c := failoverCluster(t)
	f, err := c.CreateDefault("f")
	if err != nil {
		t.Fatal(err)
	}
	rst, err := region.OpenRST("")
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	fo, err := NewFailover(c, rst)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	const off, n = 1 << 20, 2 << 20
	fb, err := fo.Remap(f, off, n, "s0", stripe.ClassS, 0)
	if err != nil || fb == nil {
		t.Fatalf("remap: fb=%v err=%v", fb, err)
	}
	// The RST records the degraded layout under the fallback name.
	if l, ok := rst.Get(fb.Name); !ok || l != fb.Layout {
		t.Errorf("RST entry = %v, %v; want %v", l, ok, fb.Layout)
	}

	tgs := fo.Translate("f", 0, off+n)
	if len(tgs) != 2 {
		t.Fatalf("targets = %+v, want identity head + mapped tail", tgs)
	}
	if tgs[0].Mapped || tgs[0].Size != off {
		t.Errorf("head %+v, want unmapped %d bytes", tgs[0], off)
	}
	tl := tgs[1]
	if !tl.Mapped || tl.File != fb.Name || tl.Offset != off || tl.Size != n {
		t.Errorf("tail %+v, want %s@%d+%d", tl, fb.Name, off, n)
	}

	// Bytes written at the translated location read back through the same
	// translation (the resilience stage does exactly this).
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	RawWrite(c, fb, off, payload)
	got := make([]byte, len(payload))
	RawRead(c, fb, off, got)
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], payload[i])
		}
	}

	// A second remap of a disjoint extent reuses the fallback file.
	if fb2, err := fo.Remap(f, off+n, 4096, "s0", stripe.ClassS, 0); err != nil || fb2 != fb {
		t.Errorf("second remap: fb2=%v err=%v, want the same file", fb2, err)
	}
}

// TestRemapSingleClassFallsBackToOtherClass: an SSD-only layout degraded
// around its only SServer class member moves to the HServers.
func TestRemapCrossClassFallback(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.SServers = 1
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("f", stripe.Layout{N: 1, S: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := NewFailover(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()
	fb, err := fo.Remap(f, 0, 1<<20, "s0", stripe.ClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fb == nil {
		t.Fatal("remap refused although HServers survive")
	}
	if fb.Layout.N != 0 || fb.Layout.M != cfg.HServers {
		t.Errorf("fallback layout %v, want HServer-only", fb.Layout)
	}
}

// TestRemapImpossible: a cluster whose only data-bearing class is down
// has nowhere to fail over to.
func TestRemapImpossible(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.HServers, cfg.SServers = 0, 1
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("f", stripe.Layout{N: 1, S: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := NewFailover(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()
	fb, err := fo.Remap(f, 0, 4096, "s0", stripe.ClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fb != nil {
		t.Errorf("remap produced %v on a cluster with no survivors", fb.Name)
	}
}
