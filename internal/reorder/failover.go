// Degraded-mode failover: when a server is down, remap the extents it
// holds onto the survivors via a fallback region file, reusing the same
// DRT/RST machinery the redirection phase runs on. MHA thereby degrades
// toward a HARL/DEF-shaped layout instead of hanging on the outage.
package reorder

import (
	"fmt"

	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
)

// Failover owns the degraded-mode translation tables. It is layered
// exactly like a Placement — a DRT mapping original extents into fallback
// files, an optional RST recording the fallback layouts — but is built
// incrementally at run time, one remapped extent at a time, as outages
// are encountered.
type Failover struct {
	cluster *pfs.Cluster
	table   *region.DRT
	rst     *region.RST
}

// NewFailover builds an empty failover layer over the cluster. rst, when
// non-nil, receives a layout entry for every fallback file created (the
// resilience stage passes the placement's RST so degraded layouts are
// visible next to the optimized ones).
func NewFailover(c *pfs.Cluster, rst *region.RST) (*Failover, error) {
	drt, err := region.OpenDRT("")
	if err != nil {
		return nil, err
	}
	return &Failover{cluster: c, table: drt, rst: rst}, nil
}

// Translate resolves an extent through the failover table: pieces already
// remapped by an earlier outage point at their fallback file, the rest
// pass through unmapped.
func (fo *Failover) Translate(file string, off, n int64) []region.Target {
	return fo.table.Translate(file, off, n)
}

// HasMapping reports whether any extent of the file has been remapped. It
// is the allocation-free gate per-request callers check before paying for
// Translate.
func (fo *Failover) HasMapping(file string) bool {
	return fo.table.HasFile(file)
}

// Table exposes the failover DRT (read-mostly; tests inspect it).
func (fo *Failover) Table() *region.DRT { return fo.table }

// fallbackName derives the deterministic fallback file name for an
// original file degraded around one down server.
func fallbackName(file, downServer string) string {
	return file + ".fb." + downServer
}

// fallbackLayout picks the degraded layout that avoids one down server:
// the original layout minus one server of the down class when possible,
// otherwise a uniform layout over the healthy class only. ok is false
// when no data-bearing layout avoids the class (single-server cluster).
func (fo *Failover) fallbackLayout(l stripe.Layout, downClass stripe.Class) (stripe.Layout, bool) {
	if dropped, ok := l.DropServer(downClass); ok {
		return dropped, true
	}
	cfg := fo.cluster.Config()
	if downClass == stripe.ClassS && cfg.HServers > 0 {
		return stripe.Layout{M: cfg.HServers, H: cfg.DefaultStripe}, true
	}
	if downClass == stripe.ClassH && cfg.SServers > 0 {
		return stripe.Layout{N: cfg.SServers, S: cfg.DefaultStripe}, true
	}
	return stripe.Layout{}, false
}

// Remap installs (or reuses) a fallback file that avoids the down server
// and records the extent [off, off+n) of f as living there, mirroring
// offsets 1:1. The fallback layout is one server of the down class short,
// rotated to (downPhys+1) mod class-size so its logical indices cover
// every physical server of the class except the down one.
//
// Remap returns nil, nil when no layout can avoid the down server — the
// caller must then wait for recovery instead of failing over. Callers
// Translate first and remap only unmapped pieces, so the DRT's overlap
// rejection never trips for a given down server.
func (fo *Failover) Remap(f *pfs.File, off, n int64, downName string, downClass stripe.Class, downPhys int) (*pfs.File, error) {
	fb, err := fo.Fallback(f, downName, downClass, downPhys)
	if fb == nil || err != nil {
		return nil, err
	}
	if err := fo.Map(f.Name, fb.Name, off, n); err != nil {
		return nil, err
	}
	return fb, nil
}

// Fallback resolves (or creates) the fallback file that avoids one server
// of f's layout, without recording any extent mapping. It is the first
// half of Remap, split out for callers whose relocation is provisional —
// the adaptive scheduler's speculative duplicate writes into the fallback
// first and publishes the mapping with Map only if the duplicate wins the
// race. Fallback returns nil, nil when no layout avoids the server.
func (fo *Failover) Fallback(f *pfs.File, downName string, downClass stripe.Class, downPhys int) (*pfs.File, error) {
	l, ok := fo.fallbackLayout(f.Layout, downClass)
	if !ok {
		return nil, nil
	}
	name := fallbackName(f.Name, downName)
	fb, found := fo.cluster.Lookup(name)
	if !found {
		count := fo.cluster.Config().HServers
		if downClass == stripe.ClassS {
			count = fo.cluster.Config().SServers
		}
		rotation := 0
		if cls := classCount(l, downClass); cls > 0 {
			// The degraded layout still uses the down class: rotate past the
			// down physical index so indices 0..cls-1 land on the survivors.
			rotation = (downPhys + 1) % count
		}
		var err error
		fb, err = fo.cluster.CreateWithRotation(name, l, rotation)
		if err != nil {
			return nil, fmt.Errorf("reorder: failover create %s: %w", name, err)
		}
		if fo.rst != nil {
			if err := fo.rst.Set(name, l); err != nil {
				return nil, err
			}
		}
	} else if fb.Layout != l {
		return nil, fmt.Errorf("reorder: fallback %s exists with layout %v, want %v", name, fb.Layout, l)
	}
	return fb, nil
}

// Map records the extent [off, off+n) of the original file as living in
// the fallback file, mirroring offsets 1:1 — the second half of Remap.
// The extent must not overlap an existing mapping of the file.
func (fo *Failover) Map(oFile, fbFile string, off, n int64) error {
	return fo.table.Add(region.Mapping{
		OFile: oFile, OOffset: off,
		RFile: fbFile, ROffset: off,
		Length: n,
	})
}

// classCount returns the layout's server count for the class.
func classCount(l stripe.Layout, c stripe.Class) int {
	if c == stripe.ClassH {
		return l.M
	}
	return l.N
}

// Close releases the failover table.
func (fo *Failover) Close() error { return fo.table.Close() }
