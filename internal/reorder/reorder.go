// Package reorder implements the placement and redirection phases of MHA:
// applying a layout plan to a cluster (creating region files, populating
// the DRT and RST, migrating data) and translating run-time requests to
// their reordered locations.
//
// Placement and migration run offline, between application runs, exactly
// as in the paper — the data movement is therefore performed directly on
// the server byte stores without consuming virtual time.
package reorder

import (
	"fmt"

	"mhafs/internal/layout"
	"mhafs/internal/pfs"
	"mhafs/internal/region"
	"mhafs/internal/telemetry"
	"mhafs/internal/units"
)

// Options configures Apply.
type Options struct {
	// DRTPath / RSTPath persist the tables; empty keeps them in memory.
	DRTPath string
	RSTPath string
	// Migrate copies data of mapped extents from the original files into
	// the region files (required before read workloads; writes re-create
	// the data anyway).
	Migrate bool

	// Via, when non-nil, is the previous generation's DRT: migrated bytes
	// are read from wherever that table says they currently live (the old
	// regions), not from the original file. Used by dynamic
	// re-optimization.
	Via *region.DRT
}

// Placement is the applied state of a plan: its tables plus the cluster
// it was applied to.
type Placement struct {
	DRT  *region.DRT
	RST  *region.RST
	Plan layout.Plan

	// Created lists the region files this placement's Apply newly created
	// on the cluster (regions adopted from an earlier identical layout are
	// not repeated here). Garbage collection uses it to know exactly which
	// files a retired generation left behind.
	Created []string

	cluster *pfs.Cluster
}

// RegionFiles returns the names of every region file the placement's plan
// references (created or adopted), in plan order.
func (p *Placement) RegionFiles() []string {
	out := make([]string, 0, len(p.Plan.Regions))
	for _, r := range p.Plan.Regions {
		out = append(out, r.File)
	}
	return out
}

// Apply materializes a plan: creates every region file with its optimized
// layout, fills the DRT with the plan's mappings and the RST with the
// region layouts, and optionally migrates existing data.
func Apply(c *pfs.Cluster, plan layout.Plan, opts Options) (*Placement, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	drt, err := region.OpenDRT(opts.DRTPath)
	if err != nil {
		return nil, err
	}
	rst, err := region.OpenRST(opts.RSTPath)
	if err != nil {
		drt.Close()
		return nil, err
	}
	p := &Placement{DRT: drt, RST: rst, Plan: plan, cluster: c}

	for _, r := range plan.Regions {
		if existing, ok := c.Lookup(r.File); ok {
			if existing.Layout != r.Layout {
				return nil, fmt.Errorf("reorder: region %s exists with layout %v, plan wants %v",
					r.File, existing.Layout, r.Layout)
			}
		} else if _, err := c.Create(r.File, r.Layout); err != nil {
			return nil, fmt.Errorf("reorder: create region %s: %w", r.File, err)
		} else {
			p.Created = append(p.Created, r.File)
		}
		if err := rst.Set(r.File, r.Layout); err != nil {
			return nil, err
		}
	}
	for _, m := range plan.Mappings {
		if err := drt.Add(m); err != nil {
			return nil, err
		}
	}
	if opts.Migrate {
		if err := p.migrate(opts.Via); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// migrate copies every mapped extent into its region, directly on the
// byte stores (offline, no virtual time). Sources are the original files,
// or — when re-optimizing — wherever the previous DRT locates the bytes.
func (p *Placement) migrate(via *region.DRT) error {
	for _, m := range p.Plan.Mappings {
		dst, ok := p.cluster.Lookup(m.RFile)
		if !ok {
			return fmt.Errorf("reorder: migrate: region %s missing", m.RFile)
		}
		if via != nil {
			if err := copyVia(p.cluster, via, m, dst); err != nil {
				return err
			}
			continue
		}
		src, ok := p.cluster.Lookup(m.OFile)
		if !ok || src.Size == 0 || m.RFile == m.OFile {
			continue // nothing to move
		}
		n := m.Length
		if m.OOffset >= src.Size {
			continue
		}
		if m.OOffset+n > src.Size {
			n = src.Size - m.OOffset
		}
		if err := RawCopy(p.cluster, src, m.OOffset, dst, m.ROffset, n); err != nil {
			return err
		}
	}
	return nil
}

// copyVia migrates one mapping's bytes from their current locations (as
// recorded by the previous generation's DRT) into the new region.
func copyVia(c *pfs.Cluster, via *region.DRT, m region.Mapping, dst *pfs.File) error {
	var cursor int64
	for _, tg := range via.Translate(m.OFile, m.OOffset, m.Length) {
		src, ok := c.Lookup(tg.File)
		if !ok {
			// The bytes were never materialized anywhere; skip the piece.
			cursor += tg.Size
			continue
		}
		if err := RawCopy(c, src, tg.Offset, dst, m.ROffset+cursor, tg.Size); err != nil {
			return err
		}
		cursor += tg.Size
	}
	return nil
}

// rawCopyChunk bounds migration buffer memory.
const rawCopyChunk = 4 * units.MB

// RawCopy copies n bytes between two files of the cluster using layout
// math directly on the server byte stores — an offline, zero-virtual-time
// data movement.
func RawCopy(c *pfs.Cluster, src *pfs.File, srcOff int64, dst *pfs.File, dstOff, n int64) error {
	if n < 0 || srcOff < 0 || dstOff < 0 {
		return fmt.Errorf("reorder: invalid copy extent (src %d, dst %d, n %d)", srcOff, dstOff, n)
	}
	buf := make([]byte, rawCopyChunk)
	for n > 0 {
		chunk := n
		if chunk > rawCopyChunk {
			chunk = rawCopyChunk
		}
		b := buf[:chunk]
		RawRead(c, src, srcOff, b)
		RawWrite(c, dst, dstOff, b)
		srcOff += chunk
		dstOff += chunk
		n -= chunk
	}
	return nil
}

// RawRead fills buf from the file without consuming virtual time.
func RawRead(c *pfs.Cluster, f *pfs.File, off int64, buf []byte) {
	for _, seg := range f.Layout.Segments(off, int64(len(buf))) {
		srv := c.ServerForFile(f, seg.Server)
		srv.Object(f.Name).ReadAt(buf[seg.Global-off:seg.Global-off+seg.Size], seg.Local)
	}
}

// RawWrite stores buf into the file without consuming virtual time,
// updating the file size.
func RawWrite(c *pfs.Cluster, f *pfs.File, off int64, buf []byte) {
	n := int64(len(buf))
	for _, seg := range f.Layout.Segments(off, n) {
		srv := c.ServerForFile(f, seg.Server)
		srv.Object(f.Name).WriteAt(buf[seg.Global-off:seg.Global-off+seg.Size], seg.Local)
	}
	if off+n > f.Size {
		f.Size = off + n
	}
}

// Close releases the placement's tables.
func (p *Placement) Close() error {
	err1 := p.DRT.Close()
	err2 := p.RST.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Redirector is the run-time component that forwards user requests to
// their reordered locations via the DRT (the paper's redirection phase).
type Redirector struct {
	drt *region.DRT

	// LookupTime is the client-side cost of one DRT consultation in
	// seconds; the middleware charges it per request (Fig. 14 measures
	// exactly this overhead).
	LookupTime float64

	lookups uint64
	tel     *redirectorMetrics
}

// Telemetry series emitted by the redirection phase. A lookup is a hit
// when any piece of the extent was translated into a region file, a miss
// when the whole extent passed through unmapped; mapped/identity bytes
// break the same split down by volume.
const (
	MetricDRTLookups       = "drt_lookups_total"
	MetricDRTHits          = "drt_redirect_hits_total"
	MetricDRTMisses        = "drt_redirect_misses_total"
	MetricDRTMappedBytes   = "drt_mapped_bytes_total"
	MetricDRTIdentityBytes = "drt_identity_bytes_total"
	MetricDRTTargets       = "drt_targets_per_lookup"
)

// redirectorMetrics caches the redirector's series handles.
type redirectorMetrics struct {
	lookups       *telemetry.Counter
	hits, misses  *telemetry.Counter
	mappedBytes   *telemetry.Counter
	identityBytes *telemetry.Counter
	targets       *telemetry.Histogram
}

// SetTelemetry installs (or, with nil, removes) a registry the redirector
// emits DRT lookup observations into.
func (r *Redirector) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		r.tel = nil
		return
	}
	r.tel = &redirectorMetrics{
		lookups:       reg.Counter(MetricDRTLookups),
		hits:          reg.Counter(MetricDRTHits),
		misses:        reg.Counter(MetricDRTMisses),
		mappedBytes:   reg.Counter(MetricDRTMappedBytes),
		identityBytes: reg.Counter(MetricDRTIdentityBytes),
		targets:       reg.Histogram(MetricDRTTargets, telemetry.FanoutBuckets()),
	}
}

// NewRedirector wraps a DRT. lookupTime may be 0 (free redirection). The
// panics below are backstops for programmer errors: every config path
// (bench.Config.Validate, config.Apply) validates the lookup cost before
// it reaches this constructor.
func NewRedirector(drt *region.DRT, lookupTime float64) *Redirector {
	if drt == nil {
		panic("reorder: nil DRT")
	}
	if lookupTime < 0 {
		panic("reorder: negative lookup time")
	}
	return &Redirector{drt: drt, LookupTime: lookupTime}
}

// Resolve translates the extent to its current locations.
func (r *Redirector) Resolve(file string, off, n int64) []region.Target {
	r.lookups++
	targets := r.drt.Translate(file, off, n)
	if tel := r.tel; tel != nil {
		tel.lookups.Inc()
		tel.targets.Observe(float64(len(targets)))
		hit := false
		for _, tg := range targets {
			if tg.Mapped {
				hit = true
				tel.mappedBytes.Add(float64(tg.Size))
			} else {
				tel.identityBytes.Add(float64(tg.Size))
			}
		}
		if hit {
			tel.hits.Inc()
		} else {
			tel.misses.Inc()
		}
	}
	return targets
}

// Lookups returns the number of Resolve calls served.
func (r *Redirector) Lookups() uint64 { return r.lookups }

// Resume wraps already-opened (reloaded) tables as a placement, for
// recovery flows that re-attach persisted DRT/RST state to a fresh
// cluster. The plan field is empty — the regions exist on the cluster and
// in the RST.
func Resume(c *pfs.Cluster, drt *region.DRT, rst *region.RST) *Placement {
	return &Placement{DRT: drt, RST: rst, cluster: c}
}
