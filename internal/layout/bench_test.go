package layout

import (
	"testing"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func BenchmarkRSSD(b *testing.B) {
	env := DefaultEnv()
	reqs := []Req{
		{Op: trace.OpRead, Size: 128 * units.KB, Conc: 32, Weight: 100},
		{Op: trace.OpWrite, Size: 256 * units.KB, Conc: 32, Weight: 100},
		{Op: trace.OpRead, Size: 16 * units.KB, Conc: 8, Weight: 100},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RSSD(reqs, env)
	}
}

func BenchmarkMHAPlan(b *testing.B) {
	env := DefaultEnv()
	var tr trace.Trace
	off := int64(0)
	for loop := 0; loop < 16; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 16 * units.KB, Time: float64(loop)})
			off += 16 * units.KB
		}
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 256 * units.KB, Time: float64(loop) + 0.5})
			off += 256 * units.KB
		}
	}
	planner, _ := NewPlanner(MHA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(tr, env); err != nil {
			b.Fatal(err)
		}
	}
}
