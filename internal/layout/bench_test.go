package layout

import (
	"fmt"
	"runtime"
	"testing"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func BenchmarkRSSD(b *testing.B) {
	env := DefaultEnv()
	reqs := []Req{
		{Op: trace.OpRead, Size: 128 * units.KB, Conc: 32, Weight: 100},
		{Op: trace.OpWrite, Size: 256 * units.KB, Conc: 32, Weight: 100},
		{Op: trace.OpRead, Size: 16 * units.KB, Conc: 8, Weight: 100},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RSSD(reqs, env)
	}
}

func BenchmarkMHAPlan(b *testing.B) {
	env := DefaultEnv()
	var tr trace.Trace
	off := int64(0)
	for loop := 0; loop < 16; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 16 * units.KB, Time: float64(loop)})
			off += 16 * units.KB
		}
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 256 * units.KB, Time: float64(loop) + 0.5})
			off += 256 * units.KB
		}
	}
	planner, _ := NewPlanner(MHA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(tr, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSSDLANL measures the pruned search on the LANL App2 mix
// (Fig. 3: 16 B bookkeeping writes interleaved with ~128 KB data writes
// at concurrency 8), reporting the share of candidates the lower-bound
// prune abandons early.
func BenchmarkRSSDLANL(b *testing.B) {
	env := DefaultEnv()
	reqs := lanlReqs()
	b.ReportAllocs()
	var res RSSDResult
	for i := 0; i < b.N; i++ {
		res = RSSD(reqs, env)
	}
	b.ReportMetric(float64(res.Tried), "visited")
	b.ReportMetric(float64(res.Pruned), "pruned")
}

// xlConcReqs models one XL-tier region's aggregated request classes: rank
// counts far above the paper's 8-process apps. At these concurrencies the
// kernel's phase-period collapse dominates — packed strides are round
// multiples for many candidates, reducing 512 per-request walks to one.
func xlConcReqs() []Req {
	var reqs []Req
	for i := 0; i < 16; i++ {
		size := int64(16*units.KB) << uint(i%4)
		reqs = append(reqs,
			Req{Op: trace.OpWrite, Size: size, Conc: 512, Weight: 64},
			Req{Op: trace.OpRead, Size: size + 52, Conc: 256, Weight: 64})
	}
	return reqs
}

// BenchmarkRSSDXLConc measures the incremental kernel on the XL-tier mix;
// BenchmarkRSSDXLConcNaive is the same search with the pre-kernel
// per-request cost walk (naiveRSSD, the equivalence-test reference), kept
// so the speedup stays measurable in one run.
func BenchmarkRSSDXLConc(b *testing.B) {
	env := DefaultEnv()
	reqs := xlConcReqs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RSSD(reqs, env)
	}
}

func BenchmarkRSSDXLConcNaive(b *testing.B) {
	env := DefaultEnv()
	reqs := xlConcReqs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		naiveRSSD(reqs, env)
	}
}

// BenchmarkHARLPlanWorkers sweeps the planner fan-out: HARL runs one RSSD
// search per region, so the speedup over workers=1 tracks GOMAXPROCS on
// multi-core runners (the plan itself is bit-identical at every count).
func BenchmarkHARLPlanWorkers(b *testing.B) {
	var tr trace.Trace
	off := int64(0)
	// 16 regions' worth of the mixed 16 KB / 256 KB pattern.
	for loop := 0; loop < 64; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 16 * units.KB, Time: float64(loop)})
			off += 16 * units.KB
		}
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{Rank: r, File: "f", Op: trace.OpRead,
				Offset: off, Size: 256 * units.KB, Time: float64(loop) + 0.5})
			off += 256 * units.KB
		}
	}
	planner, _ := NewPlanner(HARL)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			env := DefaultEnv()
			env.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(tr, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
