package layout

import (
	"math"
	"testing"
	"testing/quick"

	"mhafs/internal/costmodel"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func testEnv() Env {
	e := DefaultEnv()
	e.M, e.N = 2, 2
	return e
}

func TestAggregateReqs(t *testing.T) {
	reqs := []Req{
		{Op: trace.OpRead, Size: 64, Conc: 4},
		{Op: trace.OpRead, Size: 64, Conc: 4},
		{Op: trace.OpRead, Size: 64, Conc: 4, Weight: 3},
		{Op: trace.OpWrite, Size: 64, Conc: 4},
		{Op: trace.OpRead, Size: 128, Conc: 4},
		{Op: trace.OpRead, Size: 64, Conc: 2},
	}
	agg := AggregateReqs(reqs)
	if len(agg) != 4 {
		t.Fatalf("aggregated to %d entries: %+v", len(agg), agg)
	}
	if agg[0].Weight != 5 {
		t.Errorf("first entry weight = %d, want 5", agg[0].Weight)
	}
	var total int
	for _, r := range agg {
		total += r.Weight
	}
	if total != 8 {
		t.Errorf("total weight = %d, want 8", total)
	}
}

func TestRSSDEmptyFallsBackToDefault(t *testing.T) {
	env := testEnv()
	res := RSSD(nil, env)
	if res.Layout != stripe.Uniform(2, 2, env.DefaultStripe) {
		t.Errorf("empty RSSD layout = %v", res.Layout)
	}
}

func TestRSSDStripesRespectHeterogeneity(t *testing.T) {
	env := testEnv()
	// Large uniform requests: the optimal pair must give SServers larger
	// stripes than HServers (SSDs are faster).
	reqs := []Req{{Op: trace.OpRead, Size: 1 * units.MB, Conc: 1, Weight: 10}}
	res := RSSD(reqs, env)
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("invalid layout: %v", err)
	}
	if !(res.Layout.S > res.Layout.H) {
		t.Errorf("SServer stripe %d should exceed HServer stripe %d", res.Layout.S, res.Layout.H)
	}
	if res.Tried == 0 {
		t.Error("no candidates evaluated")
	}
}

func TestRSSDSmallRequestsPreferSSD(t *testing.T) {
	env := testEnv()
	// Tiny requests: HDD startup dominates; expect h = 0 (SServer-only),
	// the degenerate placement Algorithm 2 explicitly allows.
	reqs := []Req{{Op: trace.OpRead, Size: 4 * units.KB, Conc: 1, Weight: 100}}
	res := RSSD(reqs, env)
	if res.Layout.H != 0 {
		t.Errorf("tiny requests should land on SServers only; got %v", res.Layout)
	}
}

func TestRSSDBeatsDefaultLayout(t *testing.T) {
	env := testEnv()
	reqs := []Req{
		{Op: trace.OpRead, Size: 128 * units.KB, Conc: 4, Weight: 50},
		{Op: trace.OpRead, Size: 256 * units.KB, Conc: 4, Weight: 50},
	}
	res := RSSD(reqs, env)
	defCost := 0.0
	defLayout := stripe.Uniform(env.M, env.N, env.DefaultStripe)
	for _, r := range AggregateReqs(reqs) {
		defCost += costmodel.RequestCost(env.Params, defLayout, r.Op, 0, r.Size, 0, r.Conc) * float64(r.Weight)
	}
	if !(res.Cost < defCost) {
		t.Errorf("RSSD cost %v should beat DEF cost %v", res.Cost, defCost)
	}
}

func TestRSSDAdaptiveBounds(t *testing.T) {
	env := testEnv()
	// r_max >= (M+N)*64KB triggers the divided bounds; the chosen stripes
	// must respect them.
	big := int64(env.M+env.N) * 64 * units.KB * 2 // 512KB
	res := RSSD([]Req{{Op: trace.OpRead, Size: big, Conc: 1}}, env)
	if res.Layout.H > big/int64(env.M) {
		t.Errorf("H=%d exceeds bound %d", res.Layout.H, big/int64(env.M))
	}
	if res.Layout.S > big/int64(env.N) {
		t.Errorf("S=%d exceeds bound %d", res.Layout.S, big/int64(env.N))
	}
}

func TestRSSDSubStepRequests(t *testing.T) {
	env := testEnv()
	// 16-byte requests (LANL's small record): bounds are below one step;
	// the guard must still produce a valid candidate.
	res := RSSD([]Req{{Op: trace.OpWrite, Size: 16, Conc: 8, Weight: 10}}, env)
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("invalid layout for sub-step requests: %v", err)
	}
	if res.Layout.H != 0 || res.Layout.S != env.Step {
		t.Errorf("expected <0, step> for 16-byte requests, got %v", res.Layout)
	}
}

func TestRSSDWriteAwareness(t *testing.T) {
	env := testEnv()
	// SSD writes are slower than reads; the write-optimal SServer stripe
	// must not exceed the read-optimal one (reads shift more to SSDs).
	read := RSSD([]Req{{Op: trace.OpRead, Size: 512 * units.KB, Conc: 1, Weight: 10}}, env)
	write := RSSD([]Req{{Op: trace.OpWrite, Size: 512 * units.KB, Conc: 1, Weight: 10}}, env)
	rRatio := float64(read.Layout.S) / float64(read.Layout.S+read.Layout.H)
	wRatio := float64(write.Layout.S) / float64(write.Layout.S+write.Layout.H)
	if wRatio > rRatio+1e-9 {
		t.Errorf("write plan shifts more to SSD than read plan: read %v write %v", read.Layout, write.Layout)
	}
}

func TestRSSDNoSServers(t *testing.T) {
	env := testEnv()
	env.N = 0
	res := RSSD([]Req{{Op: trace.OpRead, Size: 256 * units.KB, Conc: 1}}, env)
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("HServer-only layout invalid: %v", err)
	}
	if res.Layout.N != 0 || res.Layout.H == 0 {
		t.Errorf("layout = %v", res.Layout)
	}
}

func TestRSSDNoHServers(t *testing.T) {
	env := testEnv()
	env.M = 0
	res := RSSD([]Req{{Op: trace.OpRead, Size: 256 * units.KB, Conc: 1}}, env)
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("SServer-only layout invalid: %v", err)
	}
	if res.Layout.H != 0 || res.Layout.S == 0 {
		t.Errorf("layout = %v", res.Layout)
	}
}

// Property: the RSSD result never costs more than the default layout or
// any probed candidate (optimality within the searched grid).
func TestRSSDGridOptimalQuick(t *testing.T) {
	env := testEnv()
	env.Step = 16 * units.KB // coarser grid keeps the check fast
	f := func(szRaw uint16, concRaw, opRaw uint8) bool {
		size := (int64(szRaw)%512 + 1) * units.KB
		conc := int(concRaw%16) + 1
		op := trace.OpRead
		if opRaw%2 == 1 {
			op = trace.OpWrite
		}
		reqs := []Req{{Op: op, Size: size, Conc: conc}}
		res := RSSD(reqs, env)
		// Re-evaluate the chosen layout; must match reported cost.
		got := costmodel.RequestCost(env.Params, res.Layout, op, 0, size, units.RoundUp(size, env.Step), conc)
		if math.Abs(got-res.Cost) > 1e-12 {
			return false
		}
		// Probe a few grid candidates within RSSD's adaptive bounds; none
		// may beat the result.
		bh, bs := size, size
		if size >= int64(env.M+env.N)*64*units.KB {
			bh, bs = size/int64(env.M), size/int64(env.N)
		}
		for h := int64(0); h <= bh; h += env.Step * 4 {
			for s := h + env.Step; s <= bs; s += env.Step * 4 {
				l := stripe.Layout{M: env.M, N: env.N, H: h, S: s}
				if costmodel.RequestCost(env.Params, l, op, 0, size, units.RoundUp(size, env.Step), conc) < res.Cost-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
