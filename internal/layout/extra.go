package layout

import (
	"sort"

	"mhafs/internal/parfan"
	"mhafs/internal/pattern"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Two additional schemes from the paper's related-work discussion (§VI),
// implemented so the comparison can be extended beyond the paper's four:
//
//   - CARL ("A Cost-Aware Region-Level Data Placement Scheme for Hybrid
//     Parallel I/O Systems", the authors' earlier work): file regions with
//     the highest access costs are placed *only* on SSD servers, the rest
//     only on HDD servers. The paper criticizes it: "this may compromise
//     I/O performance because I/O parallelism on all servers may not be
//     fully utilized."
//   - HAS ("Heterogeneity-Aware Selective Data Layout Scheme"): each
//     region selects the best-fitting of three typical layout candidates —
//     1-DH (HServers only), 1-DV (SServers only), 2-D (all servers) —
//     scored by the cost model.
//
// Both are region-level (no data reordering) and are not part of
// AllSchemes (the paper's comparison); use ExtendedSchemes for the long
// list.

// Extra schemes, continuing the Scheme enumeration.
const (
	CARL Scheme = iota + 4
	HAS
)

// ExtendedSchemes lists every implemented scheme: the paper's four plus
// the related-work baselines.
func ExtendedSchemes() []Scheme { return []Scheme{DEF, AAL, CARL, HAS, HARL, MHA} }

// carlSSDFraction is the share of region bytes CARL may promote to the
// SServers — a stand-in for the limited SSD capacity that motivates
// cost-ranked selection (the paper's testbed SSDs are 100 GB against
// 250 GB disks).
const carlSSDFraction = 0.25

// carlPlanner implements the CARL baseline.
type carlPlanner struct{}

func (carlPlanner) Scheme() Scheme { return CARL }

func (carlPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Scheme: CARL}
	spans := fileSpan(tr)
	ann := pattern.Annotate(tr, env.EpochWindow)
	byFile := make(map[string][]annotatedRecord)
	for _, a := range ann {
		byFile[a.File] = append(byFile[a.File], a)
	}
	hddOnly := stripe.Layout{M: env.M, N: env.N, H: env.DefaultStripe, S: 0}
	ssdOnly := stripe.Layout{M: env.M, N: env.N, H: 0, S: env.DefaultStripe}
	if env.M == 0 {
		hddOnly = ssdOnly
	}
	if env.N == 0 {
		ssdOnly = hddOnly
	}
	for _, f := range sortedFiles(tr) {
		size := spans[f]
		var rmax int64
		for _, a := range byFile[f] {
			if a.Size > rmax {
				rmax = a.Size
			}
		}
		width := regionWidth(size, rmax, env)
		nRegions := int(units.CeilDiv(size, width))
		buckets := make([][]annotatedRecord, nRegions)
		for _, a := range byFile[f] {
			i := int(a.Offset / width)
			if i >= nRegions {
				i = nRegions - 1
			}
			buckets[i] = append(buckets[i], a)
		}
		// Rank regions by their access cost under the baseline (HDD-only)
		// placement; the costliest go to the SServers until the capacity
		// fraction is spent. The kernel scores each region's single
		// candidate without allocating (this loop is serial, so one kernel
		// serves every region).
		kern := newCostKernel(env.Params, env.M+env.N)
		scores := make([]regionScore, nRegions)
		costOf := make([]float64, nRegions)
		for i, bucket := range buckets {
			p.Search.Tried++
			var cost float64
			for _, r := range AggregateReqs(ReqsFromAnnotated(bucket)) {
				cost += kern.epochCost(hddOnly, r.Op, r.Size,
					units.RoundUp(r.Size, env.Step), r.Conc) * float64(r.Weight)
			}
			scores[i] = regionScore{idx: i, cost: cost}
			costOf[i] = cost
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].cost > scores[b].cost })
		budget := int64(float64(size) * carlSSDFraction)
		onSSD := make(map[int]bool)
		for _, sc := range scores {
			start := int64(sc.idx) * width
			length := units.Min(width, size-start)
			if sc.cost <= 0 || length > budget {
				continue
			}
			onSSD[sc.idx] = true
			budget -= length
		}
		for i := 0; i < nRegions; i++ {
			start := int64(i) * width
			length := units.Min(width, size-start)
			l := hddOnly
			if onSSD[i] {
				l = ssdOnly
			}
			name := RegionName(CARL, env.Tag, f, i)
			p.Regions = append(p.Regions, RegionPlan{
				File: name, Layout: l, Size: length, Cost: costOf[i],
			})
			p.Mappings = append(p.Mappings, region.Mapping{
				OFile: f, OOffset: start, RFile: name, ROffset: 0, Length: length,
			})
		}
	}
	return p, nil
}

// regionScore pairs a region index with its modeled access cost.
type regionScore struct {
	idx  int
	cost float64
}

// hasPlanner implements the HAS baseline: per region, the cheapest of
// 1-DH, 1-DV and 2-D.
type hasPlanner struct{}

func (hasPlanner) Scheme() Scheme { return HAS }

func (hasPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Scheme: HAS}
	spans := fileSpan(tr)
	ann := pattern.Annotate(tr, env.EpochWindow)
	byFile := make(map[string][]annotatedRecord)
	for _, a := range ann {
		byFile[a.File] = append(byFile[a.File], a)
	}
	var candidates []stripe.Layout
	if env.M > 0 {
		candidates = append(candidates, stripe.Layout{M: env.M, N: env.N, H: env.DefaultStripe, S: 0}) // 1-DH
	}
	if env.N > 0 {
		candidates = append(candidates, stripe.Layout{M: env.M, N: env.N, H: 0, S: env.DefaultStripe}) // 1-DV
	}
	if env.M > 0 && env.N > 0 {
		candidates = append(candidates, stripe.Uniform(env.M, env.N, env.DefaultStripe)) // 2-D
	}
	for _, f := range sortedFiles(tr) {
		size := spans[f]
		var rmax int64
		for _, a := range byFile[f] {
			if a.Size > rmax {
				rmax = a.Size
			}
		}
		width := regionWidth(size, rmax, env)
		nRegions := int(units.CeilDiv(size, width))
		buckets := make([][]annotatedRecord, nRegions)
		for _, a := range byFile[f] {
			i := int(a.Offset / width)
			if i >= nRegions {
				i = nRegions - 1
			}
			buckets[i] = append(buckets[i], a)
		}
		// Score the three candidates per region concurrently; each region
		// reads only its own bucket and the shared candidate list.
		type choice struct {
			layout stripe.Layout
			cost   float64
		}
		chosen := parfan.Map(nRegions, env.Workers, func(i int) choice {
			// Per-region kernel: the regions score concurrently and the
			// kernel's scratch is single-worker state.
			kern := newCostKernel(env.Params, env.M+env.N)
			reqs := AggregateReqs(ReqsFromAnnotated(buckets[i]))
			best, bestCost := candidates[0], 0.0
			for ci, cand := range candidates {
				var cost float64
				for _, r := range reqs {
					cost += kern.epochCost(cand, r.Op, r.Size,
						units.RoundUp(r.Size, env.Step), r.Conc) * float64(r.Weight)
				}
				if ci == 0 || cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			return choice{layout: best, cost: bestCost}
		})
		p.Search.Tried += nRegions * len(candidates)
		for i := 0; i < nRegions; i++ {
			start := int64(i) * width
			length := units.Min(width, size-start)
			best, bestCost := chosen[i].layout, chosen[i].cost
			name := RegionName(HAS, env.Tag, f, i)
			p.Regions = append(p.Regions, RegionPlan{
				File: name, Layout: best, Size: length, Cost: bestCost,
			})
			p.Mappings = append(p.Mappings, region.Mapping{
				OFile: f, OOffset: start, RFile: name, ROffset: 0, Length: length,
			})
		}
	}
	return p, nil
}
