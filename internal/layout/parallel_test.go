package layout

import (
	"reflect"
	"testing"

	"mhafs/internal/trace"
)

// TestPlannersSerialParallelIdentical pins the tentpole's determinism
// contract at the planner layer: every region-searching planner must
// produce a deeply identical plan — layouts, costs, mappings, ordering —
// at any worker count.
func TestPlannersSerialParallelIdentical(t *testing.T) {
	tr := mixedTrace()
	for _, s := range []Scheme{HARL, MHA, HAS, CARL} {
		env := DefaultEnv()
		env.Workers = 1
		serial := planFor(t, s, tr, env)
		for _, workers := range []int{2, 8} {
			env.Workers = workers
			parallel := planFor(t, s, tr, env)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%v: plan at workers=%d differs from serial plan", s, workers)
			}
		}
	}
}

// TestRSSDPruneCounters checks the prune's accounting: Tried counts every
// visited candidate (so it is unchanged by the prune) and Pruned counts a
// strict subset of them; on a multi-request workload with a spread of
// costs the prune must actually fire.
func TestRSSDPruneCounters(t *testing.T) {
	env := DefaultEnv()
	reqs := lanlReqs()
	res := RSSD(reqs, env)
	if res.Tried <= 0 {
		t.Fatalf("Tried = %d, want > 0", res.Tried)
	}
	if res.Pruned <= 0 {
		t.Errorf("Pruned = %d, want > 0 on the LANL mix (prune never fired)", res.Pruned)
	}
	if res.Pruned >= res.Tried {
		t.Errorf("Pruned = %d not a strict subset of Tried = %d", res.Pruned, res.Tried)
	}
}

// lanlReqs is the LANL App2 request mix (Fig. 3): tiny 16 B bookkeeping
// writes interleaved with ~128 KB data writes.
func lanlReqs() []Req {
	return []Req{
		{Op: trace.OpWrite, Size: 16, Conc: 8, Weight: 256},
		{Op: trace.OpWrite, Size: 131052, Conc: 8, Weight: 256},
		{Op: trace.OpWrite, Size: 131072, Conc: 8, Weight: 256},
	}
}
