package layout

import (
	"testing"

	"mhafs/internal/region"
)

// TestRegionNamesCarrySchemeMarkers pins region.SchemeMarkers in sync with
// RegionName: every scheme's region files must be recognizable by
// region.HasSchemeMarker (garbage collection relies on this), and original
// file names must not be.
func TestRegionNamesCarrySchemeMarkers(t *testing.T) {
	for _, s := range ExtendedSchemes() {
		for _, tag := range []string{"", "g1"} {
			name := RegionName(s, tag, "app.dat", 0)
			if !region.HasSchemeMarker(name) {
				t.Errorf("region %q (scheme %v) not matched by HasSchemeMarker", name, s)
			}
		}
	}
	markers := make(map[string]bool, len(region.SchemeMarkers))
	for _, m := range region.SchemeMarkers {
		markers[m] = true
	}
	for _, s := range ExtendedSchemes() {
		if !markers[s.String()] {
			t.Errorf("scheme %v missing from region.SchemeMarkers", s)
		}
	}
	for _, original := range []string{"app.dat", "a.b.c", "data.MHAish", "x.DEF", "DEF.x"} {
		if region.HasSchemeMarker(original) {
			t.Errorf("original file %q misidentified as a region", original)
		}
	}
}
