// Package layout contains the data-layout planners compared in the MHA
// paper:
//
//   - DEF  — the default fixed-size striping (64 KB on every server);
//   - AAL  — application-aware layout: a single optimized stripe size
//     chosen from the access pattern, blind to server heterogeneity;
//   - HARL — heterogeneity-aware region-level layout: fixed-width logical
//     file regions, each with an RSSD-optimized <h, s> stripe pair, no
//     data reordering (the authors' prior work);
//   - MHA  — migratory heterogeneity-aware layout: requests clustered by
//     (size, concurrency), each group's data migrated into its own region,
//     each region given an RSSD-optimized stripe pair.
//
// A planner consumes an I/O trace and produces a Plan: the set of region
// files with their layouts plus the DRT mappings that relocate original
// extents into regions. DEF and AAL plans have identity mappings (the
// region is the original file); HARL and MHA plans carve files into
// regions.
package layout

import (
	"fmt"

	"mhafs/internal/costmodel"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Scheme enumerates the four planners.
type Scheme uint8

// The compared schemes.
const (
	DEF Scheme = iota
	AAL
	HARL
	MHA
)

// String returns the paper's abbreviation.
func (s Scheme) String() string {
	switch s {
	case DEF:
		return "DEF"
	case AAL:
		return "AAL"
	case HARL:
		return "HARL"
	case MHA:
		return "MHA"
	case CARL:
		return "CARL"
	case HAS:
		return "HAS"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ParseScheme parses a scheme name (case-sensitive, as printed).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "DEF", "def":
		return DEF, nil
	case "AAL", "aal":
		return AAL, nil
	case "HARL", "harl":
		return HARL, nil
	case "MHA", "mha":
		return MHA, nil
	case "CARL", "carl":
		return CARL, nil
	case "HAS", "has":
		return HAS, nil
	default:
		return 0, fmt.Errorf("layout: unknown scheme %q", s)
	}
}

// AllSchemes lists the schemes in the paper's comparison order.
func AllSchemes() []Scheme { return []Scheme{DEF, AAL, HARL, MHA} }

// Env is the planning environment: cluster shape, cost-model calibration
// and search parameters.
type Env struct {
	M int // HServers
	N int // SServers

	Params costmodel.Params

	// DefaultStripe is DEF's fixed stripe size (64 KB in the paper).
	DefaultStripe int64

	// Step is the stripe-size search granularity of Algorithm 2 (4 KB in
	// the paper, user-configurable).
	Step int64

	// MaxRegions bounds both HARL's region count and MHA's group count k
	// ("the number of the groups is bounded by the number of the
	// fixed-size region division method").
	MaxRegions int

	// EpochWindow is the concurrency-detection window (seconds).
	EpochWindow float64

	// Seed drives the pseudo-random initial centers of Algorithm 1.
	Seed int64

	// Workers bounds the fan-out of the planners' per-region stripe
	// searches (parfan.Map): 0 or negative selects runtime.GOMAXPROCS(0),
	// 1 is the serial path. Plans are bit-identical at every setting —
	// each region's search is independent and results are committed in
	// region order.
	Workers int

	// Tag distinguishes plan generations: when non-empty it is embedded in
	// every region file name, so re-optimization (the paper's future-work
	// dynamic mode) can place a new generation of regions alongside the
	// previous one before retiring it.
	Tag string
}

// DefaultEnv mirrors the paper's experimental setup: 6 HServers, 2
// SServers, 64 KB default stripes, 4 KB search step, at most 16 regions.
func DefaultEnv() Env {
	return Env{
		M:             6,
		N:             2,
		Params:        costmodel.Default(),
		DefaultStripe: 64 * units.KB,
		Step:          4 * units.KB,
		MaxRegions:    16,
		EpochWindow:   1e-3,
		Seed:          1,
	}
}

// Validate checks the environment.
func (e Env) Validate() error {
	if e.M < 0 || e.N < 0 || e.M+e.N == 0 {
		return fmt.Errorf("layout: need at least one server (M=%d N=%d)", e.M, e.N)
	}
	if e.DefaultStripe <= 0 {
		return fmt.Errorf("layout: default stripe must be positive")
	}
	if e.Step <= 0 {
		return fmt.Errorf("layout: search step must be positive")
	}
	if e.MaxRegions <= 0 {
		return fmt.Errorf("layout: MaxRegions must be positive")
	}
	if e.EpochWindow < 0 {
		return fmt.Errorf("layout: negative epoch window")
	}
	return e.Params.Validate()
}

// RegionPlan is one region file with its optimized layout.
type RegionPlan struct {
	File   string
	Layout stripe.Layout
	// Size is the region's byte length (0 if unknown, e.g. DEF/AAL
	// identity regions sized by the original file).
	Size int64
	// Cost is the planner's predicted total access cost for the requests
	// served by this region (model seconds); informational.
	Cost float64
}

// SearchStats aggregates the stripe-search effort behind a plan:
// candidates visited and candidates abandoned early by RSSD's lower-bound
// prune, summed over every per-region search. The totals are independent
// of Env.Workers — each region's search is deterministic and the sums run
// in region order — so they may feed deterministic telemetry.
type SearchStats struct {
	Tried  int
	Pruned int
}

// Plan is a planner's output.
type Plan struct {
	Scheme  Scheme
	Regions []RegionPlan
	// Mappings relocate original extents into regions; empty when regions
	// are the original files themselves.
	Mappings []region.Mapping
	// Search reports the planning effort that produced the plan.
	Search SearchStats
}

// Validate checks plan consistency: every mapping references a planned
// region and mappings never overlap in the original space (checked by the
// DRT on application).
func (p Plan) Validate() error {
	known := make(map[string]bool, len(p.Regions))
	for _, r := range p.Regions {
		if r.File == "" {
			return fmt.Errorf("layout: region with empty name")
		}
		if err := r.Layout.Validate(); err != nil {
			return fmt.Errorf("layout: region %s: %w", r.File, err)
		}
		if known[r.File] {
			return fmt.Errorf("layout: duplicate region %s", r.File)
		}
		known[r.File] = true
	}
	for _, m := range p.Mappings {
		if err := m.Validate(); err != nil {
			return err
		}
		if !known[m.RFile] {
			return fmt.Errorf("layout: mapping targets unknown region %s", m.RFile)
		}
	}
	return nil
}

// Planner turns a trace into a plan.
type Planner interface {
	// Scheme identifies the planner.
	Scheme() Scheme
	// Plan analyzes the trace (all files it touches) and returns the
	// placement plan.
	Plan(tr trace.Trace, env Env) (Plan, error)
}

// NewPlanner constructs the planner for a scheme.
func NewPlanner(s Scheme) (Planner, error) {
	switch s {
	case DEF:
		return defPlanner{}, nil
	case AAL:
		return aalPlanner{}, nil
	case HARL:
		return harlPlanner{}, nil
	case MHA:
		return mhaPlanner{}, nil
	case CARL:
		return carlPlanner{}, nil
	case HAS:
		return hasPlanner{}, nil
	default:
		return nil, fmt.Errorf("layout: unknown scheme %d", s)
	}
}

// PlannerVersion returns the per-scheme cache-invalidation version. The
// plan cache (internal/plancache) hashes it into every key, so bumping a
// scheme's constant makes entries computed by the older planner miss
// instead of serving stale plans. Bump it whenever the planner's output
// for a given (trace, env) pair could change — a search-order tweak, a
// cost-model reading, a region-naming change. Unknown schemes report 0.
func PlannerVersion(s Scheme) int {
	switch s {
	case DEF:
		return 1
	case AAL:
		return 1
	case HARL:
		return 1
	case MHA:
		return 1
	case CARL:
		return 1
	case HAS:
		return 1
	default:
		return 0
	}
}

// RegionName builds the canonical region file name for a scheme; tag (the
// plan generation) may be empty.
func RegionName(scheme Scheme, tag, oFile string, idx int) string {
	if tag == "" {
		return fmt.Sprintf("%s.%s.r%d", oFile, scheme, idx)
	}
	return fmt.Sprintf("%s.%s.%s.r%d", oFile, scheme, tag, idx)
}
