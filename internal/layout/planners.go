package layout

import (
	"fmt"
	"math"
	"sort"

	"mhafs/internal/cluster"
	"mhafs/internal/costmodel"
	"mhafs/internal/intervals"
	"mhafs/internal/parfan"
	"mhafs/internal/pattern"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// annotatedRecord aliases the pattern package's annotated record for local
// brevity.
type annotatedRecord = pattern.Annotated

// fileSpan returns one past the highest byte accessed per file.
func fileSpan(tr trace.Trace) map[string]int64 {
	spans := make(map[string]int64)
	for _, r := range tr {
		if end := r.End(); end > spans[r.File] {
			spans[r.File] = end
		}
	}
	return spans
}

// sortedFiles returns the trace's files in deterministic order.
func sortedFiles(tr trace.Trace) []string { return tr.Files() }

// ---------------------------------------------------------------------------
// DEF

// defPlanner is the default layout: the whole file striped with the fixed
// default stripe size over every server. No reordering, no per-file
// optimization.
type defPlanner struct{}

func (defPlanner) Scheme() Scheme { return DEF }

func (defPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Scheme: DEF}
	spans := fileSpan(tr)
	for _, f := range sortedFiles(tr) {
		p.Regions = append(p.Regions, RegionPlan{
			File:   f,
			Layout: stripe.Uniform(env.M, env.N, env.DefaultStripe),
			Size:   spans[f],
		})
	}
	return p, nil
}

// ---------------------------------------------------------------------------
// AAL

// aalPlanner is the application-aware layout: it searches a single uniform
// stripe size per file that minimizes the modeled access cost, but scores
// candidates with homogeneous server parameters — it sees the access
// pattern while remaining blind to the HServer/SServer performance gap,
// like the adaptive-stripe prior work the paper compares against.
type aalPlanner struct{}

func (aalPlanner) Scheme() Scheme { return AAL }

func (aalPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	homog := env.Params.Homogeneous()
	p := Plan{Scheme: AAL}
	spans := fileSpan(tr)
	ann := pattern.Annotate(tr, env.EpochWindow)
	byFile := make(map[string][]annotatedRecord)
	for _, a := range ann {
		byFile[a.File] = append(byFile[a.File], a)
	}
	for _, f := range sortedFiles(tr) {
		reqs := AggregateReqs(ReqsFromAnnotated(byFile[f]))
		l, cost, tried := bestUniformStripe(reqs, env, homog)
		p.Search.Tried += tried
		// The whole file is restriped into one region file with the
		// optimized uniform stripe; a single identity mapping redirects
		// every access there.
		name := RegionName(AAL, env.Tag, f, 0)
		p.Regions = append(p.Regions, RegionPlan{File: name, Layout: l, Size: spans[f], Cost: cost})
		if spans[f] > 0 {
			p.Mappings = append(p.Mappings, region.Mapping{
				OFile: f, OOffset: 0, RFile: name, ROffset: 0, Length: spans[f],
			})
		}
	}
	return p, nil
}

// bestUniformStripe searches uniform stripe sizes with the given model
// parameters, using the same adaptive bound policy as RSSD. The third
// result counts the candidates evaluated (this search carries no
// lower-bound prune, so none are abandoned early).
func bestUniformStripe(reqs []Req, env Env, params costmodel.Params) (stripe.Layout, float64, int) {
	step := env.Step
	var rmax int64
	for _, r := range reqs {
		if r.Size > rmax {
			rmax = r.Size
		}
	}
	if rmax == 0 {
		return stripe.Uniform(env.M, env.N, env.DefaultStripe), 0, 0
	}
	var bound int64
	if rmax < int64(env.M+env.N)*64*units.KB {
		bound = rmax
	} else {
		bound = rmax / int64(env.M+env.N)
	}
	if bound < step {
		bound = step
	}
	kern := newCostKernel(params, env.M+env.N)
	bestCost := math.Inf(1)
	var best stripe.Layout
	tried := 0
	for c := step; c <= bound; c += step {
		tried++
		l := stripe.Uniform(env.M, env.N, c)
		var cost float64
		for _, r := range reqs {
			cost += kern.epochCost(l, r.Op, r.Size, units.RoundUp(r.Size, step), r.Conc) * float64(r.Weight)
		}
		const tieEps = 1e-12
		if cost < bestCost-tieEps ||
			(cost <= bestCost+tieEps && l.H+l.S > best.H+best.S) {
			bestCost, best = cost, l
		}
	}
	return best, bestCost, tried
}

// ---------------------------------------------------------------------------
// HARL

// harlPlanner is the heterogeneity-aware region-level layout of the
// authors' prior work: the file is divided into fixed-width logical
// regions and each region's inherent requests drive one RSSD search. Data
// is not migrated — each region is the corresponding slice of the original
// file, placed contiguously as its own physical region file.
type harlPlanner struct{}

func (harlPlanner) Scheme() Scheme { return HARL }

func (harlPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Scheme: HARL}
	spans := fileSpan(tr)
	ann := pattern.Annotate(tr, env.EpochWindow)
	byFile := make(map[string][]annotatedRecord)
	for _, a := range ann {
		byFile[a.File] = append(byFile[a.File], a)
	}
	for _, f := range sortedFiles(tr) {
		size := spans[f]
		fileTrace := byFile[f]
		var rmax int64
		for _, a := range fileTrace {
			if a.Size > rmax {
				rmax = a.Size
			}
		}
		width := regionWidth(size, rmax, env)
		nRegions := int(units.CeilDiv(size, width))
		// Bucket requests by the region containing their start offset.
		buckets := make([][]annotatedRecord, nRegions)
		for _, a := range byFile[f] {
			i := int(a.Offset / width)
			if i >= nRegions {
				i = nRegions - 1
			}
			buckets[i] = append(buckets[i], a)
		}
		// Each region's stripe search is independent of the others, so the
		// searches fan out; results come back committed in region order and
		// the plan is assembled serially below.
		searched := parfan.Map(nRegions, env.Workers, func(i int) RSSDResult {
			return RSSD(ReqsFromAnnotated(buckets[i]), env)
		})
		for i := 0; i < nRegions; i++ {
			start := int64(i) * width
			length := units.Min(width, size-start)
			res := searched[i]
			p.Search.Tried += res.Tried
			p.Search.Pruned += res.Pruned
			name := RegionName(HARL, env.Tag, f, i)
			p.Regions = append(p.Regions, RegionPlan{
				File: name, Layout: res.Layout, Size: length, Cost: res.Cost,
			})
			p.Mappings = append(p.Mappings, region.Mapping{
				OFile: f, OOffset: start, RFile: name, ROffset: 0, Length: length,
			})
		}
	}
	return p, nil
}

// regionWidth derives HARL's fixed region width: the file split into at
// most MaxRegions slices, but never finer than twice the largest request —
// a region smaller than a request would fragment every request across
// region boundaries, which region-level layouts must avoid.
func regionWidth(fileSize, rmax int64, env Env) int64 {
	w := units.CeilDiv(fileSize, int64(env.MaxRegions))
	w = units.Max(w, 2*rmax)
	w = units.RoundUp(units.Max(w, 1), env.Step)
	return w
}

// ---------------------------------------------------------------------------
// MHA

// mhaPlanner implements the paper's contribution: cluster requests by
// (size, concurrency) with Algorithm 1, migrate each group's extents into
// a packed region ordered by original offset, and give each region an
// RSSD-optimized stripe pair.
//
// Overlapping extents claimed by an earlier group are not re-migrated —
// the DRT redirects any request that touches them to the earlier region.
// Requests whose bytes were claimed elsewhere are *adopted* by the owning
// region for stripe optimization, so a region's layout accounts for every
// request it will actually serve (e.g. reads that re-visit extents packed
// by the write group).
type mhaPlanner struct{}

func (mhaPlanner) Scheme() Scheme { return MHA }

// ownedPieces records which byte ranges of the original file a group
// claimed for one record.
type ownedPieces struct {
	rec    annotatedRecord
	pieces []intervals.Interval
}

func (mhaPlanner) Plan(tr trace.Trace, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Scheme: MHA}
	ann := pattern.Annotate(tr, env.EpochWindow)
	byFile := make(map[string][]annotatedRecord)
	for _, a := range ann {
		byFile[a.File] = append(byFile[a.File], a)
	}
	for _, f := range sortedFiles(tr) {
		recs := byFile[f]
		pts := pattern.Points(recs)
		k := cluster.BoundK(pts, env.MaxRegions)
		res, err := cluster.Group(pts, k, cluster.Options{MaxIters: 3, Seed: env.Seed, Workers: env.Workers})
		if err != nil {
			return Plan{}, fmt.Errorf("layout: mha grouping %s: %w", f, err)
		}

		// Phase A: claim extents group by group, remembering per-record
		// ownership. An ownership interval list (non-overlapping by
		// construction) maps original offsets back to the owning group.
		var claimed intervals.Set
		type ownIv struct {
			start, end int64
			group      int
		}
		var owners []ownIv
		owned := make([][]ownedPieces, res.K())
		for g, members := range res.Groups {
			group := make([]annotatedRecord, len(members))
			for i, idx := range members {
				group[i] = recs[idx]
			}
			// "Requests identified to be similar are located together,
			// ordered by their offsets within the original file."
			sort.Slice(group, func(i, j int) bool { return group[i].Offset < group[j].Offset })
			for _, r := range group {
				pieces := claimed.Claim(r.Offset, r.End())
				owned[g] = append(owned[g], ownedPieces{rec: r, pieces: pieces})
				for _, piece := range pieces {
					owners = append(owners, ownIv{piece.Start, piece.End, g})
				}
			}
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i].start < owners[j].start })
		ownerOf := func(off int64) int {
			i := sort.Search(len(owners), func(i int) bool { return owners[i].end > off })
			if i < len(owners) && owners[i].start <= off {
				return owners[i].group
			}
			return -1
		}

		// Phase B: per region, optimize the stripe pair over every request
		// the region will serve (its own plus adopted), then pack its
		// owned pieces with concurrency epochs aligned to stripe-round
		// boundaries of the chosen layout — every epoch starts at round
		// phase 0, the situation the cost model scores. HARL cannot do
		// this (its regions keep the file's inherent order); the alignment
		// is a benefit data migration uniquely enables.
		serves := make([][]annotatedRecord, res.K())
		for _, members := range res.Groups {
			for _, idx := range members {
				r := recs[idx]
				if owner := ownerOf(r.Offset); owner >= 0 {
					serves[owner] = append(serves[owner], r)
				}
			}
		}
		// Only groups that actually claimed bytes become regions; the rest
		// are served by the DRT redirecting to an earlier region. Their
		// stripe searches are independent (serves and owned are read-only
		// here), so they fan out; the packing below stays serial because
		// mappings append to a shared plan in group order.
		var owning []int
		for g := range res.Groups {
			for _, op := range owned[g] {
				if len(op.pieces) > 0 {
					owning = append(owning, g)
					break
				}
			}
		}
		searched := parfan.Map(len(owning), env.Workers, func(i int) RSSDResult {
			return RSSD(ReqsFromAnnotated(serves[owning[i]]), env)
		})
		for oi, g := range owning {
			rssd := searched[oi]
			p.Search.Tried += rssd.Tried
			p.Search.Pruned += rssd.Pruned
			round := rssd.Layout.RoundLength()

			name := RegionName(MHA, env.Tag, f, g)
			var cursor int64
			var mappings []region.Mapping
			prevEpoch := -1
			for _, op := range owned[g] {
				if len(op.pieces) == 0 {
					continue
				}
				if op.rec.Epoch != prevEpoch {
					cursor = units.RoundUp(cursor, round)
					prevEpoch = op.rec.Epoch
				} else {
					// Requests stay stripe-aligned after migration (the
					// region file is sparse in the gaps).
					cursor = units.RoundUp(cursor, env.Step)
				}
				for _, piece := range op.pieces {
					m := region.Mapping{
						OFile: f, OOffset: piece.Start,
						RFile: name, ROffset: cursor, Length: piece.End - piece.Start,
					}
					if n := len(mappings); n > 0 && mergeable(mappings[n-1], m) {
						mappings[n-1].Length += m.Length
					} else {
						mappings = append(mappings, m)
					}
					cursor += piece.End - piece.Start
				}
			}
			p.Regions = append(p.Regions, RegionPlan{
				File: name, Layout: rssd.Layout, Size: cursor, Cost: rssd.Cost,
			})
			p.Mappings = append(p.Mappings, mappings...)
		}
	}
	return p, nil
}

// mergeable reports whether b directly extends a in both the original and
// the region address spaces.
func mergeable(a, b region.Mapping) bool {
	return a.OFile == b.OFile && a.RFile == b.RFile &&
		a.OEnd() == b.OOffset && a.ROffset+a.Length == b.ROffset
}
