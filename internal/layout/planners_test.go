package layout

import (
	"sort"
	"strings"
	"testing"

	"mhafs/internal/intervals"
	"mhafs/internal/region"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// mixedTrace builds a heterogeneous trace over one 4 MB file: interleaved
// 16 KB requests at concurrency 8 and 256 KB requests at concurrency 2,
// the paper's motivating scenario.
func mixedTrace() trace.Trace {
	var tr trace.Trace
	off := int64(0)
	tstamp := 0.0
	for loop := 0; loop < 8; loop++ {
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{
				Rank: r, File: "app.dat", Op: trace.OpRead,
				Offset: off, Size: 16 * units.KB, Time: tstamp,
			})
			off += 16 * units.KB
		}
		tstamp += 1.0
		for r := 0; r < 2; r++ {
			tr = append(tr, trace.Record{
				Rank: r, File: "app.dat", Op: trace.OpRead,
				Offset: off, Size: 256 * units.KB, Time: tstamp,
			})
			off += 256 * units.KB
		}
		tstamp += 1.0
	}
	return tr
}

func TestSchemeStringParse(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
		low, err := ParseScheme(strings.ToLower(s.String()))
		if err != nil || low != s {
			t.Errorf("lowercase parse %v failed", s)
		}
	}
	if _, err := ParseScheme("XYZ"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if !strings.Contains(Scheme(9).String(), "9") {
		t.Error("unknown scheme String should embed value")
	}
}

func TestNewPlanner(t *testing.T) {
	for _, s := range AllSchemes() {
		p, err := NewPlanner(s)
		if err != nil {
			t.Fatalf("NewPlanner(%v): %v", s, err)
		}
		if p.Scheme() != s {
			t.Errorf("planner scheme = %v, want %v", p.Scheme(), s)
		}
	}
	if _, err := NewPlanner(Scheme(99)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestEnvValidate(t *testing.T) {
	if err := DefaultEnv().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Env){
		func(e *Env) { e.M, e.N = 0, 0 },
		func(e *Env) { e.M = -1 },
		func(e *Env) { e.DefaultStripe = 0 },
		func(e *Env) { e.Step = 0 },
		func(e *Env) { e.MaxRegions = 0 },
		func(e *Env) { e.EpochWindow = -1 },
		func(e *Env) { e.Params.T = 0 },
	}
	for i, m := range muts {
		e := DefaultEnv()
		m(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func planFor(t *testing.T, s Scheme, tr trace.Trace, env Env) Plan {
	t.Helper()
	pl, err := NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%v plan invalid: %v", s, err)
	}
	return p
}

func TestDEFPlan(t *testing.T) {
	env := testEnv()
	p := planFor(t, DEF, mixedTrace(), env)
	if len(p.Regions) != 1 || len(p.Mappings) != 0 {
		t.Fatalf("DEF plan = %d regions, %d mappings", len(p.Regions), len(p.Mappings))
	}
	r := p.Regions[0]
	if r.File != "app.dat" {
		t.Errorf("region file = %s", r.File)
	}
	if r.Layout != stripe.Uniform(env.M, env.N, env.DefaultStripe) {
		t.Errorf("DEF layout = %v", r.Layout)
	}
	if r.Size != mixedTrace().FilterFile("app.dat").MaxSize()+0 && r.Size <= 0 {
		t.Errorf("region size = %d", r.Size)
	}
}

func TestAALPlanUniformStripes(t *testing.T) {
	env := testEnv()
	p := planFor(t, AAL, mixedTrace(), env)
	if len(p.Regions) != 1 || len(p.Mappings) != 1 {
		t.Fatalf("AAL plan shape wrong: %d regions, %d mappings", len(p.Regions), len(p.Mappings))
	}
	m := p.Mappings[0]
	if m.OFile != "app.dat" || m.OOffset != 0 || m.ROffset != 0 || m.RFile != p.Regions[0].File {
		t.Errorf("AAL mapping = %+v", m)
	}
	l := p.Regions[0].Layout
	if l.H != l.S {
		t.Errorf("AAL must use uniform stripes, got %v", l)
	}
	if l.H == 0 {
		t.Errorf("AAL stripe must be positive: %v", l)
	}
}

func TestHARLPlanCoversFile(t *testing.T) {
	env := testEnv()
	env.MaxRegions = 4
	tr := mixedTrace()
	p := planFor(t, HARL, tr, env)
	if len(p.Regions) == 0 || len(p.Regions) > env.MaxRegions {
		t.Fatalf("HARL regions = %d", len(p.Regions))
	}
	if len(p.Mappings) != len(p.Regions) {
		t.Fatalf("HARL should map one extent per region")
	}
	// Mappings must tile [0, span) without gaps.
	span := tr.FilterFile("app.dat")[len(tr)-1].End()
	var cov intervals.Set
	for _, m := range p.Mappings {
		if m.OFile != "app.dat" || m.ROffset != 0 {
			t.Errorf("unexpected mapping %+v", m)
		}
		cov.Add(m.OOffset, m.OEnd())
	}
	if !cov.Contains(0, span) {
		t.Errorf("HARL mappings do not cover the file: %v of %d", cov.Intervals(), span)
	}
	// Regions hold varied stripe pairs (heterogeneity-aware).
	for _, r := range p.Regions {
		if r.Layout.M != env.M || r.Layout.N != env.N {
			t.Errorf("region layout server counts wrong: %v", r.Layout)
		}
	}
}

func TestMHAPlanGroupsAndMappings(t *testing.T) {
	env := testEnv()
	tr := mixedTrace()
	p := planFor(t, MHA, tr, env)
	// Two distinct (size, concurrency) patterns → two regions.
	if len(p.Regions) != 2 {
		t.Fatalf("MHA regions = %d, want 2", len(p.Regions))
	}
	// All traced bytes must be mapped exactly once.
	var cov intervals.Set
	var mappedBytes int64
	for _, m := range p.Mappings {
		if cov.Overlaps(m.OOffset, m.OEnd()) {
			t.Fatalf("mapping overlap at %+v", m)
		}
		cov.Add(m.OOffset, m.OEnd())
		mappedBytes += m.Length
	}
	span := int64(0)
	for _, r := range tr {
		if r.End() > span {
			span = r.End()
		}
	}
	if mappedBytes != span {
		t.Errorf("mapped %d bytes, trace spans %d", mappedBytes, span)
	}
	// Region sizes must equal the bytes mapped into them.
	perRegion := make(map[string]int64)
	for _, m := range p.Mappings {
		perRegion[m.RFile] += m.Length
	}
	for _, r := range p.Regions {
		if perRegion[r.File] != r.Size {
			t.Errorf("region %s size %d != mapped %d", r.File, r.Size, perRegion[r.File])
		}
	}
	// The two regions must have different layouts: one serves 16KB×8
	// requests, the other 256KB×2.
	if p.Regions[0].Layout == p.Regions[1].Layout {
		t.Errorf("MHA regions share a layout %v; heterogeneity lost", p.Regions[0].Layout)
	}
}

func TestMHARegionPackingIsAlignedAndOrdered(t *testing.T) {
	env := testEnv()
	p := planFor(t, MHA, mixedTrace(), env)
	// Within each region, mappings sorted by OOffset must land at
	// monotonically increasing, step-aligned region offsets (packed in
	// original-offset order, aligned so requests stay stripe-aligned).
	byRegion := make(map[string][]int)
	for i, m := range p.Mappings {
		byRegion[m.RFile] = append(byRegion[m.RFile], i)
	}
	for rf, idxs := range byRegion {
		ms := make([]int, len(idxs))
		copy(ms, idxs)
		sort.Slice(ms, func(a, b int) bool {
			return p.Mappings[ms[a]].OOffset < p.Mappings[ms[b]].OOffset
		})
		var cursor int64
		for _, i := range ms {
			m := p.Mappings[i]
			if m.ROffset < cursor {
				t.Fatalf("region %s: mapping %+v overlaps previous extent end %d", rf, m, cursor)
			}
			if m.ROffset%env.Step != 0 {
				t.Fatalf("region %s: mapping %+v not step-aligned", rf, m)
			}
			if m.ROffset-cursor >= env.Step {
				t.Fatalf("region %s: mapping %+v leaves a gap beyond one step after %d", rf, m, cursor)
			}
			cursor = m.ROffset + m.Length
		}
	}
}

func TestMHAUniformPatternSingleRegion(t *testing.T) {
	// Uniform access pattern: MHA degrades to a single group (and thus
	// matches HARL's behaviour, as the paper observes for IOR-16KB).
	var tr trace.Trace
	for i := 0; i < 32; i++ {
		tr = append(tr, trace.Record{
			Rank: i % 8, File: "u.dat", Op: trace.OpRead,
			Offset: int64(i) * 64 * units.KB, Size: 64 * units.KB,
			Time: float64(i / 8),
		})
	}
	env := testEnv()
	p := planFor(t, MHA, tr, env)
	if len(p.Regions) != 1 {
		t.Errorf("uniform pattern should yield 1 region, got %d", len(p.Regions))
	}
}

func TestMHAOverlappingRequestsClaimOnce(t *testing.T) {
	// The same extent read repeatedly with two patterns: bytes must be
	// migrated exactly once.
	var tr trace.Trace
	for loop := 0; loop < 4; loop++ {
		tr = append(tr, trace.Record{
			Rank: 0, File: "o.dat", Op: trace.OpRead,
			Offset: 0, Size: 128 * units.KB, Time: float64(loop),
		})
		for r := 0; r < 8; r++ {
			tr = append(tr, trace.Record{
				Rank: r, File: "o.dat", Op: trace.OpRead,
				Offset: int64(r) * 8 * units.KB, Size: 8 * units.KB,
				Time: float64(loop) + 0.5,
			})
		}
	}
	env := testEnv()
	p := planFor(t, MHA, tr, env)
	var cov intervals.Set
	for _, m := range p.Mappings {
		if cov.Overlaps(m.OOffset, m.OEnd()) {
			t.Fatalf("byte migrated twice: %+v", m)
		}
		cov.Add(m.OOffset, m.OEnd())
	}
	if !cov.Contains(0, 128*units.KB) {
		t.Error("accessed bytes left unmapped")
	}
}

func TestPlannersMultiFile(t *testing.T) {
	var tr trace.Trace
	for f := 0; f < 3; f++ {
		name := string(rune('a'+f)) + ".dat"
		for i := 0; i < 8; i++ {
			tr = append(tr, trace.Record{
				Rank: i, File: name, Op: trace.OpWrite,
				Offset: int64(i) * 32 * units.KB, Size: 32 * units.KB,
				Time: float64(i / 4),
			})
		}
	}
	env := testEnv()
	for _, s := range AllSchemes() {
		p := planFor(t, s, tr, env)
		files := make(map[string]bool)
		for _, r := range p.Regions {
			root := strings.SplitN(r.File, ".", 2)[0]
			files[root+".dat"] = true
		}
		for _, want := range []string{"a.dat", "b.dat", "c.dat"} {
			if !files[want] {
				t.Errorf("%v plan missing regions for %s", s, want)
			}
		}
	}
}

func TestPlanValidateRejects(t *testing.T) {
	bad := Plan{Regions: []RegionPlan{{File: ""}}}
	if bad.Validate() == nil {
		t.Error("empty region name accepted")
	}
	bad = Plan{Regions: []RegionPlan{{File: "r", Layout: stripe.Layout{}}}}
	if bad.Validate() == nil {
		t.Error("invalid layout accepted")
	}
	l := stripe.Uniform(1, 1, 64)
	bad = Plan{Regions: []RegionPlan{{File: "r", Layout: l}, {File: "r", Layout: l}}}
	if bad.Validate() == nil {
		t.Error("duplicate region accepted")
	}
}

func TestPlanValidateUnknownRegionMapping(t *testing.T) {
	l := stripe.Uniform(1, 1, 64)
	p := Plan{
		Regions: []RegionPlan{{File: "r0", Layout: l}},
		Mappings: []region.Mapping{
			{OFile: "f", OOffset: 0, RFile: "rX", ROffset: 0, Length: 10},
		},
	}
	if p.Validate() == nil {
		t.Error("mapping to unknown region accepted")
	}
	p.Mappings[0] = region.Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 0, Length: 0}
	if p.Validate() == nil {
		t.Error("invalid mapping accepted")
	}
}
