package layout

import (
	"math"

	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Req is one request presented to the stripe-size search: operation,
// size, and the concurrency with which similar requests are issued.
// Requests with identical features are aggregated by Weight.
type Req struct {
	Op     trace.Op
	Size   int64
	Conc   int
	Weight int
}

// AggregateReqs collapses requests with identical (op, size, concurrency)
// into weighted entries. Algorithm 2 sums a cost per request; identical
// requests contribute identical terms, so aggregation changes nothing but
// removes a factor of the region's request count from the search.
func AggregateReqs(reqs []Req) []Req {
	type key struct {
		op   trace.Op
		size int64
		conc int
	}
	idx := make(map[key]int)
	var out []Req
	for _, r := range reqs {
		w := r.Weight
		if w <= 0 {
			w = 1
		}
		k := key{r.Op, r.Size, r.Conc}
		if i, ok := idx[k]; ok {
			out[i].Weight += w
			continue
		}
		idx[k] = len(out)
		out = append(out, Req{Op: r.Op, Size: r.Size, Conc: r.Conc, Weight: w})
	}
	return out
}

// RSSDResult reports the chosen stripe pair and its predicted cost.
type RSSDResult struct {
	Layout stripe.Layout
	Cost   float64 // total model cost of all (weighted) requests
	Tried  int     // number of <h, s> candidates visited (including pruned)
	Pruned int     // candidates abandoned early by the lower-bound prune
}

// searchReq is one aggregated request with its candidate-invariant terms
// hoisted out of the search loop: the packed stride and the weight as a
// float. Both depend only on (size, step), never on the candidate layout,
// so computing them once removes a RoundUp and an int→float conversion
// per request per candidate.
type searchReq struct {
	op     trace.Op
	size   int64
	stride int64
	conc   int
	weight float64
}

// RSSD implements Algorithm 2 (Region Stripe Size Determination): search
// stripe pairs <h, s> in 'step' increments and pick the pair minimizing
// the summed access cost of the region's requests under the cost model.
//
// Bounds follow the paper's adaptive policy: if the maximal request size
// r_max is smaller than (M+N)·64 KB, both bounds are r_max (more
// candidates, bounded search space); otherwise B_h = r_max/M and
// B_s = r_max/N, which pushes every server to participate in large
// requests. h starts at 0 — the degenerate SServer-only placement is a
// legal outcome. s starts at h+step so SServers always take at least as
// large a stripe as the slower HServers.
//
// Costs are evaluated at region-relative offset 0 for every request: after
// migration a region's requests are packed from its start, and the
// round-robin layout makes the cost of a request depend on its size far
// more than on its round phase. This keeps the search free of per-offset
// terms, exactly like the paper's "simple arithmetic operations".
func RSSD(reqs []Req, env Env) RSSDResult {
	step := env.Step
	if step <= 0 {
		step = 4 * units.KB
	}
	agg := AggregateReqs(reqs)
	var rmax int64
	for _, r := range agg {
		if r.Size > rmax {
			rmax = r.Size
		}
	}
	if rmax == 0 {
		// No requests: any valid layout will do; use the default stripes.
		return RSSDResult{Layout: stripe.Uniform(env.M, env.N, env.DefaultStripe)}
	}
	sreqs := make([]searchReq, len(agg))
	for i, r := range agg {
		// Requests sit at step-aligned packed offsets in their region, so
		// the epoch stride rounds the size up to the step.
		sreqs[i] = searchReq{
			op: r.Op, size: r.Size, stride: units.RoundUp(r.Size, step),
			conc: r.Conc, weight: float64(r.Weight),
		}
	}

	// Adaptive bound policy (§III-F): both bounds start at r_max — the
	// full grid, more candidates over a bounded space. When r_max is large
	// (at least (M+N)·64 KB) the bounds divide by the per-class server
	// counts instead, which pushes every server to participate in maximal
	// requests while keeping the candidate count flat.
	bh, bs := rmax, rmax
	if rmax >= int64(env.M+env.N)*64*units.KB {
		if env.M > 0 {
			bh = rmax / int64(env.M)
		}
		if env.N > 0 {
			bs = rmax / int64(env.N)
		}
	}
	// Guarantee at least the candidate <0, step> (or <step, 0> for
	// HServer-only clusters) exists even for requests smaller than one
	// step.
	if bs < step {
		bs = step
	}
	if bh < step {
		bh = step
	}
	if env.M == 0 {
		bh = 0
	}

	best := RSSDResult{Cost: math.Inf(1)}
	const tieEps = 1e-12
	// One kernel per search: candidate evaluation reuses its scratch, so
	// the inner loop is allocation-free and skips repeated round phases
	// (kernel.go documents why the sums are bit-identical to
	// costmodel.RequestCost).
	kern := newCostKernel(env.Params, env.M+env.N)
	evaluate := func(l stripe.Layout) {
		best.Tried++
		var cost float64
		for i := range sreqs {
			r := &sreqs[i]
			cost += kern.epochCost(l, r.op, r.size, r.stride, r.conc) * r.weight
			// Lower-bound prune: every term of the sum is ≥ 0, so the
			// partial sum only grows. Once it exceeds best.Cost+tieEps the
			// candidate can neither beat the incumbent nor tie it (the tie
			// branch below requires cost ≤ best.Cost+tieEps), so finishing
			// the sum cannot change the argmin — abandon it. Terms are
			// accumulated in the same request order as the full evaluation,
			// so surviving candidates produce bit-identical sums.
			if cost > best.Cost+tieEps {
				best.Pruned++
				return
			}
		}
		// Strictly cheaper wins; exact ties prefer larger stripes (fewer
		// sub-requests per request at unaligned offsets).
		if cost < best.Cost-tieEps ||
			(cost <= best.Cost+tieEps && l.H+l.S > best.Layout.H+best.Layout.S) {
			best.Cost = cost
			best.Layout = l
		}
	}
	for h := int64(0); h <= bh; h += step {
		if env.N == 0 {
			// Homogeneous HServer-only cluster: only <h, 0> candidates.
			if h > 0 {
				evaluate(stripe.Layout{M: env.M, N: 0, H: h, S: 0})
			}
			continue
		}
		for s := h + step; s <= bs; s += step {
			evaluate(stripe.Layout{M: env.M, N: env.N, H: h, S: s})
		}
	}
	// Grid completion beyond the paper's s > h constraint: also evaluate
	// uniform pairs <c, c>. For large requests at high concurrency the
	// cost model itself can prefer a uniform stripe of one request size —
	// each request lands whole on a single server, paying one startup
	// instead of one per involved server — and excluding those candidates
	// would let the heterogeneity-oblivious AAL baseline beat the
	// heterogeneity-aware schemes on uniform large-request workloads.
	if env.M > 0 && env.N > 0 {
		for c := step; c <= units.Max(bh, bs); c += step {
			evaluate(stripe.Uniform(env.M, env.N, c))
		}
	}
	if math.IsInf(best.Cost, 1) {
		// Degenerate search space; fall back to the default stripes.
		return RSSDResult{Layout: stripe.Uniform(env.M, env.N, env.DefaultStripe)}
	}
	return best
}

// ReqsFromAnnotated converts annotated trace records to search requests.
func ReqsFromAnnotated(recs []annotatedRecord) []Req {
	out := make([]Req, len(recs))
	for i, r := range recs {
		out[i] = Req{Op: r.Op, Size: r.Size, Conc: r.Concurrency, Weight: 1}
	}
	return out
}
