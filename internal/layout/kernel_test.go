package layout

import (
	"math"
	"testing"

	"mhafs/internal/costmodel"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// kernelTestParams uses round numbers so every expectation below is
// checkable by hand: no per-message overhead, no seek interference, unit
// network and storage per-byte times (every byte costs 2s on any class),
// and distinct startups so the process counts are observable.
func kernelTestParams() costmodel.Params {
	return costmodel.Params{
		T: 1, PerMessage: 0,
		AlphaH: 10, BetaH: 1,
		AlphaSR: 5, BetaSR: 1,
		AlphaSW: 5, BetaSW: 1,
	}
}

// TestPrefixBytesHand pins the closed-form prefix sum on hand-computed
// windows of an L=8 round with a [4, 8) window.
func TestPrefixBytesHand(t *testing.T) {
	cases := []struct {
		x, base, size, L, want int64
	}{
		{0, 4, 4, 8, 0},   // empty prefix
		{4, 4, 4, 8, 0},   // prefix stops at the window
		{6, 4, 4, 8, 2},   // two bytes into the window
		{8, 4, 4, 8, 4},   // full first window
		{10, 4, 4, 8, 4},  // second round, window not reached
		{14, 4, 4, 8, 6},  // second window partially covered
		{80, 4, 4, 8, 40}, // ten full rounds
		{6, 0, 4, 8, 4},   // window at the round start, clamped to size
	}
	for _, c := range cases {
		if got := stripe.PrefixBytes(c.x, c.base, c.size, c.L); got != c.want {
			t.Errorf("PrefixBytes(%d,%d,%d,%d) = %d, want %d",
				c.x, c.base, c.size, c.L, got, c.want)
		}
	}
}

// TestKernelHandComputed pins epochCost on epochs small enough to walk on
// paper, including one whose phase period is shorter than its concurrency
// (the period-scaling path).
func TestKernelHandComputed(t *testing.T) {
	p := kernelTestParams()
	l := stripe.Layout{M: 1, N: 1, H: 4, S: 4} // L = 8
	k := newCostKernel(p, 2)

	// Three aligned reads of 6 bytes at stride 8 (= L, so period 1 — one
	// phase scaled by 3): every request puts 4 bytes on H and 2 on S, all
	// three processes touch both servers.
	//   H: 3·α_H + 12·(T+β_H) = 30 + 24 = 54
	//   S: 3·α_SR + 6·(T+β_SR) = 15 + 12 = 27
	if got := k.epochCost(l, trace.OpRead, 6, 8, 3); got != 54 {
		t.Errorf("aligned epoch: got %v, want 54", got)
	}

	// Five reads of 4 bytes at stride 12: d = 4, period = 8/gcd(8,4) = 2.
	// Phases alternate 0 (4 bytes on H) and 4 (4 bytes on S); five
	// requests are two full periods plus one extra phase-0 request.
	//   H: bytes 12, procs 3 → 3·10 + 12·2 = 54
	//   S: bytes 8,  procs 2 → 2·5 + 8·2 = 26
	if got := k.epochCost(l, trace.OpRead, 4, 12, 5); got != 54 {
		t.Errorf("period-2 epoch: got %v, want 54", got)
	}

	// Writes switch the SServer startup but here α_SW = α_SR; an SServer-
	// only layout isolates the S term: two writes of 3 bytes, stride 4,
	// L = 4, period 1 → S bytes 6, procs 2 → 2·5 + 6·2 = 22.
	ssd := stripe.Layout{M: 1, N: 1, H: 0, S: 4}
	if got := k.epochCost(ssd, trace.OpWrite, 3, 4, 2); got != 22 {
		t.Errorf("ssd-only epoch: got %v, want 22", got)
	}

	// Degenerate guards mirror costmodel.RequestCost exactly.
	if got := k.epochCost(l, trace.OpRead, 0, 8, 3); got != 0 {
		t.Errorf("size 0: got %v, want 0", got)
	}
	if got := k.epochCost(l, trace.OpRead, 6, 2, 0); got != k.epochCost(l, trace.OpRead, 6, 6, 1) {
		t.Errorf("conc<1 and stride<size guards diverge from the naive walk")
	}
}

// TestKernelMatchesNaive sweeps layouts, operations, sizes, strides and
// concurrencies and requires the kernel to reproduce
// costmodel.RequestCost bit for bit — the equality the search relies on
// for identical argmins, tie-breaks and prune decisions.
func TestKernelMatchesNaive(t *testing.T) {
	params := []costmodel.Params{kernelTestParams(), costmodel.Default()}
	layouts := []stripe.Layout{
		{M: 1, N: 1, H: 4, S: 4},
		{M: 6, N: 2, H: 64 * units.KB, S: 192 * units.KB},
		{M: 6, N: 2, H: 0, S: 8 * units.KB},  // SServer-only placement
		{M: 6, N: 2, H: 8 * units.KB, S: 0},  // HServer-only placement
		{M: 3, N: 2, H: 12288, S: 4096},      // uneven classes
		{M: 2, N: 3, H: 4096, S: 28672},      // large S share
		{M: 1, N: 0, H: 4 * units.KB, S: 0},  // homogeneous HDD cluster
		{M: 0, N: 2, H: 0, S: 16 * units.KB}, // homogeneous SSD cluster
	}
	sizes := []int64{1, 16, 100, 4095, 4096, 65536, 131052, 1 << 20}
	concs := []int{0, 1, 2, 7, 8, 64, 1000}
	for _, p := range params {
		for _, l := range layouts {
			k := newCostKernel(p, l.M+l.N)
			for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
				for _, size := range sizes {
					// Strides exercise: the stride<size fallback, exact
					// round multiples (period 1), step-aligned packing, and
					// a coprime-ish stride (long period).
					strides := []int64{0, size, units.RoundUp(size, 4*units.KB), 2 * size, size + 12, 1048573}
					for _, stride := range strides {
						for _, conc := range concs {
							want := costmodel.RequestCost(p, l, op, 0, size, stride, conc)
							got := k.epochCost(l, op, size, stride, conc)
							if got != want {
								t.Fatalf("layout %v op %v size %d stride %d conc %d: kernel %v != naive %v",
									l, op, size, stride, conc, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestRSSDMatchesNaiveSearch re-runs the full Algorithm 2 grid with the
// naive per-candidate walk and requires the production search to agree on
// the chosen layout, the cost, and both effort counters — the kernel may
// change how a candidate is summed, never which candidates win or prune.
func TestRSSDMatchesNaiveSearch(t *testing.T) {
	envs := []Env{DefaultEnv()}
	small := DefaultEnv()
	small.M, small.N = 2, 1
	envs = append(envs, small)
	workloads := [][]Req{
		lanlReqs(),
		{{Op: trace.OpRead, Size: 128 * units.KB, Conc: 32, Weight: 100},
			{Op: trace.OpWrite, Size: 256 * units.KB, Conc: 32, Weight: 100},
			{Op: trace.OpRead, Size: 16 * units.KB, Conc: 8, Weight: 100}},
		{{Op: trace.OpWrite, Size: 5000, Conc: 3, Weight: 7}},
	}
	for _, env := range envs {
		for wi, reqs := range workloads {
			got := RSSD(reqs, env)
			want := naiveRSSD(reqs, env)
			if got.Layout != want.Layout || got.Cost != want.Cost ||
				got.Tried != want.Tried || got.Pruned != want.Pruned {
				t.Errorf("env %dH+%dS workload %d: kernel search %+v != naive search %+v",
					env.M, env.N, wi, got, want)
			}
		}
	}
}

// naiveRSSD is RSSD with the kernel replaced by the original
// costmodel.RequestCost walk: same bounds, same candidate order, same
// prune and tie-break. It exists only as the reference for the
// equivalence test above.
func naiveRSSD(reqs []Req, env Env) RSSDResult {
	step := env.Step
	if step <= 0 {
		step = 4 * units.KB
	}
	agg := AggregateReqs(reqs)
	var rmax int64
	for _, r := range agg {
		if r.Size > rmax {
			rmax = r.Size
		}
	}
	if rmax == 0 {
		return RSSDResult{Layout: stripe.Uniform(env.M, env.N, env.DefaultStripe)}
	}
	sreqs := make([]searchReq, len(agg))
	for i, r := range agg {
		sreqs[i] = searchReq{
			op: r.Op, size: r.Size, stride: units.RoundUp(r.Size, step),
			conc: r.Conc, weight: float64(r.Weight),
		}
	}
	bh, bs := rmax, rmax
	if rmax >= int64(env.M+env.N)*64*units.KB {
		if env.M > 0 {
			bh = rmax / int64(env.M)
		}
		if env.N > 0 {
			bs = rmax / int64(env.N)
		}
	}
	if bs < step {
		bs = step
	}
	if bh < step {
		bh = step
	}
	if env.M == 0 {
		bh = 0
	}
	best := RSSDResult{Cost: math.Inf(1)}
	const tieEps = 1e-12
	evaluate := func(l stripe.Layout) {
		best.Tried++
		var cost float64
		for _, r := range sreqs {
			cost += costmodel.RequestCost(env.Params, l, r.op, 0, r.size, r.stride, r.conc) * r.weight
			if cost > best.Cost+tieEps {
				best.Pruned++
				return
			}
		}
		if cost < best.Cost-tieEps ||
			(cost <= best.Cost+tieEps && l.H+l.S > best.Layout.H+best.Layout.S) {
			best.Cost = cost
			best.Layout = l
		}
	}
	for h := int64(0); h <= bh; h += step {
		if env.N == 0 {
			if h > 0 {
				evaluate(stripe.Layout{M: env.M, N: 0, H: h, S: 0})
			}
			continue
		}
		for s := h + step; s <= bs; s += step {
			evaluate(stripe.Layout{M: env.M, N: env.N, H: h, S: s})
		}
	}
	if env.M > 0 && env.N > 0 {
		for c := step; c <= units.Max(bh, bs); c += step {
			evaluate(stripe.Uniform(env.M, env.N, c))
		}
	}
	return best
}
