package layout

import (
	"testing"

	"mhafs/internal/stripe"
	"mhafs/internal/units"
)

func TestExtendedSchemesRegistry(t *testing.T) {
	if len(ExtendedSchemes()) != 6 {
		t.Fatalf("ExtendedSchemes = %v", ExtendedSchemes())
	}
	for _, s := range []Scheme{CARL, HAS} {
		if _, err := NewPlanner(s); err != nil {
			t.Errorf("NewPlanner(%v): %v", s, err)
		}
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed", s)
		}
	}
}

func TestCARLPlanSelectivePlacement(t *testing.T) {
	env := testEnv()
	env.MaxRegions = 8
	p := planFor(t, CARL, mixedTrace(), env)
	if len(p.Regions) == 0 {
		t.Fatal("no regions")
	}
	var ssdRegions, hddRegions int
	for _, r := range p.Regions {
		switch {
		case r.Layout.H == 0 && r.Layout.S > 0:
			ssdRegions++
		case r.Layout.S == 0 && r.Layout.H > 0:
			hddRegions++
		default:
			t.Errorf("CARL region %s uses both classes: %v", r.File, r.Layout)
		}
	}
	if ssdRegions == 0 {
		t.Error("CARL promoted no regions to the SServers")
	}
	if hddRegions == 0 {
		t.Error("CARL must leave low-cost regions on the HServers (capacity bound)")
	}
	// The capacity bound: promoted bytes within the fraction (plus one
	// region of slack for rounding).
	var ssdBytes, total int64
	for _, r := range p.Regions {
		total += r.Size
		if r.Layout.H == 0 {
			ssdBytes += r.Size
		}
	}
	if float64(ssdBytes) > carlSSDFraction*float64(total)+float64(total)/float64(len(p.Regions)) {
		t.Errorf("CARL promoted %d of %d bytes, beyond the capacity fraction", ssdBytes, total)
	}
}

func TestHASSelectsPerRegionCandidates(t *testing.T) {
	env := testEnv()
	env.MaxRegions = 8
	p := planFor(t, HAS, mixedTrace(), env)
	def := env.DefaultStripe
	seen := map[string]bool{}
	for _, r := range p.Regions {
		l := r.Layout
		switch {
		case l.H == def && l.S == 0:
			seen["1-DH"] = true
		case l.H == 0 && l.S == def:
			seen["1-DV"] = true
		case l.H == def && l.S == def:
			seen["2-D"] = true
		default:
			t.Errorf("HAS region %s uses a non-candidate layout %v", r.File, l)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no regions planned")
	}
}

// On a small-request workload HAS must choose 1-DV (SServers) — the
// heterogeneity-aware selection the scheme is named for.
func TestHASSmallRequestsPickSSD(t *testing.T) {
	env := testEnv()
	var tr []struct{}
	_ = tr
	small := mixedTrace()[:8] // the 16KB requests only
	p := planFor(t, HAS, small, env)
	for _, r := range p.Regions {
		if r.Layout.H != 0 {
			t.Errorf("small-request region %s not SServer-only: %v", r.File, r.Layout)
		}
	}
}

func TestExtraSchemesSingleClassClusters(t *testing.T) {
	env := testEnv()
	env.N = 0
	for _, s := range []Scheme{CARL, HAS} {
		p := planFor(t, s, mixedTrace(), env)
		for _, r := range p.Regions {
			if r.Layout.N != 0 || r.Layout.H == 0 {
				t.Errorf("%v region on HServer-only cluster: %v", s, r.Layout)
			}
		}
	}
	env = testEnv()
	env.M = 0
	for _, s := range []Scheme{CARL, HAS} {
		p := planFor(t, s, mixedTrace(), env)
		for _, r := range p.Regions {
			if r.Layout.M != 0 || r.Layout.S == 0 {
				t.Errorf("%v region on SServer-only cluster: %v", s, r.Layout)
			}
		}
	}
	_ = stripe.Layout{}
	_ = units.KB
}
