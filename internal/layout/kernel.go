package layout

import (
	"mhafs/internal/costmodel"
	"mhafs/internal/stripe"
	"mhafs/internal/trace"
)

// costKernel is the incremental epoch-cost evaluator behind the stripe
// searches: it computes exactly the number costmodel.RequestCost computes
// (the slowest server's time for conc stride-spaced requests at offset 0)
// but with closed-form per-server prefix sums instead of materializing
// sub-requests, reusing scratch slices across candidates, and collapsing
// the epoch's requests to their distinct round phases.
//
// Two facts make this an exact replacement, not an approximation
// (DESIGN.md §17 gives the full argument):
//
//  1. The bytes request j of the epoch places on server i are
//     B(j·d+size) − B(j·d) where B is stripe.PrefixBytes for the server's
//     round window; B is translation-invariant modulo rounds, so only the
//     request's phase u_j = (j·d) mod L matters. A contiguous extent
//     intersects a server's stripes in one contiguous local range
//     (stripe.Split yields at most one sub-request per server), so the
//     per-request process count on a server is 1 exactly when those bytes
//     are positive — the kernel's procs increment matches the naive
//     walk's per-sub-request increment.
//  2. The phases u_j are periodic in j with period p = L/gcd(L, d mod L)
//     (p = 1 when d is a round multiple). An epoch of conc requests is
//     therefore ⌊conc/p⌋ copies of the full phase set plus the first
//     conc mod p phases; per-server bytes and procs are integer sums, so
//     scaling the period totals by ⌊conc/p⌋ is exact — no floats are
//     touched until the final SubRequestTime calls, which see the same
//     integer inputs as the naive walk and hence return the same floats.
//
// Per candidate the cost is O((M+N)·min(conc, p)) with zero allocations,
// against the naive walk's O((M+N)·conc) plus per-request Split/Servers
// allocations.
type costKernel struct {
	params costmodel.Params
	bytes  []int64
	procs  []int64
	width  []int64 // per flat server: stripe width under the current candidate
	base   []int64 // per flat server: within-round base offset
}

// newCostKernel sizes the scratch for layouts of at most nsrv servers.
// One kernel serves one search (one parfan worker); it is not safe for
// concurrent use.
func newCostKernel(params costmodel.Params, nsrv int) *costKernel {
	return &costKernel{
		params: params,
		bytes:  make([]int64, nsrv),
		procs:  make([]int64, nsrv),
		width:  make([]int64, nsrv),
		base:   make([]int64, nsrv),
	}
}

// epochCost evaluates one term of the search objective: the cost of conc
// requests of the given size issued at stride-spaced offsets from 0 under
// layout l. Bit-identical to
// costmodel.RequestCost(params, l, op, 0, size, stride, conc).
func (k *costKernel) epochCost(l stripe.Layout, op trace.Op, size, stride int64, conc int) float64 {
	if conc < 1 {
		conc = 1
	}
	if size <= 0 {
		return 0
	}
	if stride < size {
		stride = size
	}
	n := l.M + l.N
	L := l.RoundLength()
	bytes, procs := k.bytes[:n], k.procs[:n]
	width, base := k.width[:n], k.base[:n]
	var cum int64
	for i := 0; i < n; i++ {
		w := l.H
		if i >= l.M {
			w = l.S
		}
		width[i], base[i] = w, cum
		cum += w
		bytes[i], procs[i] = 0, 0
	}

	// Distinct phases of the epoch: u_j = (j·d) mod L has period
	// p = L/gcd(L, d) with d = stride mod L (p = 1 when d = 0).
	d := stride % L
	period := int64(1)
	if d != 0 {
		period = L / gcd64(L, d)
	}
	phases := int64(conc)
	if period < phases {
		phases = period
	}
	addPhase := func(off int64) {
		for i := 0; i < n; i++ {
			if width[i] == 0 {
				continue
			}
			b := stripe.PrefixBytes(off+size, base[i], width[i], L) -
				stripe.PrefixBytes(off, base[i], width[i], L)
			if b > 0 {
				bytes[i] += b
				procs[i]++
			}
		}
	}
	off := int64(0)
	for j := int64(0); j < phases; j++ {
		addPhase(off)
		off += d
		if off >= L {
			off -= L
		}
	}
	if phases < int64(conc) {
		// conc = full·period + rem: the accumulated period totals repeat
		// full times, then the first rem phases run once more. Integer
		// scaling, so exact.
		full := int64(conc) / period
		rem := int64(conc) % period
		for i := 0; i < n; i++ {
			bytes[i] *= full
			procs[i] *= full
		}
		off = 0
		for j := int64(0); j < rem; j++ {
			addPhase(off)
			off += d
			if off >= L {
				off -= L
			}
		}
	}

	var worst float64
	for i := 0; i < n; i++ {
		class := stripe.ClassH
		if i >= l.M {
			class = stripe.ClassS
		}
		// procs[i] ≤ conc (an int), so the conversion is exact.
		t := k.params.SubRequestTime(class, op, int(procs[i]), bytes[i]) //mhavet:allow trunc
		if t > worst {
			worst = t
		}
	}
	return worst
}

// gcd64 is the classic Euclid loop; gcd64(a, 0) = a.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
