package iopath

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// logObserver records enter/exit callbacks in order.
type logObserver struct{ log []string }

func (o *logObserver) StageEnter(stage string, req *Request) {
	o.log = append(o.log, "enter:"+stage)
}
func (o *logObserver) StageExit(stage string, req *Request) {
	o.log = append(o.log, "exit:"+stage)
}

func TestObserverNesting(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	var log []string
	obs := &logObserver{}
	p.SetObserver(obs)
	if err := p.Append("a", mark(&log, "a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("b", mark(&log, "b")); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("end", terminal(&log)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(&Request{File: "f", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// The dispatch recursion is properly nested: exits unwind in reverse.
	want := []string{
		"enter:a", "enter:b", "enter:end",
		"exit:end", "exit:b", "exit:a",
	}
	if !reflect.DeepEqual(obs.log, want) {
		t.Fatalf("observer saw %v, want %v", obs.log, want)
	}

	// Clearing the observer stops callbacks; requests still flow.
	p.SetObserver(nil)
	obs.log = nil
	if err := p.Submit(&Request{File: "g", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if len(obs.log) != 0 {
		t.Fatalf("cleared observer still saw %v", obs.log)
	}
}

func TestStageTimerVirtualSpans(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	reg := telemetry.NewRegistry()
	p.SetObserver(NewStageTimer(reg, eng))

	// "slow" completes the request 2 virtual seconds after dispatch, like a
	// server stage waiting out its sub-requests.
	slow := StageFunc(func(req *Request, next Handler) error {
		eng.Schedule(2, func() { req.Finish(eng.Now()) })
		return nil
	})
	if err := p.Append("pass", StageFunc(func(req *Request, next Handler) error {
		return next(req)
	})); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("slow", slow); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Submit(&Request{File: "f", Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}

	for _, stage := range []string{"pass", "slow"} {
		if got := reg.Counter(MetricStageRequests, telemetry.L("stage", stage)).Value(); got != 3 {
			t.Errorf("stage %s requests = %v, want 3", stage, got)
		}
		handle := reg.Span(MetricStageHandle, telemetry.L("stage", stage))
		if handle.Count() != 3 || handle.Total() != 0 {
			t.Errorf("stage %s handle span = %v over %d, want 0 over 3 (synchronous dispatch)",
				stage, handle.Total(), handle.Count())
		}
		span := reg.Span(MetricStageSpan, telemetry.L("stage", stage))
		if span.Count() != 3 || span.Total() != 6 {
			t.Errorf("stage %s full span = %v over %d, want 6 over 3 (2 virtual seconds each)",
				stage, span.Total(), span.Count())
		}
	}
}

func TestMeterCountsAndLatency(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	reg := telemetry.NewRegistry()
	if err := p.Append("meter", NewMeter(reg)); err != nil {
		t.Fatal(err)
	}
	finishAt := StageFunc(func(req *Request, next Handler) error {
		eng.Schedule(3, func() { req.Finish(eng.Now()) })
		return nil
	})
	if err := p.Append("end", finishAt); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(&Request{Op: trace.OpWrite, File: "f", Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(&Request{Op: trace.OpRead, File: "f", Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := reg.Counter(MetricRequests, telemetry.L("op", "write")).Value(); got != 1 {
		t.Errorf("writes = %v, want 1", got)
	}
	if got := reg.Counter(MetricRequests, telemetry.L("op", "read")).Value(); got != 1 {
		t.Errorf("reads = %v, want 1", got)
	}
	sizes := reg.Histogram(MetricRequestSize, telemetry.SizeBuckets())
	if sizes.Count() != 2 || sizes.Sum() != 4196 {
		t.Errorf("size histogram = %v over %d, want 4196 over 2", sizes.Sum(), sizes.Count())
	}
	lat := reg.Histogram(MetricRequestLatency, telemetry.LatencyBuckets())
	if lat.Count() != 2 || lat.Sum() != 6 {
		t.Errorf("latency histogram = %v over %d, want 6 over 2", lat.Sum(), lat.Count())
	}
}

// TestRecorderConcurrentEmission drives completion callbacks and readers
// from many goroutines; the race detector checks the Recorder's locking.
func TestRecorderConcurrentEmission(t *testing.T) {
	rec := NewRecorder()
	noop := func(req *Request) error { return nil }
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := &Request{Op: trace.OpWrite, File: fmt.Sprintf("f%d", w),
					Offset: int64(i), Data: []byte{1}, Rank: w}
				if err := rec.Handle(req, noop); err != nil {
					t.Error(err)
					return
				}
				req.OnComplete(float64(i))
				if i%10 == 0 {
					rec.Len()
					rec.CompletionTrace()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := rec.Len(); got != workers*per {
		t.Fatalf("recorded %d, want %d", got, workers*per)
	}
	perFile := make(map[string]int)
	for _, r := range rec.Records() {
		perFile[r.File]++
	}
	for w := 0; w < workers; w++ {
		if n := perFile[fmt.Sprintf("f%d", w)]; n != per {
			t.Errorf("worker %d recorded %d, want %d", w, n, per)
		}
	}
}
