package iopath

import (
	"mhafs/internal/server"
	"mhafs/internal/trace"
)

// CancelSet collects the cancellable server submissions of one request
// subtree. The adaptive scheduler attaches a fresh set to each leg of a
// speculation race (Request.Cancels, inherited by every derived child);
// the terminal stages register each attempt's Pending handle as they
// submit it, and the race cancels the loser's whole set at settle time.
//
// The set latches: once Cancel has run, every later Add cancels its
// handle immediately — a retry attempt issued after the race settled is
// withdrawn on arrival instead of escaping the race.
type CancelSet struct {
	pending   []*server.Pending
	cancelled bool
}

// NewCancelSet returns an empty set.
func NewCancelSet() *CancelSet { return &CancelSet{} }

// Add registers a submission handle. Nil handles (outage refusals, which
// have nothing to cancel) are ignored; handles added after Cancel are
// cancelled immediately.
func (cs *CancelSet) Add(p *server.Pending) {
	if p == nil {
		return
	}
	if cs.cancelled {
		p.Cancel()
		return
	}
	cs.pending = append(cs.pending, p)
}

// Cancel withdraws every registered submission and latches the set.
func (cs *CancelSet) Cancel() {
	if cs.cancelled {
		return
	}
	cs.cancelled = true
	for i, p := range cs.pending {
		p.Cancel()
		cs.pending[i] = nil
	}
	cs.pending = cs.pending[:0]
}

// Cancelled reports whether Cancel ran.
func (cs *CancelSet) Cancelled() bool { return cs.cancelled }

// submitCancellable routes one server-bound sub-request through the
// cancellable submission path, registering the handle in the request's
// CancelSet. done mirrors the Err-returning submits.
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func submitCancellable(req *Request, done func(end float64, err error)) {
	b := req.Binding
	var p *server.Pending
	switch {
	case b.Server.IsDataless():
		p = b.Server.SubmitOpCancellable(req.Op, b.bytes(), done)
	case req.Op == trace.OpWrite:
		p = b.Server.SubmitWriteCancellable(b.Object, b.Local, b.Payload, done)
	default:
		p = b.Server.SubmitReadCancellable(b.Object, b.Local, b.Payload, done)
	}
	req.Cancels.Add(p)
}

// serveCancellable is the terminal submission of a withdrawable
// sub-request (ServerStage's branch for req.Cancels != nil): completion
// flows through IODone exactly like the descriptor path — including the
// read scatter and error propagation — and the handle lands in the set.
//
//mhavet:coldpath cancellable submission runs only for speculative duplicates
func serveCancellable(req *Request) {
	submitCancellable(req, func(end float64, err error) {
		req.IODone(end, err)
	})
}
