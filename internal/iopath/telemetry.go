package iopath

import (
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// Telemetry series emitted on the request path.
const (
	// MetricStageHandle aggregates the synchronous enter→exit span of each
	// stage's Handle (zero against the virtual clock, where stages forward
	// synchronously; meaningful against a wall clock when profiling the
	// implementation).
	MetricStageHandle = "iopath_stage_handle_seconds"
	// MetricStageSpan aggregates the enter→completion span of each stage:
	// how long requests that entered the stage took to fully complete,
	// measured on the clock the timer was built with.
	MetricStageSpan = "iopath_stage_span_seconds"
	// MetricStageRequests counts requests entering each stage (children
	// included, so redirect/stripe fan-out is visible as stage-over-stage
	// growth).
	MetricStageRequests = "iopath_stage_requests_total"

	// MetricRequests counts application-level requests by operation.
	MetricRequests = "iopath_requests_total"
	// MetricRequestSize is the application-level request size histogram.
	MetricRequestSize = "iopath_request_size_bytes"
	// MetricRequestLatency is the submit-to-completion virtual latency
	// histogram of application-level requests.
	MetricRequestLatency = "iopath_request_latency_seconds"
)

// StageTimer implements Observer, recording per-stage spans and request
// counts into a telemetry registry. Two spans are kept per stage: the
// synchronous Handle span (enter→exit) and the full span
// (enter→completion), both measured on the injected clock — the
// simulation engine for deterministic virtual-time telemetry, a
// wallclock.Clock when profiling the implementation.
type StageTimer struct {
	reg   *telemetry.Registry
	clock telemetry.Clock

	// starts is the enter-time stack of the properly nested dispatch
	// recursion; it is only touched under the pipeline's submission lock.
	starts []float64
}

// NewStageTimer creates a stage timer emitting into reg against clock.
func NewStageTimer(reg *telemetry.Registry, clock telemetry.Clock) *StageTimer {
	if reg == nil || clock == nil {
		panic("iopath: stage timer needs a registry and a clock")
	}
	return &StageTimer{reg: reg, clock: clock}
}

// StageEnter records the stage entry and arms the completion span.
//
// Telemetry interception allocates (spans, label sorting, series
// registration) by design: the timer is installed only when profiling
// the implementation, outside the 0-alloc contract.
//
//mhavet:coldpath profiling interceptor, installed on demand
func (t *StageTimer) StageEnter(stage string, req *Request) {
	now := t.clock.Now()
	t.starts = append(t.starts, now)
	t.reg.Counter(MetricStageRequests, telemetry.L("stage", stage)).Inc()

	span := t.reg.Span(MetricStageSpan, telemetry.L("stage", stage))
	clock := t.clock
	prev := req.OnComplete
	req.OnComplete = func(end float64) {
		// The completion callback runs at the completing event, so the
		// clock reads the completion instant in the same timebase as the
		// recorded entry (virtual or wall).
		span.Observe(clock.Now() - now)
		if prev != nil {
			prev(end)
		}
	}
}

// StageExit closes the synchronous Handle span opened by the matching
// StageEnter.
//
//mhavet:coldpath profiling interceptor, installed on demand
func (t *StageTimer) StageExit(stage string, req *Request) {
	n := len(t.starts)
	if n == 0 {
		return // unmatched exit: observer installed mid-dispatch
	}
	start := t.starts[n-1]
	t.starts = t.starts[:n-1]
	t.reg.Span(MetricStageHandle, telemetry.L("stage", stage)).Observe(t.clock.Now() - start)
}

// Meter is an interceptor stage recording application-level request
// counters and histograms: operations by type, request sizes, and
// submit-to-completion virtual latency. Register it before the redirect
// stage (Middleware.EnableTelemetry does) so it observes whole
// application requests rather than redirected or striped pieces.
type Meter struct {
	reads, writes *telemetry.Counter
	sizes         *telemetry.Histogram
	latency       *telemetry.Histogram
}

// NewMeter creates a meter emitting into reg.
func NewMeter(reg *telemetry.Registry) *Meter {
	return &Meter{
		reads:   reg.Counter(MetricRequests, telemetry.L("op", "read")),
		writes:  reg.Counter(MetricRequests, telemetry.L("op", "write")),
		sizes:   reg.Histogram(MetricRequestSize, telemetry.SizeBuckets()),
		latency: reg.Histogram(MetricRequestLatency, telemetry.LatencyBuckets()),
	}
}

// Handle records the request and wraps its completion to observe latency.
//
//mhavet:coldpath profiling interceptor, installed on demand
func (m *Meter) Handle(req *Request, next Handler) error {
	if req.Op == trace.OpWrite {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	m.sizes.Observe(float64(req.Size()))
	start := req.Submit
	lat := m.latency
	prev := req.OnComplete
	req.OnComplete = func(end float64) {
		lat.Observe(end - start)
		if prev != nil {
			prev(end)
		}
	}
	return next(req)
}
