package iopath

import (
	"fmt"

	"mhafs/internal/server"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// StageBatch is the batching stage's canonical name; it registers between
// stripe and server.
const StageBatch = "batch"

// Batcher coalesces server-bound sub-requests into single service events.
// It models request aggregation in the client I/O stack: sub-requests
// issued at the same virtual instant that address contiguous ranges of the
// same server object are submitted as one merged operation, paying the
// per-message overhead once.
//
// The batching contract:
//
//   - Scope: one flush covers the sub-requests enqueued within one
//     aggregation window — the first enqueue arms a flush event `window`
//     virtual seconds out (zero means the same instant, after every event
//     already queued there), and everything enqueued before it fires
//     flushes together. Window boundaries are virtual-time arithmetic and
//     event order is deterministic, so the flush boundary — and therefore
//     every merge decision — is too. A positive window trades up to that
//     much added latency per batch for larger merges, the block-layer
//     plugging / write-gathering trade.
//   - Merging: the flush groups the queue by (op, server, object) in
//     first-arrival order and then merges adjacent entries of a group
//     while each starts where the previous one ended (local offset
//     continuity). Round-robin striping interleaves servers in dispatch
//     order, so a striped request's per-server pieces only become
//     adjacent, and therefore mergeable, under this grouping. Groups are
//     small — one extent per client in a typical flush — so restoring
//     ascending local order costs an insertion sort per group, not a
//     comparison sort of the whole queue.
//   - Completion: the merged request is submitted through the rest of the
//     chain (composing with the retry stage); when it finishes, every
//     member finishes at the merged end time, inheriting a terminal error
//     if the whole batch failed. Members never touch the server
//     themselves.
//   - Pass-through: a batch of one is dispatched unmerged, and
//     byte-storing servers are never merged (a merged write would have to
//     gather member payloads); batching is an XL-tier optimization and
//     assumes dataless servers.
//
// Batching changes the modeled cost — fewer, larger service events — so it
// is opt-in and stays out of the paper-figure pipelines.
type Batcher struct {
	eng    *sim.Engine
	pipe   *Pipeline
	window float64

	next    Handler
	queue   []*Request
	groups  []batchGroup
	armed   bool
	flushFn func()
}

// batchGroup collects one flush's sub-requests for a single
// (op, server, object) key, in arrival order. The slots and their reqs
// slices are reused across flushes.
type batchGroup struct {
	op     trace.Op
	server *server.Server
	object string
	reqs   []*Request
}

// NewBatcher creates the stage for a pipeline; window is the aggregation
// window in virtual seconds (0 flushes at the enqueueing instant).
// Register it with p.InsertBefore(StageServer, StageBatch, b).
func NewBatcher(p *Pipeline, window float64) *Batcher {
	if p == nil {
		panic("iopath: batcher needs a pipeline")
	}
	if window < 0 {
		panic(fmt.Sprintf("iopath: negative batch window %g", window))
	}
	b := &Batcher{eng: p.Engine(), pipe: p, window: window}
	b.flushFn = func() {
		b.armed = false
		b.flush()
	}
	return b
}

// Handle enqueues the sub-request and, if no flush is armed, arms one a
// window past the current instant. With a zero window the event fires
// after every event already queued at this time, so all sub-requests
// issued at the instant flush together; with a positive window everything
// enqueued before the flush fires joins the batch.
func (b *Batcher) Handle(req *Request, next Handler) error {
	if req.Binding == nil {
		return fmt.Errorf("iopath: request for %q reached the batch stage without a binding", req.File)
	}
	b.next = next
	b.queue = append(b.queue, req)
	if !b.armed {
		b.armed = true
		b.eng.AtCall(b.eng.Now()+b.window, b)
	}
	return nil
}

// Fire runs the flush event under the submission lock, like every stage
// re-entering the chain from a scheduled event.
func (b *Batcher) Fire() { b.pipe.Exclusive(b.flushFn) }

// flush groups the queued sub-requests by (op, server, object), merges
// each group's contiguous runs, and dispatches them. Callers hold the
// submission lock.
//
// Grouping is a linear scan over a handful of keys (ops × servers × open
// objects of one flush), cheaper than sorting the queue. Within a group
// each client contributes one coalesced extent, but clients issue in the
// order the previous barrier released them, so arrival order is only
// nearly ascending; a per-group insertion sort on local offset restores
// it with plain integer compares. The run loop still verifies
// continuity, so any residual disorder only costs a missed merge, never
// a wrong one.
func (b *Batcher) flush() {
	groups := b.groups[:0]
	for _, r := range b.queue {
		bb := r.Binding
		if !bb.Server.IsDataless() {
			// Byte-storing servers are never merged; dispatch in place.
			_ = b.next(r)
			continue
		}
		gi := -1
		for i := range groups {
			g := &groups[i]
			if g.op == r.Op && g.server == bb.Server && g.object == bb.Object {
				gi = i
				break
			}
		}
		if gi < 0 {
			// Extend into spare capacity by hand so each slot's reqs
			// slice keeps its backing array across flushes.
			if cap(groups) > len(groups) {
				groups = groups[:len(groups)+1]
			} else {
				groups = append(groups, batchGroup{})
			}
			gi = len(groups) - 1
			g := &groups[gi]
			g.op, g.server, g.object = r.Op, bb.Server, bb.Object
			g.reqs = g.reqs[:0]
		}
		groups[gi].reqs = append(groups[gi].reqs, r)
	}
	// Dispatch errors cannot occur past this stage: the terminal stages
	// error only on a nil binding, checked at enqueue, and merged requests
	// are always bound.
	for gi := range groups {
		q := groups[gi].reqs
		for i := 1; i < len(q); i++ {
			r := q[i]
			j := i
			for j > 0 && q[j-1].Binding.Local > r.Binding.Local {
				q[j] = q[j-1]
				j--
			}
			q[j] = r
		}
		i := 0
		for i < len(q) {
			base := q[i]
			bb := base.Binding
			end := bb.Local + bb.bytes()
			j := i + 1
			for j < len(q) {
				nb := q[j].Binding
				if nb.Local != end {
					break
				}
				end += nb.bytes()
				j++
			}
			if j == i+1 {
				_ = b.next(base)
			} else {
				merged := b.pipe.get()
				merged.Op, merged.File, merged.Offset = base.Op, base.File, base.Offset
				merged.Rank, merged.PID, merged.FD = base.Rank, base.PID, base.FD
				merged.Untraced, merged.Submit = true, base.Submit
				merged.Target = base.Target
				merged.SetBinding(ServerBinding{
					Server: bb.Server,
					Object: bb.Object,
					Local:  bb.Local,
					Bytes:  end - bb.Local,
				})
				for k := i; k < j-1; k++ {
					q[k].batchNext = q[k+1]
				}
				merged.batchNext = q[i]
				_ = b.next(merged)
			}
			i = j
		}
		for k := range q {
			q[k] = nil
		}
		groups[gi].reqs = q[:0]
	}
	b.groups = groups
	for k := range b.queue {
		b.queue[k] = nil
	}
	b.queue = b.queue[:0]
}
