package iopath

import (
	"fmt"

	"mhafs/internal/iosig"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// FileResolver resolves a file name to its metadata record, creating the
// file when the owner's policy allows (the middleware's AutoCreate).
type FileResolver interface {
	ResolveFile(name string) (*pfs.File, error)
}

// Capture is the trace-capture stage (the paper's tracing phase). A nil
// Collector makes it a pass-through, so the slot can stay registered while
// tracing is not wired.
type Capture struct {
	Collector *iosig.Collector
}

// Handle records the request and forwards it unchanged.
func (c *Capture) Handle(req *Request, next Handler) error {
	if col := c.Collector; col != nil && !req.Untraced && req.Size() > 0 {
		col.Record(req.PID, req.Rank, req.FD, req.File, req.Op, req.Offset, req.Size())
	}
	return next(req)
}

// Redirect is the DRT-redirection stage (the paper's redirection phase):
// it translates the request's extent to its reordered locations, charges
// the client-side DRT lookup latency, and fans the request out into one
// child per target extent. The request completes when its slowest child
// completes.
type Redirect struct {
	Redirector *reorder.Redirector
	Files      FileResolver
	Eng        *sim.Engine
}

// Handle splits the request along its DRT targets. Target files are
// resolved synchronously (so configuration errors surface to the caller);
// the children enter the rest of the chain after the lookup latency.
//
// The per-child fan-out allocates (children slice, deferred-dispatch
// closures) by design: redirection runs only in reorganized-layout
// experiments, never in the XL tier's default chain, so it sits outside
// the 0-alloc contract.
//
//mhavet:coldpath DRT redirection is not in the XL hot chain
func (rd *Redirect) Handle(req *Request, next Handler) error {
	r := rd.Redirector
	n := req.Size()
	targets := r.Resolve(req.File, req.Offset, n)
	children := make([]*Request, 0, len(targets))
	var cursor int64
	for _, tg := range targets {
		f, err := rd.Files.ResolveFile(tg.File)
		if err != nil {
			return err
		}
		child := req.child(tg.File, tg.Offset, req.Data[cursor:cursor+tg.Size])
		child.Target = f
		children = append(children, child)
		cursor += tg.Size
	}
	if cursor != n {
		return fmt.Errorf("iopath: redirection covered %d of %d bytes", cursor, n)
	}
	req.fanOut(len(children))
	rd.Eng.Schedule(r.LookupTime, func() {
		req.pipe.Exclusive(func() {
			for _, child := range children {
				// Errors cannot occur here: extents were validated and
				// target files resolved before scheduling.
				_ = next(child)
			}
		})
	})
	return nil
}

// Striper is the stripe fan-out stage: it resolves the target file (unless
// a redirect child already carries it) and splits the extent into one
// coalesced sub-request per storage server, exactly as a PFS client does.
// The request completes when its slowest sub-request completes.
type Striper struct {
	Cluster *pfs.Cluster
	Files   FileResolver
}

// Handle fans the request out into server-bound children.
func (s *Striper) Handle(req *Request, next Handler) error {
	f := req.Target
	if f == nil {
		var err error
		f, err = s.Files.ResolveFile(req.File)
		if err != nil {
			return err
		}
		req.Target = f
	}
	var subs []pfs.SubRequest
	if req.Op == trace.OpWrite {
		subs = s.Cluster.PlanWrite(f, req.Offset, req.Data)
	} else {
		subs = s.Cluster.PlanRead(f, req.Offset, req.Data)
	}
	req.fanOut(len(subs))
	for i := range subs {
		sub := &subs[i]
		child := req.child(req.File, req.Offset, sub.Data)
		child.Target = f
		child.SetBinding(ServerBinding{
			Server:  sub.Server,
			Object:  sub.Object,
			Local:   sub.Local,
			Payload: sub.Data,
			Scatter: sub.Scatter,
		})
		if err := next(child); err != nil {
			return err
		}
	}
	return nil
}

// ServerStage is the terminal stage: it hands each server-bound
// sub-request to its storage server, whose model charges the network
// transport and device service time and completes the request.
type ServerStage struct{}

// Handle submits the sub-request; the chain ends here.
func (ServerStage) Handle(req *Request, next Handler) error {
	b := req.Binding
	if b == nil {
		return fmt.Errorf("iopath: request for %q reached the server stage without a binding", req.File)
	}
	if req.Cancels != nil {
		// Speculation-race legs must stay withdrawable end to end; the
		// cancellable path is the coldpath, so the default submissions
		// below stay byte-identical.
		serveCancellable(req)
		return nil
	}
	if b.Server.IsDataless() {
		// The descriptor path: the request itself receives the completion
		// (IODone), so the hot loop allocates no done closure.
		b.Server.SubmitDataless(req.Op, b.bytes(), req)
		return nil
	}
	if req.Op == trace.OpWrite {
		// Byte-accurate submission completes through a per-request closure;
		// the 0-alloc contract covers the descriptor path above.
		b.Server.SubmitWrite(b.Object, b.Local, b.Payload, func(end float64) { //mhavet:allow closure
			req.Finish(end)
		})
		return nil
	}
	b.Server.SubmitRead(b.Object, b.Local, b.Payload, func(end float64) { //mhavet:allow closure
		if b.Scatter != nil {
			b.Scatter()
		}
		req.Finish(end)
	})
	return nil
}
