// Hot-loop allocation benchmarks, run as an external test package so they
// can drive the real middleware → pipeline → server path end to end.
//
// CI's xl-smoke job parses these with -benchmem and fails the build when
// the fan-out hot loop exceeds its allocs/op ceiling (see
// .github/workflows/ci.yml): the pooled descriptors, prebuilt chain
// handlers, inline bindings and dataless servers exist precisely so this
// number stays ~0.
package iopath_test

import (
	"testing"

	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/units"
)

// benchSetup builds a dataless paper-shaped cluster with one DEF file and
// warms every pool on the path (request descriptors, server in-flight
// descriptors, plan scratch, the event heap) so the measured loop sees
// steady state.
func benchSetup(b *testing.B, buf []byte) (*mpiio.FileHandle, *pfs.Cluster) {
	b.Helper()
	cfg := pfs.DefaultConfig()
	cfg.Dataless = true
	c, err := pfs.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mw := mpiio.New(c)
	h, err := mw.Open("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := h.WriteAt(buf, 0, nil); err != nil {
			b.Fatal(err)
		}
		c.Eng.Run()
	}
	return h, c
}

func BenchmarkHotLoopWrite(b *testing.B) {
	buf := make([]byte, 256*units.KB)
	h, c := benchSetup(b, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.WriteAt(buf, 0, nil); err != nil {
			b.Fatal(err)
		}
		c.Eng.Run()
	}
}

func BenchmarkHotLoopRead(b *testing.B) {
	buf := make([]byte, 256*units.KB)
	h, c := benchSetup(b, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.ReadAt(buf, 0, nil); err != nil {
			b.Fatal(err)
		}
		c.Eng.Run()
	}
}
