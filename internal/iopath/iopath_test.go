package iopath

import (
	"reflect"
	"testing"

	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// mark returns a stage that logs its name and forwards.
func mark(log *[]string, name string) Stage {
	return StageFunc(func(req *Request, next Handler) error {
		*log = append(*log, name)
		return next(req)
	})
}

// terminal completes the request at the current virtual time.
func terminal(log *[]string) Stage {
	return StageFunc(func(req *Request, next Handler) error {
		*log = append(*log, "end")
		req.Finish(req.pipe.Engine().Now())
		return nil
	})
}

func TestStageOrdering(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	var log []string
	if err := p.Append("a", mark(&log, "a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("end", terminal(&log)); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertBefore("end", "c", mark(&log, "c")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertBefore("c", "b", mark(&log, "b")); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "end"}
	if got := p.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}

	var end float64 = -1
	req := &Request{Op: trace.OpWrite, File: "f", Data: []byte{1},
		OnComplete: func(e float64) { end = e }}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("execution order = %v, want %v", log, want)
	}
	if end != 0 || req.Complete != 0 || req.Submit != 0 {
		t.Fatalf("completion not stamped: end=%v submit=%v complete=%v", end, req.Submit, req.Complete)
	}
}

func TestRegistrationErrors(t *testing.T) {
	p := NewPipeline(&sim.Engine{})
	var log []string
	if err := p.Append("a", mark(&log, "a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("a", mark(&log, "a")); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := p.Append("", mark(&log, "x")); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.Append("nil", nil); err == nil {
		t.Error("nil stage accepted")
	}
	if err := p.InsertBefore("ghost", "x", mark(&log, "x")); err == nil {
		t.Error("unknown anchor accepted")
	}
	if err := p.Replace("ghost", mark(&log, "x")); err == nil {
		t.Error("replacing unknown stage accepted")
	}
	if p.Remove("ghost") {
		t.Error("Remove(ghost) reported true")
	}
	if !p.Has("a") || p.Has("ghost") {
		t.Error("Has misreports registration")
	}
	if !p.Remove("a") || p.Has("a") {
		t.Error("Remove(a) did not unregister")
	}
}

// TestChainSnapshot: a request in flight keeps traversing the chain it was
// submitted into, even if stages are removed before its scheduled
// continuation runs.
func TestChainSnapshot(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	var log []string
	// "delay" forwards from a scheduled event, like the redirect stage.
	delay := StageFunc(func(req *Request, next Handler) error {
		eng.Schedule(1, func() {
			req.pipe.Exclusive(func() {
				if err := next(req); err != nil {
					t.Errorf("deferred next: %v", err)
				}
			})
		})
		return nil
	})
	if err := p.Append("delay", delay); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("obs", mark(&log, "obs")); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("end", terminal(&log)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(&Request{File: "f", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// Unregister the observer while the request sits in the event queue.
	if !p.Remove("obs") {
		t.Fatal("Remove(obs) failed")
	}
	eng.Run()
	want := []string{"obs", "end"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("in-flight request saw %v, want snapshot %v", log, want)
	}
	// A fresh request uses the updated chain.
	log = nil
	if err := p.Submit(&Request{File: "g", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if want := []string{"end"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("post-removal request saw %v, want %v", log, want)
	}
}

func TestFallOffEnd(t *testing.T) {
	p := NewPipeline(&sim.Engine{})
	var log []string
	if err := p.Append("a", mark(&log, "a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(&Request{File: "f", Data: []byte{1}}); err == nil {
		t.Fatal("request past the last stage did not error")
	}
}

func TestRecorder(t *testing.T) {
	eng := &sim.Engine{}
	p := NewPipeline(eng)
	rec := NewRecorder()
	if err := p.Append("rec", rec); err != nil {
		t.Fatal(err)
	}
	finishAt := StageFunc(func(req *Request, next Handler) error {
		eng.Schedule(2, func() { req.Finish(eng.Now()) })
		return nil
	})
	if err := p.Append("end", finishAt); err != nil {
		t.Fatal(err)
	}
	var cbEnd float64
	err := p.Submit(&Request{Op: trace.OpRead, File: "f", Offset: 8, Data: make([]byte, 4),
		Rank: 3, OnComplete: func(e float64) { cbEnd = e }})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Submit(&Request{Op: trace.OpWrite, File: "g", Data: []byte{1}, Untraced: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if cbEnd != 2 {
		t.Fatalf("wrapped callback got end=%v, want 2", cbEnd)
	}
	recs := rec.Records()
	if len(recs) != 2 || rec.Len() != 2 {
		t.Fatalf("recorded %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Op != trace.OpRead || r0.File != "f" || r0.Offset != 8 || r0.Size != 4 ||
		r0.Rank != 3 || r0.Submit != 0 || r0.Complete != 2 || r0.Latency() != 2 {
		t.Fatalf("record mismatch: %+v", r0)
	}
	// CompletionTrace skips untraced requests and stamps completion times.
	ct := rec.CompletionTrace()
	if len(ct) != 1 || ct[0].File != "f" || ct[0].Time != 2 {
		t.Fatalf("CompletionTrace = %+v", ct)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset did not clear records")
	}
}
