// Batching-stage tests, in the external package so they can drive the
// real middleware → pipeline → dataless server path.
package iopath_test

import (
	"testing"

	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/stripe"
	"mhafs/internal/units"
)

// batchSetup builds a dataless paper-shaped cluster with batching on at
// the given aggregation window.
func batchSetup(t *testing.T, window float64) (*mpiio.Middleware, *pfs.Cluster) {
	t.Helper()
	cfg := pfs.DefaultConfig()
	cfg.Dataless = true
	c, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mw := mpiio.New(c)
	if err := mw.EnableBatching(window); err != nil {
		t.Fatal(err)
	}
	return mw, c
}

// Two same-instant writes addressing adjacent halves of one stripe unit
// must reach the server as a single merged service event.
func TestBatcherMergesContiguous(t *testing.T) {
	mw, c := batchSetup(t, 0)
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32*units.KB)
	var ends []float64
	done := func(end float64) { ends = append(ends, end) }
	if err := h.WriteAt(buf, 0, done); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(buf, 32*units.KB, done); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	f, err := mw.ResolveFile("f")
	if err != nil {
		t.Fatal(err)
	}
	st := c.ServerForFile(f, stripe.ServerRef{Class: stripe.ClassH, Index: 0}).Stats()
	if st.Writes != 1 {
		t.Fatalf("writes on H0 = %d, want 1 merged submission", st.Writes)
	}
	if st.WriteBytes != 64*units.KB {
		t.Fatalf("write bytes on H0 = %d, want %d", st.WriteBytes, 64*units.KB)
	}
	if len(ends) != 2 {
		t.Fatalf("completions = %d, want 2", len(ends))
	}
	if ends[0] != ends[1] || ends[0] <= 0 {
		t.Fatalf("batched members finished at %v and %v, want one shared positive end", ends[0], ends[1])
	}
}

// Same-server pieces with a local-space gap must not merge.
func TestBatcherKeepsGapsApart(t *testing.T) {
	mw, c := batchSetup(t, 0)
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	round := int64(8 * 64 * units.KB) // 6H+2S at 64KB stripes
	buf := make([]byte, 32*units.KB)
	if err := h.WriteAt(buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(buf, round, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	f, err := mw.ResolveFile("f")
	if err != nil {
		t.Fatal(err)
	}
	st := c.ServerForFile(f, stripe.ServerRef{Class: stripe.ClassH, Index: 0}).Stats()
	if st.Writes != 2 {
		t.Fatalf("writes on H0 = %d, want 2 separate submissions", st.Writes)
	}
	if st.WriteBytes != 64*units.KB {
		t.Fatalf("write bytes on H0 = %d, want %d", st.WriteBytes, 64*units.KB)
	}
}

// Batches flush per virtual instant: a write issued from another write's
// completion lands in a later flush and is never merged backwards.
func TestBatcherFlushBoundary(t *testing.T) {
	mw, c := batchSetup(t, 0)
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32*units.KB)
	if err := h.WriteAt(buf, 0, func(end float64) {
		if err := h.WriteAt(buf, 32*units.KB, nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()

	f, err := mw.ResolveFile("f")
	if err != nil {
		t.Fatal(err)
	}
	st := c.ServerForFile(f, stripe.ServerRef{Class: stripe.ClassH, Index: 0}).Stats()
	if st.Writes != 2 {
		t.Fatalf("writes on H0 = %d, want 2 (distinct instants must not merge)", st.Writes)
	}
}

// A positive aggregation window merges across instants: the second write
// lands shortly after the first (via a scheduled event, before the flush
// fires) and must join the same batch.
func TestBatcherWindowMergesAcrossInstants(t *testing.T) {
	mw, c := batchSetup(t, 10e-3)
	h, err := mw.Open("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32*units.KB)
	if err := h.WriteAt(buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	c.Eng.Schedule(1e-3, func() {
		if err := h.WriteAt(buf, 32*units.KB, nil); err != nil {
			t.Error(err)
		}
	})
	c.Eng.Run()

	f, err := mw.ResolveFile("f")
	if err != nil {
		t.Fatal(err)
	}
	st := c.ServerForFile(f, stripe.ServerRef{Class: stripe.ClassH, Index: 0}).Stats()
	if st.Writes != 1 {
		t.Fatalf("writes on H0 = %d, want 1 (window must merge across instants)", st.Writes)
	}
	if st.WriteBytes != 64*units.KB {
		t.Fatalf("write bytes on H0 = %d, want %d", st.WriteBytes, 64*units.KB)
	}
}
