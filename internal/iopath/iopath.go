// Package iopath is the staged I/O request pipeline: the single path every
// independent read and write takes from the client middleware down to the
// simulated servers.
//
// The paper's five phases used to be wired ad hoc — the middleware held a
// Collector field, a Redirector field, and called straight into the
// parallel file system. iopath replaces that plumbing with one Request
// descriptor flowing through an ordered chain of Stage values:
//
//		trace ──▶ (interceptors…) ──▶ redirect ──▶ stripe ──▶ server
//
//	  - trace    — capture the request into the I/O Collector (tracing phase);
//	  - redirect — translate the extent through the Data Reordering Table,
//	    charging the DRT lookup latency (redirection phase);
//	  - stripe   — resolve the target file and fan the extent out into one
//	    coalesced sub-request per storage server;
//	  - server   — submit each sub-request to its server, whose model covers
//	    the network transport and device service time.
//
// Cross-cutting concerns (metrics, request counting, QoS, replay
// instrumentation) register as interceptor stages between trace and
// redirect instead of being hard-coded into any layer. The chain is
// composed by name, so schemes install and remove the redirect stage at
// run time without the layers knowing about each other.
//
// Determinism contract: stages forward synchronously unless they model a
// latency (the redirect stage schedules its fan-out after the DRT lookup
// time, exactly as the unstaged code did), so a pipeline of the default
// stages produces bit-for-bit the same virtual-time results as the
// hard-wired path it replaced.
package iopath

import (
	"fmt"
	"sync"

	"mhafs/internal/pfs"
	"mhafs/internal/server"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
)

// Request is the descriptor that flows through the stage chain. The
// middleware submits one Request per application operation; stages derive
// child Requests when they split the work (redirection into region
// extents, striping into per-server sub-requests).
type Request struct {
	Op     trace.Op
	File   string // file name as seen at this stage (logical, then region)
	Offset int64  // offset within File
	Data   []byte // payload for writes, destination buffer for reads

	// Client identity, as the tracing phase records it.
	Rank int
	PID  int
	FD   int

	// Untraced suppresses trace capture — set on the aggregated
	// file-domain requests of collective I/O, whose logical per-rank
	// pieces are recorded separately.
	Untraced bool

	// Submit and Complete are the request's virtual-time bounds: stamped
	// on pipeline entry and when the slowest piece finishes.
	Submit   float64
	Complete float64

	// Target is the resolved file metadata record; the redirect stage
	// pre-resolves it for its children, the stripe stage resolves it for
	// direct requests.
	Target *pfs.File

	// Binding is set by the stripe stage on per-server children and
	// consumed by the terminal server stage.
	Binding *ServerBinding

	// Err is the request's terminal error, set (before OnComplete runs)
	// when resilience is exhausted: retries ran out or no failover target
	// exists. Fan-out stages propagate the first child error to their
	// parent. A healthy pipeline never sets it.
	Err error

	// OnComplete, when non-nil, receives the virtual completion time of
	// the slowest piece. Stages may wrap it to observe completion.
	OnComplete func(end float64)

	// Cancels, when non-nil, marks the request (and every child derived
	// from it) as withdrawable: the terminal stages submit it through the
	// servers' cancellable path and register the resulting handles here,
	// so the owner — the adaptive scheduler's speculation race — can
	// cancel the whole subtree when the other copy wins. Nil on every
	// ordinary request, which keeps the default submission paths
	// byte-identical.
	Cancels *CancelSet

	pipe        *Pipeline
	annotations map[string]any

	// Fan-out bookkeeping. A stage that splits a request presets fanOpen
	// to the child count (fanOut); each child's Finish folds its end time
	// and error into the parent (fanArrive), and the last arrival
	// completes it. This replaces the historical per-child closure +
	// sim.Barrier pattern with fields on the descriptor itself, so the
	// fan-out hot loop allocates nothing per child.
	parent    *Request
	fanOpen   int
	fanLatest float64

	// pooled marks descriptors owned by the pipeline's free list; Finish
	// recycles them (Reset + release) once nothing can observe them again.
	pooled bool

	// binding is the inline storage SetBinding points the Binding field
	// at, so a per-server child needs no separate ServerBinding
	// allocation. It is never shared between requests: Reset clears both.
	binding ServerBinding

	// batchNext links batched sub-requests. On a merged request it heads
	// the list of member requests the batch coalesced; on a member it
	// links to the next member. Finish on the merged request fans its
	// completion back to every member (see Batcher).
	batchNext *Request
}

// Size returns the request length in bytes.
func (r *Request) Size() int64 { return int64(len(r.Data)) }

// Finish stamps the completion time and runs the completion callback.
// Exactly one stage must call it per request.
//
// Order matters and is pinned by the golden telemetry: the completion
// callback chain (recorders, stage timers, the caller's done) observes
// the request first, exactly as it did when fan-out stages wrapped
// OnComplete; only then is the completion folded into the parent — which
// may recursively finish it — and only after that is a pooled descriptor
// recycled, when nothing can observe it again.
func (r *Request) Finish(end float64) {
	r.Complete = end
	if r.OnComplete != nil {
		r.OnComplete(end)
	}
	// A merged batch completes its members: every coalesced sub-request
	// finished in the same service event, so each member finishes at the
	// merged end time (and inherits a merged terminal error). The link is
	// severed before the member finishes — members are themselves pooled
	// and must not walk each other.
	for m := r.batchNext; m != nil; {
		next := m.batchNext
		m.batchNext = nil
		if r.Err != nil && m.Err == nil {
			m.Err = r.Err
		}
		m.Finish(end)
		m = next
	}
	r.batchNext = nil
	parent, pooled := r.parent, r.pooled
	if parent != nil {
		parent.fanArrive(r.Err, end)
	}
	if pooled {
		r.release()
	}
}

// fanOut arms the request to complete after n derived children finish.
// Like sim.NewBarrier, a non-positive count is a wiring bug.
func (r *Request) fanOut(n int) {
	if n <= 0 {
		panic("iopath: fan-out over no children")
	}
	if r.fanOpen != 0 {
		panic("iopath: nested fan-out on one request")
	}
	r.fanOpen = n
}

// fanArrive folds one child completion into the fan-out parent: the
// slowest end time wins, the first child error wins, and the last arrival
// finishes the parent. Arrivals beyond the armed count panic — they
// indicate double-completion bugs, exactly as sim.Barrier did.
func (r *Request) fanArrive(childErr error, end float64) {
	if r.fanOpen <= 0 {
		panic("iopath: fan-out arrival after completion")
	}
	if end > r.fanLatest {
		r.fanLatest = end
	}
	if childErr != nil && r.Err == nil {
		r.Err = childErr
	}
	r.fanOpen--
	if r.fanOpen == 0 {
		r.Finish(r.fanLatest)
	}
}

// FinishErr completes the request with a terminal error. The completion
// callback still runs — barriers upstream must not deadlock on a failed
// piece — with the error visible on the request first.
func (r *Request) FinishErr(end float64, err error) {
	r.Err = err
	r.Finish(end)
}

// Annotate attaches a per-stage annotation to the request. Annotations are
// for interceptors cooperating across the chain; the built-in stages do
// not read them.
func (r *Request) Annotate(key string, value any) {
	if r.annotations == nil {
		r.annotations = make(map[string]any)
	}
	r.annotations[key] = value
}

// Annotation returns the annotation for key, if set.
func (r *Request) Annotation(key string) (any, bool) {
	v, ok := r.annotations[key]
	return v, ok
}

// child derives a Request that inherits the parent's identity and pipeline
// but addresses a different extent. Children come from the pipeline's
// descriptor pool and are recycled when they finish; the deriving stage
// must arm the parent with fanOut before dispatching them.
func (r *Request) child(file string, off int64, data []byte) *Request {
	c := r.pipe.get()
	c.Op, c.File, c.Offset, c.Data = r.Op, file, off, data
	c.Rank, c.PID, c.FD = r.Rank, r.PID, r.FD
	c.Untraced, c.Submit = r.Untraced, r.Submit
	c.Cancels = r.Cancels
	c.parent = r
	return c
}

// FanOut arms the request to complete after n derived children finish —
// the exported form of the fan-out bookkeeping for stages composed from
// outside the package (the adaptive scheduler).
func (r *Request) FanOut(n int) { r.fanOut(n) }

// Child derives a pooled child request addressing a different extent; the
// deriving stage must arm the parent with FanOut before dispatching it.
// Exported for stages composed from outside the package.
func (r *Request) Child(file string, off int64, data []byte) *Request {
	return r.child(file, off, data)
}

// Derive is Child without the parent link: the leg completes on its own
// and never folds into r. The adaptive scheduler's speculation race uses
// it for the two racing copies of a piece — the race decides r's
// completion from whichever leg finishes first, so neither leg may drive
// r's fan-out directly (the loser would drag r's completion out to its
// own, possibly cancelled-and-burned, end time). Callers observe a leg
// through OnComplete; the leg's descriptor recycles itself when done.
func (r *Request) Derive(file string, off int64, data []byte) *Request {
	c := r.child(file, off, data)
	c.parent = nil
	return c
}

// Pipeline returns the pipeline the request flows through (set on Submit
// and on derived children). External stages use it to re-enter the chain
// from scheduled events via Exclusive.
func (r *Request) Pipeline() *Pipeline { return r.pipe }

// Reset clears the descriptor for reuse. Every pooled request must pass
// through Reset on its way back to the free list (mhavet's poolcheck
// enforces this at the put sites): a stale OnComplete, parent link or
// binding on a recycled descriptor would fire another request's
// completion or route to another request's server placement.
func (r *Request) Reset() {
	*r = Request{}
}

// release recycles a finished pooled descriptor into its pipeline's free
// list. The caller guarantees nothing can observe the request anymore:
// its completion chain has run and its parent bookkeeping is done.
func (r *Request) release() {
	p := r.pipe
	r.Reset()
	p.put(r)
}

// SetBinding installs the server routing for a sub-request in the
// request's inline storage, avoiding a per-child ServerBinding
// allocation. The binding is owned by this request alone.
func (r *Request) SetBinding(b ServerBinding) {
	r.binding = b
	r.Binding = &r.binding
}

// IODone implements server.Done: a server completes the sub-request by
// handing the descriptor back instead of calling a per-request closure.
// Reads scatter their landed bytes first, exactly as the closure path
// does (dataless plans carry no scatter).
func (r *Request) IODone(end float64, err error) {
	if err != nil {
		r.FinishErr(end, err)
		return
	}
	if b := r.Binding; b != nil && r.Op == trace.OpRead && b.Scatter != nil {
		b.Scatter()
	}
	r.Finish(end)
}

// ServerBinding routes a per-server sub-request: which server, which
// server-side object, where in it, and what bytes.
type ServerBinding struct {
	Server *server.Server
	Object string
	Local  int64
	// Payload is the gathered write payload or the read landing buffer.
	Payload []byte
	// Scatter, for reads, copies the landed bytes back into the caller's
	// buffer; the server stage runs it before reporting completion.
	Scatter func()
	// Bytes is the explicit byte count of bindings that carry no payload
	// (merged batch submissions on dataless servers); when zero the
	// payload length rules.
	Bytes int64
}

// bytes returns the sub-request's byte count.
func (b *ServerBinding) bytes() int64 {
	if b.Bytes > 0 {
		return b.Bytes
	}
	return int64(len(b.Payload))
}

// Handler forwards a request to the remainder of the chain.
type Handler func(*Request) error

// Stage is one link of the pipeline. Handle must either call next
// (possibly on derived child requests, possibly from a later scheduled
// event) or complete the request itself.
type Stage interface {
	Handle(req *Request, next Handler) error
}

// StageFunc adapts a function to a Stage.
type StageFunc func(*Request, Handler) error

// Handle implements Stage.
func (f StageFunc) Handle(req *Request, next Handler) error { return f(req, next) }

// Canonical stage names, in chain order.
const (
	StageTrace      = "trace"
	StageRedirect   = "redirect"
	StageAdaptive   = "adaptive"
	StageResilience = "resilience"
	StageStripe     = "stripe"
	StageServer     = "server"
)

// slot is one named link of the chain.
type slot struct {
	name  string
	stage Stage
}

// chain is an immutable snapshot of the stage sequence plus one prebuilt
// next handler per link. Handlers are constructed once at registration
// time (the cold path), so the dispatch hot loop passes stages a ready
// Handler instead of allocating a fresh closure per stage hop. In-flight
// requests continue on the chain they were submitted into: registration
// builds a new chain and never mutates a published one.
type chain struct {
	slots []slot
	nexts []Handler
}

// Observer receives a callback when a request enters and leaves the
// synchronous portion of each stage. Enter/exit pairs are properly nested
// (dispatch is recursive) and always run under the pipeline's submission
// lock. Observers that also want the request's eventual completion wrap
// req.OnComplete from StageEnter, the sanctioned Recorder pattern.
type Observer interface {
	StageEnter(stage string, req *Request)
	StageExit(stage string, req *Request)
}

// Pipeline is an ordered, named chain of stages. Registration addresses
// stages by name so callers compose the chain without positional
// knowledge; Submit pushes a request through the chain front to back.
//
// Submission is safe for concurrent use: the whole synchronous part of a
// submission runs under one lock, so independent clients may submit from
// separate goroutines. Driving the simulation engine remains
// single-threaded, as the engine requires.
type Pipeline struct {
	eng *sim.Engine

	mu    sync.Mutex
	chain *chain
	obs   Observer

	// The descriptor free list. It has its own lock because requests are
	// recycled from completion callbacks, which run from engine events
	// outside the submission lock, while children are acquired during
	// dispatch under it.
	poolMu sync.Mutex
	freed  []*Request
}

// NewPipeline creates an empty pipeline over the simulation engine.
func NewPipeline(eng *sim.Engine) *Pipeline {
	if eng == nil {
		panic("iopath: nil engine")
	}
	p := &Pipeline{eng: eng}
	p.chain = p.buildChain(nil)
	return p
}

// get acquires a blank pooled descriptor bound to this pipeline.
func (p *Pipeline) get() *Request {
	p.poolMu.Lock()
	var r *Request
	if n := len(p.freed); n > 0 {
		r = p.freed[n-1]
		p.freed[n-1] = nil
		p.freed = p.freed[:n-1]
	}
	p.poolMu.Unlock()
	if r == nil {
		// Pool miss: steady state recycles descriptors through the free
		// list, so this allocation amortizes to zero per op.
		r = &Request{} //mhavet:allow literal
	}
	r.pipe = p
	r.pooled = true
	return r
}

// put returns a Reset descriptor to the free list. Callers go through
// Request.release, which resets first — mhavet's poolcheck flags any put
// without a preceding Reset.
func (p *Pipeline) put(r *Request) {
	p.poolMu.Lock()
	p.freed = append(p.freed, r)
	p.poolMu.Unlock()
}

// NewRequest returns a blank pooled root descriptor bound to the
// pipeline. The pipeline recycles it when it finishes: callers populate
// it, Submit it, and must not retain it past their OnComplete.
func (p *Pipeline) NewRequest() *Request { return p.get() }

// Engine returns the pipeline's simulation engine.
func (p *Pipeline) Engine() *sim.Engine { return p.eng }

func (p *Pipeline) indexOf(name string) int {
	for i, s := range p.chain.slots {
		if s.name == name {
			return i
		}
	}
	return -1
}

// buildChain publishes a fresh chain snapshot over the given slots,
// prebuilding the per-link next handlers. Runs at registration time only.
func (p *Pipeline) buildChain(slots []slot) *chain {
	c := &chain{slots: slots, nexts: make([]Handler, len(slots))}
	for i := range slots {
		next := i + 1
		c.nexts[i] = func(r *Request) error {
			if r.pipe == nil {
				r.pipe = p
			}
			return p.dispatch(c, r, next)
		}
	}
	return c
}

// Append adds a stage at the end of the chain.
func (p *Pipeline) Append(name string, s Stage) error {
	return p.insert(name, s, func() int { return len(p.chain.slots) })
}

// InsertBefore adds a stage immediately before the named anchor stage.
func (p *Pipeline) InsertBefore(anchor, name string, s Stage) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	at := p.indexOf(anchor)
	if at < 0 {
		return fmt.Errorf("iopath: no stage %q to insert before", anchor)
	}
	return p.insertLocked(name, s, at)
}

func (p *Pipeline) insert(name string, s Stage, at func() int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.insertLocked(name, s, at())
}

// Registration is copy-on-write: in-flight requests hold the chain they
// were submitted into, so a stage continuing a request from a scheduled
// event is never re-routed by later registration changes.
func (p *Pipeline) insertLocked(name string, s Stage, at int) error {
	if name == "" {
		return fmt.Errorf("iopath: empty stage name")
	}
	if s == nil {
		return fmt.Errorf("iopath: nil stage %q", name)
	}
	if p.indexOf(name) >= 0 {
		return fmt.Errorf("iopath: stage %q already registered", name)
	}
	old := p.chain.slots
	ns := make([]slot, 0, len(old)+1)
	ns = append(ns, old[:at]...)
	ns = append(ns, slot{name: name, stage: s})
	ns = append(ns, old[at:]...)
	p.chain = p.buildChain(ns)
	return nil
}

// Replace swaps the implementation of an existing named stage.
func (p *Pipeline) Replace(name string, s Stage) error {
	if s == nil {
		return fmt.Errorf("iopath: nil stage %q", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.indexOf(name)
	if i < 0 {
		return fmt.Errorf("iopath: no stage %q to replace", name)
	}
	ns := make([]slot, len(p.chain.slots))
	copy(ns, p.chain.slots)
	ns[i].stage = s
	p.chain = p.buildChain(ns)
	return nil
}

// Remove deletes the named stage, reporting whether it was present.
func (p *Pipeline) Remove(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.indexOf(name)
	if i < 0 {
		return false
	}
	old := p.chain.slots
	ns := make([]slot, 0, len(old)-1)
	ns = append(ns, old[:i]...)
	ns = append(ns, old[i+1:]...)
	p.chain = p.buildChain(ns)
	return true
}

// Has reports whether a stage with the given name is registered.
func (p *Pipeline) Has(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.indexOf(name) >= 0
}

// SetObserver installs (or, with nil, clears) the pipeline's stage
// observer. Configuration is not safe concurrently with submission, like
// stage registration.
func (p *Pipeline) SetObserver(o Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = o
}

// Names returns the stage names in chain order.
func (p *Pipeline) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.chain.slots))
	for i, s := range p.chain.slots {
		out[i] = s.name
	}
	return out
}

// Submit stamps the request and pushes it through the chain. The
// synchronous portion of every stage runs before Submit returns; stages
// that model latency complete the request through later engine events.
func (p *Pipeline) Submit(req *Request) error {
	if req == nil {
		return fmt.Errorf("iopath: nil request")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	req.pipe = p
	req.Submit = p.eng.Now()
	return p.dispatch(p.chain, req, 0)
}

// Exclusive runs fn holding the pipeline's submission lock. Stages use it
// to re-enter the chain from a scheduled event; the middleware uses it for
// metadata operations sharing state with submission. fn must not call
// Submit or registration methods.
func (p *Pipeline) Exclusive(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn()
}

// dispatch runs the stage at index i of the chain snapshot, handing it
// the snapshot's prebuilt next handler, which continues at i+1. Requests
// derived by a stage continue downstream of it — they do not restart the
// chain. The observer (read under the submission lock dispatch already
// runs beneath) brackets the synchronous portion of every stage.
func (p *Pipeline) dispatch(c *chain, req *Request, i int) error {
	if i >= len(c.slots) {
		return fmt.Errorf("iopath: request for %q fell off the end of the chain", req.File)
	}
	s := &c.slots[i]
	if o := p.obs; o != nil {
		o.StageEnter(s.name, req)
		defer o.StageExit(s.name, req)
	}
	return s.stage.Handle(req, c.nexts[i])
}
