package iopath

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"mhafs/internal/device"
	"mhafs/internal/fault"
	"mhafs/internal/netmodel"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/server"
	"mhafs/internal/sim"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Backoff: 1e-3, BackoffCap: 5e-3}
	wants := []float64{0, 1e-3, 2e-3, 4e-3, 5e-3, 5e-3}
	for k, want := range wants {
		if got := p.Delay(k); got != want {
			t.Errorf("Delay(%d) = %v, want %v", k, got, want)
		}
	}
	if err := (RetryPolicy{MaxAttempts: 0}).Validate(); err == nil {
		t.Error("zero attempts accepted")
	}
	if err := (RetryPolicy{MaxAttempts: 1, Backoff: 2, BackoffCap: 1}).Validate(); err == nil {
		t.Error("cap below base accepted")
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Error(err)
	}
}

// retryHarness wires a single faulty server behind a pipeline of just the
// retry stage, submitting pre-bound sub-requests.
func retryHarness(t *testing.T, sched fault.Schedule, pol RetryPolicy) (*sim.Engine, *Pipeline, *RetryServerStage, *server.Server, *telemetry.Registry) {
	t.Helper()
	eng := &sim.Engine{}
	srv, err := server.New(eng, "h0", device.DefaultHDD(), netmodel.DefaultGigE())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.NewInjector(eng, sched)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFaults(in)
	stage, err := NewRetryServerStage(eng, pol)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	stage.SetTelemetry(reg)
	p := NewPipeline(eng)
	if err := p.Append(StageServer, stage); err != nil {
		t.Fatal(err)
	}
	return eng, p, stage, srv, reg
}

// TestRetryAfterTransient pins the recovery timing by hand: the failed
// attempt consumes a full service slot, one backoff, then a clean slot.
func TestRetryAfterTransient(t *testing.T) {
	const n = 4096
	pol := RetryPolicy{MaxAttempts: 4, Backoff: 1e-4, BackoffCap: 1e-3}
	eng, p, _, srv, reg := retryHarness(t, fault.Schedule{Windows: []fault.Window{
		// Covers only the first attempt's service start at t=0.
		{Server: "h0", Kind: fault.Transient, Start: 0, End: 1e-9},
	}}, pol)
	S := srv.ServiceTime(trace.OpWrite, n)
	var end float64
	req := &Request{Op: trace.OpWrite, File: "f", Data: make([]byte, n),
		Binding:    &ServerBinding{Server: srv, Object: "f", Payload: bytes.Repeat([]byte{7}, n)},
		OnComplete: func(e float64) { end = e }}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if want := 2*S + pol.Backoff; end != want {
		t.Errorf("end = %v, want 2·service+backoff = %v", end, want)
	}
	if req.Err != nil {
		t.Errorf("recovered request carries err %v", req.Err)
	}
	if v := reg.Counter(fault.MetricRetries, telemetry.L("op", "write")).Value(); v != 1 {
		t.Errorf("write retries = %v, want 1", v)
	}
	if v := reg.Counter(fault.MetricBackoffSeconds).Value(); v != pol.Backoff {
		t.Errorf("backoff seconds = %v, want %v", v, pol.Backoff)
	}
	// The retry committed the bytes.
	got := make([]byte, n)
	srv.Object("f").ReadAt(got, 0)
	if got[0] != 7 || got[n-1] != 7 {
		t.Error("retried write did not commit")
	}
}

// TestRetryExhaustion: a permanent transient fault burns every attempt;
// the request finishes with the error, at the hand-computed time.
func TestRetryExhaustion(t *testing.T) {
	const n = 4096
	pol := RetryPolicy{MaxAttempts: 3, Backoff: 1e-4, BackoffCap: 1e-3}
	eng, p, _, srv, reg := retryHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Transient, Start: 0, End: math.Inf(1)},
	}}, pol)
	S := srv.ServiceTime(trace.OpRead, n)
	var end float64
	req := &Request{Op: trace.OpRead, File: "f", Data: make([]byte, n),
		Binding:    &ServerBinding{Server: srv, Object: "f", Payload: make([]byte, n)},
		OnComplete: func(e float64) { end = e }}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !errors.Is(req.Err, fault.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", req.Err)
	}
	// Three service slots, two backoffs (1e-4 then 2e-4).
	if want := 3*S + 3e-4; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	if v := reg.Counter(fault.MetricRetries, telemetry.L("op", "read")).Value(); v != 2 {
		t.Errorf("read retries = %v, want 2", v)
	}
}

// TestRetryOutageBackoff: refused attempts consume no service time; the
// request lands as soon as the backoff walks past the recovery point.
func TestRetryOutageBackoff(t *testing.T) {
	const n = 4096
	const recovery = 5e-3
	pol := RetryPolicy{MaxAttempts: 10, Backoff: 1e-3, BackoffCap: 4e-3}
	eng, p, _, srv, reg := retryHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "h0", Kind: fault.Outage, Start: 0, End: recovery},
	}}, pol)
	S := srv.ServiceTime(trace.OpWrite, n)
	var end float64
	req := &Request{Op: trace.OpWrite, File: "f", Data: make([]byte, n),
		Binding:    &ServerBinding{Server: srv, Object: "f", Payload: make([]byte, n)},
		OnComplete: func(e float64) { end = e }}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Refusals at t = 0, 1e-3, 3e-3; the fourth attempt at 7e-3 is past
	// recovery and serves normally.
	if want := 7e-3 + S; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	if req.Err != nil {
		t.Errorf("err = %v after recovery", req.Err)
	}
	if v := reg.Counter(fault.MetricRetries, telemetry.L("op", "write")).Value(); v != 3 {
		t.Errorf("retries = %v, want 3", v)
	}
	if v := reg.Counter(fault.MetricBackoffSeconds).Value(); v != 7e-3 {
		t.Errorf("backoff = %v, want 7e-3", v)
	}
}

// TestAttemptTimeout: a deadline shorter than the service time abandons
// the attempt; with the budget exhausted the request errors out at the
// second deadline, and the late server completions are ignored.
func TestAttemptTimeout(t *testing.T) {
	const n = 1 << 20
	pol := RetryPolicy{MaxAttempts: 2, Backoff: 1e-4, Timeout: 2e-3}
	eng, p, _, srv, reg := retryHarness(t, fault.Schedule{}, pol)
	S := srv.ServiceTime(trace.OpWrite, n)
	if S <= pol.Timeout {
		t.Fatalf("test needs service %v > timeout %v", S, pol.Timeout)
	}
	var end float64
	var finishes int
	req := &Request{Op: trace.OpWrite, File: "f", Data: make([]byte, n),
		Binding:    &ServerBinding{Server: srv, Object: "f", Payload: make([]byte, n)},
		OnComplete: func(e float64) { end = e; finishes++ }}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !errors.Is(req.Err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout", req.Err)
	}
	// Deadline 1 at 2e-3, backoff 1e-4, deadline 2 at 4.1e-3 — summed in
	// the engine's accumulation order.
	if want := pol.Timeout + pol.Backoff + pol.Timeout; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	if finishes != 1 {
		t.Errorf("request finished %d times", finishes)
	}
	if v := reg.Counter(fault.MetricTimeouts).Value(); v != 2 {
		t.Errorf("timeouts = %v, want 2", v)
	}
}

// --- failover stage ---

// resolver adapts a cluster to the FileResolver the stages expect.
type resolver struct{ c *pfs.Cluster }

func (r resolver) ResolveFile(name string) (*pfs.File, error) {
	if f, ok := r.c.Lookup(name); ok {
		return f, nil
	}
	return nil, fmt.Errorf("no file %q", name)
}

// failoverHarness builds the resilient chain resilience → stripe → retry
// over a default cluster with the given schedule.
func failoverHarness(t *testing.T, sched fault.Schedule, pol RetryPolicy) (*pfs.Cluster, *Pipeline, *reorder.Failover, *telemetry.Registry) {
	t.Helper()
	c, err := pfs.New(pfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.NewInjector(c.Eng, sched)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaults(in)
	fo, err := reorder.NewFailover(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })
	res, err := NewResilience(c.Eng, in, c, resolver{c}, fo, pol)
	if err != nil {
		t.Fatal(err)
	}
	retry, err := NewRetryServerStage(c.Eng, pol)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	res.SetTelemetry(reg)
	retry.SetTelemetry(reg)
	p := NewPipeline(c.Eng)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Append(StageResilience, res))
	must(p.Append(StageStripe, &Striper{Cluster: c, Files: resolver{c}}))
	must(p.Append(StageServer, retry))
	return c, p, fo, reg
}

// TestFailoverWrite: a write touching a down SServer lands on a fallback
// file avoiding it, and a later read of the extent finds the bytes there
// while the outage persists.
func TestFailoverWrite(t *testing.T) {
	c, p, fo, reg := failoverHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "s0", Kind: fault.Outage, Start: 0, End: math.Inf(1)},
	}}, DefaultRetryPolicy())
	// Rotation 0: logical S0 is physical s0.
	f, err := c.CreateWithRotation("f", c.DefaultLayout(), 0)
	if err != nil {
		t.Fatal(err)
	}
	round := f.Layout.RoundLength()
	payload := make([]byte, round)
	for i := range payload {
		payload[i] = byte(i%251 + 1)
	}
	wreq := &Request{Op: trace.OpWrite, File: "f", Data: payload,
		OnComplete: func(float64) {}}
	if err := p.Submit(wreq); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if wreq.Err != nil {
		t.Fatalf("degraded write failed: %v", wreq.Err)
	}
	fb, ok := c.Lookup("f.fb.s0")
	if !ok {
		t.Fatal("no fallback file created")
	}
	if fb.Layout.N != 1 {
		t.Errorf("fallback layout %v keeps both SServers", fb.Layout)
	}
	for _, ref := range fb.Layout.Servers() {
		if srv := c.ServerForFile(fb, ref); srv.Name == "s0" {
			t.Errorf("fallback still touches the down server via %v", ref)
		}
	}
	if v := reg.Counter(fault.MetricFailovers).Value(); v != 1 {
		t.Errorf("failovers = %v, want 1", v)
	}
	if v := reg.Counter(fault.MetricDegraded).Value(); v != 1 {
		t.Errorf("degraded = %v, want 1", v)
	}

	// Read back through the pipeline: the extent translates to the
	// fallback, never touching s0.
	got := make([]byte, round)
	rreq := &Request{Op: trace.OpRead, File: "f", Data: got,
		OnComplete: func(float64) {}}
	if err := p.Submit(rreq); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if rreq.Err != nil {
		t.Fatalf("read of failed-over extent errored: %v", rreq.Err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failed-over bytes do not read back")
	}
	if fo.Table().Len() != 1 {
		t.Errorf("failover table has %d mappings, want 1", fo.Table().Len())
	}
}

// TestReadWaitsForRecovery: unmapped data on a down server cannot fail
// over; the read holds back and completes only after the window closes.
func TestReadWaitsForRecovery(t *testing.T) {
	const recovery = 4e-3
	pol := RetryPolicy{MaxAttempts: 10, Backoff: 1e-3, BackoffCap: 4e-3, Timeout: 2}
	c, p, _, reg := failoverHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "s0", Kind: fault.Outage, Start: 0, End: recovery},
	}}, pol)
	f, err := c.CreateWithRotation("f", c.DefaultLayout(), 0)
	if err != nil {
		t.Fatal(err)
	}
	round := f.Layout.RoundLength()
	payload := bytes.Repeat([]byte{0x5C}, int(round))
	reorder.RawWrite(c, f, 0, payload) // pre-populate offline
	got := make([]byte, round)
	req := &Request{Op: trace.OpRead, File: "f", Data: got,
		OnComplete: func(float64) {}}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if req.Err != nil {
		t.Fatalf("read failed: %v", req.Err)
	}
	if req.Complete <= recovery {
		t.Errorf("read completed at %v, inside the outage [0,%v)", req.Complete, recovery)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("recovered read returned wrong bytes")
	}
	if v := reg.Counter(fault.MetricFailovers).Value(); v != 0 {
		t.Errorf("failovers = %v for a read, want 0", v)
	}
	// Held back at t = 0, 1e-3, 3e-3 (down), released at 7e-3.
	if v := reg.Counter(fault.MetricRetries, telemetry.L("op", "read")).Value(); v != 3 {
		t.Errorf("read retries = %v, want 3", v)
	}
}

// TestReadExhaustsAttempts: a permanent outage with a small attempt
// budget surfaces ErrUnavailable instead of hanging.
func TestReadExhaustsAttempts(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, Backoff: 1e-3, BackoffCap: 4e-3, Timeout: 2}
	c, p, _, _ := failoverHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "s0", Kind: fault.Outage, Start: 0, End: math.Inf(1)},
	}}, pol)
	f, err := c.CreateWithRotation("f", c.DefaultLayout(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, f.Layout.RoundLength())
	req := &Request{Op: trace.OpRead, File: "f", Data: got,
		OnComplete: func(float64) {}}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if !errors.Is(req.Err, fault.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", req.Err)
	}
	// Attempts at t = 0, 1e-3, 3e-3, then the budget is gone.
	if req.Complete != 3e-3 {
		t.Errorf("gave up at %v, want 3e-3", req.Complete)
	}
}

// TestHealthyPassThrough: with no covering window the resilient chain
// forwards untouched — no retries, no failovers, no extra latency.
func TestHealthyPassThrough(t *testing.T) {
	c, p, fo, reg := failoverHarness(t, fault.Schedule{Windows: []fault.Window{
		{Server: "s0", Kind: fault.Outage, Start: 100, End: 200},
	}}, DefaultRetryPolicy())
	f, err := c.CreateDefault("f")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, int(f.Layout.RoundLength()))
	req := &Request{Op: trace.OpWrite, File: "f", Data: payload,
		OnComplete: func(float64) {}}
	if err := p.Submit(req); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	pipelineEnd := req.Complete

	// The raw cluster path is the no-pipeline baseline.
	c2, err := pfs.New(pfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := c2.CreateDefault("f")
	if err != nil {
		t.Fatal(err)
	}
	rawEnd, err := c2.WriteSync(f2, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if pipelineEnd != rawEnd {
		t.Errorf("resilient chain end %v differs from raw path %v", pipelineEnd, rawEnd)
	}
	if req.Err != nil {
		t.Errorf("err = %v", req.Err)
	}
	for _, name := range []string{fault.MetricFailovers, fault.MetricDegraded, fault.MetricTimeouts, fault.MetricBackoffSeconds} {
		if v := reg.Counter(name).Value(); v != 0 {
			t.Errorf("%s = %v on a healthy run", name, v)
		}
	}
	if fo.Table().Len() != 0 {
		t.Errorf("failover table grew on a healthy run")
	}
}
