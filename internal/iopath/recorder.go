package iopath

import (
	"sync"

	"mhafs/internal/trace"
)

// Record is one completed request as observed by a Recorder: the
// request's identity plus its virtual submit and completion times. This is
// the pipeline's per-request completion stream — replay, bench and the
// dynamic manager consume it instead of scraping server statistics.
type Record struct {
	Op       trace.Op
	File     string
	Offset   int64
	Size     int64
	Rank     int
	Untraced bool

	Submit   float64 // virtual time the request entered the pipeline
	Complete float64 // virtual time the slowest piece finished

	// Err is the request's terminal error, if resilience was exhausted.
	Err error
}

// Latency returns the request's issue-to-completion time in virtual
// seconds.
func (r Record) Latency() float64 { return r.Complete - r.Submit }

// Recorder is an interceptor stage that captures a completion Record for
// every request flowing past it, in completion order. Register it before
// the redirect stage to observe application-level requests (rather than
// redirected or striped pieces).
type Recorder struct {
	mu      sync.Mutex
	records []Record
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Handle wraps the request's completion callback to log a Record.
func (rc *Recorder) Handle(req *Request, next Handler) error {
	prev := req.OnComplete
	// Wrapping the completion callback costs one closure per observed
	// request by design; BenchmarkHotLoop pipelines install no recorder.
	req.OnComplete = func(end float64) { //mhavet:allow closure
		rc.mu.Lock()
		rc.records = append(rc.records, Record{
			Op: req.Op, File: req.File, Offset: req.Offset, Size: req.Size(),
			Rank: req.Rank, Untraced: req.Untraced,
			Submit: req.Submit, Complete: end, Err: req.Err,
		})
		rc.mu.Unlock()
		if prev != nil {
			prev(end)
		}
	}
	return next(req)
}

// Len returns the number of completion records captured.
func (rc *Recorder) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.records)
}

// Records returns a copy of the captured records in completion order.
func (rc *Recorder) Records() []Record {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]Record, len(rc.records))
	copy(out, rc.records)
	return out
}

// Reset discards the captured records.
func (rc *Recorder) Reset() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.records = nil
}

// CompletionTrace converts the traced (non-collective) records to a
// trace.Trace in completion order, with Time set to the completion time —
// the view a drift detector wants: what actually finished, when.
func (rc *Recorder) CompletionTrace() trace.Trace {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(trace.Trace, 0, len(rc.records))
	for _, r := range rc.records {
		if r.Untraced {
			continue
		}
		out = append(out, trace.Record{
			Rank: r.Rank, File: r.File, Op: r.Op,
			Offset: r.Offset, Size: r.Size, Time: r.Complete,
		})
	}
	return out
}
