package iopath

import (
	"errors"
	"fmt"

	"mhafs/internal/fault"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/sim"
	"mhafs/internal/stripe"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
)

// RetryPolicy bounds the client's recovery behaviour: how many attempts a
// sub-request gets, how the wait between attempts grows, and how long one
// attempt may remain outstanding. All times are virtual seconds.
type RetryPolicy struct {
	MaxAttempts int     // total attempts per sub-request (first try included)
	Backoff     float64 // wait before the second attempt; doubles per retry
	BackoffCap  float64 // ceiling on the doubling
	Timeout     float64 // per-attempt deadline, 0 disables the timer
}

// DefaultRetryPolicy is sized so the cumulative backoff outlasts the
// bench outage scenario (250 ms): ~64 ms of doubling then 50 ms per
// retry, about one virtual second across 24 attempts. The per-attempt
// timeout is generous because the deadline spans FIFO queueing, not just
// service time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 24, Backoff: 500e-6, BackoffCap: 50e-3, Timeout: 2}
}

// Validate checks the policy's invariants.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("iopath: retry policy needs at least one attempt, got %d", p.MaxAttempts)
	}
	if p.Backoff < 0 || p.BackoffCap < 0 || p.Timeout < 0 {
		return fmt.Errorf("iopath: negative retry policy time (backoff %v, cap %v, timeout %v)",
			p.Backoff, p.BackoffCap, p.Timeout)
	}
	if p.BackoffCap > 0 && p.BackoffCap < p.Backoff {
		return fmt.Errorf("iopath: backoff cap %v below base %v", p.BackoffCap, p.Backoff)
	}
	return nil
}

// Delay returns the wait before attempt k+1 after k failed attempts:
// Backoff·2^(k-1), capped.
func (p RetryPolicy) Delay(k int) float64 {
	if k < 1 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < k; i++ {
		d *= 2
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// ErrAttemptTimeout marks an attempt abandoned by the per-attempt
// deadline. It is retryable.
var ErrAttemptTimeout = errors.New("iopath: attempt timed out")

// retryable extends the injector's error taxonomy with the client-side
// timeout.
func retryable(err error) bool {
	return fault.Retryable(err) || errors.Is(err, ErrAttemptTimeout)
}

// resilienceMetrics caches the client-side fault telemetry handles shared
// by the retry and failover stages.
type resilienceMetrics struct {
	readRetries, writeRetries *telemetry.Counter
	backoff                   *telemetry.Counter
	timeouts                  *telemetry.Counter
}

func newResilienceMetrics(reg *telemetry.Registry) *resilienceMetrics {
	return &resilienceMetrics{
		readRetries:  reg.Counter(fault.MetricRetries, telemetry.L("op", "read")),
		writeRetries: reg.Counter(fault.MetricRetries, telemetry.L("op", "write")),
		backoff:      reg.Counter(fault.MetricBackoffSeconds),
		timeouts:     reg.Counter(fault.MetricTimeouts),
	}
}

func (m *resilienceMetrics) retry(op trace.Op, delay float64) {
	if m == nil {
		return
	}
	if op == trace.OpWrite {
		m.writeRetries.Inc()
	} else {
		m.readRetries.Inc()
	}
	m.backoff.Add(delay)
}

// RetryServerStage is the fault-aware terminal stage: it submits each
// server-bound sub-request through the error-returning server API and
// retries retryable failures with deterministic sim-time exponential
// backoff, under an optional per-attempt timeout. It replaces ServerStage
// when resilience is enabled.
type RetryServerStage struct {
	Eng    *sim.Engine
	Policy RetryPolicy

	tel *resilienceMetrics
}

// NewRetryServerStage validates the policy.
func NewRetryServerStage(eng *sim.Engine, p RetryPolicy) (*RetryServerStage, error) {
	if eng == nil {
		return nil, fmt.Errorf("iopath: retry stage needs an engine")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &RetryServerStage{Eng: eng, Policy: p}, nil
}

// SetTelemetry installs (or, with nil, removes) a registry for the
// stage's retry/backoff/timeout series. Series are registered eagerly so
// a fault-free run still exports them at zero.
func (s *RetryServerStage) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	s.tel = newResilienceMetrics(reg)
}

// Handle implements Stage; the chain ends here.
//
// Retry attempts allocate (per-attempt completion closures, timers) by
// design: the retry stage is wired only in fault-injection scenarios,
// outside the XL tier's 0-alloc contract.
//
//mhavet:coldpath fault-injection retry path
func (s *RetryServerStage) Handle(req *Request, next Handler) error {
	if req.Binding == nil {
		return fmt.Errorf("iopath: request for %q reached the retry server stage without a binding", req.File)
	}
	s.attempt(req, 1)
	return nil
}

// attempt runs try number k (1-based) of the sub-request.
func (s *RetryServerStage) attempt(req *Request, k int) {
	b := req.Binding
	// settled flips when the attempt resolves — by completion or by the
	// timeout firing first. A completion arriving after the timeout is
	// ignored: the retry owns the request now. (A late write still
	// committed its bytes; the retry re-commits the same bytes, which is
	// idempotent. A late read's scatter is skipped.)
	settled := false
	var timer *sim.Timer
	if s.Policy.Timeout > 0 {
		timer = s.Eng.AfterFunc(s.Policy.Timeout, func() {
			if settled {
				return
			}
			settled = true
			if s.tel != nil {
				s.tel.timeouts.Inc()
			}
			req.pipe.Exclusive(func() {
				s.settle(req, k, s.Eng.Now(), ErrAttemptTimeout)
			})
		})
	}
	done := func(end float64, err error) {
		if settled {
			return
		}
		settled = true
		if timer != nil {
			timer.Stop()
		}
		if err == nil && req.Op == trace.OpRead && b.Scatter != nil {
			b.Scatter()
		}
		s.settle(req, k, end, err)
	}
	switch {
	case req.Cancels != nil:
		// Speculation-race legs submit through the cancellable path so the
		// race can withdraw them; a cancelled attempt settles with
		// ErrCancelled, which is not retryable, so the leg finishes
		// instead of re-issuing work the race already discarded.
		submitCancellable(req, done)
	case b.Server.IsDataless():
		// Dataless servers charge by size alone; merged batch bindings
		// carry an explicit byte count and no payload.
		b.Server.SubmitOpErr(req.Op, b.bytes(), done)
	case req.Op == trace.OpWrite:
		b.Server.SubmitWriteErr(b.Object, b.Local, b.Payload, done)
	default:
		b.Server.SubmitReadErr(b.Object, b.Local, b.Payload, done)
	}
}

// settle resolves attempt k: success and non-retryable errors finish the
// request; retryable errors schedule the next attempt after backoff.
// Callers hold the submission lock (server completions run from engine
// events the pipeline already serializes; the timeout path re-enters via
// Exclusive).
func (s *RetryServerStage) settle(req *Request, k int, end float64, err error) {
	if err == nil || !retryable(err) || k >= s.Policy.MaxAttempts {
		if err != nil {
			req.FinishErr(end, err)
			return
		}
		req.Finish(end)
		return
	}
	delay := s.Policy.Delay(k)
	s.tel.retry(req.Op, delay)
	s.Eng.Schedule(delay, func() {
		req.pipe.Exclusive(func() { s.attempt(req, k+1) })
	})
}

// Resilience is the degraded-mode failover stage, registered between
// redirect and stripe. At submission it checks which servers the extent
// would touch; if one is down it remaps writes onto surviving servers
// through the failover tables (MHA degrades toward a HARL/DEF-shaped
// layout) and holds reads back until the server recovers. Extents already
// remapped by an earlier outage are translated to their fallback file on
// every pass, so later reads find the failed-over bytes.
type Resilience struct {
	Eng      *sim.Engine
	Injector *fault.Injector
	Cluster  *pfs.Cluster
	Files    FileResolver
	Failover *reorder.Failover
	Policy   RetryPolicy

	tel       *resilienceMetrics
	failovers *telemetry.Counter
	degraded  *telemetry.Counter
}

// NewResilience wires the failover stage.
func NewResilience(eng *sim.Engine, in *fault.Injector, c *pfs.Cluster, files FileResolver, fo *reorder.Failover, p RetryPolicy) (*Resilience, error) {
	switch {
	case eng == nil:
		return nil, fmt.Errorf("iopath: resilience stage needs an engine")
	case in == nil:
		return nil, fmt.Errorf("iopath: resilience stage needs an injector")
	case c == nil:
		return nil, fmt.Errorf("iopath: resilience stage needs a cluster")
	case files == nil:
		return nil, fmt.Errorf("iopath: resilience stage needs a file resolver")
	case fo == nil:
		return nil, fmt.Errorf("iopath: resilience stage needs a failover layer")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Resilience{Eng: eng, Injector: in, Cluster: c, Files: files, Failover: fo, Policy: p}, nil
}

// SetTelemetry installs (or, with nil, removes) a registry for the
// stage's failover series, registered eagerly.
func (rs *Resilience) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		rs.tel, rs.failovers, rs.degraded = nil, nil, nil
		return
	}
	rs.tel = newResilienceMetrics(reg)
	rs.failovers = reg.Counter(fault.MetricFailovers)
	rs.degraded = reg.Counter(fault.MetricDegraded)
}

// Handle translates the extent through the failover tables, fans out over
// the resulting pieces, and routes each piece around down servers.
//
// Failover handling allocates (piece slices, remap records, DRT/RST
// persistence) by design: the resilience stage is wired only in
// fault-injection scenarios, outside the XL tier's 0-alloc contract.
//
//mhavet:coldpath fault-injection failover path
func (rs *Resilience) Handle(req *Request, next Handler) error {
	targets := rs.Failover.Translate(req.File, req.Offset, req.Size())
	if len(targets) == 1 && !targets[0].Mapped {
		return rs.handlePiece(req, next, 1)
	}
	children := make([]*Request, 0, len(targets))
	var cursor int64
	for _, tg := range targets {
		f, err := rs.Files.ResolveFile(tg.File)
		if err != nil {
			return err
		}
		child := req.child(tg.File, tg.Offset, req.Data[cursor:cursor+tg.Size])
		child.Target = f
		children = append(children, child)
		cursor += tg.Size
	}
	if cursor != req.Size() {
		return fmt.Errorf("iopath: failover translation covered %d of %d bytes", cursor, req.Size())
	}
	req.fanOut(len(children))
	for _, child := range children {
		if err := rs.handlePiece(child, next, 1); err != nil {
			return err
		}
	}
	return nil
}

// downServer finds the first down server the extent's stripe fan-out
// would touch (in stripe order — deterministic), or ok=false.
func (rs *Resilience) downServer(f *pfs.File, off, n int64) (name string, ref stripe.ServerRef, phys int, ok bool) {
	now := rs.Eng.Now()
	for _, sub := range f.Layout.Split(off, n) {
		srv := rs.Cluster.ServerForFile(f, sub.Server)
		if rs.Injector.Down(srv.Name, now) {
			return srv.Name, sub.Server, rs.Cluster.PhysicalIndex(f, sub.Server), true
		}
	}
	return "", stripe.ServerRef{}, 0, false
}

// handlePiece routes one piece (attempt is 1-based): forward when every
// target server is up, remap writes around a down server, hold reads back
// with backoff until recovery or the attempt budget runs out.
func (rs *Resilience) handlePiece(req *Request, next Handler, attempt int) error {
	f := req.Target
	if f == nil {
		var err error
		f, err = rs.Files.ResolveFile(req.File)
		if err != nil {
			return err
		}
		req.Target = f
	}
	name, ref, phys, down := rs.downServer(f, req.Offset, req.Size())
	if !down {
		return next(req)
	}
	if attempt == 1 && rs.degraded != nil {
		rs.degraded.Inc()
	}
	if req.Op == trace.OpWrite {
		fb, err := rs.Failover.Remap(f, req.Offset, req.Size(), name, ref.Class, phys)
		if err != nil {
			return err
		}
		if fb != nil {
			if rs.failovers != nil {
				rs.failovers.Inc()
			}
			req.File, req.Target = fb.Name, fb
			// The fallback itself may touch another down server (multi-
			// failure); re-check under the remaining attempt budget.
			return rs.handlePiece(req, next, attempt+1)
		}
		// No layout avoids the down server: fall through and wait for
		// recovery like a read.
	}
	if attempt >= rs.Policy.MaxAttempts {
		req.FinishErr(rs.Eng.Now(), fault.ErrUnavailable)
		return nil
	}
	delay := rs.Policy.Delay(attempt)
	rs.tel.retry(req.Op, delay)
	rs.Eng.Schedule(delay, func() {
		req.pipe.Exclusive(func() {
			// Errors were surfaced synchronously on the first pass; later
			// passes only re-route, so none can occur here.
			_ = rs.handlePiece(req, next, attempt+1)
		})
	})
	return nil
}
