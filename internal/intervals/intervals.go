// Package intervals provides a set of disjoint half-open int64 intervals
// [start, end).
//
// The MHA Data Reorganizer uses it to track which extents of an original
// file have already been claimed by a region: overlapping requests may be
// clustered into different groups, but each byte migrates exactly once —
// to the region of the first group that claims it.
package intervals

import (
	"fmt"
	"sort"
)

// Interval is a half-open range [Start, End).
type Interval struct {
	Start, End int64
}

// Len returns the interval length.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Set is a collection of disjoint, sorted, non-adjacent intervals. The
// zero value is an empty set.
type Set struct {
	ivs []Interval // sorted by Start; no overlaps; adjacent runs merged
}

// Len returns the number of disjoint intervals.
func (s *Set) Len() int { return len(s.ivs) }

// Total returns the number of covered integers.
func (s *Set) Total() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns a copy of the intervals in order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Contains reports whether every point of [start, end) is covered.
func (s *Set) Contains(start, end int64) bool {
	if start >= end {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	return i < len(s.ivs) && s.ivs[i].Start <= start && s.ivs[i].End >= end
}

// Overlaps reports whether any point of [start, end) is covered.
func (s *Set) Overlaps(start, end int64) bool {
	if start >= end {
		return false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	return i < len(s.ivs) && s.ivs[i].Start < end
}

// Add inserts [start, end), merging with existing intervals. An inverted
// interval panics: extents are validated where they enter the system
// (trace records, request offsets), so one here is a programmer error.
func (s *Set) Add(start, end int64) {
	if start > end {
		panic(fmt.Sprintf("intervals: inverted interval [%d,%d)", start, end))
	}
	if start == end {
		return
	}
	// Find insertion window: all intervals overlapping or adjacent.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= start })
	j := i
	for j < len(s.ivs) && s.ivs[j].Start <= end {
		j++
	}
	if i < j {
		if s.ivs[i].Start < start {
			start = s.ivs[i].Start
		}
		if s.ivs[j-1].End > end {
			end = s.ivs[j-1].End
		}
	}
	merged := append(s.ivs[:i:i], Interval{start, end})
	s.ivs = append(merged, s.ivs[j:]...)
}

// Gaps returns the uncovered sub-ranges of [start, end), in order.
func (s *Set) Gaps(start, end int64) []Interval {
	if start >= end {
		return nil
	}
	var out []Interval
	pos := start
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	for ; i < len(s.ivs) && s.ivs[i].Start < end; i++ {
		iv := s.ivs[i]
		if iv.Start > pos {
			out = append(out, Interval{pos, iv.Start})
		}
		if iv.End > pos {
			pos = iv.End
		}
	}
	if pos < end {
		out = append(out, Interval{pos, end})
	}
	return out
}

// Claim adds [start, end) and returns the sub-ranges that were NOT
// previously covered — the pieces the caller now owns.
func (s *Set) Claim(start, end int64) []Interval {
	gaps := s.Gaps(start, end)
	s.Add(start, end)
	return gaps
}
