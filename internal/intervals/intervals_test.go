package intervals

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddAndMerge(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	if s.Len() != 2 || s.Total() != 20 {
		t.Fatalf("Len=%d Total=%d", s.Len(), s.Total())
	}
	s.Add(20, 30) // bridges the two
	if s.Len() != 1 || s.Total() != 30 {
		t.Fatalf("after bridge: Len=%d Total=%d %v", s.Len(), s.Total(), s.Intervals())
	}
	if got := s.Intervals(); !reflect.DeepEqual(got, []Interval{{10, 40}}) {
		t.Errorf("intervals = %v", got)
	}
}

func TestAddOverlapVariants(t *testing.T) {
	cases := []struct {
		adds [][2]int64
		want []Interval
	}{
		{[][2]int64{{0, 10}, {5, 15}}, []Interval{{0, 15}}},
		{[][2]int64{{5, 15}, {0, 10}}, []Interval{{0, 15}}},
		{[][2]int64{{0, 100}, {10, 20}}, []Interval{{0, 100}}},
		{[][2]int64{{10, 20}, {0, 100}}, []Interval{{0, 100}}},
		{[][2]int64{{0, 10}, {20, 30}, {40, 50}, {5, 45}}, []Interval{{0, 50}}},
		{[][2]int64{{0, 10}, {10, 20}}, []Interval{{0, 20}}}, // adjacency merges
	}
	for i, c := range cases {
		var s Set
		for _, a := range c.adds {
			s.Add(a[0], a[1])
		}
		if got := s.Intervals(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestAddEmptyAndPanic(t *testing.T) {
	var s Set
	s.Add(5, 5)
	if s.Len() != 0 {
		t.Error("empty add should be a no-op")
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted interval should panic")
		}
	}()
	s.Add(10, 5)
}

func TestContainsOverlaps(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 18) || !s.Contains(15, 15) {
		t.Error("Contains false negative")
	}
	if s.Contains(5, 15) || s.Contains(15, 25) || s.Contains(20, 30) || s.Contains(25, 35) {
		t.Error("Contains false positive")
	}
	if !s.Overlaps(5, 15) || !s.Overlaps(15, 25) || !s.Overlaps(35, 100) {
		t.Error("Overlaps false negative")
	}
	if s.Overlaps(20, 30) || s.Overlaps(0, 10) || s.Overlaps(40, 50) || s.Overlaps(7, 7) {
		t.Error("Overlaps false positive")
	}
}

func TestGaps(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		start, end int64
		want       []Interval
	}{
		{0, 50, []Interval{{0, 10}, {20, 30}, {40, 50}}},
		{10, 40, []Interval{{20, 30}}},
		{12, 18, nil},
		{0, 5, []Interval{{0, 5}}},
		{45, 60, []Interval{{45, 60}}},
		{20, 30, []Interval{{20, 30}}},
		{15, 35, []Interval{{20, 30}}},
		{5, 5, nil},
	}
	for i, c := range cases {
		if got := s.Gaps(c.start, c.end); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Gaps(%d,%d) = %v, want %v", i, c.start, c.end, got, c.want)
		}
	}
}

func TestClaim(t *testing.T) {
	var s Set
	got := s.Claim(0, 100)
	if !reflect.DeepEqual(got, []Interval{{0, 100}}) {
		t.Errorf("first claim = %v", got)
	}
	got = s.Claim(50, 150)
	if !reflect.DeepEqual(got, []Interval{{100, 150}}) {
		t.Errorf("second claim = %v", got)
	}
	if s.Claim(0, 150) != nil {
		t.Error("fully-covered claim should return nothing")
	}
	if !s.Contains(0, 150) {
		t.Error("claims not recorded")
	}
}

// Property: Set behaves identically to a naive boolean-array model.
func TestSetMatchesModelQuick(t *testing.T) {
	const span = 256
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		model := make([]bool, span)
		for op := 0; op < int(nOps%20)+1; op++ {
			a := rng.Int63n(span)
			b := a + rng.Int63n(span-a)
			s.Add(a, b)
			for x := a; x < b; x++ {
				model[x] = true
			}
		}
		// Compare Total.
		var want int64
		for _, v := range model {
			if v {
				want++
			}
		}
		if s.Total() != want {
			return false
		}
		// Compare Contains/Overlaps/Gaps on random probes.
		for probe := 0; probe < 20; probe++ {
			a := rng.Int63n(span)
			b := a + rng.Int63n(span-a)
			wantContains, wantOverlaps := true, false
			for x := a; x < b; x++ {
				if model[x] {
					wantOverlaps = true
				} else {
					wantContains = false
				}
			}
			if s.Contains(a, b) != wantContains || s.Overlaps(a, b) != wantOverlaps {
				return false
			}
			var gapTotal int64
			for _, g := range s.Gaps(a, b) {
				for x := g.Start; x < g.End; x++ {
					if model[x] {
						return false // gap covering a set point
					}
					gapTotal++
				}
			}
			var wantGap int64
			for x := a; x < b; x++ {
				if !model[x] {
					wantGap++
				}
			}
			if gapTotal != wantGap {
				return false
			}
		}
		// Invariants: sorted, disjoint, non-adjacent.
		ivs := s.Intervals()
		for i := range ivs {
			if ivs[i].Start >= ivs[i].End {
				return false
			}
			if i > 0 && ivs[i-1].End >= ivs[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
