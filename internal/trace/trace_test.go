package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mkTrace() Trace {
	return Trace{
		{PID: 100, Rank: 0, FD: 3, File: "a", Op: OpWrite, Offset: 0, Size: 16, Time: 0.0},
		{PID: 101, Rank: 1, FD: 3, File: "a", Op: OpRead, Offset: 1024, Size: 64, Time: 0.5},
		{PID: 100, Rank: 0, FD: 4, File: "b", Op: OpRead, Offset: 128, Size: 32, Time: 0.25},
		{PID: 102, Rank: 2, FD: 3, File: "a", Op: OpWrite, Offset: 512, Size: 8, Time: 1.0},
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op.String wrong")
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Error("unknown op should embed numeric value")
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"read", "r", "R"} {
		if op, err := ParseOp(s); err != nil || op != OpRead {
			t.Errorf("ParseOp(%q) = %v,%v", s, op, err)
		}
	}
	for _, s := range []string{"write", "w", "W"} {
		if op, err := ParseOp(s); err != nil || op != OpWrite {
			t.Errorf("ParseOp(%q) = %v,%v", s, op, err)
		}
	}
	if _, err := ParseOp("append"); err == nil {
		t.Error("ParseOp(append): want error")
	}
}

func TestRecordEndOverlaps(t *testing.T) {
	a := Record{File: "f", Offset: 0, Size: 100}
	b := Record{File: "f", Offset: 99, Size: 1}
	c := Record{File: "f", Offset: 100, Size: 1}
	d := Record{File: "g", Offset: 0, Size: 100}
	if a.End() != 100 {
		t.Errorf("End = %d, want 100", a.End())
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("adjacent extents must not overlap")
	}
	if a.Overlaps(d) {
		t.Error("different files must not overlap")
	}
}

func TestValidate(t *testing.T) {
	good := Record{File: "f", Size: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := []Record{
		{File: "f", Size: 0},
		{File: "f", Size: -1},
		{File: "f", Size: 1, Offset: -1},
		{File: "", Size: 1},
		{File: "f", Size: 1, Time: -0.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	tr := Trace{good, bad[0]}
	if err := tr.Validate(); err == nil {
		t.Error("Trace.Validate should reject bad record")
	}
}

func TestSortByOffset(t *testing.T) {
	tr := mkTrace()
	tr.SortByOffset()
	for i := 1; i < len(tr); i++ {
		a, b := tr[i-1], tr[i]
		if a.File > b.File || (a.File == b.File && a.Offset > b.Offset) {
			t.Fatalf("not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestSortByTime(t *testing.T) {
	tr := mkTrace()
	tr.SortByTime()
	for i := 1; i < len(tr); i++ {
		if tr[i-1].Time > tr[i].Time {
			t.Fatalf("not time-sorted at %d", i)
		}
	}
}

func TestFilesRanksFilters(t *testing.T) {
	tr := mkTrace()
	if got := tr.Files(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Files = %v", got)
	}
	if got := tr.Ranks(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Ranks = %v", got)
	}
	if got := tr.FilterFile("a"); len(got) != 3 {
		t.Errorf("FilterFile(a) len = %d, want 3", len(got))
	}
	if got := tr.FilterOp(OpRead); len(got) != 2 {
		t.Errorf("FilterOp(read) len = %d, want 2", len(got))
	}
}

func TestSizeAggregates(t *testing.T) {
	tr := mkTrace()
	if got := tr.TotalBytes(); got != 16+64+32+8 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := tr.MaxSize(); got != 64 {
		t.Errorf("MaxSize = %d", got)
	}
	if got := tr.MinSize(); got != 8 {
		t.Errorf("MinSize = %d", got)
	}
	var empty Trace
	if empty.MaxSize() != 0 || empty.MinSize() != 0 || empty.TotalBytes() != 0 {
		t.Error("empty trace aggregates should be 0")
	}
}

func TestSummarize(t *testing.T) {
	tr := mkTrace()
	s := tr.Summarize()
	if s.Records != 4 || s.Reads != 2 || s.Writes != 2 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.ReadBytes != 96 || s.WriteBytes != 24 {
		t.Errorf("bytes wrong: %+v", s)
	}
	if s.MinSize != 8 || s.MaxSize != 64 {
		t.Errorf("size range wrong: %+v", s)
	}
	if math.Abs(s.MeanSize-30) > 1e-9 {
		t.Errorf("MeanSize = %v, want 30", s.MeanSize)
	}
	if s.Files != 2 || s.Ranks != 3 {
		t.Errorf("files/ranks wrong: %+v", s)
	}
	if math.Abs(s.Span-1.0) > 1e-9 {
		t.Errorf("Span = %v, want 1.0", s.Span)
	}
	if !strings.Contains(s.String(), "records=4") {
		t.Errorf("Stats.String missing records: %s", s)
	}
	if (Trace{}).Summarize().Records != 0 {
		t.Error("empty Summarize should report 0 records")
	}
}

func TestClone(t *testing.T) {
	tr := mkTrace()
	cl := tr.Clone()
	cl[0].Offset = 999
	if tr[0].Offset == 999 {
		t.Error("Clone must not alias the original")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(pid, rank, fd uint8, off, size uint16, ms uint16, write bool) bool {
		op := OpRead
		if write {
			op = OpWrite
		}
		rec := Record{
			PID: int(pid), Rank: int(rank), FD: int(fd), File: "f.dat",
			Op: op, Offset: int64(off), Size: int64(size) + 1,
			Time: float64(ms) / 1000.0,
		}
		var buf bytes.Buffer
		if err := Write(&buf, Trace{rec}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.PID == rec.PID && g.Rank == rec.Rank && g.FD == rec.FD &&
			g.File == rec.File && g.Op == rec.Op && g.Offset == rec.Offset &&
			g.Size == rec.Size && math.Abs(g.Time-rec.Time) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadIgnoresCommentsAndBlank(t *testing.T) {
	in := "# header\n\n100 0 3 f read 0 16 0.0\n  \n# trailing\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(tr) != 1 || tr[0].Size != 16 {
		t.Errorf("got %+v", tr)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"1 2 3 f read 0 16",      // too few fields
		"x 2 3 f read 0 16 0.0",  // bad pid
		"1 x 3 f read 0 16 0.0",  // bad rank
		"1 2 x f read 0 16 0.0",  // bad fd
		"1 2 3 f chmod 0 16 0.0", // bad op
		"1 2 3 f read x 16 0.0",  // bad offset
		"1 2 3 f read 0 x 0.0",   // bad size
		"1 2 3 f read 0 16 x",    // bad time
		"1 2 3 f read 0 0 0.0",   // zero size fails validation
		"1 2 3 f read -4 16 0.0", // negative offset
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line)); err == nil {
			t.Errorf("Read(%q): want error", line)
		}
	}
}

func TestWriteRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Trace{{File: "f", Size: 0}}); err == nil {
		t.Error("Write should reject invalid record")
	}
	if err := Write(&buf, Trace{{File: "has space", Size: 1}}); err == nil {
		t.Error("Write should reject file name with spaces")
	}
}
