package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the text codec never panics on arbitrary input and
// that anything it accepts re-encodes and re-parses to the same records.
func FuzzRead(f *testing.F) {
	f.Add("# header\n100 0 3 f read 0 16 0.0\n")
	f.Add("1 2 3 data.bin write 4096 65536 1.5\n")
	f.Add("")
	f.Add("garbage line\n")
	f.Add("1 2 3 f read 0 16 0.0\n1 2 3 f write 16 16 0.5\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed record count %d -> %d", len(tr), len(back))
		}
	})
}
