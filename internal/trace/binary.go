package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary trace format, for traces too large for the text codec:
//
//	magic "MHTR" | version u16 | record count u64
//	file table: count u32, then per file: len u16 + bytes
//	records: fileIdx u32, pid/rank/fd varint-packed as u32s,
//	         op u8, offset u64, size u64, time float64 bits
//
// All integers little-endian. The file table deduplicates names, which
// dominate the text format's size for per-process application traces.

const (
	binaryMagic   = "MHTR"
	binaryVersion = 1
)

// WriteBinary encodes the trace in the compact binary format.
func WriteBinary(w io.Writer, t Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [8]byte
	put16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := put16(binaryVersion); err != nil {
		return err
	}
	if err := put64(uint64(len(t))); err != nil {
		return err
	}
	// File table.
	files := t.Files()
	index := make(map[string]uint32, len(files))
	if len(files) > math.MaxUint32 {
		return fmt.Errorf("trace: too many files")
	}
	if err := put32(uint32(len(files))); err != nil {
		return err
	}
	for i, f := range files {
		if len(f) > math.MaxUint16 {
			return fmt.Errorf("trace: file name %q too long", f)
		}
		index[f] = uint32(i)
		if err := put16(uint16(len(f))); err != nil {
			return err
		}
		if _, err := bw.WriteString(f); err != nil {
			return err
		}
	}
	for _, r := range t {
		if err := put32(index[r.File]); err != nil {
			return err
		}
		if err := put32(uint32(r.PID)); err != nil {
			return err
		}
		if err := put32(uint32(r.Rank)); err != nil {
			return err
		}
		if err := put32(uint32(r.FD)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := put64(uint64(r.Offset)); err != nil {
			return err
		}
		if err := put64(uint64(r.Size)); err != nil {
			return err
		}
		if err := put64(math.Float64bits(r.Time)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary-format trace.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	get := func(n int) ([]byte, error) {
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, fmt.Errorf("trace: binary read: %w", err)
		}
		return scratch[:n], nil
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: binary read: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	b, err := get(2)
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(b); v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", v)
	}
	b, err = get(8)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(b)
	const maxRecords = 1 << 32
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	b, err = get(4)
	if err != nil {
		return nil, err
	}
	nFiles := binary.LittleEndian.Uint32(b)
	if uint64(nFiles) > count && nFiles > 0 && count > 0 {
		return nil, fmt.Errorf("trace: more files (%d) than records (%d)", nFiles, count)
	}
	files := make([]string, nFiles)
	for i := range files {
		b, err = get(2)
		if err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint16(b)
		if n == 0 {
			return nil, fmt.Errorf("trace: empty file name in table")
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("trace: binary read: %w", err)
		}
		files[i] = string(name)
	}
	out := make(Trace, 0, count)
	for i := uint64(0); i < count; i++ {
		var rec Record
		b, err = get(4)
		if err != nil {
			return nil, err
		}
		fi := binary.LittleEndian.Uint32(b)
		if fi >= nFiles {
			return nil, fmt.Errorf("trace: record %d references file %d of %d", i, fi, nFiles)
		}
		rec.File = files[fi]
		for _, dst := range []*int{&rec.PID, &rec.Rank, &rec.FD} {
			b, err = get(4)
			if err != nil {
				return nil, err
			}
			*dst = int(binary.LittleEndian.Uint32(b))
		}
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: binary read: %w", err)
		}
		rec.Op = Op(op)
		if rec.Op != OpRead && rec.Op != OpWrite {
			return nil, fmt.Errorf("trace: record %d has bad op %d", i, op)
		}
		b, err = get(8)
		if err != nil {
			return nil, err
		}
		rec.Offset = int64(binary.LittleEndian.Uint64(b))
		b, err = get(8)
		if err != nil {
			return nil, err
		}
		rec.Size = int64(binary.LittleEndian.Uint64(b))
		b, err = get(8)
		if err != nil {
			return nil, err
		}
		rec.Time = math.Float64frombits(binary.LittleEndian.Uint64(b))
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
