package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records", len(got))
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	// A per-process application trace: long repeated file names dominate
	// the text format.
	var tr Trace
	for i := 0; i < 1000; i++ {
		tr = append(tr, Record{
			PID: 1000 + i%8, Rank: i % 8, FD: 3,
			File: "some/deeply/nested/output/matrix-panels.dat.7",
			Op:   OpWrite, Offset: int64(i) * 65536, Size: 65536,
			Time: float64(i),
		})
	}
	var txt, bin bytes.Buffer
	if err := Write(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %d bytes not smaller than text %d", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	WriteBinary(&buf, tr)
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at every prefix length must error, not panic.
	for n := 0; n < len(data)-1; n += 7 {
		if _, err := ReadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Bad version.
	bad = append([]byte{}, data...)
	bad[4] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(recs []struct {
		Rank, FD uint8
		Off, Sz  uint16
		W        bool
	}) bool {
		var tr Trace
		for _, r := range recs {
			op := OpRead
			if r.W {
				op = OpWrite
			}
			tr = append(tr, Record{
				PID: int(r.Rank), Rank: int(r.Rank), FD: int(r.FD),
				File: "f", Op: op, Offset: int64(r.Off), Size: int64(r.Sz) + 1,
				Time: float64(r.Off) / 7,
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(tr) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// FuzzReadBinary: arbitrary bytes must never panic the binary decoder.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	WriteBinary(&buf, mkTrace())
	f.Add(buf.Bytes())
	f.Add([]byte("MHTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-encode cleanly.
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
	})
}
