// Package trace defines the I/O trace representation shared by the tracer,
// the layout planners and the replay engine.
//
// A trace is the list of file operations a parallel application performed,
// in the schema the paper attributes to IOSIG (§III-C): process ID, MPI
// rank, file descriptor, request type, file offset, request size, and time
// stamp. Traces are the sole input to the MHA pipeline: the Data
// Reorganizer clusters trace records, the Layout Determinator scores
// candidate stripe pairs against them, and the replay engine re-issues them
// against the simulated file system.
package trace

import (
	"fmt"
	"sort"
)

// Op is the request type of a trace record.
type Op uint8

// Request types. The paper's cost model distinguishes reads from writes
// because SServers (SSDs) have asymmetric read/write performance.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp parses "read"/"r" or "write"/"w".
func ParseOp(s string) (Op, error) {
	switch s {
	case "read", "r", "R":
		return OpRead, nil
	case "write", "w", "W":
		return OpWrite, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Record is one file operation.
type Record struct {
	PID    int     // operating-system process ID
	Rank   int     // MPI rank
	FD     int     // file descriptor within the process
	File   string  // logical file name
	Op     Op      // read or write
	Offset int64   // byte offset within File
	Size   int64   // request length in bytes
	Time   float64 // issue time stamp, seconds since application start
}

// End returns the exclusive end offset of the record's extent.
func (r Record) End() int64 { return r.Offset + r.Size }

// Overlaps reports whether two records touch any common byte of the same
// file.
func (r Record) Overlaps(o Record) bool {
	return r.File == o.File && r.Offset < o.End() && o.Offset < r.End()
}

// Validate checks structural invariants of a single record.
func (r Record) Validate() error {
	if r.Size <= 0 {
		return fmt.Errorf("trace: record size %d must be positive", r.Size)
	}
	if r.Offset < 0 {
		return fmt.Errorf("trace: record offset %d must be non-negative", r.Offset)
	}
	if r.File == "" {
		return fmt.Errorf("trace: record has empty file name")
	}
	if r.Time < 0 {
		return fmt.Errorf("trace: record time %v must be non-negative", r.Time)
	}
	return nil
}

// Trace is an ordered list of records.
type Trace []Record

// Validate checks every record.
func (t Trace) Validate() error {
	for i, r := range t {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy (records are values, so a slice copy suffices).
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// SortByOffset sorts records ascending by (file, offset, time), the order
// the paper prescribes for trace files handed to the reordering phase.
func (t Trace) SortByOffset() {
	sort.SliceStable(t, func(i, j int) bool {
		if t[i].File != t[j].File {
			return t[i].File < t[j].File
		}
		if t[i].Offset != t[j].Offset {
			return t[i].Offset < t[j].Offset
		}
		return t[i].Time < t[j].Time
	})
}

// SortByTime sorts records ascending by (time, rank, offset) — replay order.
func (t Trace) SortByTime() {
	sort.SliceStable(t, func(i, j int) bool {
		if t[i].Time != t[j].Time {
			return t[i].Time < t[j].Time
		}
		if t[i].Rank != t[j].Rank {
			return t[i].Rank < t[j].Rank
		}
		return t[i].Offset < t[j].Offset
	})
}

// Files returns the distinct file names referenced by the trace, sorted.
func (t Trace) Files() []string {
	seen := make(map[string]bool)
	for _, r := range t {
		seen[r.File] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Ranks returns the distinct MPI ranks in the trace, sorted.
func (t Trace) Ranks() []int {
	seen := make(map[int]bool)
	for _, r := range t {
		seen[r.Rank] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FilterFile returns the records that touch the given file, preserving
// order.
func (t Trace) FilterFile(file string) Trace {
	var out Trace
	for _, r := range t {
		if r.File == file {
			out = append(out, r)
		}
	}
	return out
}

// FilterOp returns the records with the given op, preserving order.
func (t Trace) FilterOp(op Op) Trace {
	var out Trace
	for _, r := range t {
		if r.Op == op {
			out = append(out, r)
		}
	}
	return out
}

// TotalBytes sums request sizes.
func (t Trace) TotalBytes() int64 {
	var n int64
	for _, r := range t {
		n += r.Size
	}
	return n
}

// MaxSize returns the largest request size (0 for an empty trace). The
// paper's Algorithm 2 uses r_max to bound the stripe-size search space.
func (t Trace) MaxSize() int64 {
	var m int64
	for _, r := range t {
		if r.Size > m {
			m = r.Size
		}
	}
	return m
}

// MinSize returns the smallest request size (0 for an empty trace).
func (t Trace) MinSize() int64 {
	if len(t) == 0 {
		return 0
	}
	m := t[0].Size
	for _, r := range t[1:] {
		if r.Size < m {
			m = r.Size
		}
	}
	return m
}

// Stats summarizes a trace for reporting and pattern analysis.
type Stats struct {
	Records    int
	Reads      int
	Writes     int
	ReadBytes  int64
	WriteBytes int64
	MinSize    int64
	MaxSize    int64
	MeanSize   float64
	Files      int
	Ranks      int
	Span       float64 // last time stamp minus first
}

// Summarize computes Stats in one pass plus the distinct-set scans.
func (t Trace) Summarize() Stats {
	s := Stats{Records: len(t)}
	if len(t) == 0 {
		return s
	}
	s.MinSize = t[0].Size
	minT, maxT := t[0].Time, t[0].Time
	for _, r := range t {
		switch r.Op {
		case OpRead:
			s.Reads++
			s.ReadBytes += r.Size
		case OpWrite:
			s.Writes++
			s.WriteBytes += r.Size
		}
		if r.Size < s.MinSize {
			s.MinSize = r.Size
		}
		if r.Size > s.MaxSize {
			s.MaxSize = r.Size
		}
		if r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	s.MeanSize = float64(s.ReadBytes+s.WriteBytes) / float64(len(t))
	s.Files = len(t.Files())
	s.Ranks = len(t.Ranks())
	s.Span = maxT - minT
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"records=%d reads=%d writes=%d readB=%d writeB=%d size=[%d,%d] mean=%.1f files=%d ranks=%d span=%.6fs",
		s.Records, s.Reads, s.Writes, s.ReadBytes, s.WriteBytes,
		s.MinSize, s.MaxSize, s.MeanSize, s.Files, s.Ranks, s.Span)
}
