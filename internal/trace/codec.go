package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mhafs/internal/units"
)

// The text trace format is one record per line:
//
//	pid rank fd file op offset size time
//
// Fields are space-separated; file names must not contain spaces; lines
// starting with '#' and blank lines are ignored. This mirrors the flat
// per-process trace files IOSIG emits.

// Write encodes the trace to w in the text format, preceded by a header
// comment.
func Write(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# pid rank fd file op offset size time"); err != nil {
		return err
	}
	for i, r := range t {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
		if strings.ContainsAny(r.File, " \t\n") {
			return fmt.Errorf("trace: encode record %d: file name %q contains whitespace", i, r.File)
		}
		_, err := fmt.Fprintf(bw, "%d %d %d %s %s %d %d %.9f\n",
			r.PID, r.Rank, r.FD, r.File, r.Op, r.Offset, r.Size, r.Time)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a text-format trace from r.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*units.KB), int(4*units.MB))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t = append(t, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

func parseLine(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) != 8 {
		return Record{}, fmt.Errorf("want 8 fields, got %d", len(f))
	}
	var (
		rec Record
		err error
	)
	if rec.PID, err = strconv.Atoi(f[0]); err != nil {
		return Record{}, fmt.Errorf("pid: %w", err)
	}
	if rec.Rank, err = strconv.Atoi(f[1]); err != nil {
		return Record{}, fmt.Errorf("rank: %w", err)
	}
	if rec.FD, err = strconv.Atoi(f[2]); err != nil {
		return Record{}, fmt.Errorf("fd: %w", err)
	}
	rec.File = f[3]
	if rec.Op, err = ParseOp(f[4]); err != nil {
		return Record{}, err
	}
	if rec.Offset, err = strconv.ParseInt(f[5], 10, 64); err != nil {
		return Record{}, fmt.Errorf("offset: %w", err)
	}
	if rec.Size, err = strconv.ParseInt(f[6], 10, 64); err != nil {
		return Record{}, fmt.Errorf("size: %w", err)
	}
	if rec.Time, err = strconv.ParseFloat(f[7], 64); err != nil {
		return Record{}, fmt.Errorf("time: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}
