// Package config loads experiment calibration from JSON, so a deployed
// mhabench can be matched to different hardware without recompiling. All
// fields are optional; absent ones keep the built-in defaults documented
// in DESIGN.md §5.
//
// Example:
//
//	{
//	  "hdd": {"startup_us": 1500, "read_mbps": 110, "write_mbps": 110,
//	          "seek_interference_us": 30, "seek_interference_cap_us": 2000},
//	  "ssd": {"read_startup_us": 50, "write_startup_us": 80,
//	          "read_mbps": 700, "write_mbps": 500},
//	  "net": {"mbps": 117, "per_message_us": 20},
//	  "cluster": {"hservers": 6, "sservers": 2, "mds_lookup_us": 200,
//	              "default_stripe": "64KB"},
//	  "planner": {"step": "4KB", "max_regions": 16},
//	  "redirect_lookup_us": 1
//	}
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mhafs/internal/bench"
	"mhafs/internal/costmodel"
	"mhafs/internal/units"
)

// HDDJSON overrides the HDD model.
type HDDJSON struct {
	StartupUS             *float64 `json:"startup_us"`
	ReadMBps              *float64 `json:"read_mbps"`
	WriteMBps             *float64 `json:"write_mbps"`
	SeekInterferenceUS    *float64 `json:"seek_interference_us"`
	SeekInterferenceCapUS *float64 `json:"seek_interference_cap_us"`
}

// SSDJSON overrides the SSD model.
type SSDJSON struct {
	ReadStartupUS  *float64 `json:"read_startup_us"`
	WriteStartupUS *float64 `json:"write_startup_us"`
	ReadMBps       *float64 `json:"read_mbps"`
	WriteMBps      *float64 `json:"write_mbps"`
}

// NetJSON overrides the network model.
type NetJSON struct {
	MBps         *float64 `json:"mbps"`
	PerMessageUS *float64 `json:"per_message_us"`
}

// ClusterJSON overrides cluster shape and MDS parameters.
type ClusterJSON struct {
	HServers      *int     `json:"hservers"`
	SServers      *int     `json:"sservers"`
	MDSLookupUS   *float64 `json:"mds_lookup_us"`
	DefaultStripe *string  `json:"default_stripe"`
}

// PlannerJSON overrides planning parameters.
type PlannerJSON struct {
	Step       *string `json:"step"`
	MaxRegions *int    `json:"max_regions"`
}

// Calibration is the top-level document.
type Calibration struct {
	HDD              *HDDJSON     `json:"hdd"`
	SSD              *SSDJSON     `json:"ssd"`
	Net              *NetJSON     `json:"net"`
	Cluster          *ClusterJSON `json:"cluster"`
	Planner          *PlannerJSON `json:"planner"`
	RedirectLookupUS *float64     `json:"redirect_lookup_us"`
	Scale            *int64       `json:"scale"`
}

// Load parses the file at path.
func Load(path string) (Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Calibration{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// Parse decodes a calibration document, rejecting unknown fields so typos
// are caught instead of silently ignored.
func Parse(data []byte) (Calibration, error) {
	var c Calibration
	dec := json.NewDecoder(bytesReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Calibration{}, fmt.Errorf("config: %w", err)
	}
	return c, nil
}

// Apply overlays the calibration onto a bench configuration and returns
// the result, re-deriving the cost model so the planner and simulator
// stay consistent. The input is not modified.
func (c Calibration) Apply(base bench.Config) (bench.Config, error) {
	out := base
	us := func(v float64) float64 { return v * 1e-6 }

	if h := c.HDD; h != nil {
		m := out.Cluster.HDD
		if h.StartupUS != nil {
			m.ReadStartup = us(*h.StartupUS)
			m.WriteStartup = us(*h.StartupUS)
		}
		if h.ReadMBps != nil {
			m.ReadPerByte = units.PerByteFromMBps(*h.ReadMBps)
		}
		if h.WriteMBps != nil {
			m.WritePerByte = units.PerByteFromMBps(*h.WriteMBps)
		}
		if h.SeekInterferenceUS != nil {
			m.SeekInterference = us(*h.SeekInterferenceUS)
		}
		if h.SeekInterferenceCapUS != nil {
			m.SeekInterferenceCap = us(*h.SeekInterferenceCapUS)
		}
		out.Cluster.HDD = m
	}
	if s := c.SSD; s != nil {
		m := out.Cluster.SSD
		if s.ReadStartupUS != nil {
			m.ReadStartup = us(*s.ReadStartupUS)
		}
		if s.WriteStartupUS != nil {
			m.WriteStartup = us(*s.WriteStartupUS)
		}
		if s.ReadMBps != nil {
			m.ReadPerByte = units.PerByteFromMBps(*s.ReadMBps)
		}
		if s.WriteMBps != nil {
			m.WritePerByte = units.PerByteFromMBps(*s.WriteMBps)
		}
		out.Cluster.SSD = m
	}
	if n := c.Net; n != nil {
		m := out.Cluster.Net
		if n.MBps != nil {
			m.PerByte = units.PerByteFromMBps(*n.MBps)
		}
		if n.PerMessageUS != nil {
			m.PerMessage = us(*n.PerMessageUS)
		}
		out.Cluster.Net = m
	}
	if cl := c.Cluster; cl != nil {
		if cl.HServers != nil {
			out.Cluster.HServers = *cl.HServers
			out.Env.M = *cl.HServers
		}
		if cl.SServers != nil {
			out.Cluster.SServers = *cl.SServers
			out.Env.N = *cl.SServers
		}
		if cl.MDSLookupUS != nil {
			out.Cluster.MDSLookup = us(*cl.MDSLookupUS)
		}
		if cl.DefaultStripe != nil {
			b, err := units.ParseBytes(*cl.DefaultStripe)
			if err != nil {
				return out, fmt.Errorf("config: default_stripe: %w", err)
			}
			out.Cluster.DefaultStripe = int64(b)
			out.Env.DefaultStripe = int64(b)
		}
	}
	if p := c.Planner; p != nil {
		if p.Step != nil {
			b, err := units.ParseBytes(*p.Step)
			if err != nil {
				return out, fmt.Errorf("config: step: %w", err)
			}
			out.Env.Step = int64(b)
		}
		if p.MaxRegions != nil {
			out.Env.MaxRegions = *p.MaxRegions
		}
	}
	if c.RedirectLookupUS != nil {
		out.RedirectLookup = us(*c.RedirectLookupUS)
	}
	if c.Scale != nil {
		out.Scale = *c.Scale
	}
	// Keep the planner's cost model derived from the (possibly updated)
	// device and network models.
	out.Env.Params = costmodel.FromModels(out.Cluster.HDD, out.Cluster.SSD, out.Cluster.Net)
	if err := out.Validate(); err != nil {
		return out, fmt.Errorf("config: resulting configuration invalid: %w", err)
	}
	return out, nil
}
