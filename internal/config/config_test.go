package config

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhafs/internal/bench"
	"mhafs/internal/units"
)

const sample = `{
  "hdd": {"startup_us": 2000, "read_mbps": 90, "write_mbps": 85,
          "seek_interference_us": 50, "seek_interference_cap_us": 3000},
  "ssd": {"read_startup_us": 40, "write_startup_us": 70,
          "read_mbps": 900, "write_mbps": 600},
  "net": {"mbps": 1100, "per_message_us": 5},
  "cluster": {"hservers": 8, "sservers": 4, "mds_lookup_us": 100,
              "default_stripe": "128KB"},
  "planner": {"step": "8KB", "max_regions": 32},
  "redirect_lookup_us": 2,
  "scale": 128
}`

func TestParseAndApply(t *testing.T) {
	c, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Apply(bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster.HServers != 8 || out.Cluster.SServers != 4 {
		t.Errorf("cluster shape = %d/%d", out.Cluster.HServers, out.Cluster.SServers)
	}
	if out.Env.M != 8 || out.Env.N != 4 {
		t.Errorf("env shape = %d/%d", out.Env.M, out.Env.N)
	}
	if math.Abs(out.Cluster.HDD.ReadStartup-2e-3) > 1e-12 {
		t.Errorf("hdd startup = %v", out.Cluster.HDD.ReadStartup)
	}
	if math.Abs(out.Cluster.HDD.ReadPerByte.MBps()-90) > 1e-6 {
		t.Errorf("hdd read = %v MBps", out.Cluster.HDD.ReadPerByte.MBps())
	}
	if math.Abs(out.Cluster.SSD.WritePerByte.MBps()-600) > 1e-6 {
		t.Errorf("ssd write = %v MBps", out.Cluster.SSD.WritePerByte.MBps())
	}
	if out.Cluster.DefaultStripe != 128*units.KB || out.Env.DefaultStripe != 128*units.KB {
		t.Errorf("default stripe = %d", out.Cluster.DefaultStripe)
	}
	if out.Env.Step != 8*units.KB || out.Env.MaxRegions != 32 {
		t.Errorf("planner = step %d maxK %d", out.Env.Step, out.Env.MaxRegions)
	}
	if math.Abs(out.RedirectLookup-2e-6) > 1e-15 {
		t.Errorf("redirect lookup = %v", out.RedirectLookup)
	}
	if out.Scale != 128 {
		t.Errorf("scale = %d", out.Scale)
	}
	// The cost model must be re-derived from the new device models.
	if math.Abs(out.Env.Params.AlphaH-2e-3) > 1e-12 {
		t.Errorf("cost model alpha_h = %v not re-derived", out.Env.Params.AlphaH)
	}
	if math.Abs(out.Env.Params.SeekInterference-50e-6) > 1e-12 {
		t.Errorf("cost model interference = %v", out.Env.Params.SeekInterference)
	}
}

func TestPartialOverlayKeepsDefaults(t *testing.T) {
	c, err := Parse([]byte(`{"net": {"mbps": 200}}`))
	if err != nil {
		t.Fatal(err)
	}
	base := bench.Default()
	out, err := c.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Cluster.Net.PerByte.MBps()-200) > 1e-6 {
		t.Errorf("net = %v", out.Cluster.Net.PerByte.MBps())
	}
	if out.Cluster.Net.PerMessage != base.Cluster.Net.PerMessage {
		t.Error("per-message default lost")
	}
	if out.Cluster.HDD != base.Cluster.HDD {
		t.Error("HDD defaults lost")
	}
	if out.Scale != base.Scale {
		t.Error("scale default lost")
	}
}

func TestRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"hdd": {"startup_ms": 2}}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"typo": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRejectsInvalidResults(t *testing.T) {
	c, _ := Parse([]byte(`{"cluster": {"hservers": 0, "sservers": 0}}`))
	if _, err := c.Apply(bench.Default()); err == nil {
		t.Error("invalid resulting cluster accepted")
	}
	c, _ = Parse([]byte(`{"cluster": {"default_stripe": "12parsecs"}}`))
	if _, err := c.Apply(bench.Default()); err == nil {
		t.Error("bad stripe unit accepted")
	}
	c, _ = Parse([]byte(`{"planner": {"step": "oops"}}`))
	if _, err := c.Apply(bench.Default()); err == nil {
		t.Error("bad step unit accepted")
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale == nil || *c.Scale != 128 {
		t.Error("file load lost fields")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Errorf("missing file error = %v", err)
	}
}
