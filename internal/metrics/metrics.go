// Package metrics provides result aggregation and reporting helpers for
// the experiment harness: per-server load accounting (Fig. 8), bandwidth
// computation, and plain-text/CSV tables in the style of the paper's
// figures.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mhafs/internal/server"
	"mhafs/internal/units"
)

// DiffStats subtracts a baseline snapshot from a later one, yielding the
// activity of the interval. The slices must be parallel (same servers in
// the same order); mismatched snapshots indicate a programmer error (two
// different clusters) and panic.
func DiffStats(before, after []server.Stats) []server.Stats {
	if len(before) != len(after) {
		panic("metrics: stats snapshots differ in length")
	}
	out := make([]server.Stats, len(after))
	for i := range after {
		if before[i].Name != after[i].Name {
			panic("metrics: stats snapshots are not parallel")
		}
		out[i] = server.Stats{
			Name:       after[i].Name,
			Kind:       after[i].Kind,
			Reads:      after[i].Reads - before[i].Reads,
			Writes:     after[i].Writes - before[i].Writes,
			ReadBytes:  after[i].ReadBytes - before[i].ReadBytes,
			WriteBytes: after[i].WriteBytes - before[i].WriteBytes,
			BusyTime:   after[i].BusyTime - before[i].BusyTime,
		}
	}
	return out
}

// BusyTimes extracts the per-server busy times.
func BusyTimes(stats []server.Stats) []float64 {
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = s.BusyTime
	}
	return out
}

// NormalizeToMin scales values so the smallest positive value becomes 1 —
// the normalization of the paper's Fig. 8. Zero and negative entries stay
// 0.
func NormalizeToMin(vals []float64) []float64 {
	min := 0.0
	for _, v := range vals {
		if v > 0 && (min == 0 || v < min) {
			min = v
		}
	}
	out := make([]float64, len(vals))
	if min == 0 {
		return out
	}
	for i, v := range vals {
		if v > 0 {
			out[i] = v / min
		}
	}
	return out
}

// LoadImbalance returns max/min over the positive entries (1.0 = perfectly
// even). It returns 0 if fewer than two servers did work.
func LoadImbalance(vals []float64) float64 {
	var min, max float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		if n == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
		n++
	}
	if n < 2 || min == 0 {
		return 0
	}
	return max / min
}

// MBps converts bytes transferred in a span into MB/s.
func MBps(bytes int64, seconds float64) float64 {
	return units.BandwidthMBps(bytes, seconds)
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of vals using linear
// interpolation between order statistics. The input need not be sorted; a
// sorted copy is made. It returns 0 for empty input and panics for q
// outside [0, 1].
func Percentile(vals []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// LatencySummary condenses a latency sample.
type LatencySummary struct {
	Count                    int
	Mean, P50, P95, P99, Max float64
}

// Summarize computes a LatencySummary (seconds in, seconds out).
func Summarize(vals []float64) LatencySummary {
	s := LatencySummary{Count: len(vals)}
	if len(vals) == 0 {
		return s
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	s.P50 = Percentile(vals, 0.50)
	s.P95 = Percentile(vals, 0.95)
	s.P99 = Percentile(vals, 0.99)
	return s
}

// Table is a minimal fixed-width text table, used by the benchmark
// binaries to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Data returns a copy of the stringified data rows, for machine-readable
// exports.
func (t *Table) Data() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FprintCSV renders the table as CSV (without the title).
func (t *Table) FprintCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
