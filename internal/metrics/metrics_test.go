package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mhafs/internal/server"
)

func TestDiffStats(t *testing.T) {
	before := []server.Stats{{Name: "h0", Reads: 1, ReadBytes: 100, BusyTime: 1.0}}
	after := []server.Stats{{Name: "h0", Reads: 4, ReadBytes: 250, BusyTime: 3.5}}
	d := DiffStats(before, after)
	if d[0].Reads != 3 || d[0].ReadBytes != 150 || math.Abs(d[0].BusyTime-2.5) > 1e-12 {
		t.Errorf("diff = %+v", d[0])
	}
}

func TestDiffStatsPanics(t *testing.T) {
	mustPanic(t, "length", func() { DiffStats(nil, []server.Stats{{}}) })
	mustPanic(t, "names", func() {
		DiffStats([]server.Stats{{Name: "a"}}, []server.Stats{{Name: "b"}})
	})
}

func TestDiffStatsEdges(t *testing.T) {
	// Two empty snapshots are trivially parallel.
	if d := DiffStats(nil, nil); len(d) != 0 {
		t.Errorf("empty diff = %v", d)
	}
	// Same servers in a different order is not parallel — a diff across
	// reordered snapshots would silently misattribute load.
	mustPanic(t, "reordered", func() {
		DiffStats(
			[]server.Stats{{Name: "a"}, {Name: "b"}},
			[]server.Stats{{Name: "b"}, {Name: "a"}},
		)
	})
	// An interval with no activity diffs to all-zero rows, and those
	// zeros normalize to zero rather than dividing by a zero minimum.
	snap := []server.Stats{{Name: "h0", BusyTime: 1.5}, {Name: "h1", BusyTime: 2.5}}
	d := DiffStats(snap, snap)
	for i, s := range d {
		if s.Reads != 0 || s.WriteBytes != 0 || s.BusyTime != 0 {
			t.Errorf("idle interval row %d = %+v", i, s)
		}
	}
	for i, v := range NormalizeToMin(BusyTimes(d)) {
		if v != 0 {
			t.Errorf("normalized idle busy[%d] = %v, want 0", i, v)
		}
	}
}

func TestNormalizeToMinEdges(t *testing.T) {
	if got := NormalizeToMin(nil); len(got) != 0 {
		t.Errorf("nil input = %v", got)
	}
	// Negative entries are treated like zeros: never the minimum, never
	// scaled.
	got := NormalizeToMin([]float64{-3, 2, 4})
	want := []float64{0, 1, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("with negatives [%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := NormalizeToMin([]float64{0, 5, 0}); got[1] != 1 || got[0] != 0 || got[2] != 0 {
		t.Errorf("single positive = %v, want [0 1 0]", got)
	}
}

func TestBusyTimes(t *testing.T) {
	got := BusyTimes([]server.Stats{{BusyTime: 1}, {BusyTime: 2}})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("BusyTimes = %v", got)
	}
}

func TestNormalizeToMin(t *testing.T) {
	got := NormalizeToMin([]float64{2, 4, 0, 6})
	want := []float64{1, 2, 0, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("NormalizeToMin[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := NormalizeToMin([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Error("all-zero normalization should stay zero")
	}
}

func TestLoadImbalance(t *testing.T) {
	if got := LoadImbalance([]float64{2, 7, 4}); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("LoadImbalance = %v, want 3.5", got)
	}
	if got := LoadImbalance([]float64{5}); got != 0 {
		t.Errorf("single server imbalance = %v", got)
	}
	if got := LoadImbalance([]float64{0, 0}); got != 0 {
		t.Errorf("idle imbalance = %v", got)
	}
	if got := LoadImbalance([]float64{3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("even imbalance = %v, want 1", got)
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(100<<20, 2); math.Abs(got-50) > 1e-9 {
		t.Errorf("MBps = %v", got)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig. X", "scheme", "bw")
	tb.AddRow("DEF", 12.345)
	tb.AddRow("MHA", 99)
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. X", "scheme", "DEF", "12.35", "MHA", "99"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"u`)
	var buf bytes.Buffer
	if err := tb.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""u"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", name)
		}
	}()
	fn()
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("interpolated = %v, want 3", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty input should return 0")
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single value = %v", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
	mustPanic(t, "q>1", func() { Percentile(vals, 1.5) })
	mustPanic(t, "q<0", func() { Percentile(vals, -0.1) })
}

func TestLatencySummarize(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	s = Summarize(vals)
	if s.Count != 100 || math.Abs(s.Mean-50.5) > 1e-12 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.P50-50.5) > 1e-9 || s.P99 < 98 || s.P99 > 100 || s.P95 < 94 {
		t.Errorf("percentiles = %+v", s)
	}
}
