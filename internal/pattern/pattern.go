// Package pattern analyzes I/O traces for the access-pattern features the
// MHA paper clusters on: request size and request concurrency (§III-D).
//
// Request concurrency is "the number of requests that are simultaneously
// issued to the file". The tracer stamps each request with its issue time;
// requests whose time stamps fall within the same epoch (a configurable
// window, matching one I/O phase of a bulk-synchronous application) are
// considered simultaneous.
package pattern

import (
	"sort"

	"mhafs/internal/trace"
)

// DefaultEpochWindow is the time window (seconds) within which requests
// are considered simultaneous. Bulk-synchronous HPC codes issue one
// request per process at effectively the same instant; 1 ms comfortably
// captures that while separating distinct I/O phases.
const DefaultEpochWindow = 1e-3

// Annotated pairs a trace record with its derived pattern features.
type Annotated struct {
	trace.Record
	Epoch       int // index of the concurrency epoch the record belongs to
	Concurrency int // number of requests issued in the same epoch
}

// Epochs partitions the trace into concurrency epochs. Records are
// processed in time order; a record starts a new epoch when its time stamp
// is more than window seconds after the epoch's first record. The input is
// not modified.
func Epochs(t trace.Trace, window float64) [][]trace.Record {
	if len(t) == 0 {
		return nil
	}
	sorted := t.Clone()
	sorted.SortByTime()
	var out [][]trace.Record
	start := sorted[0].Time
	cur := []trace.Record{sorted[0]}
	for _, r := range sorted[1:] {
		if r.Time-start > window {
			out = append(out, cur)
			cur = nil
			start = r.Time
		}
		cur = append(cur, r)
	}
	return append(out, cur)
}

// Annotate computes the epoch and concurrency of every record. Request
// concurrency follows the paper's definition — "the number of requests
// that are simultaneously issued to the file" — so within an epoch each
// record's concurrency counts only the requests touching the same file
// (one epoch of a file-per-process application has concurrency 1 per
// file). The result preserves the original trace order. A window of 0
// treats only identical time stamps as simultaneous.
func Annotate(t trace.Trace, window float64) []Annotated {
	if len(t) == 0 {
		return nil
	}
	type key struct {
		rank   int
		file   string
		offset int64
		time   float64
	}
	epochOf := make(map[key]int, len(t))
	concOf := make(map[key]int, len(t))
	for ei, epoch := range Epochs(t, window) {
		perFile := make(map[string]int)
		for _, r := range epoch {
			perFile[r.File]++
		}
		for _, r := range epoch {
			k := key{r.Rank, r.File, r.Offset, r.Time}
			epochOf[k] = ei
			concOf[k] = perFile[r.File]
		}
	}
	out := make([]Annotated, len(t))
	for i, r := range t {
		k := key{r.Rank, r.File, r.Offset, r.Time}
		out[i] = Annotated{Record: r, Epoch: epochOf[k], Concurrency: concOf[k]}
	}
	return out
}

// Point is a request's position in the two-dimensional feature space of
// Eq. 1: x = request size, y = request concurrency.
type Point struct {
	X float64 // request size in bytes
	Y float64 // request concurrency
}

// Points extracts the feature point of every annotated record.
func Points(recs []Annotated) []Point {
	out := make([]Point, len(recs))
	for i, r := range recs {
		out[i] = Point{X: float64(r.Size), Y: float64(r.Concurrency)}
	}
	return out
}

// SizeHistogram counts records per distinct request size, sorted by size.
// Useful for inspecting heterogeneity (cf. Fig. 3).
func SizeHistogram(t trace.Trace) []SizeCount {
	counts := make(map[int64]int)
	for _, r := range t {
		counts[r.Size]++
	}
	out := make([]SizeCount, 0, len(counts))
	for s, c := range counts {
		out = append(out, SizeCount{Size: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// SizeCount is one histogram bucket.
type SizeCount struct {
	Size  int64
	Count int
}

// DistinctSizes returns the number of distinct request sizes — a quick
// heterogeneity measure used to bound the group count k.
func DistinctSizes(t trace.Trace) int {
	seen := make(map[int64]bool)
	for _, r := range t {
		seen[r.Size] = true
	}
	return len(seen)
}
