package pattern

import (
	"fmt"
	"sort"

	"mhafs/internal/trace"
)

// I/O signature identification, after IOSIG: classify each (rank, file)
// stream's spatial pattern. Knowing a stream is sequential or strided is
// what makes the paper's "predictable access patterns" premise (§III-A)
// checkable instead of assumed.

// AccessKind classifies a stream's spatial behaviour.
type AccessKind uint8

// Stream classifications.
const (
	// Sequential: each request starts where the previous ended.
	Sequential AccessKind = iota
	// Strided: constant positive gap between consecutive request starts
	// (larger than the request sizes — a regular hole pattern).
	Strided
	// Random: no single dominant stride.
	Random
	// Single: too few requests to classify (one request).
	Single
)

// String names the kind.
func (k AccessKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Single:
		return "single"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Signature summarizes one (rank, file) stream.
type Signature struct {
	Rank     int
	File     string
	Kind     AccessKind
	Requests int
	// Stride is the dominant distance between consecutive request starts
	// (0 for Random/Single; equals the mean request size for Sequential).
	Stride int64
	// Confidence is the fraction of consecutive pairs matching the
	// dominant stride (1.0 = perfectly regular).
	Confidence float64
}

// signatureThreshold is the minimum fraction of pairs that must share the
// dominant stride for a stream to count as Sequential/Strided.
const signatureThreshold = 0.8

// Signatures classifies every (rank, file) stream of the trace, in issue
// order. Streams are returned sorted by (file, rank).
func Signatures(t trace.Trace) []Signature {
	type key struct {
		rank int
		file string
	}
	streams := make(map[key]trace.Trace)
	sorted := t.Clone()
	sorted.SortByTime()
	for _, r := range sorted {
		k := key{r.Rank, r.File}
		streams[k] = append(streams[k], r)
	}
	var out []Signature
	for k, recs := range streams {
		out = append(out, classify(k.rank, k.file, recs))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

func classify(rank int, file string, recs trace.Trace) Signature {
	sig := Signature{Rank: rank, File: file, Requests: len(recs)}
	if len(recs) < 2 {
		sig.Kind = Single
		sig.Confidence = 1
		return sig
	}
	// Dominant gap between consecutive request starts.
	gaps := make(map[int64]int)
	for i := 1; i < len(recs); i++ {
		gaps[recs[i].Offset-recs[i-1].Offset]++
	}
	var domGap int64
	domCount := 0
	for g, c := range gaps {
		if c > domCount || (c == domCount && g < domGap) {
			domGap, domCount = g, c
		}
	}
	sig.Confidence = float64(domCount) / float64(len(recs)-1)
	if sig.Confidence < signatureThreshold || domGap <= 0 {
		sig.Kind = Random
		return sig
	}
	// Sequential when the dominant gap equals the preceding request's
	// size for (almost) all matching pairs.
	sequential := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Offset == recs[i-1].End() {
			sequential++
		}
	}
	if float64(sequential)/float64(len(recs)-1) >= signatureThreshold {
		sig.Kind = Sequential
		sig.Stride = domGap
		return sig
	}
	sig.Kind = Strided
	sig.Stride = domGap
	return sig
}
