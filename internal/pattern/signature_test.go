package pattern

import (
	"strings"
	"testing"

	"mhafs/internal/trace"
)

func TestSignatureSequential(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, trace.Record{Rank: 0, File: "f", Op: trace.OpWrite,
			Offset: int64(i) * 4096, Size: 4096, Time: float64(i)})
	}
	sigs := Signatures(tr)
	if len(sigs) != 1 {
		t.Fatalf("signatures = %d", len(sigs))
	}
	s := sigs[0]
	if s.Kind != Sequential || s.Stride != 4096 || s.Confidence < 0.99 {
		t.Errorf("signature = %+v", s)
	}
}

func TestSignatureStrided(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, trace.Record{Rank: 2, File: "f", Op: trace.OpRead,
			Offset: int64(i) * 32768, Size: 4096, Time: float64(i)})
	}
	s := Signatures(tr)[0]
	if s.Kind != Strided || s.Stride != 32768 {
		t.Errorf("signature = %+v", s)
	}
}

func TestSignatureRandom(t *testing.T) {
	offsets := []int64{0, 90000, 13000, 700000, 42000, 260000, 31000}
	var tr trace.Trace
	for i, off := range offsets {
		tr = append(tr, trace.Record{Rank: 0, File: "f", Op: trace.OpRead,
			Offset: off, Size: 4096, Time: float64(i)})
	}
	s := Signatures(tr)[0]
	if s.Kind != Random {
		t.Errorf("signature = %+v", s)
	}
}

func TestSignatureSingleAndOrder(t *testing.T) {
	tr := trace.Trace{
		{Rank: 1, File: "b", Op: trace.OpRead, Offset: 0, Size: 1, Time: 0},
		{Rank: 0, File: "a", Op: trace.OpRead, Offset: 0, Size: 1, Time: 0},
		{Rank: 0, File: "a", Op: trace.OpRead, Offset: 1, Size: 1, Time: 1},
	}
	sigs := Signatures(tr)
	if len(sigs) != 2 {
		t.Fatalf("signatures = %d", len(sigs))
	}
	if sigs[0].File != "a" || sigs[1].File != "b" {
		t.Errorf("order wrong: %+v", sigs)
	}
	if sigs[1].Kind != Single {
		t.Errorf("single stream = %+v", sigs[1])
	}
	if sigs[0].Kind != Sequential {
		t.Errorf("two-record sequential stream = %+v", sigs[0])
	}
}

// The paper's LANL loop (Fig. 3) from one rank's perspective is strided
// overall — the per-rank block advances by a fixed amount each loop.
func TestSignatureKindStrings(t *testing.T) {
	for _, k := range []AccessKind{Sequential, Strided, Random, Single} {
		if k.String() == "" || strings.Contains(k.String(), "kind(") {
			t.Errorf("missing name for %d", k)
		}
	}
	if !strings.Contains(AccessKind(99).String(), "99") {
		t.Error("unknown kind should embed value")
	}
}
