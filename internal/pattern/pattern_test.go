package pattern

import (
	"reflect"
	"testing"

	"mhafs/internal/trace"
)

func phaseTrace() trace.Trace {
	// Two I/O phases: 4 requests at t≈0, 2 requests at t≈1.
	return trace.Trace{
		{Rank: 0, File: "f", Op: trace.OpRead, Offset: 0, Size: 64, Time: 0.0000},
		{Rank: 1, File: "f", Op: trace.OpRead, Offset: 64, Size: 64, Time: 0.0002},
		{Rank: 2, File: "f", Op: trace.OpRead, Offset: 128, Size: 64, Time: 0.0004},
		{Rank: 3, File: "f", Op: trace.OpRead, Offset: 192, Size: 64, Time: 0.0006},
		{Rank: 0, File: "f", Op: trace.OpWrite, Offset: 256, Size: 16, Time: 1.0000},
		{Rank: 1, File: "f", Op: trace.OpWrite, Offset: 272, Size: 16, Time: 1.0002},
	}
}

func TestEpochs(t *testing.T) {
	eps := Epochs(phaseTrace(), DefaultEpochWindow)
	if len(eps) != 2 {
		t.Fatalf("epochs = %d, want 2", len(eps))
	}
	if len(eps[0]) != 4 || len(eps[1]) != 2 {
		t.Errorf("epoch sizes = %d,%d, want 4,2", len(eps[0]), len(eps[1]))
	}
}

func TestEpochsEmpty(t *testing.T) {
	if Epochs(nil, 1) != nil {
		t.Error("empty trace should yield nil epochs")
	}
}

func TestEpochsZeroWindow(t *testing.T) {
	tr := trace.Trace{
		{Rank: 0, File: "f", Size: 1, Time: 0.5},
		{Rank: 1, File: "f", Size: 1, Time: 0.5},
		{Rank: 2, File: "f", Size: 1, Time: 0.6},
	}
	eps := Epochs(tr, 0)
	if len(eps) != 2 || len(eps[0]) != 2 || len(eps[1]) != 1 {
		t.Errorf("zero-window epochs wrong: %v", eps)
	}
}

func TestEpochsWindowAnchoredAtStart(t *testing.T) {
	// Times 0, 0.9, 1.8 with window 1: the 0.9 joins the first epoch, but
	// 1.8 is >1 after the epoch START (0), so it opens a new epoch even
	// though it is <1 after 0.9.
	tr := trace.Trace{
		{Rank: 0, File: "f", Size: 1, Time: 0.0},
		{Rank: 1, File: "f", Size: 1, Time: 0.9},
		{Rank: 2, File: "f", Size: 1, Time: 1.8},
	}
	eps := Epochs(tr, 1.0)
	if len(eps) != 2 || len(eps[0]) != 2 {
		t.Errorf("anchored-window epochs wrong: got %d epochs", len(eps))
	}
}

func TestEpochsDoesNotMutateInput(t *testing.T) {
	tr := trace.Trace{
		{Rank: 0, File: "f", Size: 1, Time: 2.0},
		{Rank: 1, File: "f", Size: 1, Time: 1.0},
	}
	Epochs(tr, 0.1)
	if tr[0].Time != 2.0 {
		t.Error("Epochs must not reorder the caller's trace")
	}
}

func TestAnnotate(t *testing.T) {
	ann := Annotate(phaseTrace(), DefaultEpochWindow)
	if len(ann) != 6 {
		t.Fatalf("annotated %d records", len(ann))
	}
	for i := 0; i < 4; i++ {
		if ann[i].Concurrency != 4 || ann[i].Epoch != 0 {
			t.Errorf("record %d: conc=%d epoch=%d, want 4,0", i, ann[i].Concurrency, ann[i].Epoch)
		}
	}
	for i := 4; i < 6; i++ {
		if ann[i].Concurrency != 2 || ann[i].Epoch != 1 {
			t.Errorf("record %d: conc=%d epoch=%d, want 2,1", i, ann[i].Concurrency, ann[i].Epoch)
		}
	}
}

func TestAnnotatePreservesOrder(t *testing.T) {
	tr := phaseTrace()
	// Shuffle: put a late record first.
	tr[0], tr[4] = tr[4], tr[0]
	ann := Annotate(tr, DefaultEpochWindow)
	for i := range tr {
		if ann[i].Record != tr[i] {
			t.Fatalf("record %d reordered", i)
		}
	}
}

func TestAnnotateEmpty(t *testing.T) {
	if Annotate(nil, 1) != nil {
		t.Error("empty trace should annotate to nil")
	}
}

func TestPoints(t *testing.T) {
	ann := Annotate(phaseTrace(), DefaultEpochWindow)
	pts := Points(ann)
	if pts[0] != (Point{X: 64, Y: 4}) {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[5] != (Point{X: 16, Y: 2}) {
		t.Errorf("point 5 = %+v", pts[5])
	}
}

func TestSizeHistogram(t *testing.T) {
	h := SizeHistogram(phaseTrace())
	want := []SizeCount{{16, 2}, {64, 4}}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("histogram = %v, want %v", h, want)
	}
}

func TestDistinctSizes(t *testing.T) {
	if got := DistinctSizes(phaseTrace()); got != 2 {
		t.Errorf("DistinctSizes = %d, want 2", got)
	}
	if got := DistinctSizes(nil); got != 0 {
		t.Errorf("DistinctSizes(nil) = %d", got)
	}
}
