package bench

import (
	"bytes"
	"strings"
	"testing"

	"mhafs/internal/plancache"
	"mhafs/internal/telemetry"
)

// cachedFigSnapshot is figSnapshot with a plan cache installed: Fig. 7
// plus the Fig. 14 overhead sweep at the given worker count, returning
// (tables, telemetry JSON) as rendered bytes.
func cachedFigSnapshot(t *testing.T, workers int, cache *plancache.Cache) (string, string) {
	t.Helper()
	c := Default()
	c.Scale = 512
	c.Workers = workers
	c.PlanCache = cache
	reg := telemetry.NewRegistry()
	c.Telemetry = reg

	var tables bytes.Buffer
	_, tb, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Fprint(&tables); err != nil {
		t.Fatal(err)
	}
	_, tb, err = c.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Fprint(&tables); err != nil {
		t.Fatal(err)
	}

	var tel strings.Builder
	if err := reg.WriteJSON(&tel); err != nil {
		t.Fatal(err)
	}
	return tables.String(), tel.String()
}

// TestFiguresCacheEquivalence is the cache acceptance gate at the
// harness layer: the figure tables AND the merged telemetry snapshot
// must be byte-identical with the cache off, shared in memory, backed by
// a cold disk directory, and warm-started from that same directory — at
// workers 1, 2 and 8. Under -race this also exercises the single-flight
// path: parallel cells plan the same keys concurrently.
func TestFiguresCacheEquivalence(t *testing.T) {
	baseTables, baseTel := cachedFigSnapshot(t, 1, nil)
	dir := t.TempDir()
	workerCounts := []int{1, 2, 8}
	modes := []string{"off", "mem", "dir"}
	if raceEnabled {
		// Under the race detector keep only the combos that exercise
		// concurrent single-flight planning; the plain run covers the
		// full matrix (see race_test.go).
		workerCounts = []int{8}
		modes = []string{"mem", "dir"}
	}
	for _, workers := range workerCounts {
		for _, mode := range modes {
			cache, err := plancache.FromMode(mode, dir)
			if err != nil {
				t.Fatal(err)
			}
			tables, tel := cachedFigSnapshot(t, workers, cache)
			if tables != baseTables {
				t.Errorf("workers=%d mode=%s: figure tables differ from the uncached serial run", workers, mode)
			}
			if tel != baseTel {
				t.Errorf("workers=%d mode=%s: telemetry snapshot differs from the uncached serial run", workers, mode)
			}
			if mode != "off" {
				if s := cache.Stats(); s.Misses+s.DiskHits == 0 {
					t.Errorf("workers=%d mode=%s: cache never engaged (stats %+v)", workers, mode, s)
				}
			}
		}
	}
	// The dir runs above left entries behind; a fresh process over the
	// same directory must start warm and compute nothing new.
	warm, err := plancache.FromMode("dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	tables, tel := cachedFigSnapshot(t, 8, warm)
	if tables != baseTables || tel != baseTel {
		t.Error("warm-start from disk diverged from the uncached serial run")
	}
	if s := warm.Stats(); s.Misses != 0 || s.DiskHits == 0 {
		t.Errorf("warm start computed %d plans (disk hits %d); want 0 computed", s.Misses, s.DiskHits)
	}
}

// TestCacheColdVsWarmInProcess runs the same figure twice through one
// in-memory cache: the warm pass must serve every plan from the cache
// and reproduce the cold pass byte for byte.
func TestCacheColdVsWarmInProcess(t *testing.T) {
	cache, err := plancache.New(plancache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldTel := cachedFigSnapshot(t, 2, cache)
	after := cache.Stats()
	if after.Misses == 0 {
		t.Fatalf("cold pass computed no plans (stats %+v)", after)
	}
	warm, warmTel := cachedFigSnapshot(t, 2, cache)
	if warm != cold {
		t.Error("warm pass tables differ from cold pass")
	}
	if warmTel != coldTel {
		t.Error("warm pass telemetry differs from cold pass")
	}
	if s := cache.Stats(); s.Misses != after.Misses {
		t.Errorf("warm pass computed %d new plans, want 0", s.Misses-after.Misses)
	}
}
