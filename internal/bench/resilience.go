package bench

import (
	"fmt"
	"strings"

	"mhafs/internal/fault"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// FaultActions summarizes the client's fault handling during one scheme's
// replay, scraped from the run's telemetry.
type FaultActions struct {
	Injected  float64 // fault decisions observed at servers
	Retries   float64 // retry attempts (read + write)
	Failovers float64 // extents remapped onto survivors
	Degraded  float64 // requests that encountered a down server
	Backoff   float64 // total virtual seconds spent backing off
}

// FaultRow is one scenario of the resilience figure: per-scheme
// completion time plus the fault-handling actions behind it.
type FaultRow struct {
	Scenario fault.Scenario
	Makespan map[layout.Scheme]float64
	Actions  map[layout.Scheme]FaultActions
}

// faultWorkload is the resilience figure's workload: the Fig. 8 mixed
// 128+256 KB IOR write, whose skewed per-server load is where degraded
// layouts hurt most.
func (c Config) faultWorkload() (trace.Trace, error) {
	return workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
	})
}

// scrapeActions reads the fault counters from a run's registry. Counter
// lookups are get-or-create, so a scheme that never faulted reads zeros.
func scrapeActions(reg *telemetry.Registry) FaultActions {
	// MetricInjected is labeled (server, kind); sum every labeled series
	// via the canonical snapshot instead of enumerating label sets.
	var injected float64
	for _, s := range reg.Snapshot().Counters {
		if strings.HasPrefix(s.Series, fault.MetricInjected) {
			injected += s.Value
		}
	}
	return FaultActions{
		Injected: injected,
		Retries: reg.Counter(fault.MetricRetries, telemetry.L("op", "read")).Value() +
			reg.Counter(fault.MetricRetries, telemetry.L("op", "write")).Value(),
		Failovers: reg.Counter(fault.MetricFailovers).Value(),
		Degraded:  reg.Counter(fault.MetricDegraded).Value(),
		Backoff:   reg.Counter(fault.MetricBackoffSeconds).Value(),
	}
}

// FigFaults runs the resilience figure: the fault scenarios × every
// layout scheme on the Fig. 8 write workload, under the resilient
// pipeline. It returns the rows plus two tables — completion times and
// fault actions.
func (c Config) FigFaults(scenarios []fault.Scenario) ([]FaultRow, []*metrics.Table, error) {
	if len(scenarios) == 0 {
		scenarios = fault.Scenarios()
	}
	rows, err := parallelRows(c, len(scenarios), func(cc Config, i int) (FaultRow, error) {
		cc.Faults = scenarios[i]
		row := FaultRow{
			Scenario: scenarios[i],
			Makespan: make(map[layout.Scheme]float64),
			Actions:  make(map[layout.Scheme]FaultActions),
		}
		tr, err := cc.faultWorkload()
		if err != nil {
			return row, err
		}
		schemes := layout.AllSchemes()
		cells, err := parallelRows(cc, len(schemes), func(sc Config, j int) (FaultRow, error) {
			reg := sc.Telemetry
			if reg == nil {
				// No registry threaded from the caller: scrape a private
				// one (the figure needs the counters either way).
				reg = telemetry.NewRegistry()
				sc.Telemetry = reg
			}
			run, err := sc.RunScheme(schemes[j], tr)
			if err != nil {
				return FaultRow{}, fmt.Errorf("bench: faults %s scheme %v: %w", scenarios[i], schemes[j], err)
			}
			cell := FaultRow{
				Makespan: map[layout.Scheme]float64{schemes[j]: run.Result.Makespan},
				Actions:  map[layout.Scheme]FaultActions{schemes[j]: scrapeActions(reg)},
			}
			return cell, nil
		})
		if err != nil {
			return row, err
		}
		for j, s := range schemes {
			row.Makespan[s] = cells[j].Makespan[s]
			row.Actions[s] = cells[j].Actions[s]
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}

	times := metrics.NewTable(
		"Resilience: completion time (s) under seeded fault scenarios — IOR write 128+256KB, 32 procs",
		"scenario", "DEF", "AAL", "HARL", "MHA")
	for _, row := range rows {
		times.AddRow(string(row.Scenario),
			fmt.Sprintf("%.6f", row.Makespan[layout.DEF]),
			fmt.Sprintf("%.6f", row.Makespan[layout.AAL]),
			fmt.Sprintf("%.6f", row.Makespan[layout.HARL]),
			fmt.Sprintf("%.6f", row.Makespan[layout.MHA]))
	}
	actions := metrics.NewTable(
		"Resilience: client fault handling per scenario and scheme",
		"scenario", "scheme", "injected", "retries", "failovers", "degraded", "backoff(s)")
	for _, row := range rows {
		for _, s := range schemeOrder {
			a := row.Actions[s]
			actions.AddRow(string(row.Scenario), s.String(),
				fmt.Sprintf("%.0f", a.Injected),
				fmt.Sprintf("%.0f", a.Retries),
				fmt.Sprintf("%.0f", a.Failovers),
				fmt.Sprintf("%.0f", a.Degraded),
				fmt.Sprintf("%.6f", a.Backoff))
		}
	}
	return rows, []*metrics.Table{times, actions}, nil
}
