//go:build !race

package bench

// raceEnabled is false without the race detector; see race_test.go.
const raceEnabled = false
