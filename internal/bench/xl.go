// The XL simulation tier: many server groups, many concurrent apps, 10⁶+
// requests. Where the paper-figure runners reproduce §V's numbers on an
// 8-server cluster, the XL tier exercises the engine, the pooled request
// hot path and the batching stage at a scale where their throughput
// matters, and reports real (wall-clock) events per second.
//
// The tier is shared-nothing by construction: every group owns a private
// dataless cluster with its own engine, and the groups are driven to
// completion through sim.RunSharded. Everything except the wall-clock
// figures is deterministic — the XL determinism matrix pins byte-identical
// results across shard and worker counts.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"mhafs/internal/fault"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/replay"
	"mhafs/internal/sim"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// XLConfig parameterizes an XL run.
type XLConfig struct {
	// Groups of HPerGroup+SPerGroup servers; each group is an independent
	// cluster with its own engine (the sharding unit).
	Groups    int
	HPerGroup int
	SPerGroup int

	// AppsPerGroup concurrent applications per group, each replaying an
	// XLApp trace of ProcsPerApp ranks against its own file.
	AppsPerGroup int
	ProcsPerApp  int

	// Requests is the total record count, divided evenly over the apps
	// (at least one per app); Sizes rotate per phase (empty means
	// DefaultXL's mix, which includes a record larger than a stripe round
	// so the batching stage has contiguous same-server extents to merge).
	Requests int
	Sizes    []int64

	// Shards and Workers drive sim.RunSharded; Shards 0 means one shard
	// per group. Results are byte-identical at every setting.
	Shards  int
	Workers int

	// Batch turns on the sub-request batching stage; BatchWindow is its
	// aggregation window in virtual seconds (0 flushes per instant).
	Batch       bool
	BatchWindow float64

	// Faults, when non-empty, runs every group under the named scenario
	// with resilience enabled; group g uses seed FaultSeed+g (FaultSeed 0
	// means 1), so outages are deterministic but not synchronized across
	// groups.
	Faults    fault.Scenario
	FaultSeed int64
}

// DefaultXL is the full XL tier: 128 servers in 16 groups, 64 apps, one
// million requests.
func DefaultXL() XLConfig {
	return XLConfig{
		Groups:       16,
		HPerGroup:    6,
		SPerGroup:    2,
		AppsPerGroup: 4,
		ProcsPerApp:  32,
		Requests:     1_000_000,
		Sizes:        []int64{64 * units.KB, 2 * units.MB},
		Batch:        true,
	}
}

// Validate checks the configuration.
func (c XLConfig) Validate() error {
	switch {
	case c.Groups <= 0:
		return fmt.Errorf("bench: xl: non-positive group count %d", c.Groups)
	case c.HPerGroup < 0 || c.SPerGroup < 0 || c.HPerGroup+c.SPerGroup == 0:
		return fmt.Errorf("bench: xl: bad group shape %dH+%dS", c.HPerGroup, c.SPerGroup)
	case c.AppsPerGroup <= 0:
		return fmt.Errorf("bench: xl: non-positive apps per group %d", c.AppsPerGroup)
	case c.ProcsPerApp <= 0:
		return fmt.Errorf("bench: xl: non-positive procs per app %d", c.ProcsPerApp)
	case c.Requests <= 0:
		return fmt.Errorf("bench: xl: non-positive request count %d", c.Requests)
	case c.BatchWindow < 0:
		return fmt.Errorf("bench: xl: negative batch window %g", c.BatchWindow)
	}
	if c.Faults != "" {
		if _, err := fault.ParseScenario(string(c.Faults)); err != nil {
			return err
		}
	}
	return nil
}

// XLGroupResult is one group's deterministic outcome.
type XLGroupResult struct {
	Ops      int
	Bytes    int64
	Makespan float64
}

// XLResult is the outcome of an XL run. All fields except the wall-clock
// pair are deterministic at every shard and worker count.
type XLResult struct {
	Groups   int
	Servers  int
	Apps     int
	Requests int // records actually replayed
	Events   uint64
	Bytes    int64
	Makespan float64 // max over groups, virtual seconds
	PerGroup []XLGroupResult

	// Wall-clock figures — real time and runtime counters, excluded from
	// the determinism matrix and from the deterministic table.
	WallSeconds  float64
	EventsPerSec float64
	// AllocsPerOp is heap allocations during the drive divided by the
	// replayed request count — approximate (GC and pool warm-up included)
	// but a useful scale check on the pooled hot path.
	AllocsPerOp float64
}

// Table renders the deterministic part of the result.
func (r XLResult) Table() *metrics.Table {
	tb := metrics.NewTable(
		fmt.Sprintf("XL tier: %d servers in %d groups, %d apps, %d requests, %d events",
			r.Servers, r.Groups, r.Apps, r.Requests, r.Events),
		"group", "ops", "bytes", "makespan(s)")
	for i, g := range r.PerGroup {
		tb.AddRow(i, g.Ops, g.Bytes, fmt.Sprintf("%.6f", g.Makespan))
	}
	tb.AddRow("total", r.Requests, r.Bytes, fmt.Sprintf("%.6f", r.Makespan))
	return tb
}

// RunXL builds the groups, starts every app's replay, drives all engines
// through sim.RunSharded, and collects the per-group results.
func RunXL(cfg XLConfig) (XLResult, error) {
	if err := cfg.Validate(); err != nil {
		return XLResult{}, err
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultXL().Sizes
	}
	perApp := cfg.Requests / (cfg.Groups * cfg.AppsPerGroup)
	if perApp < 1 {
		perApp = 1
	}
	res := XLResult{
		Groups:  cfg.Groups,
		Servers: cfg.Groups * (cfg.HPerGroup + cfg.SPerGroup),
		Apps:    cfg.Groups * cfg.AppsPerGroup,
	}
	// One RSSD search (Algorithm 2) lays out every XL file: the tier's
	// request mix is known up front, so each app file gets the
	// heterogeneity-aware <h, s> stripe pair for that mix instead of the
	// uniform default — the paper's layout applied at simulation scale.
	// Balancing per-class service times also keeps each app's rank cohort
	// completing in step, which is the adjacency the batching stage merges.
	env := layout.DefaultEnv()
	env.M, env.N = cfg.HPerGroup, cfg.SPerGroup
	var reqs []layout.Req
	for _, op := range []trace.Op{trace.OpWrite, trace.OpRead} {
		for _, s := range cfg.Sizes {
			reqs = append(reqs, layout.Req{Op: op, Size: s, Conc: cfg.ProcsPerApp, Weight: 1})
		}
	}
	lay := layout.RSSD(reqs, env).Layout

	engines := make([]*sim.Engine, cfg.Groups)
	pendings := make([]*replay.Pending, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		pcfg := pfs.DefaultConfig()
		pcfg.HServers, pcfg.SServers = cfg.HPerGroup, cfg.SPerGroup
		pcfg.Dataless = true
		cluster, err := pfs.New(pcfg)
		if err != nil {
			return XLResult{}, err
		}
		mw := mpiio.New(cluster)
		if cfg.Batch {
			if err := mw.EnableBatching(cfg.BatchWindow); err != nil {
				return XLResult{}, err
			}
		}
		if cfg.Faults != "" {
			seed := cfg.FaultSeed
			if seed == 0 {
				seed = 1
			}
			sched, err := cfg.Faults.Build(cfg.HPerGroup, cfg.SPerGroup, seed+int64(g))
			if err != nil {
				return XLResult{}, err
			}
			in, err := fault.NewInjector(cluster.Eng, sched)
			if err != nil {
				return XLResult{}, err
			}
			if err := mw.EnableResilience(mpiio.ResilienceOptions{Injector: in}); err != nil {
				return XLResult{}, err
			}
		}
		var tr trace.Trace
		for a := 0; a < cfg.AppsPerGroup; a++ {
			name := fmt.Sprintf("xl-g%d-a%d", g, a)
			if _, err := cluster.Create(name, lay); err != nil {
				return XLResult{}, fmt.Errorf("bench: xl group %d: %w", g, err)
			}
			app, err := workload.XLApp(workload.XLConfig{
				File:     name,
				Procs:    cfg.ProcsPerApp,
				Requests: perApp,
				Sizes:    cfg.Sizes,
			})
			if err != nil {
				return XLResult{}, err
			}
			// Give every app its own rank/PID space so the replay runs
			// the group's apps concurrently, not as one serialized rank.
			for i := range app {
				app[i].Rank += a * cfg.ProcsPerApp
				app[i].PID += a * 100000
			}
			tr = append(tr, app...)
		}
		// LockStep: the XL workload is bulk-synchronous checkpointing —
		// every rank barriers between I/O phases, so each phase's cohort
		// issues at one virtual instant (which is also the adjacency the
		// batching stage merges).
		p, err := replay.Start(mw, tr, replay.Options{Mode: replay.LockStep, ScratchReads: true})
		if err != nil {
			return XLResult{}, fmt.Errorf("bench: xl group %d: %w", g, err)
		}
		engines[g] = cluster.Eng
		pendings[g] = p
		res.Requests += len(tr)
	}

	shards := cfg.Shards
	if shards <= 0 {
		shards = cfg.Groups
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res.Events = sim.RunSharded(engines, shards, cfg.Workers)
	res.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	if res.Requests > 0 {
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Requests)
	}

	res.PerGroup = make([]XLGroupResult, cfg.Groups)
	for g, p := range pendings {
		r, err := p.Finish()
		if err != nil {
			return XLResult{}, fmt.Errorf("bench: xl group %d: %w", g, err)
		}
		res.PerGroup[g] = XLGroupResult{Ops: r.Ops, Bytes: r.TotalBytes(), Makespan: r.Makespan}
		res.Bytes += r.TotalBytes()
		if r.Makespan > res.Makespan {
			res.Makespan = r.Makespan
		}
	}
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(res.Events) / res.WallSeconds
	}
	return res, nil
}
