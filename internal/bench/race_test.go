//go:build race

package bench

// raceEnabled narrows the plan-cache equivalence matrix under the race
// detector: instrumentation makes each figure snapshot several times
// slower, and the full mode × worker sweep would dominate the package's
// race budget. The plain run keeps full coverage.
const raceEnabled = true
