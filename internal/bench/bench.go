// Package bench is the experiment harness: one runner per table/figure of
// the MHA paper's evaluation (§V). Each runner builds fresh simulated
// clusters, generates the figure's workload, plans and applies every
// layout scheme, replays the trace, and reports the same rows/series the
// paper plots.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not the authors' testbed); the comparisons — which scheme
// wins, roughly by how much, and how the gap moves with the swept
// parameter — are the reproduction target. Workload volumes are scaled
// down from the paper's (16 GB files, 4096 HPIO regions) by Config.Scale
// so a full suite runs in seconds; the request sizes, mixes and process
// counts are the paper's.
package bench

import (
	"fmt"

	"mhafs/internal/layout"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/replay"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Config parameterizes the harness.
type Config struct {
	// Cluster is the base cluster; experiments override server counts
	// where the figure sweeps them.
	Cluster pfs.Config

	// Env is the planning environment; M and N follow the cluster.
	Env layout.Env

	// Scale divides the paper's workload volumes (file sizes, region
	// counts) to keep simulated event counts manageable. 1 reproduces the
	// paper's volumes; the default is 64.
	Scale int64

	// RedirectLookup is the client-side DRT lookup cost charged to MHA
	// (and measured by Fig. 14).
	RedirectLookup float64

	// ReplayMode paces the replaying ranks (Independent by default;
	// LockStep models bulk-synchronous barriers, Timed honors trace time
	// stamps).
	ReplayMode replay.Mode

	// Telemetry, when non-nil, is the registry every replayed scheme's
	// middleware emits into (stage spans, request/server series, DRT
	// counters). Runs accumulate — use a fresh registry per run for
	// per-run snapshots.
	Telemetry *telemetry.Registry
}

// Default returns the paper's setup: 6 HServers, 2 SServers, 64 KB
// default stripes, 4 KB search step, 1/64 volume scale.
func Default() Config {
	cfg := Config{
		Cluster:        pfs.DefaultConfig(),
		Env:            layout.DefaultEnv(),
		Scale:          64,
		RedirectLookup: 1e-6,
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("bench: scale must be positive")
	}
	if c.RedirectLookup < 0 {
		return fmt.Errorf("bench: negative redirect lookup")
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	return c.Env.Validate()
}

// withServers returns a copy with the cluster and planning environment set
// to m HServers and n SServers.
func (c Config) withServers(m, n int) Config {
	c.Cluster.HServers, c.Cluster.SServers = m, n
	c.Env.M, c.Env.N = m, n
	return c
}

// SchemeRun is the outcome of one scheme on one workload.
type SchemeRun struct {
	Scheme layout.Scheme
	Result replay.Result
	Plan   layout.Plan
}

// RunScheme executes the full pipeline for one scheme on a fresh cluster:
// plan from the trace (the profiled first run), apply the placement, then
// replay the trace as the optimized subsequent run.
func (c Config) RunScheme(scheme layout.Scheme, tr trace.Trace) (SchemeRun, error) {
	if err := c.Validate(); err != nil {
		return SchemeRun{}, err
	}
	cluster, err := pfs.New(c.Cluster)
	if err != nil {
		return SchemeRun{}, err
	}
	// The original files exist from the application's first (profiled)
	// run, striped with the default layout.
	for _, f := range tr.Files() {
		if _, err := cluster.CreateDefault(f); err != nil {
			return SchemeRun{}, err
		}
	}
	planner, err := layout.NewPlanner(scheme)
	if err != nil {
		return SchemeRun{}, err
	}
	plan, err := planner.Plan(tr, c.Env)
	if err != nil {
		return SchemeRun{}, err
	}
	placement, err := reorder.Apply(cluster, plan, reorder.Options{})
	if err != nil {
		return SchemeRun{}, err
	}
	defer placement.Close()

	mw := mpiio.New(cluster)
	if c.Telemetry != nil {
		// Enabled before the redirector so SetRedirector inherits the
		// registry and the DRT counters are wired too.
		mw.EnableTelemetry(c.Telemetry)
	}
	switch scheme {
	case layout.DEF:
		// The baseline runs without any redirection machinery.
	case layout.MHA:
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, c.RedirectLookup))
	default:
		// AAL and HARL restripe in place in the paper; route through the
		// DRT for mechanics but charge no lookup.
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, 0))
	}
	res, err := replay.RunWith(mw, tr, replay.Options{Mode: c.ReplayMode})
	if err != nil {
		return SchemeRun{}, err
	}
	return SchemeRun{Scheme: scheme, Result: res, Plan: plan}, nil
}

// RunAllSchemes runs every scheme on the same workload.
func (c Config) RunAllSchemes(tr trace.Trace) (map[layout.Scheme]SchemeRun, error) {
	out := make(map[layout.Scheme]SchemeRun, 4)
	for _, s := range layout.AllSchemes() {
		run, err := c.RunScheme(s, tr)
		if err != nil {
			return nil, fmt.Errorf("bench: scheme %v: %w", s, err)
		}
		out[s] = run
	}
	return out, nil
}

// scaled divides a paper-scale volume by the configured scale, keeping at
// least one unit.
func (c Config) scaled(v int64) int64 {
	s := v / c.Scale
	if s < 1 {
		return 1
	}
	return s
}

// scaledCount divides an iteration count, keeping at least one.
func (c Config) scaledCount(v int) int {
	s := v / int(c.Scale)
	if s < 1 {
		return 1
	}
	return s
}

// mbps formats bandwidth for tables.
func mbps(bytes int64, seconds float64) float64 {
	return units.BandwidthMBps(bytes, seconds)
}
