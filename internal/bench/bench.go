// Package bench is the experiment harness: one runner per table/figure of
// the MHA paper's evaluation (§V). Each runner builds fresh simulated
// clusters, generates the figure's workload, plans and applies every
// layout scheme, replays the trace, and reports the same rows/series the
// paper plots.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not the authors' testbed); the comparisons — which scheme
// wins, roughly by how much, and how the gap moves with the swept
// parameter — are the reproduction target. Workload volumes are scaled
// down from the paper's (16 GB files, 4096 HPIO regions) by Config.Scale
// so a full suite runs in seconds; the request sizes, mixes and process
// counts are the paper's.
package bench

import (
	"fmt"

	"mhafs/internal/adaptive"
	"mhafs/internal/fault"
	"mhafs/internal/layout"
	"mhafs/internal/mpiio"
	"mhafs/internal/parfan"
	"mhafs/internal/pfs"
	"mhafs/internal/plancache"
	"mhafs/internal/reorder"
	"mhafs/internal/replay"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// Config parameterizes the harness.
type Config struct {
	// Cluster is the base cluster; experiments override server counts
	// where the figure sweeps them.
	Cluster pfs.Config

	// Env is the planning environment; M and N follow the cluster.
	Env layout.Env

	// Scale divides the paper's workload volumes (file sizes, region
	// counts) to keep simulated event counts manageable. 1 reproduces the
	// paper's volumes; the default is 64.
	Scale int64

	// RedirectLookup is the client-side DRT lookup cost charged to MHA
	// (and measured by Fig. 14).
	RedirectLookup float64

	// ReplayMode paces the replaying ranks (Independent by default;
	// LockStep models bulk-synchronous barriers, Timed honors trace time
	// stamps).
	ReplayMode replay.Mode

	// Telemetry, when non-nil, is the registry every replayed scheme's
	// middleware emits into (stage spans, request/server series, DRT
	// counters). Runs accumulate — use a fresh registry per run for
	// per-run snapshots. Parallel runners never share this registry
	// across cells: each cell records into a private registry and the
	// harness merges them in cell order, so snapshots are byte-identical
	// at every worker count.
	Telemetry *telemetry.Registry

	// Workers bounds the harness fan-out: independent scheme × figure
	// cells run concurrently on a parfan pool. 0 or negative selects
	// runtime.GOMAXPROCS(0); 1 runs everything serially. Output is
	// byte-identical at every setting. The value also seeds
	// Env.Workers (planner-internal fan-out) unless Env.Workers is set
	// explicitly.
	Workers int

	// Faults, when non-empty, injects the named seeded fault scenario
	// into every replayed scheme and enables the client's resilience
	// stages (retry, degraded-mode failover). The empty string — the
	// default — runs the historical fault-free path with no resilience
	// machinery installed; scenario "none" runs the resilient pipeline
	// with an empty schedule (the no-fault baseline of the resilience
	// figure).
	Faults fault.Scenario

	// FaultSeed seeds the scenario's pseudo-random window placement;
	// 0 means seed 1.
	FaultSeed int64

	// Adaptive enables the client's straggler-aware scheduler (SASIO) on
	// every replayed scheme: per-server latency estimation plus reroute
	// and speculative re-issue of lagging writes. Off by default — the
	// historical pipelines carry no adaptive stage, so their figures are
	// byte-identical with the flag unset.
	Adaptive bool

	// AdaptivePolicy overrides the scheduler policy; the zero value means
	// adaptive.DefaultPolicy.
	AdaptivePolicy adaptive.Policy

	// PlanCache, when non-nil, memoizes planner output by content address
	// (trace digest + scheme + Env knobs). Identical planning problems —
	// the same figure workload re-planned across sweep points, worker
	// counts, or the fault and adaptive variants of a run — are computed
	// once and served from the cache thereafter, byte-identically; the
	// pointer is shared by every cell the config fans out to. Plans are
	// pure functions of the key, so figures are bit-identical with the
	// cache on, off, or pre-warmed from disk.
	PlanCache *plancache.Cache
}

// Default returns the paper's setup: 6 HServers, 2 SServers, 64 KB
// default stripes, 4 KB search step, 1/64 volume scale.
func Default() Config {
	cfg := Config{
		Cluster:        pfs.DefaultConfig(),
		Env:            layout.DefaultEnv(),
		Scale:          64,
		RedirectLookup: 1e-6,
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("bench: scale must be positive")
	}
	if c.RedirectLookup < 0 {
		return fmt.Errorf("bench: negative redirect lookup")
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Faults != "" {
		if _, err := fault.ParseScenario(string(c.Faults)); err != nil {
			return err
		}
	}
	return c.Env.Validate()
}

// withServers returns a copy with the cluster and planning environment set
// to m HServers and n SServers.
func (c Config) withServers(m, n int) Config {
	c.Cluster.HServers, c.Cluster.SServers = m, n
	c.Env.M, c.Env.N = m, n
	return c
}

// SchemeRun is the outcome of one scheme on one workload.
type SchemeRun struct {
	Scheme layout.Scheme
	Result replay.Result
	Plan   layout.Plan
}

// RunScheme executes the full pipeline for one scheme on a fresh cluster:
// plan from the trace (the profiled first run), apply the placement, then
// replay the trace as the optimized subsequent run.
func (c Config) RunScheme(scheme layout.Scheme, tr trace.Trace) (SchemeRun, error) {
	if err := c.Validate(); err != nil {
		return SchemeRun{}, err
	}
	if c.Env.Workers == 0 {
		// Planner-internal fan-out follows the harness worker count unless
		// the caller pinned it explicitly.
		c.Env.Workers = c.Workers
	}
	cluster, err := pfs.New(c.Cluster)
	if err != nil {
		return SchemeRun{}, err
	}
	// The original files exist from the application's first (profiled)
	// run, striped with the default layout.
	for _, f := range tr.Files() {
		if _, err := cluster.CreateDefault(f); err != nil {
			return SchemeRun{}, err
		}
	}
	planner, err := layout.NewPlanner(scheme)
	if err != nil {
		return SchemeRun{}, err
	}
	plan, err := c.plan(planner, scheme, tr)
	if err != nil {
		return SchemeRun{}, err
	}
	placement, err := reorder.Apply(cluster, plan, reorder.Options{})
	if err != nil {
		return SchemeRun{}, err
	}
	defer placement.Close()

	mw := mpiio.New(cluster)
	if c.Telemetry != nil {
		// Enabled before the redirector so SetRedirector inherits the
		// registry and the DRT counters are wired too.
		mw.EnableTelemetry(c.Telemetry)
	}
	if c.Faults != "" {
		seed := c.FaultSeed
		if seed == 0 {
			seed = 1
		}
		sched, err := c.Faults.Build(c.Cluster.HServers, c.Cluster.SServers, seed)
		if err != nil {
			return SchemeRun{}, err
		}
		in, err := fault.NewInjector(cluster.Eng, sched)
		if err != nil {
			return SchemeRun{}, err
		}
		if err := mw.EnableResilience(mpiio.ResilienceOptions{
			Injector: in,
			RST:      placement.RST,
		}); err != nil {
			return SchemeRun{}, err
		}
	}
	if c.Adaptive {
		if err := mw.EnableAdaptive(mpiio.AdaptiveOptions{
			Policy: c.AdaptivePolicy,
			RST:    placement.RST,
		}); err != nil {
			return SchemeRun{}, err
		}
	}
	switch scheme {
	case layout.DEF:
		// The baseline runs without any redirection machinery.
	case layout.MHA:
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, c.RedirectLookup))
	default:
		// AAL and HARL restripe in place in the paper; route through the
		// DRT for mechanics but charge no lookup.
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, 0))
	}
	res, err := replay.RunWith(mw, tr, replay.Options{Mode: c.ReplayMode})
	if err != nil {
		return SchemeRun{}, err
	}
	return SchemeRun{Scheme: scheme, Result: res, Plan: plan}, nil
}

// plan produces the scheme's plan, through the plan cache when one is
// configured. Search-effort counters (candidates tried / pruned,
// aggregated in layout.SearchStats) are emitted once per planner call
// whether the plan was computed or served — the stats travel inside the
// cached Plan, so every cell reports the same numbers and the merged
// totals are byte-identical with the cache off, in memory, on disk, or
// pre-warmed, at every worker count.
func (c Config) plan(planner layout.Planner, scheme layout.Scheme, tr trace.Trace) (layout.Plan, error) {
	var plan layout.Plan
	var err error
	if c.PlanCache != nil {
		plan, _, err = c.PlanCache.GetOrPlan(
			plancache.KeyFor(tr, scheme, c.Env),
			func() (layout.Plan, error) { return planner.Plan(tr, c.Env) },
		)
	} else {
		plan, err = planner.Plan(tr, c.Env)
	}
	if err != nil {
		return layout.Plan{}, err
	}
	if c.Telemetry != nil {
		sl := telemetry.L("scheme", scheme.String())
		c.Telemetry.Counter("planner_search_total", sl, telemetry.L("kind", "tried")).Add(float64(plan.Search.Tried))
		c.Telemetry.Counter("planner_search_total", sl, telemetry.L("kind", "pruned")).Add(float64(plan.Search.Pruned))
	}
	return plan, nil
}

// RunAllSchemes runs every scheme on the same workload; the schemes run
// concurrently on the worker pool.
func (c Config) RunAllSchemes(tr trace.Trace) (map[layout.Scheme]SchemeRun, error) {
	return c.runSchemes(layout.AllSchemes(), tr)
}

// runSchemes runs the given schemes on the same workload, fanning them out
// over the pool. Every scheme run builds its own cluster, DRT and engine
// from scratch (RunScheme is shared-nothing), so the cells are
// independent; telemetry goes to a per-cell registry merged back in scheme
// order by parallelRows.
func (c Config) runSchemes(schemes []layout.Scheme, tr trace.Trace) (map[layout.Scheme]SchemeRun, error) {
	runs, err := parallelRows(c, len(schemes), func(cc Config, i int) (SchemeRun, error) {
		run, err := cc.RunScheme(schemes[i], tr)
		if err != nil {
			return SchemeRun{}, fmt.Errorf("bench: scheme %v: %w", schemes[i], err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[layout.Scheme]SchemeRun, len(schemes))
	for i, s := range schemes {
		out[s] = runs[i]
	}
	return out, nil
}

// parallelRows is the harness's deterministic fan-out primitive: n
// independent cells run fn concurrently on the worker pool, and the
// result slice comes back in index order regardless of scheduling.
//
// When the parent config carries a telemetry registry, every cell gets a
// private fresh registry; after all cells finish, the private registries
// are merged into the parent in cell order. The merge order — and with it
// the association order of every float addition — is therefore a function
// of the cell index only, never of goroutine scheduling, which is why
// telemetry snapshots are byte-identical at every worker count (including
// the serial path: workers == 1 takes the same per-cell-registry route).
//
// On error, every cell still runs (no short-circuit) and the
// lowest-indexed error is returned; telemetry is still merged so partial
// failures do not leave the parent registry in a scheduling-dependent
// state.
func parallelRows[T any](c Config, n int, fn func(cc Config, i int) (T, error)) ([]T, error) {
	regs := make([]*telemetry.Registry, n)
	out, err := parfan.MapErr(n, c.Workers, func(i int) (T, error) {
		cc := c
		if c.Telemetry != nil {
			cc.Telemetry = telemetry.NewRegistry()
			regs[i] = cc.Telemetry
		}
		return fn(cc, i)
	})
	if c.Telemetry != nil {
		for _, reg := range regs {
			c.Telemetry.Merge(reg) // Merge(nil) is a no-op
		}
	}
	return out, err
}

// scaled divides a paper-scale volume by the configured scale, keeping at
// least one unit.
func (c Config) scaled(v int64) int64 {
	s := v / c.Scale
	if s < 1 {
		return 1
	}
	return s
}

// scaledCount divides an iteration count, keeping at least one.
func (c Config) scaledCount(v int) int {
	s := v / int(c.Scale)
	if s < 1 {
		return 1
	}
	return s
}

// mbps formats bandwidth for tables.
func mbps(bytes int64, seconds float64) float64 {
	return units.BandwidthMBps(bytes, seconds)
}
