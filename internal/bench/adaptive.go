package bench

import (
	"fmt"

	"mhafs/internal/adaptive"
	"mhafs/internal/fault"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/telemetry"
)

// AdaptiveActions summarizes the straggler-aware scheduler's decisions
// during one replay, scraped from the run's telemetry.
type AdaptiveActions struct {
	Reroutes      float64 // writes relocated off a confident straggler
	Speculations  float64 // speculation races armed
	SpecWins      float64 // races the duplicate won (mapping published)
	SpecCancelled float64 // losing legs withdrawn
}

// AdaptiveRow is one scenario of the adaptive-scheduling figure: each
// scheme replayed twice — static (the historical resilient pipeline) and
// with the SASIO scheduler enabled — plus the scheduler's actions.
type AdaptiveRow struct {
	Scenario fault.Scenario
	Static   map[layout.Scheme]float64
	Adaptive map[layout.Scheme]float64
	Actions  map[layout.Scheme]AdaptiveActions
}

// scrapeAdaptive reads the scheduler counters from a run's registry.
// Counter lookups are get-or-create, so a static run reads zeros.
func scrapeAdaptive(reg *telemetry.Registry) AdaptiveActions {
	return AdaptiveActions{
		Reroutes:      reg.Counter(adaptive.MetricReroutes).Value(),
		Speculations:  reg.Counter(adaptive.MetricSpeculations).Value(),
		SpecWins:      reg.Counter(adaptive.MetricSpecWins).Value(),
		SpecCancelled: reg.Counter(adaptive.MetricSpecCancelled).Value(),
	}
}

// FigAdaptive runs the adaptive-scheduling figure: the fault scenarios ×
// every layout scheme × {static, +SASIO} on the resilience workload
// (IOR mixed 128+256 KB write, 32 procs), under the resilient pipeline.
// It returns the rows plus two tables — completion times side by side
// and the scheduler's actions.
func (c Config) FigAdaptive(scenarios []fault.Scenario) ([]AdaptiveRow, []*metrics.Table, error) {
	if len(scenarios) == 0 {
		scenarios = fault.Scenarios()
	}
	rows, err := parallelRows(c, len(scenarios), func(cc Config, i int) (AdaptiveRow, error) {
		cc.Faults = scenarios[i]
		row := AdaptiveRow{
			Scenario: scenarios[i],
			Static:   make(map[layout.Scheme]float64),
			Adaptive: make(map[layout.Scheme]float64),
			Actions:  make(map[layout.Scheme]AdaptiveActions),
		}
		tr, err := cc.faultWorkload()
		if err != nil {
			return row, err
		}
		schemes := layout.AllSchemes()
		// Cell j replays schemes[j/2]; odd j turns the scheduler on.
		cells, err := parallelRows(cc, 2*len(schemes), func(sc Config, j int) (AdaptiveRow, error) {
			scheme, withSASIO := schemes[j/2], j%2 == 1
			sc.Adaptive = withSASIO
			reg := sc.Telemetry
			if reg == nil {
				reg = telemetry.NewRegistry()
				sc.Telemetry = reg
			}
			run, err := sc.RunScheme(scheme, tr)
			if err != nil {
				return AdaptiveRow{}, fmt.Errorf("bench: adaptive %s scheme %v sasio=%v: %w",
					scenarios[i], scheme, withSASIO, err)
			}
			cell := AdaptiveRow{
				Static:   map[layout.Scheme]float64{scheme: run.Result.Makespan},
				Actions:  map[layout.Scheme]AdaptiveActions{scheme: scrapeAdaptive(reg)},
				Adaptive: map[layout.Scheme]float64{scheme: run.Result.Makespan},
			}
			return cell, nil
		})
		if err != nil {
			return row, err
		}
		for j, s := range schemes {
			row.Static[s] = cells[2*j].Static[s]
			row.Adaptive[s] = cells[2*j+1].Adaptive[s]
			row.Actions[s] = cells[2*j+1].Actions[s]
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}

	times := metrics.NewTable(
		"Adaptive scheduling: completion time (s), static vs +SASIO per scheme — IOR write 128+256KB, 32 procs",
		"scenario",
		"DEF", "DEF+SASIO", "AAL", "AAL+SASIO",
		"HARL", "HARL+SASIO", "MHA", "MHA+SASIO")
	for _, row := range rows {
		times.AddRow(string(row.Scenario),
			fmt.Sprintf("%.6f", row.Static[layout.DEF]),
			fmt.Sprintf("%.6f", row.Adaptive[layout.DEF]),
			fmt.Sprintf("%.6f", row.Static[layout.AAL]),
			fmt.Sprintf("%.6f", row.Adaptive[layout.AAL]),
			fmt.Sprintf("%.6f", row.Static[layout.HARL]),
			fmt.Sprintf("%.6f", row.Adaptive[layout.HARL]),
			fmt.Sprintf("%.6f", row.Static[layout.MHA]),
			fmt.Sprintf("%.6f", row.Adaptive[layout.MHA]))
	}
	actions := metrics.NewTable(
		"Adaptive scheduling: scheduler actions per scenario and scheme (+SASIO runs)",
		"scenario", "scheme", "reroutes", "speculations", "spec_wins", "spec_cancelled")
	for _, row := range rows {
		for _, s := range schemeOrder {
			a := row.Actions[s]
			actions.AddRow(string(row.Scenario), s.String(),
				fmt.Sprintf("%.0f", a.Reroutes),
				fmt.Sprintf("%.0f", a.Speculations),
				fmt.Sprintf("%.0f", a.SpecWins),
				fmt.Sprintf("%.0f", a.SpecCancelled))
		}
	}
	return rows, []*metrics.Table{times, actions}, nil
}
