package bench

import (
	"fmt"

	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// ScalingRow is one cluster size of the scaling experiment.
type ScalingRow struct {
	Servers int // total servers (3:1 HServer:SServer ratio)
	Procs   int
	BW      map[layout.Scheme]float64 // MB/s
}

// Scaling addresses the paper's future work — "evaluate MHA in a much
// larger cluster" — by weak-scaling the Fig. 7 mixed-size IOR workload:
// cluster sizes 8→64 servers (3:1 HDD:SSD ratio, like the paper's 6:2),
// with the process count and total volume growing proportionally so
// per-server load stays constant. A layout scheme that scales keeps (or
// grows) its aggregate bandwidth per server.
func (c Config) Scaling() ([]ScalingRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	muls := []int{1, 2, 4, 8}
	rows, err := parallelRows(c, len(muls), func(cb Config, i int) (ScalingRow, error) {
		mul := muls[i]
		h, s := 6*mul, 2*mul
		procs := 32 * mul
		cc := cb.withServers(h, s)
		tr, err := workload.IOR(workload.IORConfig{
			File: "ior.dat", Op: trace.OpWrite,
			Sizes: []int64{128 * units.KB, 256 * units.KB},
			Procs: []int{procs},
			// Weak scaling: volume grows with the cluster.
			FileSize: cc.scaled(fig7FileSize) * int64(mul),
			Shuffle:  true, Seed: 7,
		})
		if err != nil {
			return ScalingRow{}, err
		}
		runs, err := cc.runSchemes([]layout.Scheme{layout.DEF, layout.MHA}, tr)
		if err != nil {
			return ScalingRow{}, err
		}
		row := ScalingRow{Servers: h + s, Procs: procs, BW: make(map[layout.Scheme]float64)}
		for scheme, run := range runs {
			row.BW[scheme] = run.Result.Bandwidth()
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable(
		"Scaling (future work): weak-scaled IOR 128+256KB write, 3:1 HDD:SSD",
		"servers", "procs", "DEF MB/s", "MHA MB/s", "MHA/DEF", "MHA MB/s per server")
	for _, r := range rows {
		ratio := 0.0
		if r.BW[layout.DEF] > 0 {
			ratio = r.BW[layout.MHA] / r.BW[layout.DEF]
		}
		tb.AddRow(r.Servers, r.Procs, r.BW[layout.DEF], r.BW[layout.MHA],
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.1f", r.BW[layout.MHA]/float64(r.Servers)))
	}
	return rows, tb, nil
}
