package bench

import (
	"testing"

	"mhafs/internal/layout"
)

// MHA must lead the six-scheme comparison on both workloads, and CARL's
// selective (non-parallel) placement must trail MHA — the paper's §VI
// argument.
func TestExtendedComparison(t *testing.T) {
	rows, tb, err := testConfig().Extended()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || tb.Rows() != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		mha := row.BW[layout.MHA]
		for _, s := range layout.ExtendedSchemes() {
			if s == layout.MHA {
				continue
			}
			if !(mha >= 0.99*row.BW[s]) {
				t.Errorf("%s: MHA %.1f not leading %v %.1f", row.Label, mha, s, row.BW[s])
			}
		}
		if !(mha > row.BW[layout.CARL]) {
			t.Errorf("%s: MHA %.1f should beat CARL %.1f", row.Label, mha, row.BW[layout.CARL])
		}
	}
}

func TestLatencyExperiment(t *testing.T) {
	rows, tb, err := testConfig().Latency()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Rows() != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[layout.Scheme]float64{}
	for _, r := range rows {
		if r.Lat.Count == 0 || r.Lat.Mean <= 0 || r.Lat.P99 < r.Lat.P50 {
			t.Fatalf("degenerate latency row %+v", r)
		}
		byScheme[r.Scheme] = r.Lat.P99
	}
	// MHA's tail must beat DEF's (the bandwidth gap in latency form).
	if !(byScheme[layout.MHA] < byScheme[layout.DEF]) {
		t.Errorf("MHA p99 %.4f not below DEF %.4f", byScheme[layout.MHA], byScheme[layout.DEF])
	}
}
