package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateExport(read, write float64) Export {
	return Export{
		Scale: 64, HServers: 6, SServers: 2,
		Bandwidth: map[string]BandwidthExport{
			"MHA": {ReadMBps: read, WriteMBps: write, ReadSamples: 4, WriteSamples: 4},
			"DEF": {ReadMBps: 100, WriteMBps: 100, ReadSamples: 4, WriteSamples: 4},
		},
	}
}

func TestCompareExportsPassAndRegress(t *testing.T) {
	base := gateExport(200, 150)

	if regs, err := CompareExports(base, gateExport(199, 150), 0.05); err != nil || len(regs) != 0 {
		t.Errorf("within tolerance: regs=%v err=%v", regs, err)
	}
	// Improvements never fail the gate.
	if regs, err := CompareExports(base, gateExport(400, 300), 0.05); err != nil || len(regs) != 0 {
		t.Errorf("improvement flagged: regs=%v err=%v", regs, err)
	}
	// A 10% read drop against a 5% tolerance is exactly one regression.
	regs, err := CompareExports(base, gateExport(180, 150), 0.05)
	if err != nil || len(regs) != 1 {
		t.Fatalf("regs=%v err=%v, want one regression", regs, err)
	}
	r := regs[0]
	if r.Scheme != "MHA" || r.Metric != "read_mbps" || r.Old != 200 || r.New != 180 {
		t.Errorf("regression = %+v", r)
	}
	if r.Limit != 200*0.95 {
		t.Errorf("limit = %v, want %v", r.Limit, 200*0.95)
	}
	// Both directions regressed: the 50% read drop outranks the 33%
	// write drop.
	regs, err = CompareExports(base, gateExport(100, 100), 0.05)
	if err != nil || len(regs) != 2 {
		t.Fatalf("regs=%v err=%v, want two regressions", regs, err)
	}
	if regs[0].Metric != "read_mbps" || regs[1].Metric != "write_mbps" {
		t.Errorf("order = %v, %v", regs[0].Metric, regs[1].Metric)
	}
}

// TestCompareExportsWorstFirst: the report is ordered by shortfall, not
// by (scheme, metric) — a deep write regression must outrank a shallow
// read one.
func TestCompareExportsWorstFirst(t *testing.T) {
	base := gateExport(200, 150)
	// Read drops 10%, write drops 40%: write is the headline.
	regs, err := CompareExports(base, gateExport(180, 90), 0.05)
	if err != nil || len(regs) != 2 {
		t.Fatalf("regs=%v err=%v, want two regressions", regs, err)
	}
	if regs[0].Metric != "write_mbps" || regs[1].Metric != "read_mbps" {
		t.Errorf("order = %v, %v; want write_mbps first", regs[0].Metric, regs[1].Metric)
	}
	if got := regs[0].Shortfall(); got != 0.4 {
		t.Errorf("write shortfall = %v, want 0.4", got)
	}
	if s := regs[0].String(); !strings.Contains(s, "-40.0%") {
		t.Errorf("String() = %q, want the percentage drop in it", s)
	}
	if (Regression{}).Shortfall() != 0 {
		t.Error("zero-baseline shortfall must be 0")
	}
}

func TestCompareExportsIncomparable(t *testing.T) {
	base := gateExport(200, 150)

	other := gateExport(200, 150)
	other.Scale = 32
	if _, err := CompareExports(base, other, 0.05); err == nil {
		t.Error("different scale accepted")
	}
	other = gateExport(200, 150)
	other.HServers = 4
	if _, err := CompareExports(base, other, 0.05); err == nil {
		t.Error("different cluster shape accepted")
	}
	missing := gateExport(200, 150)
	delete(missing.Bandwidth, "MHA")
	if _, err := CompareExports(base, missing, 0.05); err == nil {
		t.Error("missing scheme accepted")
	}
	if _, err := CompareExports(Export{Scale: 64, HServers: 6, SServers: 2}, base, 0.05); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := CompareExports(base, base, -0.1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := CompareExports(base, base, 1); err == nil {
		t.Error("tolerance of 1 accepted")
	}
}

// Zero-sample / zero-bandwidth baseline entries are not gated: there is
// nothing measured to regress from.
func TestCompareExportsZeroBaseline(t *testing.T) {
	base := gateExport(200, 150)
	base.Bandwidth["W"] = BandwidthExport{} // never measured
	next := gateExport(200, 150)
	next.Bandwidth["W"] = BandwidthExport{}
	regs, err := CompareExports(base, next, 0.05)
	if err != nil || len(regs) != 0 {
		t.Errorf("zero baseline gated: regs=%v err=%v", regs, err)
	}
}

func TestExportRoundTrip(t *testing.T) {
	e := gateExport(200, 150)
	e.Figures = []FigureExport{{ID: "7", Title: "t", Headers: []string{"a"}, Rows: [][]string{{"1"}}}}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != 64 || len(got.Figures) != 1 || got.Bandwidth["MHA"].ReadMBps != 200 {
		t.Errorf("round trip mangled export: %+v", got)
	}
	if _, err := LoadExport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
