package bench

import (
	"fmt"
	"time"

	"mhafs/internal/device"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// AblationRow is one configuration of the design-choice ablations.
type AblationRow struct {
	Variant   string
	Bandwidth float64 // MB/s on the reference workload
	PlanTime  float64 // wall-clock seconds spent planning (offline)
	Regions   int
}

// StepAblation quantifies §III-F's claim that "finer 'step' values result
// in more precise stripe pairs, but with increased calculation overhead":
// the reference mixed-size IOR workload is planned and replayed under MHA
// with different RSSD search steps.
func (c Config) StepAblation() ([]AblationRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	tr, err := workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, step := range []int64{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB} {
		cc := c
		cc.Env.Step = step
		start := time.Now()
		run, err := cc.RunScheme(layout.MHA, tr)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("step=%s", units.Bytes(step)),
			Bandwidth: run.Result.Bandwidth(),
			PlanTime:  time.Since(start).Seconds(),
			Regions:   len(run.Plan.Regions),
		})
	}
	tb := ablationTable("Ablation: RSSD search step (§III-F), IOR 128+256KB write", rows)
	return rows, tb, nil
}

// GroupBoundAblation sweeps the upper bound on the group count k — the
// paper's guard against meta-data blow-up (§III-D) — on a workload with
// many distinct request sizes (sparse Cholesky).
func (c Config) GroupBoundAblation() ([]AblationRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := workload.DefaultCholesky()
	cfg.Panels = c.scaledCount(fig13Panels)
	tr, err := workload.Cholesky(cfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, maxK := range []int{1, 2, 4, 8, 16, 32} {
		cc := c
		cc.Env.MaxRegions = maxK
		start := time.Now()
		run, err := cc.RunScheme(layout.MHA, tr)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("maxK=%d", maxK),
			Bandwidth: run.Result.Bandwidth(),
			PlanTime:  time.Since(start).Seconds(),
			Regions:   len(run.Plan.Regions),
		})
	}
	tb := ablationTable("Ablation: group-count bound k (§III-D), sparse Cholesky", rows)
	return rows, tb, nil
}

// ConcurrencyAblation compares MHA planned with the concurrency feature
// against a variant whose requests are all treated as concurrency 1 — the
// paper's extension over HARL's model ("we extend it by considering I/O
// concurrency for better cost estimation").
func (c Config) ConcurrencyAblation() ([]AblationRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	tr, err := workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow

	full, err := c.RunScheme(layout.MHA, tr)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, AblationRow{
		Variant: "with concurrency", Bandwidth: full.Result.Bandwidth(),
		Regions: len(full.Plan.Regions),
	})

	// Concurrency-blind variant: squash all time stamps so every request
	// appears isolated to the pattern analyzer.
	blind := tr.Clone()
	for i := range blind {
		blind[i].Time = float64(i) // strictly increasing, far apart
	}
	cc := c
	cc.Env.EpochWindow = 0
	blindRun, err := cc.RunScheme(layout.MHA, blind)
	if err != nil {
		return nil, nil, err
	}
	// Replay the REAL (concurrent) workload timing against the blind plan
	// is what RunScheme already did internally for blind — but its replay
	// used the squashed trace, whose per-rank order matches the original.
	rows = append(rows, AblationRow{
		Variant: "concurrency-blind", Bandwidth: blindRun.Result.Bandwidth(),
		Regions: len(blindRun.Plan.Regions),
	})
	tb := ablationTable("Ablation: concurrency term of the cost model", rows)
	return rows, tb, nil
}

func ablationTable(title string, rows []AblationRow) *metrics.Table {
	tb := metrics.NewTable(title, "variant", "MB/s", "regions", "plan time (s)")
	for _, r := range rows {
		tb.AddRow(r.Variant, r.Bandwidth, r.Regions, fmt.Sprintf("%.3f", r.PlanTime))
	}
	return tb
}

// StragglerAblation degrades one HServer (3x startup, a third of the
// streaming rate) and measures how each scheme's bandwidth suffers
// relative to the healthy cluster. The cost model is class-level — it
// cannot see a single slow disk — so this quantifies a known blind spot
// of the paper's approach (and of ours).
func (c Config) StragglerAblation() ([]AblationRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	tr, err := workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
	})
	if err != nil {
		return nil, nil, err
	}
	slow := c.Cluster.HDD
	slow.ReadStartup *= 3
	slow.WriteStartup *= 3
	slow.ReadPerByte *= 3
	slow.WritePerByte *= 3
	slow.Name = slow.Name + "-degraded"

	var rows []AblationRow
	for _, scheme := range []layout.Scheme{layout.DEF, layout.MHA} {
		healthy, err := c.RunScheme(scheme, tr)
		if err != nil {
			return nil, nil, err
		}
		cc := c
		cc.Cluster.HDDOverrides = map[int]device.Model{0: slow}
		degraded, err := cc.RunScheme(scheme, tr)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows,
			AblationRow{Variant: scheme.String() + " healthy", Bandwidth: healthy.Result.Bandwidth()},
			AblationRow{Variant: scheme.String() + " straggler", Bandwidth: degraded.Result.Bandwidth()},
		)
	}
	tb := metrics.NewTable("Ablation: one degraded HServer (class-level model blind spot)",
		"variant", "MB/s")
	for _, r := range rows {
		tb.AddRow(r.Variant, r.Bandwidth)
	}
	return rows, tb, nil
}
